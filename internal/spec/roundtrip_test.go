package spec

import (
	"math/rand"
	"strings"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

// Property: Format followed by Parse reproduces any valid system exactly
// (field by field), for random systems across every policy.
func TestFormatParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	policies := []sim.ServerPolicy{
		sim.NoServer, sim.PollingServer, sim.DeferrableServer,
		sim.LimitedPollingServer, sim.LimitedDeferrableServer,
		sim.SporadicServer, sim.PriorityExchange, sim.SlackStealer,
	}
	for trial := 0; trial < 200; trial++ {
		var sys sim.System
		for i := 0; i < rng.Intn(4); i++ {
			period := 2 + rng.Intn(20)
			sys.Periodics = append(sys.Periodics, sim.PeriodicTask{
				Name:     "p" + string(rune('1'+i)),
				Period:   rtime.TUs(float64(period)),
				Cost:     rtime.TUs(0.1 + rng.Float64()*float64(period-1)),
				Offset:   rtime.AtTU(float64(rng.Intn(5))),
				Deadline: rtime.TUs(float64(period)),
				Priority: rng.Intn(10),
			})
		}
		for i := 0; i < rng.Intn(5); i++ {
			j := sim.AperiodicJob{
				Name:    "J" + string(rune('1'+i)),
				Release: rtime.AtTU(rng.Float64() * 50),
				Cost:    rtime.TUs(0.1 + rng.Float64()*5),
			}
			if rng.Intn(2) == 1 {
				j.Declared = rtime.TUs(0.1 + rng.Float64()*5)
			}
			if rng.Intn(2) == 1 {
				j.Deadline = rtime.TUs(1 + rng.Float64()*20)
			}
			if rng.Intn(2) == 1 {
				j.Value = float64(1 + rng.Intn(100))
			}
			sys.Aperiodics = append(sys.Aperiodics, j)
		}
		pol := policies[rng.Intn(len(policies))]
		if pol != sim.NoServer {
			sys.Server = &sim.ServerSpec{
				Policy:   pol,
				Capacity: rtime.TUs(1 + rng.Float64()*3),
				Period:   rtime.TUs(5 + rng.Float64()*5),
				Priority: 100,
			}
		}
		f := &File{System: sys, Horizon: rtime.AtTU(float64(10 + rng.Intn(100)))}

		text := Format(f)
		g, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("trial %d: re-parse failed: %v\n%s", trial, err, text)
		}
		if g.Horizon != f.Horizon {
			t.Fatalf("trial %d: horizon %v != %v", trial, g.Horizon, f.Horizon)
		}
		if (g.System.Server == nil) != (f.System.Server == nil) {
			t.Fatalf("trial %d: server presence mismatch", trial)
		}
		if f.System.Server != nil {
			a, b := *f.System.Server, *g.System.Server
			a.Name, b.Name = "", ""
			if a != b {
				t.Fatalf("trial %d: server %+v != %+v", trial, b, a)
			}
		}
		if len(g.System.Periodics) != len(f.System.Periodics) {
			t.Fatalf("trial %d: periodic count", trial)
		}
		for i := range f.System.Periodics {
			if f.System.Periodics[i] != g.System.Periodics[i] {
				t.Fatalf("trial %d: periodic %d: %+v != %+v",
					trial, i, g.System.Periodics[i], f.System.Periodics[i])
			}
		}
		for i := range f.System.Aperiodics {
			a, b := f.System.Aperiodics[i], g.System.Aperiodics[i]
			// Declared == Cost is normalized away by Format.
			if a.Declared == a.Cost {
				a.Declared = 0
			}
			if a != b {
				t.Fatalf("trial %d: aperiodic %d: %+v != %+v", trial, i, b, a)
			}
		}
	}
}
