// Package spec parses the textual system description consumed by the rtss
// command (and produced by rtgen), a line-oriented format:
//
//	# comment
//	policy fp                     # fp (default) | edf | dover
//	server ps 4 6 prio=100        # ps | ds | ps-lim | ds-lim | ss | bg
//	periodic tau1 6 2 prio=2      # name period cost [prio=] [offset=] [deadline=]
//	aperiodic J1 2.5 3            # name release cost [declared=] [deadline=] [value=]
//	horizon 60
//	cpus 4                        # virtual CPUs for -exec runs (default 1)
//	faults seed=1 overrun=0.2:0.5 # deterministic fault plan (see faults.ParseArgs)
//
// Durations and instants are in time units unless suffixed (see
// rtime.ParseDuration).
package spec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rtsj/internal/faults"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

// PolicyKind selects the top-level dispatcher.
type PolicyKind int

// Dispatcher kinds.
const (
	FP PolicyKind = iota
	EDF
	DOver
)

// File is a parsed system description.
type File struct {
	Policy  PolicyKind // dispatcher the file selects
	System  sim.System // the described workload
	Horizon rtime.Time // observation window (default 60 tu)
	// CPUs is the virtual CPU count declared by a cpus directive (0 when
	// absent, meaning 1). It only affects -exec runs: the executive
	// schedules the workload on this many CPUs under the Global migration
	// policy.
	CPUs int
	// Faults is the optional deterministic fault-injection plan declared
	// by a faults directive; nil when absent.
	Faults *faults.Plan
}

var serverPolicies = map[string]sim.ServerPolicy{
	"bg": sim.NoServer,
	"ps": sim.PollingServer, "ds": sim.DeferrableServer,
	"ps-lim": sim.LimitedPollingServer, "ds-lim": sim.LimitedDeferrableServer,
	"ss": sim.SporadicServer, "pe": sim.PriorityExchange, "slack": sim.SlackStealer,
}

// Parse reads a system description.
func Parse(r io.Reader) (*File, error) {
	f := &File{Horizon: rtime.AtTU(60)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if err := f.parseLine(fields); err != nil {
			return nil, fmt.Errorf("spec: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := f.System.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) parseLine(fields []string) error {
	switch fields[0] {
	case "policy":
		if len(fields) != 2 {
			return fmt.Errorf("policy wants one argument")
		}
		switch fields[1] {
		case "fp":
			f.Policy = FP
		case "edf":
			f.Policy = EDF
		case "dover", "d-over":
			f.Policy = DOver
		default:
			return fmt.Errorf("unknown policy %q", fields[1])
		}
	case "horizon":
		if len(fields) != 2 {
			return fmt.Errorf("horizon wants one argument")
		}
		d, err := rtime.ParseDuration(fields[1])
		if err != nil {
			return err
		}
		f.Horizon = rtime.Time(d)
	case "server":
		if len(fields) < 4 {
			return fmt.Errorf("server wants: server <policy> <capacity> <period> [prio=N]")
		}
		pol, ok := serverPolicies[fields[1]]
		if !ok {
			return fmt.Errorf("unknown server policy %q", fields[1])
		}
		capa, err := rtime.ParseDuration(fields[2])
		if err != nil {
			return err
		}
		period, err := rtime.ParseDuration(fields[3])
		if err != nil {
			return err
		}
		srv := &sim.ServerSpec{Policy: pol, Capacity: capa, Period: period, Priority: 100}
		for _, opt := range fields[4:] {
			if err := parseOpt(opt, map[string]func(string) error{
				"prio": func(v string) error { return parseInt(v, &srv.Priority) },
				"name": func(v string) error { srv.Name = v; return nil },
			}); err != nil {
				return err
			}
		}
		f.System.Server = srv
	case "periodic":
		if len(fields) < 4 {
			return fmt.Errorf("periodic wants: periodic <name> <period> <cost> [options]")
		}
		t := sim.PeriodicTask{Name: fields[1]}
		var err error
		if t.Period, err = rtime.ParseDuration(fields[2]); err != nil {
			return err
		}
		if t.Cost, err = rtime.ParseDuration(fields[3]); err != nil {
			return err
		}
		for _, opt := range fields[4:] {
			if err := parseOpt(opt, map[string]func(string) error{
				"prio": func(v string) error { return parseInt(v, &t.Priority) },
				"offset": func(v string) error {
					d, err := rtime.ParseDuration(v)
					t.Offset = rtime.Time(d)
					return err
				},
				"deadline": func(v string) error {
					var err error
					t.Deadline, err = rtime.ParseDuration(v)
					return err
				},
			}); err != nil {
				return err
			}
		}
		f.System.Periodics = append(f.System.Periodics, t)
	case "cpus":
		if len(fields) != 2 {
			return fmt.Errorf("cpus wants one argument")
		}
		if err := parseInt(fields[1], &f.CPUs); err != nil {
			return err
		}
		if f.CPUs < 1 {
			return fmt.Errorf("cpus wants a positive CPU count (got %d)", f.CPUs)
		}
	case "faults":
		p, err := faults.ParseArgs(fields[1:])
		if err != nil {
			return err
		}
		f.Faults = p
	case "aperiodic":
		if len(fields) < 4 {
			return fmt.Errorf("aperiodic wants: aperiodic <name> <release> <cost> [options]")
		}
		j := sim.AperiodicJob{Name: fields[1]}
		rel, err := rtime.ParseDuration(fields[2])
		if err != nil {
			return err
		}
		j.Release = rtime.Time(rel)
		if j.Cost, err = rtime.ParseDuration(fields[3]); err != nil {
			return err
		}
		for _, opt := range fields[4:] {
			if err := parseOpt(opt, map[string]func(string) error{
				"declared": func(v string) error {
					var err error
					j.Declared, err = rtime.ParseDuration(v)
					return err
				},
				"deadline": func(v string) error {
					var err error
					j.Deadline, err = rtime.ParseDuration(v)
					return err
				},
				"value": func(v string) error {
					var err error
					j.Value, err = strconv.ParseFloat(v, 64)
					return err
				},
			}); err != nil {
				return err
			}
		}
		f.System.Aperiodics = append(f.System.Aperiodics, j)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func parseOpt(opt string, handlers map[string]func(string) error) error {
	k, v, ok := strings.Cut(opt, "=")
	if !ok {
		return fmt.Errorf("malformed option %q (want key=value)", opt)
	}
	h, ok := handlers[k]
	if !ok {
		return fmt.Errorf("unknown option %q", k)
	}
	return h(v)
}

func parseInt(v string, dst *int) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

// Format renders a system description in the spec format (the inverse of
// Parse, used by rtgen).
func Format(f *File) string {
	var b strings.Builder
	switch f.Policy {
	case EDF:
		b.WriteString("policy edf\n")
	case DOver:
		b.WriteString("policy dover\n")
	default:
		b.WriteString("policy fp\n")
	}
	fmt.Fprintf(&b, "horizon %s\n", rtime.Duration(f.Horizon))
	if f.CPUs > 1 {
		fmt.Fprintf(&b, "cpus %d\n", f.CPUs)
	}
	if s := f.System.Server; s != nil {
		// Pick the policy's name over sorted keys so the rendered form is a
		// pure function of the file (map iteration order must not leak into
		// output; "ds-lim" and friends alias no policy, so first match wins).
		keys := make([]string, 0, len(serverPolicies))
		for k := range serverPolicies {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		name := "bg"
		for _, k := range keys {
			if serverPolicies[k] == s.Policy {
				name = k
				break
			}
		}
		fmt.Fprintf(&b, "server %s %s %s prio=%d\n", name, s.Capacity, s.Period, s.Priority)
	}
	for _, t := range f.System.Periodics {
		fmt.Fprintf(&b, "periodic %s %s %s prio=%d", t.Name, t.Period, t.Cost, t.Priority)
		if t.Offset != 0 {
			fmt.Fprintf(&b, " offset=%s", rtime.Duration(t.Offset))
		}
		if t.Deadline != 0 {
			fmt.Fprintf(&b, " deadline=%s", t.Deadline)
		}
		b.WriteByte('\n')
	}
	for _, j := range f.System.Aperiodics {
		fmt.Fprintf(&b, "aperiodic %s %s %s", j.Name, rtime.Duration(j.Release), j.Cost)
		if j.Declared != 0 && j.Declared != j.Cost {
			fmt.Fprintf(&b, " declared=%s", j.Declared)
		}
		if j.Deadline != 0 {
			fmt.Fprintf(&b, " deadline=%s", j.Deadline)
		}
		if j.Value != 0 {
			fmt.Fprintf(&b, " value=%g", j.Value)
		}
		b.WriteByte('\n')
	}
	if f.Faults != nil {
		fmt.Fprintf(&b, "faults %s\n", f.Faults)
	}
	return b.String()
}
