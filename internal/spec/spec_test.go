package spec

import (
	"strings"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

const sample = `
# Table 1 task set
policy fp
horizon 18tu
cpus 2
server ps-lim 3 6 prio=10
periodic tau1 6 2 prio=2
periodic tau2 6 1 prio=1
aperiodic h1 2 2
aperiodic h2 4 2 declared=1
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Policy != FP {
		t.Error("policy")
	}
	if f.Horizon != rtime.AtTU(18) {
		t.Errorf("horizon = %v", f.Horizon)
	}
	if f.CPUs != 2 {
		t.Errorf("cpus = %d", f.CPUs)
	}
	if f.System.Server == nil || f.System.Server.Policy != sim.LimitedPollingServer ||
		f.System.Server.Capacity != rtime.TUs(3) || f.System.Server.Priority != 10 {
		t.Errorf("server: %+v", f.System.Server)
	}
	if len(f.System.Periodics) != 2 || f.System.Periodics[0].Priority != 2 {
		t.Errorf("periodics: %+v", f.System.Periodics)
	}
	if len(f.System.Aperiodics) != 2 {
		t.Fatalf("aperiodics: %+v", f.System.Aperiodics)
	}
	h2 := f.System.Aperiodics[1]
	if h2.Declared != rtime.TUs(1) || h2.Cost != rtime.TUs(2) {
		t.Errorf("h2: %+v", h2)
	}
}

func TestParsePolicies(t *testing.T) {
	for in, want := range map[string]PolicyKind{"fp": FP, "edf": EDF, "dover": DOver, "d-over": DOver} {
		f, err := Parse(strings.NewReader("policy " + in))
		if err != nil {
			t.Fatal(err)
		}
		if f.Policy != want {
			t.Errorf("policy %s = %d", in, f.Policy)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"policy nope",
		"policy",
		"server xx 3 6",
		"server ps 3",
		"server ps x 6",
		"periodic t1 6",
		"periodic t1 abc 2",
		"aperiodic j 0",
		"aperiodic j 0 2 bogus",
		"aperiodic j 0 2 bogus=1",
		"horizon",
		"horizon xyz",
		"frobnicate 1 2",
		"cpus",
		"cpus zero",
		"cpus 0",
		"cpus -1",
		"periodic t1 6 2 prio=abc",
		"aperiodic j 0 2 value=abc",
		"periodic t1 1 5", // cost > period fails validation
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	f, err := Parse(strings.NewReader("\n# only comments\n  \nperiodic a 5 1 # trailing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.System.Periodics) != 1 {
		t.Fatal("periodic not parsed")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	g, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if g.Horizon != f.Horizon || g.Policy != f.Policy {
		t.Error("header round trip")
	}
	if g.CPUs != f.CPUs {
		t.Errorf("cpus lost in round trip: %d vs %d", g.CPUs, f.CPUs)
	}
	if len(g.System.Periodics) != len(f.System.Periodics) ||
		len(g.System.Aperiodics) != len(f.System.Aperiodics) {
		t.Error("body round trip")
	}
	if g.System.Aperiodics[1].Declared != f.System.Aperiodics[1].Declared {
		t.Error("declared lost in round trip")
	}
	if g.System.Server.Policy != f.System.Server.Policy {
		t.Error("server lost in round trip")
	}
}

func TestParsedSystemRuns(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(f.System, sim.NewFP(f.System, nil), f.Horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Aperiodics()) != 2 {
		t.Fatal("wrong job count")
	}
}
