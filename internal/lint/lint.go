// Package lint is the repository's determinism and concurrency lint
// driver: a small, stdlib-only static-analysis harness (go/parser +
// go/types) in the spirit of go/analysis, tuned to this codebase's
// reproduction contract. The shipped analyzers (Analyzers) prove at
// compile time the invariants the differential tests probe at run time:
// no wall-clock or environment reads in the deterministic packages
// (nondeterm), no order-sensitive folds over map iteration (maporder),
// no float drift in mergeable metrics (intmerge), and no unlocked access
// to mutex-guarded state (guarded).
//
// A finding can be suppressed with a directive comment on, or on the line
// before, the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// The analyzer name must be one of the run's analyzers and the reason must
// be non-empty; a malformed directive is itself a finding. cmd/rtlint is
// the command-line front end.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report: a position, the analyzer that raised it,
// and the message. Findings print as "file:line:col: analyzer: message".
type Finding struct {
	// Pos locates the finding in the source tree.
	Pos token.Position `json:"-"`
	// File is Pos.Filename, split out for JSON output.
	File string `json:"file"`
	// Line is Pos.Line.
	Line int `json:"line"`
	// Col is Pos.Column.
	Col int `json:"col"`
	// Analyzer names the analyzer that raised the finding.
	Analyzer string `json:"analyzer"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one modular check: a name (the lint:ignore key), a one-line
// doc string, and the Run hook invoked once per package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in findings and directives.
	Name string
	// Doc is a one-line description, shown by rtlint -list.
	Doc string
	// Packages, when non-empty, restricts the analyzer to packages whose
	// import-path base name is in the list; an empty list means every
	// audited package.
	Packages []string
	// Run analyzes one package, reporting through pass.Reportf.
	Run func(pass *Pass)
}

// applies reports whether the analyzer audits the named package.
func (a *Analyzer) applies(pkgName string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == pkgName {
			return true
		}
	}
	return false
}

// Pass carries one (analyzer, package) unit of work: the parsed files,
// whatever type information survived the lenient check, and the report
// hook.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps AST positions back to source.
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (possibly incomplete: imports
	// outside the module are stubbed, so their members do not resolve).
	Pkg *types.Package
	// Info holds the type-checker's resolution maps. Objects of this
	// module resolve precisely; references into stubbed imports are
	// simply absent, and analyzers must tolerate missing entries.
	Info *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the repository's analyzer suite, in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NonDeterm, MapOrder, IntMerge, Guarded}
}

// Package is one loaded, type-checked package directory.
type Package struct {
	// Dir is the package directory as given to the loader.
	Dir string
	// Fset maps positions for every file of this load (shared across
	// packages of one Loader).
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Pkg is the types package.
	Pkg *types.Package
	// Info is the resolution info for Files.
	Info *types.Info
}

// Loader parses and type-checks package directories. Imports within the
// module (ModulePath-prefixed) are loaded from source, so cross-package
// types of this repository resolve exactly; all other imports (the
// standard library included) are stubbed out, and type errors arising from
// stubs are ignored — analyzers see precise types for everything local and
// work syntactically elsewhere.
type Loader struct {
	// ModuleRoot is the filesystem root of the module.
	ModuleRoot string
	// ModulePath is the module's import-path prefix (go.mod "module").
	ModulePath string

	fset    *token.FileSet
	loaded  map[string]*Package       // by absolute dir
	stubs   map[string]*types.Package // by import path
	loading map[string]bool           // cycle guard, by absolute dir
}

// NewLoader returns a loader rooted at moduleRoot. The module path is read
// from moduleRoot's go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: read go.mod: %w", err)
	}
	path := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleRoot)
	}
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: path,
		fset:       token.NewFileSet(),
		loaded:     make(map[string]*Package),
		stubs:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the package in dir (non-test files only).
// Loads are cached, so a package imported by several audited packages is
// checked once.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.loaded[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	pkgMap, err := parser.ParseDir(l.fset, abs, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: parse %s: %w", dir, err)
	}
	var astPkg *ast.Package
	for name, p := range pkgMap {
		if astPkg == nil || !strings.HasSuffix(name, "_test") {
			astPkg = p
		}
	}
	if astPkg == nil {
		return nil, fmt.Errorf("lint: no Go package in %s", dir)
	}
	var names []string
	for name := range astPkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		files = append(files, astPkg.Files[name])
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(error) {}, // stubbed imports guarantee errors; analyzers tolerate gaps
	}
	importPath := l.importPathFor(abs)
	pkg, _ := conf.Check(importPath, l.fset, files, info) // errors intentionally dropped
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-check %s produced no package", dir)
	}
	p := &Package{Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.loaded[abs] = p
	return p, nil
}

// importPathFor maps an absolute directory under the module root to its
// import path; directories outside the module keep their base name. The
// root is absolutized first so a loader constructed with a relative root
// still yields full module-qualified paths (analyzers match on them).
func (l *Loader) importPathFor(abs string) string {
	root := l.ModuleRoot
	if r, err := filepath.Abs(root); err == nil {
		root = r
	}
	if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(abs)
}

// moduleImporter resolves module-local imports from source and stubs the
// rest. Methods live on a Loader alias so the cache is shared.
type moduleImporter Loader

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		p, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)))
		if err != nil {
			return nil, err
		}
		p.Pkg.MarkComplete()
		return p.Pkg, nil
	}
	if stub, ok := l.stubs[path]; ok {
		return stub, nil
	}
	stub := types.NewPackage(path, pathBase(path))
	stub.MarkComplete()
	l.stubs[path] = stub
	return stub, nil
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer  string
	reason    string
	pos       token.Pos
	malformed string // non-empty when the directive itself is a finding
}

// directiveRe matches "lint:ignore" directives: the token must be followed
// by whitespace or end-of-comment, so "lint:ignoreX" is not a directive.
var directiveRe = regexp.MustCompile(`^//\s*lint:ignore(?:\s+(\S+))?(?:\s+(.*))?\s*$`)

// collectDirectives parses every lint:ignore comment of a file, keyed by
// the line it suppresses (its own line and the next).
func collectDirectives(fset *token.FileSet, file *ast.File, known map[string]bool) map[int][]ignoreDirective {
	out := make(map[int][]ignoreDirective)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			d := ignoreDirective{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
			switch {
			case d.analyzer == "":
				d.malformed = "lint:ignore directive names no analyzer (want //lint:ignore <analyzer> <reason>)"
			case !known[d.analyzer]:
				d.malformed = fmt.Sprintf("lint:ignore names unknown analyzer %q", d.analyzer)
			case d.reason == "":
				d.malformed = fmt.Sprintf("lint:ignore %s gives no reason", d.analyzer)
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], d)
		}
	}
	return out
}

// Run executes the analyzers over the package and returns surviving
// findings: analyzer reports not suppressed by a well-formed lint:ignore
// directive, plus one finding per malformed directive. Findings are
// ordered by position.
func Run(p *Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var raw []Finding
	for _, a := range analyzers {
		if !a.applies(p.Pkg.Name()) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     p.Fset,
			Files:    p.Files,
			Pkg:      p.Pkg,
			Info:     p.Info,
			findings: &raw,
		}
		a.Run(pass)
	}

	// Directive handling: suppress findings covered by a directive on the
	// same or preceding line; report malformed directives.
	var out []Finding
	for _, file := range p.Files {
		dirs := collectDirectives(p.Fset, file, known)
		for line := range dirs {
			for _, d := range dirs[line] {
				if d.malformed != "" {
					pos := p.Fset.Position(d.pos)
					out = append(out, Finding{
						Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint", Message: d.malformed,
					})
				}
			}
		}
	}
	for _, f := range raw {
		if suppressed(p, f, known) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// suppressed reports whether a well-formed directive on the finding's line
// or the line above covers it.
func suppressed(p *Package, f Finding, known map[string]bool) bool {
	for _, file := range p.Files {
		if p.Fset.Position(file.Pos()).Filename != f.File {
			continue
		}
		dirs := collectDirectives(p.Fset, file, known)
		for _, line := range [2]int{f.Line, f.Line - 1} {
			for _, d := range dirs[line] {
				if d.malformed == "" && d.analyzer == f.Analyzer {
					return true
				}
			}
		}
	}
	return false
}
