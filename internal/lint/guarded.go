package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guarded enforces the repository's mutex comment convention: a struct
// field whose doc or line comment says "guarded by <mu>" may only be
// accessed inside functions that visibly lock that mutex (a <mu>.Lock or
// <mu>.RLock call anywhere in the body — the intra-function heuristic),
// or that declare they run with the lock held (a name ending in "Locked",
// or a doc comment containing "<mu> held", "holding <mu>" or
// "caller holds"). Accesses that are safe for a subtler reason
// (pre-concurrency initialization, publication through another fence)
// take a //lint:ignore guarded <reason> directive, which doubles as
// documentation.
var Guarded = &Analyzer{
	Name: "guarded",
	Doc:  "fields documented \"guarded by <mu>\" must only be accessed under that mutex (intra-function heuristic)",
	Run:  runGuarded,
}

// guardedRe extracts the mutex name from a field comment.
var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func runGuarded(pass *Pass) {
	// Pass 1: collect guarded field objects and their mutex names.
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				mu := guardName(f)
				if mu == "" {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: audit every function's accesses.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locked := lockedMutexes(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil {
					if s, found := pass.Info.Selections[sel]; found {
						obj = s.Obj()
					}
				}
				mu, isGuarded := guards[obj]
				if !isGuarded || locked[mu] || declaresHeld(fd, mu) {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"access to %s (guarded by %s) in %s, which neither locks %s nor declares it held",
					sel.Sel.Name, mu, fd.Name.Name, mu)
				return true
			})
		}
	}
}

// guardName returns the mutex named by a field's "guarded by <mu>"
// comment, or "".
func guardName(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the set of mutex names the function body visibly
// locks: any call of the form <chain>.<mu>.Lock() or <mu>.RLock().
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := sel.X.(type) {
		case *ast.SelectorExpr:
			out[recv.Sel.Name] = true
		case *ast.Ident:
			out[recv.Name] = true
		}
		return true
	})
	return out
}

// declaresHeld reports whether the function's doc comment declares the
// mutex already held by the caller, or its name ends in "Locked".
func declaresHeld(fd *ast.FuncDecl, mu string) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc == nil {
		return false
	}
	text := fd.Doc.Text()
	return strings.Contains(text, mu+" held") ||
		strings.Contains(text, "holding "+mu) ||
		strings.Contains(text, "holds "+mu) ||
		strings.Contains(text, "caller holds")
}
