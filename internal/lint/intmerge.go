package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// IntMerge guards the campaign fabric's determinism keystone: mergeable
// metrics must stay all-integer so shard merges are exact for any split.
// In the metrics package it forbids float-typed fields on mergeable
// structs (types named *Partial*) and float arithmetic inside merge-path
// functions (Merge*/Add* functions and methods). Derived views
// (ScheduleRatio, MeanResponseTU, ...) compute floats after merging and
// are out of scope by construction — they are not named Merge or Add.
var IntMerge = &Analyzer{
	Name:     "intmerge",
	Doc:      "forbid float fields and float arithmetic in metrics merge/Partial paths (shard merges must be exact)",
	Packages: []string{"metrics"},
	Run:      runIntMerge,
}

func runIntMerge(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !strings.Contains(ts.Name.Name, "Partial") {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					checkPartialFields(pass, ts.Name.Name, st)
				}
			case *ast.FuncDecl:
				if d.Body == nil || !mergePathFunc(d) {
					continue
				}
				checkMergeBody(pass, d)
			}
		}
	}
}

// mergePathFunc reports whether the function is a merge path: its name
// starts with Merge or Add.
func mergePathFunc(d *ast.FuncDecl) bool {
	return strings.HasPrefix(d.Name.Name, "Merge") || strings.HasPrefix(d.Name.Name, "Add")
}

// checkPartialFields flags float-typed fields of a mergeable struct.
func checkPartialFields(pass *Pass, typeName string, st *ast.StructType) {
	for _, f := range st.Fields.List {
		t := pass.Info.Types[f.Type].Type
		if !isFloat(t) && !syntacticFloat(f.Type) {
			continue
		}
		names := "embedded field"
		if len(f.Names) > 0 {
			var ns []string
			for _, n := range f.Names {
				ns = append(ns, n.Name)
			}
			names = strings.Join(ns, ", ")
		}
		pass.Reportf(f.Pos(),
			"float field %s on mergeable struct %s: merges would drift with the shard split; store integer ticks and derive floats after merging",
			names, typeName)
	}
}

// syntacticFloat matches literal float32/float64 type expressions, the
// fallback when type information is unavailable.
func syntacticFloat(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "float32" || id.Name == "float64")
}

// checkMergeBody flags float arithmetic inside a merge-path function.
func checkMergeBody(pass *Pass, d *ast.FuncDecl) {
	ast.Inspect(d.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				if isFloat(pass.Info.Types[x.X].Type) || isFloat(pass.Info.Types[x.Y].Type) {
					pass.Reportf(x.Pos(),
						"float arithmetic in merge path %s: results depend on fold order; keep merge paths all-integer",
						d.Name.Name)
				}
			}
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range x.Lhs {
					if isFloat(pass.Info.Types[lhs].Type) {
						pass.Reportf(x.Pos(),
							"float accumulation in merge path %s: results depend on fold order; keep merge paths all-integer",
							d.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			// float64(x) conversions inside a merge path launder integers
			// into drift-prone arithmetic.
			if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "float64" || id.Name == "float32") && isBuiltinType(pass, id) {
				pass.Reportf(x.Pos(),
					"conversion to %s in merge path %s: keep merge paths all-integer and derive floats after merging",
					id.Name, d.Name.Name)
			}
		}
		return true
	})
}

// isBuiltinType reports whether the identifier resolves to a predeclared
// type name (not a local shadow).
func isBuiltinType(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	return obj.Pkg() == nil
}
