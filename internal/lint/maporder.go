package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body is order-sensitive: it
// appends to a slice declared outside the loop, writes output (a
// trace.Sink, io.Writer, string builder or fmt call), assigns a
// loop-variable-derived value to an outer variable (last-writer-wins
// selection), or folds floats/strings into an outer accumulator. Integer
// tallies (count++, sum += n) are exact and commutative, so they are
// allowed — the same reasoning that makes metrics.Partial mergeable.
//
// The idiomatic fix is to collect the keys, sort them, and range over the
// sorted slice; a collect-keys append is therefore exempt when the
// enclosing function visibly sorts the collected slice afterwards.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive folds over map iteration (append, output writes, non-commutative accumulation)",
	Run:  runMapOrder,
}

// writeishNames are call names that emit output in call order.
var writeishNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	// trace.Sink methods: segment and event appends are recorded in
	// call order and feed fingerprints.
	"Run": true, "Event": true, "DeclareEntity": true, "Segment": true,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		// Funcs in source order so the sorted-keys exemption can look at
		// statements following the range within the same function.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if underlyingMap(pass.Info.Types[rs.X].Type) == nil {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
}

// checkMapRange audits one map-range statement's body.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				loopVars[obj] = true // k, v := declared outside (rare "=" range)
			}
		}
	}
	mapName := exprString(rs.X)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fd, rs, stmt, loopVars, mapName)
		case *ast.CallExpr:
			if name, ok := callName(stmt); ok && writeishNames[name] {
				pass.Reportf(stmt.Pos(),
					"%s inside range over map %s: output written in map iteration order; sort the keys first",
					name, mapName)
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if mentionsAny(pass, res, loopVars) {
					pass.Reportf(stmt.Pos(),
						"return of a loop variable inside range over map %s selects an arbitrary entry; sort the keys first",
						mapName)
					break
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign audits one assignment inside a map-range body.
func checkMapRangeAssign(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, stmt *ast.AssignStmt, loopVars map[types.Object]bool, mapName string) {
	for i, lhs := range stmt.Lhs {
		obj := rootObject(pass, lhs)
		if obj == nil || loopVars[obj] || !declaredOutside(pass, obj, rs) {
			continue
		}
		var rhs ast.Expr
		if i < len(stmt.Rhs) {
			rhs = stmt.Rhs[i]
		} else if len(stmt.Rhs) == 1 {
			rhs = stmt.Rhs[0]
		}

		// append to an outer slice accumulates in iteration order.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) {
				if sortedAfter(pass, fd, rs, obj) {
					continue // collect-keys-then-sort idiom
				}
				pass.Reportf(stmt.Pos(),
					"append to %s inside range over map %s accumulates in map iteration order; sort the keys first",
					obj.Name(), mapName)
				continue
			}
		}

		switch stmt.Tok {
		case token.ASSIGN, token.DEFINE:
			// Plain overwrite of an outer variable with a loop-derived
			// value: last writer wins, and the last iteration is arbitrary.
			if rhs != nil && mentionsAny(pass, rhs, loopVars) {
				pass.Reportf(stmt.Pos(),
					"assignment to %s inside range over map %s depends on map iteration order (last writer wins); sort the keys first",
					obj.Name(), mapName)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Float and string folds are order-sensitive; integer tallies
			// are commutative and exact.
			t := pass.Info.Types[lhs].Type
			if isFloat(t) {
				pass.Reportf(stmt.Pos(),
					"float accumulation into %s inside range over map %s is order-sensitive (float addition does not commute exactly); sort the keys first",
					obj.Name(), mapName)
			} else if isString(t) && stmt.Tok == token.ADD_ASSIGN {
				pass.Reportf(stmt.Pos(),
					"string concatenation into %s inside range over map %s emits in map iteration order; sort the keys first",
					obj.Name(), mapName)
			}
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement.
func declaredOutside(pass *Pass, obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() == token.NoPos || obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// mentionsAny reports whether the expression references any of the given
// objects.
func mentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltin reports whether the identifier resolves to a builtin (or is
// unresolved, which for "append" only happens for the builtin).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// callName extracts the called name from a call expression: the selector
// member for method/package calls, the identifier for plain calls.
func callName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	case *ast.Ident:
		return fun.Name, true
	}
	return "", false
}

// sortedAfter reports whether the function sorts the accumulated slice
// after the range statement: a call mentioning both a sort-ish name and
// the slice variable, positioned after the loop.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, slice types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		name, ok := callName(call)
		if !ok || !sortishName(name) {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(pass, arg); obj == slice {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortishName matches sort.Strings / sort.Slice / slices.Sort and the
// local sortFloats-style helpers.
func sortishName(name string) bool {
	switch name {
	case "Sort", "Strings", "Ints", "Float64s", "Slice", "SliceStable", "SortFunc", "SortStableFunc":
		return true
	}
	return len(name) > 4 && name[:4] == "sort"
}
