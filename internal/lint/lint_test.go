package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the real loader (rooted
// at the repository, two levels up).
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := l.Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return p
}

// wantRe matches a // want `regex` expectation inside a comment.
var wantRe = regexp.MustCompile("want `([^`]+)`")

// expectation is one want comment: a line and a message pattern.
type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants parses the fixture's want comments, keyed by file and line.
func collectWants(t *testing.T, p *Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, file := range p.Files {
		fname := p.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", fname, m[1], err)
					}
					line := p.Fset.Position(c.Pos()).Line
					out[fname] = append(out[fname], &expectation{line: line, re: re})
				}
			}
		}
	}
	return out
}

// checkFixture runs the full suite over a fixture and matches findings
// against its want comments, both directions.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	p := loadFixture(t, name)
	wants := collectWants(t, p)
	findings := Run(p, Analyzers())
	for _, f := range findings {
		matched := false
		for _, w := range wants[f.File] {
			if w.line == f.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected finding matching %q, got none", file, w.line, w.re)
			}
		}
	}
}

func TestNonDetermFixture(t *testing.T) { checkFixture(t, "nondeterm") }
func TestMapOrderFixture(t *testing.T)  { checkFixture(t, "maporder") }
func TestIntMergeFixture(t *testing.T)  { checkFixture(t, "intmerge") }
func TestGuardedFixture(t *testing.T)   { checkFixture(t, "guarded") }

// TestIgnoreDirectives pins the directive contract: a well-formed
// directive on the finding's line or the line above suppresses it; a
// wrong analyzer name or a missing reason is itself a finding and
// suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	p := loadFixture(t, "ignore")
	findings := Run(p, Analyzers())

	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s: %s", f.Analyzer, f.Message))
	}

	wantSubstrings := []string{
		`lint: lint:ignore names unknown analyzer "nodeterm"`,
		`lint: lint:ignore nondeterm gives no reason`,
		`lint: lint:ignore directive names no analyzer`,
		// The three malformed directives do not suppress their targets.
		`nondeterm: os.Getenv: environment read`, // wrongAnalyzer
		`nondeterm: os.Getenv: environment read`, // missingReason
		`nondeterm: os.Getenv: environment read`, // noAnalyzer
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(wantSubstrings), strings.Join(got, "\n"))
	}
	counts := map[string]int{}
	for _, g := range got {
		counts[prefixOf(g)]++
	}
	if counts["lint"] != 3 || counts["nondeterm"] != 3 {
		t.Fatalf("got %d lint + %d nondeterm findings, want 3 + 3:\n%s",
			counts["lint"], counts["nondeterm"], strings.Join(got, "\n"))
	}
	// The two well-formed directives suppressed their lines: no finding
	// may point at the suppressed functions.
	for _, f := range findings {
		if f.Line <= 19 { // suppressedSameLine / suppressedLineAbove bodies
			t.Errorf("finding on suppressed line %d: %s", f.Line, f)
		}
	}
}

func prefixOf(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestDirectiveParsing covers the directive grammar corner cases without
// fixtures.
func TestDirectiveParsing(t *testing.T) {
	src := `package p
//lint:ignore maporder keys sorted upstream by the caller
var a int
// lint:ignore guarded initialization happens before the pool starts
var b int
//lint:ignorenot a directive at all
var c int
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"maporder": true, "guarded": true}
	dirs := collectDirectives(fset, file, known)
	if len(dirs) != 2 {
		t.Fatalf("parsed %d directive lines, want 2: %+v", len(dirs), dirs)
	}
	for line, ds := range dirs {
		for _, d := range ds {
			if d.malformed != "" {
				t.Errorf("line %d: unexpectedly malformed: %s", line, d.malformed)
			}
			if d.reason == "" {
				t.Errorf("line %d: empty reason", line)
			}
		}
	}
}

// TestAnalyzerScoping pins that package-restricted analyzers skip
// packages outside their list.
func TestAnalyzerScoping(t *testing.T) {
	if NonDeterm.applies("harness") {
		t.Error("nondeterm must not audit the harness package (env worker counts are allowed there)")
	}
	if !NonDeterm.applies("sim") || !NonDeterm.applies("rtsjvm") {
		t.Error("nondeterm must audit the deterministic packages")
	}
	if IntMerge.applies("experiments") {
		t.Error("intmerge is scoped to metrics")
	}
	if !MapOrder.applies("anything") || !Guarded.applies("anything") {
		t.Error("maporder and guarded audit every package")
	}
}

// TestRunOnRepoPackages runs the suite over the real deterministic
// packages: the tree must be clean (the rtlint CI gate, as a unit test).
func TestRunOnRepoPackages(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		"sim", "exec", "gen", "metrics", "faults", "rtime", "spec", "trace", "rtsjvm",
		"harness", "experiments", "analysis", "core", "lint",
	}
	for _, d := range dirs {
		p, err := l.Load(filepath.Join("..", d))
		if err != nil {
			t.Fatalf("load internal/%s: %v", d, err)
		}
		for _, f := range Run(p, Analyzers()) {
			t.Errorf("internal/%s: %s", d, f)
		}
	}
}

// TestFindingString pins the rendering format rtlint prints and CI greps.
func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 3, Col: 7, Analyzer: "maporder", Message: "boom"}
	if got, want := f.String(), "a/b.go:3:7: maporder: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
