package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DeterministicPackages names the packages whose output feeds schedules,
// fingerprints and tables: everything inside them must be a pure function
// of (inputs, seed). The harness and experiments layers sit outside — they
// may read the environment (worker counts) because they only decide *how*
// the deterministic work is executed, never *what* it computes.
var DeterministicPackages = []string{
	"sim", "exec", "gen", "metrics", "faults", "rtime", "spec", "trace", "rtsjvm",
}

// NonDeterm forbids nondeterminism sources in the deterministic packages:
// wall-clock reads (time.Now, time.Since, timers), math/rand (only the
// seeded splitmix streams in internal/gen are legitimate randomness),
// environment reads (os.Getenv and friends), and writes to package-level
// variables outside init (global mutable state makes results depend on
// call history; the recycling sync.Pools are exempt — pooling is
// observability-neutral by construction, pinned by the recycle tests).
var NonDeterm = &Analyzer{
	Name:     "nondeterm",
	Doc:      "forbid wall-clock, math/rand, environment reads and global mutable state in deterministic packages",
	Packages: DeterministicPackages,
	Run:      runNonDeterm,
}

// forbiddenSelectors maps import path -> member names whose use is a
// finding. An empty member list forbids the whole package.
var forbiddenSelectors = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock read",
		"Since":     "wall-clock read",
		"Until":     "wall-clock read",
		"Sleep":     "wall-clock wait",
		"After":     "wall-clock timer",
		"Tick":      "wall-clock timer",
		"NewTimer":  "wall-clock timer",
		"NewTicker": "wall-clock timer",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// forbiddenImports are packages that must not be imported at all.
var forbiddenImports = map[string]string{
	"math/rand":    "unseeded/global randomness; use the package's splitmix streams",
	"math/rand/v2": "unseeded/global randomness; use the package's splitmix streams",
}

// obsReadMethods are the internal/obs accessors that surface accumulated
// observability state. Bumping an instrument (Inc, Add, Set, Max, Observe)
// is allowed anywhere — the stats layer is observational by contract — but
// *reading* one inside a deterministic package would let run-to-run-varying
// state (pool high-water marks, latency histograms) leak into schedules or
// fingerprints, so reads are findings there.
var obsReadMethods = map[string]bool{
	"Value":    true,
	"Count":    true,
	"Sum":      true,
	"Snapshot": true,
	"Map":      true,
	"Format":   true,
}

func runNonDeterm(pass *Pass) {
	for _, file := range pass.Files {
		// Import graph: forbidden packages, and the local names of
		// restricted packages so renamed imports are still caught.
		restricted := map[string]string{} // local name -> import path
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s: %s", path, why)
			}
			if _, ok := forbiddenSelectors[path]; ok {
				name := pathBase(path)
				if imp.Name != nil {
					name = imp.Name.Name
				}
				restricted[name] = path
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obsReadMethods[sel.Sel.Name] && isObsReceiver(pass, sel) {
				pass.Reportf(sel.Pos(),
					"%s.%s: reading observability state in a deterministic package (obs instruments are write-only here)",
					exprString(sel.X), sel.Sel.Name)
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := restricted[id.Name]
			if !ok {
				return true
			}
			// Only package-qualified references count: a local variable
			// shadowing the import name resolves to a *types.Var, not a
			// *types.PkgName.
			if obj, ok := pass.Info.Uses[id]; ok {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if why, ok := forbiddenSelectors[path][sel.Sel.Name]; ok {
				pass.Reportf(sel.Pos(), "%s.%s: %s in a deterministic package", id.Name, sel.Sel.Name, why)
			}
			return true
		})
	}

	checkGlobalWrites(pass)
}

// isObsReceiver reports whether sel is a method selection whose receiver is
// a type of internal/obs. Module-local imports type-check from source, so
// the receiver's package path resolves precisely; selections that did not
// resolve (stubbed imports) are simply not obs receivers.
func isObsReceiver(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// checkGlobalWrites flags assignments to package-level variables outside
// init functions and the declarations themselves.
func checkGlobalWrites(pass *Pass) {
	// Collect package-level var objects, minus the allowlisted kinds.
	globals := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if allowlistedGlobal(vs) {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						globals[obj] = true
					}
				}
			}
		}
	}
	if len(globals) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue // one-time deterministic setup
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range stmt.Lhs {
						if obj := rootObject(pass, lhs); obj != nil && globals[obj] {
							pass.Reportf(lhs.Pos(),
								"write to package-level variable %s outside init: global mutable state breaks determinism",
								obj.Name())
						}
					}
				case *ast.IncDecStmt:
					if obj := rootObject(pass, stmt.X); obj != nil && globals[obj] {
						pass.Reportf(stmt.Pos(),
							"write to package-level variable %s outside init: global mutable state breaks determinism",
							obj.Name())
					}
				}
				return true
			})
		}
	}
}

// allowlistedGlobal reports whether a package-level var spec declares only
// interface-conformance pins or synchronization values that are
// deterministic by construction (sync.Pool recycling, sync.Once setup).
func allowlistedGlobal(vs *ast.ValueSpec) bool {
	// Blank-named conformance pins: var _ Sink = (*Trace)(nil).
	blankOnly := true
	for _, name := range vs.Names {
		if name.Name != "_" {
			blankOnly = false
		}
	}
	if blankOnly {
		return true
	}
	if typeIsSyncKind(vs.Type) {
		return true
	}
	if vs.Type == nil && len(vs.Values) == len(vs.Names) {
		all := true
		for _, v := range vs.Values {
			cl, ok := v.(*ast.CompositeLit)
			if !ok || !typeIsSyncKind(cl.Type) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// typeIsSyncKind matches the sync.Pool / sync.Once / sync.Mutex /
// sync.RWMutex type expressions syntactically (the sync package is stubbed
// during type checking, so this cannot rely on resolved types).
func typeIsSyncKind(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "sync" {
		return false
	}
	switch sel.Sel.Name {
	case "Pool", "Once", "Mutex", "RWMutex":
		return true
	}
	return false
}

// rootObject resolves the base identifier of an lvalue chain (x, x.f,
// x.f[i].g ...) to its object, or nil.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short expression (identifier chains) for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "?"
	}
}

// underlyingMap returns the map type of t, or nil.
func underlyingMap(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}

// isFloat reports whether t's underlying basic kind carries float
// information.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
