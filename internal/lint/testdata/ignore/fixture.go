// Package exec is the lint:ignore fixture (named after a deterministic
// package so nondeterm audits it): well-formed directives suppress,
// malformed directives are themselves findings. TestIgnoreDirectives
// asserts the exact finding set programmatically — want comments cannot
// sit on directive lines without becoming part of the reason.
package exec

import (
	"os"
	"time"
)

func suppressedSameLine() string {
	return os.Getenv("HOME") //lint:ignore nondeterm worker-count plumbing, not simulation state
}

func suppressedLineAbove() time.Time {
	//lint:ignore nondeterm benchmark instrumentation outside any fingerprint
	return time.Now()
}

func wrongAnalyzer() string {
	//lint:ignore nodeterm typo in the analyzer name
	return os.Getenv("PATH")
}

func missingReason() string {
	//lint:ignore nondeterm
	return os.Getenv("TERM")
}

func noAnalyzer() string {
	//lint:ignore
	return os.Getenv("SHELL")
}
