// Package guarded is a fixture for the mutex-guard analyzer.
package guarded

import "sync"

// pool mimics the executive's worker-pool shape.
type pool struct {
	mu    sync.Mutex
	queue []int // guarded by mu
	live  int   // guarded by mu
	peak  int   // high-water mark of live; guarded by mu
	name  string
}

func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live // locked in this function: ok
}

func (p *pool) push(x int) {
	p.mu.Lock()
	p.queue = append(p.queue, x)
	if p.live > p.peak {
		p.peak = p.live
	}
	p.mu.Unlock()
}

func (p *pool) racyPeek() int {
	if len(p.queue) == 0 { // want `access to queue \(guarded by mu\) in racyPeek`
		return 0
	}
	return p.queue[0] // want `access to queue \(guarded by mu\) in racyPeek`
}

// drainLocked runs with mu held by its caller; the "Locked" suffix
// declares it.
func (p *pool) drainLocked() {
	p.queue = p.queue[:0]
	p.live = 0
}

// report sums the pool gauges. Called with mu held.
func (p *pool) report() int {
	return p.live + len(p.queue)
}

func (p *pool) rename(n string) {
	p.name = n // unguarded field: not flagged
}

func (p *pool) sloppyBump() {
	p.live++ // want `access to live \(guarded by mu\) in sloppyBump`
}
