// Package guarded is a fixture for the mutex-guard analyzer.
package guarded

import "sync"

// pool mimics the executive's worker-pool shape.
type pool struct {
	mu    sync.Mutex
	queue []int // guarded by mu
	live  int   // guarded by mu
	peak  int   // high-water mark of live; guarded by mu
	name  string
}

func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live // locked in this function: ok
}

func (p *pool) push(x int) {
	p.mu.Lock()
	p.queue = append(p.queue, x)
	if p.live > p.peak {
		p.peak = p.live
	}
	p.mu.Unlock()
}

func (p *pool) racyPeek() int {
	if len(p.queue) == 0 { // want `access to queue \(guarded by mu\) in racyPeek`
		return 0
	}
	return p.queue[0] // want `access to queue \(guarded by mu\) in racyPeek`
}

// drainLocked runs with mu held by its caller; the "Locked" suffix
// declares it.
func (p *pool) drainLocked() {
	p.queue = p.queue[:0]
	p.live = 0
}

// report sums the pool gauges. Called with mu held.
func (p *pool) report() int {
	return p.live + len(p.queue)
}

func (p *pool) rename(n string) {
	p.name = n // unguarded field: not flagged
}

func (p *pool) sloppyBump() {
	p.live++ // want `access to live \(guarded by mu\) in sloppyBump`
}

// smpCore mimics the SMP executive's per-CPU shape: the parked/running
// wake flags live on a core struct but are guarded by the owning
// executive's mutex, reached through a chain (c.ex.mu.Lock()).
type smpCore struct {
	ex       *smpExec
	occupant int  // thread index running on this core; guarded by mu
	parked   bool // guarded by mu
	index    int  // immutable after construction: not flagged
}

type smpExec struct {
	mu sync.Mutex
}

func (c *smpCore) place(th int) {
	c.ex.mu.Lock()
	defer c.ex.mu.Unlock()
	c.occupant = th // chained lock c.ex.mu: ok
	c.parked = false
}

// idleLocked runs with mu held by its caller; the "Locked" suffix
// declares it.
func (c *smpCore) idleLocked() {
	c.occupant = -1
	c.parked = true
}

func (c *smpCore) racyOccupant() int {
	return c.occupant // want `access to occupant \(guarded by mu\) in racyOccupant`
}

func (c *smpCore) sloppyPark() {
	if c.index >= 0 {
		c.parked = true // want `access to parked \(guarded by mu\) in sloppyPark`
	}
}
