// Package metrics is an intmerge fixture: named metrics so the analyzer
// audits it.
package metrics

// GoodPartial is all-integer: mergeable without drift.
type GoodPartial struct {
	Systems   int
	RespTicks int64
}

// BadPartial carries a float tally.
type BadPartial struct {
	Systems  int
	MeanResp float64 // want `float field MeanResp on mergeable struct BadPartial`
}

// Merge is a merge path: all-integer is fine.
func (p *GoodPartial) Merge(q GoodPartial) {
	p.Systems += q.Systems
	p.RespTicks += q.RespTicks
}

// AddSample folds one observation; the float add is the defect.
func (p *GoodPartial) AddSample(ticks int64, weight float64) {
	p.Systems++
	drift := weight * 0.5 // want `float arithmetic in merge path AddSample`
	_ = drift
	p.RespTicks += ticks
}

// MergeScaled launders integers through float64.
func (p *GoodPartial) MergeScaled(q GoodPartial) {
	scaled := float64(q.RespTicks) // want `conversion to float64 in merge path MergeScaled`
	_ = scaled
}

// Ratio is a derived view, not a merge path: float math is expected here.
func (p GoodPartial) Ratio() float64 {
	if p.Systems == 0 {
		return 0
	}
	return float64(p.RespTicks) / float64(p.Systems)
}

// accumulate is unexported and not Merge/Add-named: out of scope.
func accumulate(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
