// Package maporder is a fixture for the map-iteration-order analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) // want `append to names inside range over map m accumulates in map iteration order`
	}
	return names
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // exempt: sorted below
	}
	sort.Strings(keys)
	return keys
}

func writeUnsorted(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want `Fprintf inside range over map m: output written in map iteration order`
	}
}

func lastWriterWins(m map[string]int, want int) string {
	name := "unknown"
	for k, v := range m {
		if v == want {
			name = k // want `assignment to name inside range over map m depends on map iteration order`
		}
	}
	return name
}

func floatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over map m is order-sensitive`
	}
	return sum
}

func stringFold(m map[string]string) string {
	out := ""
	for _, v := range m {
		out += v // want `string concatenation into out inside range over map m emits in map iteration order`
	}
	return out
}

func arbitraryPick(m map[string]int) string {
	for k := range m {
		return k // want `return of a loop variable inside range over map m selects an arbitrary entry`
	}
	return ""
}

func intTally(m map[string]int) (int, int) {
	count := 0
	sum := 0
	for _, v := range m {
		count++  // commutative: not flagged
		sum += v // exact integer addition: not flagged
	}
	return count, sum
}

func flagFound(m map[string]int, want int) bool {
	found := false
	for _, v := range m {
		if v == want {
			found = true // RHS independent of loop vars: not flagged
		}
	}
	return found
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slices iterate in index order: not flagged
	}
	return out
}
