// Package exec is a nondeterm fixture: it is named after a deterministic
// package so the analyzer audits it. Each offending line carries a
// // want "regex" expectation.
package exec

import (
	"math/rand" // want `import of math/rand: unseeded/global randomness`
	"os"
	"sync"
	"time"

	"rtsj/internal/obs"
)

// globalCounter is package-level mutable state.
var globalCounter int

// lookupTable is read-only after init: reads are fine, writes flagged.
var lookupTable = map[string]int{"a": 1}

// jobPool is allowlisted: sync.Pool recycling is observability-neutral.
var jobPool = sync.Pool{New: func() any { return new(int) }}

// onceSetup is allowlisted sync.Once.
var onceSetup sync.Once

func init() {
	lookupTable["b"] = 2 // init writes are one-time deterministic setup
}

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now: wall-clock read`
	time.Sleep(time.Millisecond) // want `time\.Sleep: wall-clock wait`
	return time.Since(start)     // want `time\.Since: wall-clock read`
}

func environment() string {
	return os.Getenv("SEED") // want `os\.Getenv: environment read`
}

func prng() int {
	return rand.Intn(10)
}

func mutateGlobal() {
	globalCounter++   // want `write to package-level variable globalCounter outside init`
	globalCounter = 0 // want `write to package-level variable globalCounter outside init`
	jobPool.Put(new(int))
	onceSetup.Do(func() {})
}

func readGlobal() int {
	return lookupTable["a"] + globalCounter // reads alone are not flagged
}

func shadowedTime() int {
	time := struct{ Now int }{Now: 3} // a local shadowing the import
	return time.Now
}

// bumpStats exercises the obs write allowlist: incrementing instruments is
// observational and legal in deterministic packages.
func bumpStats(c *obs.Counter, g *obs.Gauge, h *obs.Histogram) {
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Max(5)
	h.Observe(7)
}

// readStats exercises the obs read ban: accumulated observability state
// must not feed deterministic results.
func readStats(c *obs.Counter, h *obs.Histogram, r *obs.Registry) int64 {
	v := c.Value()      // want `c\.Value: reading observability state`
	v += h.Count()      // want `h\.Count: reading observability state`
	v += h.Sum()        // want `h\.Sum: reading observability state`
	_ = r.Snapshot()    // want `r\.Snapshot: reading observability state`
	_ = r.Map()         // want `r\.Map: reading observability state`
	_ = len(r.Format()) // want `r\.Format: reading observability state`
	return v
}

// valueElsewhere pins that the method-name match alone is not enough: a
// Value method on a non-obs type is fine.
type valueElsewhere struct{ n int64 }

func (v valueElsewhere) Value() int64 { return v.n }

func readOwnValue() int64 {
	return valueElsewhere{n: 1}.Value()
}
