// Package exec is a nondeterm fixture: it is named after a deterministic
// package so the analyzer audits it. Each offending line carries a
// // want "regex" expectation.
package exec

import (
	"math/rand" // want `import of math/rand: unseeded/global randomness`
	"os"
	"sync"
	"time"
)

// globalCounter is package-level mutable state.
var globalCounter int

// lookupTable is read-only after init: reads are fine, writes flagged.
var lookupTable = map[string]int{"a": 1}

// jobPool is allowlisted: sync.Pool recycling is observability-neutral.
var jobPool = sync.Pool{New: func() any { return new(int) }}

// onceSetup is allowlisted sync.Once.
var onceSetup sync.Once

func init() {
	lookupTable["b"] = 2 // init writes are one-time deterministic setup
}

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now: wall-clock read`
	time.Sleep(time.Millisecond) // want `time\.Sleep: wall-clock wait`
	return time.Since(start)     // want `time\.Since: wall-clock read`
}

func environment() string {
	return os.Getenv("SEED") // want `os\.Getenv: environment read`
}

func prng() int {
	return rand.Intn(10)
}

func mutateGlobal() {
	globalCounter++   // want `write to package-level variable globalCounter outside init`
	globalCounter = 0 // want `write to package-level variable globalCounter outside init`
	jobPool.Put(new(int))
	onceSetup.Do(func() {})
}

func readGlobal() int {
	return lookupTable["a"] + globalCounter // reads alone are not flagged
}

func shadowedTime() int {
	time := struct{ Now int }{Now: 3} // a local shadowing the import
	return time.Now
}
