package exec

import (
	"fmt"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// SMP differential tests: every multiprocessor scenario is built
// identically on {ChannelKernel, DirectKernel} x {goroutine-per-thread,
// pooled, pooled+activation} x M in {1, 2, 4} and must produce
// trace-for-trace identical schedules, with the channel per-thread
// configuration as the M-CPU reference implementation. The M=1 runs must
// additionally match the plain uniprocessor executive byte for byte
// (TestSMPM1MatchesUniprocessor).

// smpScenario builds one workload. activation selects the dispatch
// formulation for its periodic entities (SpawnPeriodicOn vs a looping
// SpawnOn body) — the two must be schedule-identical, so the scenario is
// compared across that axis too.
type smpScenario struct {
	name    string
	horizon rtime.Time
	build   func(ex *Exec, m int, activation bool)
}

// smpPeriodicOn spawns a periodic entity in either formulation with the
// exact kernel-call sequence the activation rearm issues, so the two modes
// stay trace-identical (the property TestActivationDiff* pins at M=1).
func smpPeriodicOn(ex *Exec, name string, prio, cpu int, period, cost rtime.Duration, activation bool) {
	if activation {
		ex.SpawnPeriodicOn(name, prio, cpu, ActivationSpec{Period: period}, func(tc *TC) {
			tc.Consume(cost)
		})
		return
	}
	ex.SpawnOn(name, prio, 0, cpu, func(tc *TC) {
		next := rtime.Time(0)
		for {
			tc.Consume(cost)
			next = next.Add(period)
			for next < tc.Now() {
				next = next.Add(period)
			}
			tc.SleepUntil(next)
		}
	})
}

var smpCorpus = []smpScenario{
	{"parallel-periodics", at(40), func(ex *Exec, m int, activation bool) {
		// More ready work than CPUs at every instant: occupancy, placement
		// and preemption all exercised.
		for i := 0; i < 6; i++ {
			smpPeriodicOn(ex, fmt.Sprintf("p%d", i), 2+i%3, -1,
				tu(float64(5+2*i)), tu(float64(2+i%4)), activation)
		}
	}},
	{"pinned-affinity", at(40), func(ex *Exec, m int, activation bool) {
		// Explicit affinities: under Partitioned each CPU schedules its own
		// column; under Global they are placement hints only.
		for i := 0; i < 8; i++ {
			smpPeriodicOn(ex, fmt.Sprintf("a%d", i), 2+i%4, i%m,
				tu(float64(6+i)), tu(float64(2+i%3)), activation)
		}
	}},
	{"sporadic-burst", at(60), func(ex *Exec, m int, activation bool) {
		// One-shot jobs arriving in bursts over a periodic base load, with
		// same-instant releases forcing the (instant, CPU, prio, spawn
		// order) tie-break.
		smpPeriodicOn(ex, "base", 1, -1, tu(7), tu(3), activation)
		rng := newDetRand(99)
		for i := 0; i < 16; i++ {
			cost := tu(float64(1+rng.next()%30) / 10)
			prio := 2 + rng.next()%4
			rel := at(float64((i / 4) * 9)) // four jobs per burst instant
			ex.SpawnOn(fmt.Sprintf("j%d", i), prio, rel, -1, func(tc *TC) {
				tc.Consume(cost)
			})
		}
	}},
	{"mutex-across-cpus", at(50), func(ex *Exec, m int, activation bool) {
		// A lock shared by threads that may run on different CPUs: priority
		// inheritance and the serialization it forces must replay
		// identically.
		mx := NewMutex("m")
		for i := 0; i < 4; i++ {
			prio := 1 + i
			start := at(float64(i))
			ex.SpawnOn(fmt.Sprintf("c%d", i), prio, start, -1, func(tc *TC) {
				tc.WithLock(mx, func() { tc.Consume(tu(3)) })
				tc.Consume(tu(1))
			})
		}
		smpPeriodicOn(ex, "bg", 1, -1, tu(11), tu(4), activation)
	}},
	{"edf-dynamic-priority", at(60), func(ex *Exec, m int, activation bool) {
		// Job-level dynamic priorities (EDF by negated absolute deadline)
		// through both the ActivationSpec.Priority hook and TC.SetPriority.
		for i := 0; i < 5; i++ {
			period := tu(float64(6 + 3*i))
			cost := tu(float64(2 + i))
			edf := func(rel rtime.Time) int { return -int(int64(rel.Add(period))) }
			name := fmt.Sprintf("e%d", i)
			if activation {
				ex.SpawnPeriodicOn(name, 0, -1, ActivationSpec{Period: period, Priority: edf},
					func(tc *TC) { tc.Consume(cost) })
				continue
			}
			ex.SpawnOn(name, edf(0), 0, -1, func(tc *TC) {
				next := rtime.Time(0)
				for {
					tc.Consume(cost)
					next = next.Add(period)
					for next < tc.Now() {
						next = next.Add(period)
					}
					tc.SetPriority(edf(next))
					tc.SleepUntil(next)
				}
			})
		}
	}},
}

// smpDiffConfigs is the executive matrix each SMP scenario runs on; the
// first entry is the reference.
var smpDiffConfigs = []struct {
	name       string
	kernel     Kernel
	goroutines int
	activation bool
}{
	{"channel/thread", ChannelKernel, 0, false},
	{"direct/thread", DirectKernel, 0, false},
	{"channel/pooled", ChannelKernel, 3, false},
	{"direct/pooled", DirectKernel, 3, false},
	{"channel/activation", ChannelKernel, 3, true},
	{"direct/activation", DirectKernel, 3, true},
}

// smpPolicies pairs each policy with the CPU counts it is exercised at.
var smpPolicies = []struct {
	policy MigrationPolicy
	cpus   []int
}{
	{Global, []int{1, 2, 4}},
	{Partitioned, []int{1, 2, 4}},
	{Clustered, []int{1, 2, 4}},
}

// TestSMPDiffCorpus runs every SMP scenario through the full
// configuration x policy x M matrix and requires trace-for-trace identity
// with the channel per-thread reference at the same (policy, M), a valid
// m-CPU occupancy, and a clean invariant net.
func TestSMPDiffCorpus(t *testing.T) {
	for _, sc := range smpCorpus {
		for _, pol := range smpPolicies {
			for _, m := range pol.cpus {
				sc, pol, m := sc, pol, m
				t.Run(fmt.Sprintf("%s/%v/m%d", sc.name, pol.policy, m), func(t *testing.T) {
					t.Parallel()
					run := func(cfg int) *Exec {
						c := smpDiffConfigs[cfg]
						ex := NewWithOptions(trace.New(), Options{
							Kernel:        c.kernel,
							MaxGoroutines: c.goroutines,
							CPUs:          m,
							Migration:     pol.policy,
						})
						sc.build(ex, m, c.activation)
						if err := ex.Run(sc.horizon); err != nil {
							t.Fatalf("%s: %v", c.name, err)
						}
						if err := ex.CheckInvariants(); err != nil {
							t.Errorf("%s: %v", c.name, err)
						}
						return ex
					}
					ref := run(0)
					defer ref.Shutdown()
					if err := ref.Trace().CheckCPUs(m); err != nil {
						t.Errorf("reference trace invalid: %v", err)
					}
					for cfg := 1; cfg < len(smpDiffConfigs); cfg++ {
						got := run(cfg)
						compareExecsCPUs(t, smpDiffConfigs[cfg].name, ref, got, m)
						got.Shutdown()
					}
				})
			}
		}
	}
}

// TestSMPM1MatchesUniprocessor pins the core reduction: for every scenario
// in the SMP corpus and every migration policy, an executive configured
// with CPUs=1 is byte-identical — segments, events, final time, per-thread
// accounting — to the plain uniprocessor executive (Options zero value).
// The smp1 entries of diffConfigs and vmDiffConfigs extend the same
// property over the entire pre-SMP differential corpus.
func TestSMPM1MatchesUniprocessor(t *testing.T) {
	for _, sc := range smpCorpus {
		for _, kernel := range []Kernel{ChannelKernel, DirectKernel} {
			for _, pol := range smpPolicies {
				sc, kernel, pol := sc, kernel, pol
				t.Run(fmt.Sprintf("%s/%v/%v", sc.name, kernel, pol.policy), func(t *testing.T) {
					t.Parallel()
					run := func(opts Options) *Exec {
						ex := NewWithOptions(trace.New(), opts)
						sc.build(ex, 1, false)
						if err := ex.Run(sc.horizon); err != nil {
							t.Fatal(err)
						}
						return ex
					}
					uni := run(Options{Kernel: kernel})
					smp := run(Options{Kernel: kernel, CPUs: 1, Migration: pol.policy, MigrationCost: tu(1)})
					compareExecs(t, "m1", uni, smp)
					if smp.Migrations() != 0 {
						t.Errorf("M=1 run migrated %d times", smp.Migrations())
					}
					uni.Shutdown()
					smp.Shutdown()
				})
			}
		}
	}
}

// TestSMPDiffFuzz drives randomized workloads — random thread counts,
// priorities, affinities, costs, policies and CPU counts — through the
// configuration matrix: every configuration must match the channel
// per-thread reference trace-for-trace, and rerunning the reference must
// reproduce itself exactly (determinism across reruns and worker counts).
func TestSMPDiffFuzz(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	policies := []MigrationPolicy{Global, Partitioned, Clustered}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := newDetRand(uint64(7000 + trial))
			m := 1 << (rng.next() % 3) // 1, 2 or 4 CPUs
			policy := policies[rng.next()%len(policies)]
			cost := rtime.Duration(rng.next()%2) * tu(1) / 4 // migration cost 0 or 0.25tu
			n := 3 + rng.next()%8
			type plan struct {
				prio, cpu int
				start     rtime.Time
				period    rtime.Duration // 0: one-shot
				cost      rtime.Duration
			}
			plans := make([]plan, n)
			for i := range plans {
				plans[i] = plan{
					prio:  1 + rng.next()%5,
					cpu:   rng.next()%(m+1) - 1, // -1..m-1
					start: rtime.Time(rtime.Duration(rng.next()%10) * tu(1) / 2),
					cost:  rtime.Duration(1+rng.next()%25) * tu(1) / 10,
				}
				if rng.next()%2 == 0 {
					plans[i].period = rtime.Duration(4+rng.next()%10) * tu(1)
				}
			}
			build := func(ex *Exec, activation bool) {
				for i, p := range plans {
					name := fmt.Sprintf("z%d", i)
					if p.period > 0 {
						smpPeriodicOn(ex, name, p.prio, p.cpu, p.period, p.cost, activation)
						continue
					}
					c := p.cost
					ex.SpawnOn(name, p.prio, p.start, p.cpu, func(tc *TC) { tc.Consume(c) })
				}
			}
			run := func(kernel Kernel, workers int, activation bool) *Exec {
				ex := NewWithOptions(trace.New(), Options{
					Kernel:        kernel,
					MaxGoroutines: workers,
					CPUs:          m,
					Migration:     policy,
					MigrationCost: cost,
				})
				build(ex, activation)
				if err := ex.Run(at(60)); err != nil {
					t.Fatal(err)
				}
				if err := ex.CheckInvariants(); err != nil {
					t.Error(err)
				}
				return ex
			}
			ref := run(ChannelKernel, 0, false)
			defer ref.Shutdown()
			if err := ref.Trace().CheckCPUs(m); err != nil {
				t.Errorf("reference trace invalid: %v", err)
			}
			for _, cmp := range []struct {
				name       string
				kernel     Kernel
				workers    int
				activation bool
			}{
				{"rerun", ChannelKernel, 0, false},
				{"direct", DirectKernel, 0, false},
				{"channel-w2", ChannelKernel, 2, false},
				{"direct-w8", DirectKernel, 8, false},
				{"direct-activation", DirectKernel, 2, true},
			} {
				got := run(cmp.kernel, cmp.workers, cmp.activation)
				compareExecsCPUs(t, cmp.name, ref, got, m)
				got.Shutdown()
			}
			if t.Failed() {
				t.Fatalf("fuzz trial %d diverged (seed %d, m=%d, policy=%v)", trial, 7000+trial, m, policy)
			}
		})
	}
}

// TestSMPOccupancy pins that M CPUs genuinely run in parallel: M
// always-ready threads on M CPUs each make full progress over the window,
// consuming M times what a uniprocessor could.
func TestSMPOccupancy(t *testing.T) {
	for _, m := range []int{2, 4} {
		ex := NewWithOptions(trace.New(), Options{CPUs: m})
		var ths []*Thread
		for i := 0; i < m; i++ {
			ths = append(ths, ex.Spawn(fmt.Sprintf("w%d", i), 1, 0, func(tc *TC) {
				tc.Consume(tu(10))
			}))
		}
		if err := ex.Run(at(10)); err != nil {
			t.Fatal(err)
		}
		for _, th := range ths {
			if th.Consumed() != tu(10) {
				t.Errorf("m=%d: %s consumed %v, want full 10tu", m, th.Name(), th.Consumed())
			}
		}
		if err := ex.Trace().CheckCPUs(m); err != nil {
			t.Error(err)
		}
		if m > 1 {
			if err := ex.Trace().CheckCPUs(m - 1); err == nil {
				t.Errorf("m=%d: schedule fits on %d CPUs: nothing ran in parallel", m, m-1)
			}
		}
		ex.Shutdown()
	}
}

// TestSMPPartitionedIsolation pins the partitioned policy: threads pinned
// to different CPUs never share one, and a CPU-0 overload cannot steal
// time from CPU 1.
func TestSMPPartitionedIsolation(t *testing.T) {
	ex := NewWithOptions(trace.New(), Options{CPUs: 2, Migration: Partitioned})
	hog := ex.SpawnOn("hog", 9, 0, 0, func(tc *TC) { tc.Consume(tu(100)) })
	quiet := ex.SpawnOn("quiet", 1, 0, 1, func(tc *TC) { tc.Consume(tu(10)) })
	if err := ex.Run(at(20)); err != nil {
		t.Fatal(err)
	}
	if hog.Consumed() != tu(20) {
		t.Errorf("hog consumed %v, want the whole 20tu window", hog.Consumed())
	}
	if quiet.Consumed() != tu(10) || !quiet.Done() {
		t.Errorf("quiet consumed %v done=%v: partition not isolated from the CPU-0 hog",
			quiet.Consumed(), quiet.Done())
	}
	if ex.Migrations() != 0 {
		t.Errorf("partitioned run migrated %d times", ex.Migrations())
	}
	ex.Shutdown()
}

// TestSMPMigrationCostCharged pins the migration accounting: under Global
// with a migration cost, a preempted thread resuming on another CPU pays
// the penalty, visible as extra consumed-time demand.
func TestSMPMigrationCostCharged(t *testing.T) {
	run := func(cost rtime.Duration) (*Exec, *Thread) {
		ex := NewWithOptions(trace.New(), Options{CPUs: 2, Migration: Global, MigrationCost: cost})
		// The victim starts alone on CPU 0; two simultaneous higher-priority
		// bursts displace it, with the long burst (earlier spawn order)
		// landing on CPU 0. When the short burst finishes, the victim
		// resumes mid-consume on CPU 1 — a migration.
		victim := ex.Spawn("victim", 1, 0, func(tc *TC) { tc.Consume(tu(12)) })
		ex.Spawn("burst-long", 5, at(1), func(tc *TC) { tc.Consume(tu(4)) })
		ex.Spawn("burst-short", 5, at(1), func(tc *TC) { tc.Consume(tu(2)) })
		if err := ex.Run(at(40)); err != nil {
			t.Fatal(err)
		}
		return ex, victim
	}
	free, fv := run(0)
	paid, pv := run(tu(1))
	if free.Migrations() == 0 {
		t.Fatal("victim never migrated: scenario does not exercise migration")
	}
	if fv.Migrations() == 0 {
		t.Error("per-thread migration counter stayed zero")
	}
	if !pv.Done() || !fv.Done() {
		t.Fatalf("victim did not finish (free done=%v, paid done=%v)", fv.Done(), pv.Done())
	}
	if pv.Consumed() <= fv.Consumed() {
		t.Errorf("migration cost not charged: paid consumed %v vs free %v",
			pv.Consumed(), fv.Consumed())
	}
	free.Shutdown()
	paid.Shutdown()
}

// TestSMPAffinityValidation pins the spawn-time affinity check.
func TestSMPAffinityValidation(t *testing.T) {
	ex := NewWithOptions(nil, Options{CPUs: 2})
	defer ex.Shutdown()
	for _, cpu := range []int{-2, 2, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("affinity %d accepted on a 2-CPU executive", cpu)
				}
			}()
			ex.SpawnOn("bad", 1, 0, cpu, func(tc *TC) {})
		}()
	}
}
