// Package exec is a deterministic virtual-time executive: it runs goroutines
// as preemptive fixed-priority threads over a simulated clock.
//
// This is the substrate that replaces the paper's execution platform (the
// RTSJ reference implementation on a real-time Linux kernel). Go's garbage
// collector and goroutine scheduler preclude faithful hard real-time
// behaviour on the wall clock, so instead the executive virtualizes time:
// threads declare CPU demand with Consume, and the kernel advances a virtual
// clock, preempting and interleaving exactly as a uniprocessor
// fixed-priority scheduler would. Everything the paper's measurements depend
// on — preemption by higher-priority timer threads, asynchronous
// interruption of a budgeted section (Timed/AIE), wall-clock capacity
// accounting — is reproduced exactly and deterministically.
//
// Mechanics: thread bodies are goroutines, but exactly one runs at a time;
// code between kernel calls executes in zero virtual time, and virtual time
// only advances while a thread is inside Consume or the processor is idle.
//
// # Kernel selection
//
// Two kernels implement the scheduling contract behind one API:
//
//   - DirectKernel (the default): channel-free. The scheduling loop runs
//     inline in whichever goroutine currently holds the virtual CPU, so
//     consecutive same-thread Consume/advance/sleep steps never leave the
//     goroutine, and a real parked-goroutine handoff (mutex + condition
//     variable, one futex wake per switch) happens only when a *different*
//     thread must run. The ready queue and timer queue are binary heaps.
//
//   - ChannelKernel: the original two-channel rendezvous (kernel goroutine
//     resumes a thread, thread sends its next request back), with linear
//     ready/timer scans. It is kept as the reference implementation
//     (unchanged except one deliberate fix noted in kernel_channel.go:
//     cancelled timers never fire); differential tests assert both kernels
//     produce trace-for-trace identical schedules.
//
// Use New for the default direct kernel, NewKernel to pick explicitly, and
// NewWithOptions for full configuration. There is no reason to run
// ChannelKernel outside differential tests.
//
// # Trace recording
//
// The executive records into a trace.Sink. Passing *trace.Trace accumulates
// a full schedule recording; passing nil (or trace.Nop) records nothing —
// the metrics-only fast path used by the table experiments, which skips the
// per-slice segment append entirely.
//
// # Pooled workers
//
// Orthogonally to the kernel choice, Options.MaxGoroutines multiplexes
// thread bodies over a bounded pool of worker goroutines (pool.go) instead
// of dedicating one goroutine per thread, so a system with tens of
// thousands of mostly run-to-completion threads needs only a handful of
// OS-level goroutines. Scheduling decisions are identical in both modes.
//
// # Activation-driven periodic entities
//
// SpawnPeriodic expresses a periodic entity as an activation body dispatched
// once per release (activation.go) instead of a long-lived loop parked in a
// sleep between releases. The body returning is the release boundary:
// overruns skip (and count) missed releases, exactly like the RTSJ's
// WaitForNextPeriod without a miss handler. Between releases the entity
// owns no goroutine at all, which matters for periodic-heavy workloads:
// looping bodies pin one goroutine (or pool worker) per entity for the
// whole run, while activations hold the goroutine count at the pool size.
// Schedules are identical in both formulations.
//
// # Choosing a configuration
//
//   - Default (per-thread, direct kernel): small systems, simplest
//     debugging — every thread is a parked goroutine with a full stack.
//   - Pooled (Options.MaxGoroutines > 0): many mostly run-to-completion
//     threads (sporadic job floods); goroutine count bounded by preemption
//     depth.
//   - Pooled + SpawnPeriodic for periodic load: many long-running periodic
//     entities; removes the last per-entity goroutine.
//
// Every configuration is differential-tested to produce identical
// schedules, so the choice is purely a resource/performance trade.
package exec
