package exec

import (
	"testing"

	"rtsj/internal/obs"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// statsScenario exercises every hook family: a preemption, periodic
// dispatches with a timer queue, and (with MaxGoroutines set) pool churn.
func statsScenario(ex *Exec) {
	ex.Spawn("lo", 1, 0, func(tc *TC) { tc.Consume(rtime.TUs(6)) })
	ex.Spawn("hi", 2, rtime.AtTU(2), func(tc *TC) { tc.Consume(rtime.TUs(2)) })
	ex.SpawnPeriodic("p", 3, ActivationSpec{Start: rtime.AtTU(1), Period: rtime.TUs(5)}, func(tc *TC) {
		tc.Consume(rtime.TUs(1))
	})
}

func runStatsScenario(t *testing.T, opts Options) (*trace.Trace, *Exec) {
	t.Helper()
	ex := NewWithOptions(trace.New(), opts)
	statsScenario(ex)
	if err := ex.Run(rtime.AtTU(20)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	return ex.Trace(), ex
}

// Enabling stats must not perturb the schedule: the trace with stats on
// is segment-for-segment identical to the trace without, on both kernels.
func TestStatsDoNotPerturbSchedule(t *testing.T) {
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		base, _ := runStatsScenario(t, Options{Kernel: kind})
		reg := obs.NewRegistry()
		withStats, _ := runStatsScenario(t, Options{Kernel: kind, Stats: NewStats(reg)})
		if len(base.Segments) != len(withStats.Segments) {
			t.Fatalf("%v kernel: segment counts differ: %d vs %d", kind, len(base.Segments), len(withStats.Segments))
		}
		for i := range base.Segments {
			if base.Segments[i] != withStats.Segments[i] {
				t.Fatalf("%v kernel: segment %d differs: %+v vs %+v", kind, i, base.Segments[i], withStats.Segments[i])
			}
		}
		for i := range base.Events {
			if base.Events[i] != withStats.Events[i] {
				t.Fatalf("%v kernel: event %d differs: %+v vs %+v", kind, i, base.Events[i], withStats.Events[i])
			}
		}
	}
}

// The hooks must actually count: a workload with a preemption, periodic
// dispatches and timers leaves nonzero instruments behind.
func TestStatsCountKernelWork(t *testing.T) {
	reg := obs.NewRegistry()
	runStatsScenario(t, Options{Stats: NewStats(reg)})
	m := reg.Map()
	for _, name := range []string{"exec.context_switches", "exec.preemptions", "exec.dispatches", "exec.timer_heap_max", "exec.ready_max"} {
		if m[name] <= 0 {
			t.Errorf("%s = %d, want > 0 (all: %v)", name, m[name], m)
		}
	}
}

// Pooled mode's spawn counter agrees with the executive's own accounting,
// and queued starts raise the queue high-water mark.
func TestStatsPoolCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ex := NewWithOptions(nil, Options{MaxGoroutines: 1, Stats: NewStats(reg)})
	for i := 0; i < 4; i++ {
		ex.Spawn("t", 1, 0, func(tc *TC) { tc.Consume(rtime.TUs(1)) })
	}
	if err := ex.Run(rtime.AtTU(10)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	m := reg.Map()
	if got, want := m["exec.pool_spawns"], int64(ex.PoolSpawned()); got != want {
		t.Errorf("pool_spawns = %d, PoolSpawned = %d", got, want)
	}
	if m["exec.pool_queue_max"] <= 0 {
		t.Errorf("pool_queue_max = %d, want > 0", m["exec.pool_queue_max"])
	}
}

// SMP runs record per-CPU segments through the CPUSink path and count
// migrations in the registry identically to the executive's tally.
func TestStatsSMPMigrationsAndCPUSegments(t *testing.T) {
	reg := obs.NewRegistry()
	ex := NewWithOptions(trace.New(), Options{CPUs: 2, Stats: NewStats(reg)})
	ex.Spawn("a", 2, 0, func(tc *TC) { tc.Consume(rtime.TUs(4)) })
	ex.Spawn("b", 2, 0, func(tc *TC) { tc.Consume(rtime.TUs(4)) })
	ex.Spawn("c", 1, 0, func(tc *TC) { tc.Consume(rtime.TUs(4)) })
	if err := ex.Run(rtime.AtTU(20)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	if got, want := reg.Map()["exec.migrations"], int64(ex.Migrations()); got != want {
		t.Errorf("exec.migrations = %d, ex.Migrations() = %d", got, want)
	}
	maxCPU := 0
	for _, s := range ex.Trace().Segments {
		if s.CPU > maxCPU {
			maxCPU = s.CPU
		}
	}
	if maxCPU != 1 {
		t.Errorf("max segment CPU = %d, want 1 (two CPUs busy)", maxCPU)
	}
}
