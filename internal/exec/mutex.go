package exec

import "fmt"

// Mutex is a virtual-time mutual exclusion lock with optional priority
// inheritance, the protocol RTSJ mandates by default for synchronized
// monitors (MonitorControl = PriorityInheritance). Waiters are granted the
// lock in priority order (FIFO within a priority), and while a thread holds
// a contended lock its effective priority is raised to the highest waiting
// priority — transitively across chains of locks — bounding priority
// inversion.
type Mutex struct {
	name    string
	inherit bool
	owner   *Thread
	waiters []*Thread
}

// NewMutex creates a priority-inheritance mutex.
func NewMutex(name string) *Mutex { return &Mutex{name: name, inherit: true} }

// NewMutexNoInherit creates a mutex *without* priority inheritance, to
// reproduce unbounded priority inversion (see the pathfinder example).
func NewMutexNoInherit(name string) *Mutex { return &Mutex{name: name} }

// Owner returns the current holder (nil when free).
func (m *Mutex) Owner() *Thread { return m.owner }

// effPrio is a thread's scheduling priority including inheritance.
func (th *Thread) effPrio() int {
	if th.boost > th.prio {
		return th.boost
	}
	return th.prio
}

// recomputeBoost recalculates a thread's inherited boost from the waiters
// of every contended lock it holds, and propagates the change up the chain
// of locks the thread itself may be blocked on. A boost change re-keys the
// thread in the direct kernel's ready heap.
func recomputeBoost(th *Thread) {
	boost := th.prio
	for _, m := range th.held {
		if !m.inherit {
			continue
		}
		for _, w := range m.waiters {
			if p := w.effPrio(); p > boost {
				boost = p
			}
		}
	}
	if boost == th.boost {
		return
	}
	th.boost = boost
	if th.ex.kind == DirectKernel && th.heapIdx >= 0 {
		th.ex.readyQ[th.domain].fix(th.heapIdx)
	}
	if th.waitingOn != nil && th.waitingOn.owner != nil {
		recomputeBoost(th.waitingOn.owner)
	}
}

// Lock acquires m, blocking in priority order while it is held elsewhere.
func (tc *TC) Lock(m *Mutex) {
	th := tc.th
	if m.owner == th {
		panic(fmt.Sprintf("exec: recursive lock of %s by %s", m.name, th.name))
	}
	if m.owner == nil {
		m.owner = th
		th.held = append(th.held, m)
		return
	}
	m.waiters = append(m.waiters, th)
	th.waitingOn = m
	if m.inherit {
		recomputeBoost(m.owner)
	}
	// Suspend until Unlock hands us the lock.
	tc.kernelCall(request{th: th, kind: reqWait})
	th.waitingOn = nil
}

// Unlock releases m, handing it to the highest-priority waiter (FIFO within
// a priority level).
func (tc *TC) Unlock(m *Mutex) {
	th := tc.th
	if m.owner != th {
		panic(fmt.Sprintf("exec: %s unlocks %s held by someone else", th.name, m.name))
	}
	for i, h := range th.held {
		if h == m {
			th.held = append(th.held[:i], th.held[i+1:]...)
			break
		}
	}
	if m.inherit {
		recomputeBoost(th) // drop the boost this lock conferred
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	best := 0
	for i, w := range m.waiters {
		if w.effPrio() > m.waiters[best].effPrio() {
			best = i
		}
	}
	next := m.waiters[best]
	m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
	m.owner = next
	next.held = append(next.held, m)
	if m.inherit {
		recomputeBoost(next)
	}
	th.ex.makeReady(next)
}

// WithLock runs fn holding m.
func (tc *TC) WithLock(m *Mutex, fn func()) {
	tc.Lock(m)
	defer tc.Unlock(m)
	fn()
}
