package exec

import (
	"fmt"

	"rtsj/internal/rtime"
)

// TC is the thread context handed to a thread body. All methods must be
// called from that thread's goroutine only; the executive serializes thread
// execution, so no further synchronization is needed.
type TC struct {
	th *Thread
}

// Exec returns the owning executive.
func (tc *TC) Exec() *Exec { return tc.th.ex }

// Thread returns the underlying thread.
func (tc *TC) Thread() *Thread { return tc.th }

// Now returns the current virtual time.
func (tc *TC) Now() rtime.Time { return tc.th.ex.now }

// SetLabel sets the label attached to subsequent trace segments, e.g. the
// name of the handler a server thread is currently serving.
func (tc *TC) SetLabel(label string) { tc.th.label = label }

// kernelCall submits a kernel request and returns once the scheduler picks
// this thread to run user code again. On the direct kernel the scheduling
// happens inline in this goroutine (often without parking at all); on the
// channel kernel it is a rendezvous with the central kernel loop.
func (tc *TC) kernelCall(req request) {
	if tc.th.ex.kind == ChannelKernel {
		tc.channelCall(req)
		return
	}
	tc.directCall(req)
}

// Consume models d units of CPU demand. The thread may be preempted and
// resumed arbitrarily; Consume returns once the full demand was scheduled.
// Inside a WithBudget section, Consume is the interruption point: if the
// budget expires mid-consume, the section unwinds (the Go analogue of
// RTSJ's AsynchronouslyInterruptedException).
func (tc *TC) Consume(d rtime.Duration) {
	th := tc.th
	if d < 0 {
		panic(fmt.Sprintf("exec: negative consume %v", d))
	}
	if th.inBudget && th.pendingIntr && !th.intrDelivered {
		// The budget expired between consumes; fire on entry.
		panic(aieSentinel{})
	}
	if d == 0 {
		return
	}
	tc.kernelCall(request{th: th, kind: reqConsume, amount: d})
	if th.intrDelivered {
		th.intrDelivered = false
		panic(aieSentinel{})
	}
}

// SleepUntil suspends the thread until instant t (no-op if t is not in the
// future).
func (tc *TC) SleepUntil(t rtime.Time) {
	tc.kernelCall(request{th: tc.th, kind: reqSleep, until: t})
}

// Sleep suspends the thread for duration d.
func (tc *TC) Sleep(d rtime.Duration) { tc.SleepUntil(tc.Now().Add(d)) }

// Wait blocks the thread on q until another thread notifies it.
func (tc *TC) Wait(q *WaitQueue) {
	tc.kernelCall(request{th: tc.th, kind: reqWait, queue: q})
}

// NotifyOne wakes the longest-waiting thread on q, if any.
func (tc *TC) NotifyOne(q *WaitQueue) { tc.th.ex.NotifyOne(q) }

// NotifyAll wakes every thread waiting on q.
func (tc *TC) NotifyAll(q *WaitQueue) { tc.th.ex.NotifyAll(q) }

// NotifyOne wakes the longest-waiting thread on q. Callable from kernel
// timer functions and setup code as well as (via TC) thread bodies.
func (ex *Exec) NotifyOne(q *WaitQueue) {
	if len(q.waiters) == 0 {
		return
	}
	th := q.waiters[0]
	q.waiters = q.waiters[1:]
	ex.makeReady(th)
}

// NotifyAll wakes every thread waiting on q.
func (ex *Exec) NotifyAll(q *WaitQueue) {
	for _, th := range q.waiters {
		ex.makeReady(th)
	}
	q.waiters = q.waiters[:0]
}

// WithBudget runs fn under a virtual-time budget, the analogue of RTSJ's
// Timed.doInterruptible: if fn does not complete within the budget, its
// current (or next) Consume unwinds and WithBudget returns true. The
// elapsed accounting is the caller's responsibility (use Now before/after).
//
// A zero or negative budget means the section has no time at all: the
// interrupt is pending from the start and fires at fn's first Consume,
// which unwinds before any CPU is consumed. (A section that never consumes
// still completes — Consume is the only interruption point.) This is
// pinned deterministically rather than depending on timer/ready ordering
// at the current instant.
func (tc *TC) WithBudget(budget rtime.Duration, fn func()) (interrupted bool) {
	th := tc.th
	if th.inBudget {
		panic("exec: nested WithBudget sections are not supported")
	}
	ex := th.ex
	th.inBudget = true
	th.pendingIntr = false
	th.intrDelivered = false
	cancel := func() {}
	if budget <= 0 {
		// An expired-on-entry budget needs no timer: mark the interrupt
		// pending so the first Consume unwinds immediately on both
		// kernels, independent of how same-instant timers interleave
		// with the ready queue.
		th.pendingIntr = true
	} else {
		cancel = ex.At(ex.now.Add(budget), func() { ex.interruptNow(th) })
	}
	defer func() {
		cancel()
		th.inBudget = false
		th.pendingIntr = false
		th.intrDelivered = false
		if r := recover(); r != nil {
			if _, ok := r.(aieSentinel); ok {
				interrupted = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}
