package exec

import (
	"fmt"

	"rtsj/internal/rtime"
)

// This file is the SMP generalization of the executive: M virtual CPUs
// behind the same deterministic virtual clock, shared by both kernels.
//
// Model. A *scheduling domain* is a set of CPUs sharing one ready queue:
// the Global policy has a single domain spanning every CPU, Partitioned
// has one single-CPU domain per CPU (threads are pinned by a static
// affinity map), and Clustered groups ClusterSize CPUs per domain. Each
// scheduling decision selects, per domain, the top-K ready threads (K =
// CPUs in the domain, ordered by effective priority desc, readySeq asc —
// the uniprocessor tie-break) and places them onto the domain's CPUs:
// a thread already occupying a CPU keeps it, a returning thread prefers
// the CPU it last ran on, and the remaining picks fill free CPUs in
// ascending CPU index, in pick order. Consume slices then advance every
// occupied CPU in lockstep to the next timer, horizon or earliest consume
// completion, emitting one trace segment per CPU per slice.
//
// Token and handoff. Virtual time is global, so zero-time steps (user code
// between kernel calls) still serialize under the single scheduling token
// — the per-CPU structure is the occupancy vector (cpuRun) plus each
// occupant's own park/wake condition variable, which is the PR-2
// mutex+cond protocol instantiated once per running thread. When several
// occupants are due a zero-time step at one instant they step in ascending
// CPU index order, which makes the schedule a pure function of the spec:
// the full tie-break order is (instant, CPU index, effective priority,
// readySeq — i.e. wake order, and ultimately spawn order).
//
// M=1 is not a separate implementation: one domain, one CPU, and every
// operation above reduces exactly to the uniprocessor loop (the top of the
// single ready heap occupies CPU 0, slices advance one segment at a time),
// so traces are byte-identical to the pre-SMP executive — pinned by
// TestSMPM1MatchesUniprocessor over the whole differential corpus.
//
// Migration accounting. When a thread is placed on a CPU other than the
// one it last occupied, the move is counted (Thread.Migrations,
// Exec.Migrations) and, if the thread is mid-consume, the configured
// Options.MigrationCost is added to its remaining demand — the cache-
// reload penalty of a real migration. Placement happens in kernel context
// on both kernels, so migration counts are part of the deterministic
// schedule.

// MigrationPolicy selects how ready threads map onto the virtual CPUs.
type MigrationPolicy int

const (
	// Global (the default) keeps one ready queue spanning every CPU: the
	// M highest-priority ready threads run, and threads migrate freely.
	Global MigrationPolicy = iota
	// Partitioned pins every thread to one CPU by a static affinity map
	// (SpawnOn, or spawn order modulo CPU count when unset); threads
	// never migrate, and each CPU schedules its partition independently.
	Partitioned
	// Clustered partitions the CPUs into clusters of Options.ClusterSize
	// and pins threads to a cluster by the same static map; threads
	// migrate freely inside their cluster but never across clusters.
	Clustered
)

// String returns the policy's short name.
func (p MigrationPolicy) String() string {
	switch p {
	case Partitioned:
		return "partitioned"
	case Clustered:
		return "clustered"
	default:
		return "global"
	}
}

// CPUs returns the number of virtual CPUs the executive schedules.
func (ex *Exec) CPUs() int { return ex.ncpu }

// Migration returns the executive's migration policy.
func (ex *Exec) Migration() MigrationPolicy { return ex.policy }

// Migrations returns the total number of cross-CPU thread migrations so
// far. Always 0 with one CPU or under Partitioned.
func (ex *Exec) Migrations() int { return ex.migrations }

// Affinity returns the CPU the thread was pinned to at spawn (SpawnOn /
// SpawnPeriodicOn), or -1 when no affinity was requested. Under the
// Partitioned and Clustered policies an unpinned thread is still mapped
// statically (spawn order modulo CPU count); under Global the affinity is
// recorded but does not constrain placement.
func (th *Thread) Affinity() int { return th.affinity }

// LastCPU returns the CPU the thread last occupied, or -1 if it has never
// been scheduled.
func (th *Thread) LastCPU() int { return th.lastCPU }

// Migrations returns how many times the thread resumed on a different CPU
// than the one it last occupied.
func (th *Thread) Migrations() int { return th.migrations }

// SpawnOn creates a thread like Spawn with an explicit CPU affinity.
// cpu must be a valid CPU index, or -1 for no affinity (Spawn's default).
// The affinity is the static placement input of the Partitioned and
// Clustered migration policies; the Global policy records it but
// schedules from one shared queue regardless.
func (ex *Exec) SpawnOn(name string, prio int, startAt rtime.Time, cpu int, body func(tc *TC)) *Thread {
	th := ex.newThread(name, prio, cpu, body)
	// In pooled mode the body is handed to a pool worker lazily, the first
	// time the scheduler actually runs the thread (see handoff/runChannel);
	// threads that never run never cost a goroutine.
	if !ex.pooled {
		th.started = true
		if ex.kind == ChannelKernel {
			go th.channelRun()
		} else {
			go th.directRun()
		}
	}
	ex.scheduleFirstRelease(th, startAt)
	return th
}

// domainFor maps a thread onto its scheduling domain from its requested
// affinity and spawn index (the static affinity map of the Partitioned
// and Clustered policies).
func (ex *Exec) domainFor(affinity, spawnIdx int) int {
	if ex.ncpu == 1 {
		return 0
	}
	cpu := affinity
	if cpu < 0 {
		cpu = spawnIdx % ex.ncpu
	}
	switch ex.policy {
	case Partitioned:
		return cpu
	case Clustered:
		return cpu / ex.clusterSize
	default:
		return 0
	}
}

// higherRank reports whether a dispatches before b: effective priority
// descending, then readySeq ascending (FIFO within a priority level by
// wake order). This is the one ordering both kernels and every queue
// implementation share.
func higherRank(a, b *Thread) bool {
	pa, pb := a.effPrio(), b.effPrio()
	if pa != pb {
		return pa > pb
	}
	return a.readySeq < b.readySeq
}

// assignCPUs recomputes the CPU occupancy vector (ex.cpuRun) from the
// ready queues: per domain, the top-K ready threads (K = CPUs in the
// domain) are selected and placed. It returns the number of occupied
// CPUs; zero means no thread is ready anywhere. Runs in kernel context
// under the scheduling token, on both kernels.
func (ex *Exec) assignCPUs() int {
	if ex.ncpu == 1 {
		// Uniprocessor fast path: the top of the single ready queue
		// occupies CPU 0 — the pre-SMP dispatch decision verbatim.
		var th *Thread
		if ex.kind == DirectKernel {
			th = ex.readyQ[0].peek()
		} else {
			th = ex.pickReady()
		}
		if ex.statsOn {
			if prev := ex.cpuRun[0]; prev != nil && prev != th && prev.state == stateReady && prev.needCPU > 0 {
				ex.stats.Preemptions.Inc()
			}
		}
		ex.cpuRun[0] = th
		if th == nil {
			return 0
		}
		th.lastCPU = 0
		return 1
	}
	occupied := 0
	for d := range ex.domains {
		picks := ex.pickTop(d, len(ex.domains[d]))
		occupied += ex.placeDomain(ex.domains[d], picks)
	}
	return occupied
}

// pickTop returns the k highest-ranked ready threads of domain d, in
// dispatch order, using the executive's scratch buffer. The direct kernel
// pops them off the domain heap and pushes them back; the channel kernel
// repeats its reference linear scan with exclusion — the two must agree,
// which the SMP differential tests pin.
func (ex *Exec) pickTop(d, k int) []*Thread {
	buf := ex.pickBuf[:0]
	if ex.kind == DirectKernel {
		h := &ex.readyQ[d]
		if k > len(h.a) {
			k = len(h.a)
		}
		for i := 0; i < k; i++ {
			buf = append(buf, h.pop())
		}
		for _, th := range buf {
			h.push(th)
		}
	} else {
		for len(buf) < k {
			var best *Thread
			for _, th := range ex.threads {
				if th.state != stateReady || th.domain != d || threadIn(buf, th) {
					continue
				}
				if best == nil || higherRank(th, best) {
					best = th
				}
			}
			if best == nil {
				break
			}
			buf = append(buf, best)
		}
	}
	ex.pickBuf = buf
	return buf
}

// threadIn reports whether th is already among the picked threads.
func threadIn(picks []*Thread, th *Thread) bool {
	for _, p := range picks {
		if p == th {
			return true
		}
	}
	return false
}

// placeDomain maps the picked threads of one domain onto its CPUs and
// returns how many CPUs end up occupied. Three passes, all deterministic:
// re-selected occupants keep their CPU, returning picks reclaim the CPU
// they last ran on when it is free, and the rest fill free CPUs in
// ascending CPU index in pick (priority) order — charging the migration
// cost when a mid-consume thread lands on a new CPU.
func (ex *Exec) placeDomain(cpus []int, picks []*Thread) int {
	occupied := 0
	for _, c := range cpus {
		prev := ex.cpuRun[c]
		ex.cpuRun[c] = nil
		if prev == nil {
			continue
		}
		for i, th := range picks {
			if th == prev {
				ex.cpuRun[c] = prev
				picks[i] = nil
				occupied++
				break
			}
		}
		if ex.statsOn && ex.cpuRun[c] == nil && prev.state == stateReady && prev.needCPU > 0 {
			ex.stats.Preemptions.Inc()
		}
	}
	for i, th := range picks {
		if th == nil || th.lastCPU < 0 {
			continue
		}
		for _, c := range cpus {
			if c == th.lastCPU && ex.cpuRun[c] == nil {
				ex.cpuRun[c] = th
				picks[i] = nil
				occupied++
				break
			}
		}
	}
	ci := 0
	for _, th := range picks {
		if th == nil {
			continue
		}
		for ex.cpuRun[cpus[ci]] != nil {
			ci++
		}
		c := cpus[ci]
		ex.cpuRun[c] = th
		occupied++
		if th.lastCPU >= 0 && th.lastCPU != c {
			th.migrations++
			ex.migrations++
			ex.stats.Migrations.Inc()
			if ex.migrateCost > 0 && th.needCPU > 0 {
				// The cache-reload penalty: a thread resuming a consume on
				// a new CPU owes extra demand. Zero-time placements (the
				// thread is between consumes) move for free.
				th.needCPU += ex.migrateCost
			}
		}
		th.lastCPU = c
	}
	return occupied
}

// zeroStepOccupant returns the occupant of the lowest-indexed CPU that is
// due a zero-time step (no pending consume), or nil when every occupied
// CPU is mid-consume. The ascending CPU index is part of the deterministic
// tie-break order.
func (ex *Exec) zeroStepOccupant() *Thread {
	for _, th := range ex.cpuRun {
		if th != nil && th.needCPU == 0 {
			return th
		}
	}
	return nil
}

// runSlices advances virtual time while every occupied CPU consumes,
// stopping at the next timer, the horizon, or the earliest consume
// completion (whichever comes first) so preemption can occur. One trace
// segment per occupied CPU is emitted per slice, in ascending CPU index
// order; all CPUs advance in lockstep on the shared virtual clock.
func (ex *Exec) runSlices(until rtime.Time) {
	stop := until
	if ev := ex.nextTimer(); ev != nil {
		stop = rtime.Min(stop, ev.at)
	}
	delta := stop.Sub(ex.now)
	for _, th := range ex.cpuRun {
		if th != nil && th.needCPU < delta {
			delta = th.needCPU
		}
	}
	if delta <= 0 {
		// A timer due exactly now; fire it on the next loop iteration.
		return
	}
	end := ex.now.Add(delta)
	for c, th := range ex.cpuRun {
		if th == nil {
			continue
		}
		if ex.cpuSink != nil {
			ex.cpuSink.RunOn(th.name, c, ex.now, end, th.label)
		} else {
			ex.sink.Run(th.name, ex.now, end, th.label)
		}
		th.needCPU -= delta
		th.consumed += delta
	}
	ex.now = end
}

// SetPriority changes the calling thread's base priority, the dynamic-
// priority hook job-level-fixed schedulers (EDF) build on. The change is a
// pure kernel-state mutation under the scheduling token — it re-keys the
// thread in its ready queue and re-evaluates priority-inheritance boosts —
// and takes scheduling effect at the thread's next kernel call, identically
// on both kernels.
func (tc *TC) SetPriority(p int) { tc.th.ex.setBasePrio(tc.th, p) }

// setBasePrio rebases th's priority in kernel context. recomputeBoost
// re-derives the inheritance boost from the new base and re-keys the
// thread in the direct kernel's ready heap; when the boost is unchanged
// the effective priority is unchanged too (it is max(base, boost) and the
// boost never drops below the base), so no re-key is needed.
func (ex *Exec) setBasePrio(th *Thread, p int) {
	if p == th.prio {
		return
	}
	th.prio = p
	recomputeBoost(th)
}

// pickReadyZeroCPUDomain returns the highest-ranked ready thread of
// domain d that is not mid-consume (horizon drain). Threads mid-consume
// are popped aside and re-pushed; the returned thread stays in the heap.
func (ex *Exec) pickReadyZeroCPUDomain(d int) *Thread {
	h := &ex.readyQ[d]
	var stash []*Thread
	var found *Thread
	for {
		th := h.peek()
		if th == nil {
			break
		}
		if th.needCPU == 0 {
			found = th
			break
		}
		stash = append(stash, h.pop())
	}
	for _, th := range stash {
		h.push(th)
	}
	return found
}

// panicBadCPU reports an out-of-range affinity request.
func (ex *Exec) panicBadCPU(name string, cpu int) {
	panic(fmt.Sprintf("exec: thread %s pinned to CPU %d of %d (want 0..%d, or -1 for none)",
		name, cpu, ex.ncpu, ex.ncpu-1))
}
