package exec

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func tu(v float64) rtime.Duration { return rtime.TUs(v) }
func at(v float64) rtime.Time     { return rtime.AtTU(v) }

func runExec(t *testing.T, horizon float64, setup func(ex *Exec)) *trace.Trace {
	t.Helper()
	ex := New(trace.New())
	setup(ex)
	if err := ex.Run(at(horizon)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	if err := ex.Trace().CheckSingleCPU(); err != nil {
		t.Fatal(err)
	}
	return ex.Trace()
}

func TestSingleThreadConsume(t *testing.T) {
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("a", 1, 0, func(tc *TC) {
			tc.Consume(tu(3))
		})
	})
	segs := tr.SegmentsOf("a")
	if len(segs) != 1 || segs[0].Start != 0 || segs[0].End != at(3) {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestPriorityPreemption(t *testing.T) {
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("lo", 1, 0, func(tc *TC) { tc.Consume(tu(6)) })
		ex.Spawn("hi", 2, at(2), func(tc *TC) { tc.Consume(tu(2)) })
	})
	wantLo := []struct{ s, e float64 }{{0, 2}, {4, 8}}
	segs := tr.SegmentsOf("lo")
	if len(segs) != 2 {
		t.Fatalf("lo segments = %+v", segs)
	}
	for i, w := range wantLo {
		if segs[i].Start != at(w.s) || segs[i].End != at(w.e) {
			t.Errorf("lo seg %d = [%v,%v), want [%v,%v)", i, segs[i].Start.TUs(), segs[i].End.TUs(), w.s, w.e)
		}
	}
	hi := tr.SegmentsOf("hi")
	if len(hi) != 1 || hi[0].Start != at(2) || hi[0].End != at(4) {
		t.Fatalf("hi segments = %+v", hi)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("a", 1, 0, func(tc *TC) { tc.Consume(tu(2)) })
		ex.Spawn("b", 1, 0, func(tc *TC) { tc.Consume(tu(2)) })
	})
	a, b := tr.SegmentsOf("a"), tr.SegmentsOf("b")
	if a[0].Start != 0 || b[0].Start != at(2) {
		t.Fatalf("a=%+v b=%+v", a, b)
	}
}

func TestSleepAndPeriodicPattern(t *testing.T) {
	tr := runExec(t, 12, func(ex *Exec) {
		ex.Spawn("p", 1, 0, func(tc *TC) {
			period := tu(4)
			next := rtime.Time(0)
			for i := 0; i < 3; i++ {
				tc.Consume(tu(1))
				next = next.Add(period)
				tc.SleepUntil(next)
			}
		})
	})
	segs := tr.SegmentsOf("p")
	if len(segs) != 3 {
		t.Fatalf("segments = %+v", segs)
	}
	for i, want := range []float64{0, 4, 8} {
		if segs[i].Start != at(want) {
			t.Errorf("activation %d at %v, want %v", i, segs[i].Start.TUs(), want)
		}
	}
}

func TestWaitNotify(t *testing.T) {
	q := NewWaitQueue("q")
	var wokenAt rtime.Time
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("waiter", 2, 0, func(tc *TC) {
			tc.Wait(q)
			wokenAt = tc.Now()
			tc.Consume(tu(1))
		})
		ex.Spawn("notifier", 1, 0, func(tc *TC) {
			tc.Consume(tu(3))
			tc.NotifyAll(q)
			tc.Consume(tu(1))
		})
	})
	if wokenAt != at(3) {
		t.Fatalf("woken at %v, want 3", wokenAt.TUs())
	}
	// The woken waiter (higher priority) preempts the notifier immediately.
	w := tr.SegmentsOf("waiter")
	if len(w) != 1 || w[0].Start != at(3) {
		t.Fatalf("waiter segments = %+v", w)
	}
	n := tr.SegmentsOf("notifier")
	if len(n) != 2 || n[1].Start != at(4) || n[1].End != at(5) {
		t.Fatalf("notifier segments = %+v", n)
	}
}

func TestNotifyOneFIFO(t *testing.T) {
	q := NewWaitQueue("q")
	var order []string
	runExec(t, 10, func(ex *Exec) {
		for _, name := range []string{"w1", "w2"} {
			name := name
			ex.Spawn(name, 2, 0, func(tc *TC) {
				tc.Wait(q)
				order = append(order, name)
			})
		}
		ex.Spawn("n", 1, 0, func(tc *TC) {
			tc.Consume(tu(1))
			tc.NotifyOne(q)
			tc.Consume(tu(1))
			tc.NotifyOne(q)
		})
	})
	if len(order) != 2 || order[0] != "w1" || order[1] != "w2" {
		t.Fatalf("order = %v", order)
	}
}

func TestWithBudgetInterruptsLongWork(t *testing.T) {
	var interrupted bool
	var elapsed rtime.Duration
	runExec(t, 20, func(ex *Exec) {
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			start := tc.Now()
			interrupted = tc.WithBudget(tu(2), func() {
				tc.Consume(tu(5))
			})
			elapsed = tc.Now().Sub(start)
		})
	})
	if !interrupted {
		t.Fatal("expected interruption")
	}
	if elapsed != tu(2) {
		t.Fatalf("elapsed = %v, want 2tu", elapsed)
	}
}

func TestWithBudgetCompletesShortWork(t *testing.T) {
	var interrupted bool
	runExec(t, 20, func(ex *Exec) {
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			interrupted = tc.WithBudget(tu(5), func() {
				tc.Consume(tu(2))
				tc.Consume(tu(2))
			})
		})
	})
	if interrupted {
		t.Fatal("work within budget must not be interrupted")
	}
}

func TestWithBudgetExactBoundaryCompletes(t *testing.T) {
	var interrupted bool
	runExec(t, 20, func(ex *Exec) {
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			interrupted = tc.WithBudget(tu(3), func() { tc.Consume(tu(3)) })
		})
	})
	if interrupted {
		t.Fatal("work finishing exactly at the budget completes")
	}
}

func TestWithBudgetPendingBetweenConsumes(t *testing.T) {
	// Budget expires during zero-time code between two consumes: the next
	// consume must unwind immediately.
	var interrupted bool
	var secondStarted bool
	runExec(t, 20, func(ex *Exec) {
		hp := NewWaitQueue("hp")
		ex.Spawn("intruder", 5, at(1), func(tc *TC) {
			// Higher-priority thread eats wall time inside the budget
			// window, so the budgeted section's own work is not done when
			// the budget expires.
			tc.Consume(tu(3))
			tc.NotifyAll(hp)
		})
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			interrupted = tc.WithBudget(tu(2), func() {
				tc.Consume(tu(1)) // finishes at wall time 4 (preempted 3tu)
				secondStarted = true
				tc.Consume(tu(1))
			})
		})
	})
	if !interrupted {
		t.Fatal("expected interruption")
	}
	if !secondStarted {
		// The first consume itself is interrupted at wall time 2.
		t.Log("interrupted during first consume (wall-clock budget), as designed")
	}
}

func TestBudgetIsWallClock(t *testing.T) {
	// The paper measures "the time passed in the run method" — wall
	// (virtual) time, not CPU time. A preemption inside the budget window
	// therefore eats the handler's budget. This is the mechanism behind
	// the non-zero interrupted ratios of Tables 3 and 5.
	var interrupted bool
	runExec(t, 20, func(ex *Exec) {
		ex.Spawn("timerd", 5, at(1), func(tc *TC) { tc.Consume(tu(1)) })
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			interrupted = tc.WithBudget(tu(3), func() {
				tc.Consume(tu(3)) // needs 3 CPU, but loses 1tu to timerd
			})
		})
	})
	if !interrupted {
		t.Fatal("budget must be consumed by preempting threads (wall-clock semantics)")
	}
}

func TestThreadErrorSurfaces(t *testing.T) {
	ex := New(nil)
	ex.Spawn("bad", 1, 0, func(tc *TC) {
		tc.Consume(tu(1))
		panic("boom")
	})
	err := ex.Run(at(10))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	ex.Shutdown()
}

func TestQuiescenceStopsEarly(t *testing.T) {
	ex := New(nil)
	ex.Spawn("a", 1, 0, func(tc *TC) { tc.Consume(tu(2)) })
	if err := ex.Run(at(1000)); err != nil {
		t.Fatal(err)
	}
	if ex.Now() != at(2) {
		t.Fatalf("now = %v, want 2 (quiescent)", ex.Now().TUs())
	}
	ex.Shutdown()
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ex := New(nil)
		q := NewWaitQueue("never")
		ex.Spawn("blocked", 1, 0, func(tc *TC) { tc.Wait(q) })
		ex.Spawn("sleeper", 1, 0, func(tc *TC) { tc.SleepUntil(at(1e6)) })
		ex.Spawn("never-started", 1, at(1e6), func(tc *TC) {})
		if err := ex.Run(at(5)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestDeterministicTraces(t *testing.T) {
	build := func() *trace.Trace {
		ex := New(trace.New())
		q := NewWaitQueue("q")
		ex.Spawn("t1", 3, 0, func(tc *TC) {
			for i := 0; i < 3; i++ {
				tc.Consume(tu(1))
				tc.Sleep(tu(2))
			}
		})
		ex.Spawn("t2", 2, 0, func(tc *TC) {
			tc.Consume(tu(4))
			tc.NotifyAll(q)
		})
		ex.Spawn("t3", 1, 0, func(tc *TC) {
			tc.Wait(q)
			tc.Consume(tu(2))
		})
		if err := ex.Run(at(30)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		return ex.Trace()
	}
	a, b := build(), build()
	ga := a.Gantt(trace.GanttOptions{})
	gb := b.Gantt(trace.GanttOptions{})
	if ga != gb {
		t.Fatalf("non-deterministic traces:\n%s\nvs\n%s", ga, gb)
	}
}

func TestKernelTimerAt(t *testing.T) {
	var fired []float64
	ex := New(nil)
	ex.At(at(3), func() { fired = append(fired, ex.Now().TUs()) })
	cancel := ex.At(at(4), func() { fired = append(fired, -1) })
	cancel()
	ex.At(at(5), func() { fired = append(fired, ex.Now().TUs()) })
	if err := ex.Run(at(10)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestConsumedAccounting(t *testing.T) {
	ex := New(nil)
	th := ex.Spawn("a", 1, 0, func(tc *TC) {
		tc.Consume(tu(2))
		tc.Sleep(tu(1))
		tc.Consume(tu(3))
	})
	if err := ex.Run(at(100)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	if got := th.Consumed(); got != tu(5) {
		t.Fatalf("consumed = %v, want 5tu", got)
	}
	if !th.Done() {
		t.Fatal("thread should be done")
	}
}

func TestSetLabelAppearsInTrace(t *testing.T) {
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			tc.SetLabel("h1")
			tc.Consume(tu(1))
			tc.SetLabel("h2")
			tc.Consume(tu(1))
		})
	})
	segs := tr.SegmentsOf("srv")
	if len(segs) != 2 || segs[0].Label != "h1" || segs[1].Label != "h2" {
		t.Fatalf("segments = %+v", segs)
	}
}

// Property: over random thread sets, the trace is a valid uniprocessor
// schedule, every thread's traced time equals its Consumed() accounting,
// and total traced time never exceeds the horizon.
func TestExecConservationProperty(t *testing.T) {
	rng := newDetRand(99)
	for trial := 0; trial < 50; trial++ {
		ex := New(trace.New())
		type spec struct {
			th    *Thread
			total rtime.Duration
		}
		var specs []*spec
		n := 1 + rng.next()%5
		for i := 0; i < n; i++ {
			bursts := 1 + rng.next()%4
			var total rtime.Duration
			var plan []rtime.Duration
			for k := 0; k < bursts; k++ {
				d := rtime.Duration(1+rng.next()%30) * rtime.TU / 10
				plan = append(plan, d)
				total += d
			}
			sleep := rtime.Duration(rng.next()%20) * rtime.TU / 10
			s := &spec{total: total}
			s.th = ex.Spawn("t"+string(rune('1'+i)), 1+rng.next()%3,
				rtime.Time(rtime.Duration(rng.next()%10)*rtime.TU), func(tc *TC) {
					for _, d := range plan {
						tc.Consume(d)
						tc.Sleep(sleep)
					}
				})
			specs = append(specs, s)
		}
		horizon := at(200)
		if err := ex.Run(horizon); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		tr := ex.Trace()
		if err := tr.CheckSingleCPU(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.TotalBusy() > rtime.Duration(horizon) {
			t.Fatalf("trial %d: busy %v beyond horizon", trial, tr.TotalBusy())
		}
		for _, s := range specs {
			if got := tr.BusyTime(s.th.Name()); got != s.th.Consumed() {
				t.Fatalf("trial %d: %s traced %v but accounted %v",
					trial, s.th.Name(), got, s.th.Consumed())
			}
			if s.th.Done() && s.th.Consumed() != s.total {
				t.Fatalf("trial %d: %s done with %v consumed, want %v",
					trial, s.th.Name(), s.th.Consumed(), s.total)
			}
		}
	}
}

// detRand is a tiny deterministic generator for the property test (the
// executive forbids wall-clock randomness by design).
type detRand struct{ s uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: seed} }

func (r *detRand) next() int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % (1 << 30))
}

func TestSpawnFromThread(t *testing.T) {
	tr := runExec(t, 10, func(ex *Exec) {
		ex.Spawn("parent", 1, 0, func(tc *TC) {
			tc.Consume(tu(1))
			tc.Exec().Spawn("child", 2, tc.Now(), func(tc2 *TC) {
				tc2.Consume(tu(1))
			})
			tc.Consume(tu(2))
		})
	})
	c := tr.SegmentsOf("child")
	if len(c) != 1 || c[0].Start != at(1) {
		t.Fatalf("child segments = %+v", c)
	}
	// Child (higher priority) preempted the parent immediately.
	p := tr.SegmentsOf("parent")
	if len(p) != 2 || p[1].Start != at(2) {
		t.Fatalf("parent segments = %+v", p)
	}
}
