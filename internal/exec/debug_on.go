//go:build debugchecks

package exec

import (
	"fmt"
	"sort"
)

// debugChecks enables the per-dispatch ready-queue invariant verification.
// See debug_off.go for the default build.
const debugChecks = true

// checkReadyHeap verifies, on every dispatch and for every scheduling
// domain, that the ready heap's index bookkeeping is consistent, that the
// heap property holds at every node, and that draining a copy yields a
// fully sorted dispatch order (the check that used to run as
// sort.SliceIsSorted on the hot path before it was gated behind the
// debugchecks build tag).
func (ex *Exec) checkReadyHeap() {
	for d := range ex.readyQ {
		ex.checkReadyHeapDomain(d)
	}
}

// checkReadyHeapDomain audits one domain's ready heap.
func (ex *Exec) checkReadyHeapDomain(d int) {
	h := &ex.readyQ[d]
	for i, th := range h.a {
		if th.heapIdx != i {
			panic(fmt.Sprintf("exec: ready heap index corrupt: %s at %d has heapIdx %d",
				th.name, i, th.heapIdx))
		}
		if th.state != stateReady {
			panic(fmt.Sprintf("exec: non-ready thread %s (state %d) in ready heap", th.name, th.state))
		}
		if th.domain != d {
			panic(fmt.Sprintf("exec: thread %s of domain %d in ready heap %d", th.name, th.domain, d))
		}
		if p := (i - 1) / 2; i > 0 && h.less(i, p) {
			panic(fmt.Sprintf("exec: ready heap property violated at %d (%s above %s)",
				i, h.a[p].name, th.name))
		}
	}
	// Full dispatch-order check: drain a copy of the heap by successive
	// pops (without touching the live heapIdx bookkeeping) and verify the
	// extraction order is totally sorted by (effPrio desc, readySeq asc).
	order := drainCopy(h)
	if !sort.SliceIsSorted(order, func(i, j int) bool {
		if pi, pj := order[i].effPrio(), order[j].effPrio(); pi != pj {
			return pi > pj
		}
		return order[i].readySeq < order[j].readySeq
	}) {
		panic("exec: ready heap pop order is not the sorted dispatch order")
	}
}

// drainCopy pops every thread off a copy of the heap array, using the same
// comparator but none of the index bookkeeping, and returns the pop order.
func drainCopy(h *readyHeap) []*Thread {
	a := make([]*Thread, len(h.a))
	copy(a, h.a)
	less := func(i, j int) bool {
		if pi, pj := a[i].effPrio(), a[j].effPrio(); pi != pj {
			return pi > pj
		}
		return a[i].readySeq < a[j].readySeq
	}
	var out []*Thread
	for n := len(a); n > 0; n = len(a) {
		out = append(out, a[0])
		a[0] = a[n-1]
		a = a[:n-1]
		n--
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && less(l, m) {
				m = l
			}
			if r < n && less(r, m) {
				m = r
			}
			if m == i {
				break
			}
			a[i], a[m] = a[m], a[i]
			i = m
		}
	}
	return out
}
