package exec

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// TestPooledBoundedGoroutines is the pooled executive's headline property:
// thousands of run-to-completion threads execute on a handful of worker
// goroutines. The peak worker count is bounded by the preemption depth
// (how many bodies are suspended mid-execution at once), not by the
// thread count.
func TestPooledBoundedGoroutines(t *testing.T) {
	const n = 2000
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		t.Run(kind.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			ex := NewWithOptions(nil, Options{Kernel: kind, MaxGoroutines: 8})
			rng := newDetRand(7)
			done := 0
			for i := 0; i < n; i++ {
				prio := 1 + rng.next()%4
				start := rtime.Time(rtime.Duration(rng.next()%5000) * rtime.TU / 10)
				cost := rtime.Duration(1+rng.next()%10) * rtime.TU / 10
				ex.Spawn(fmt.Sprintf("job%d", i), prio, start, func(tc *TC) {
					tc.Consume(cost)
					done++
				})
			}
			if err := ex.Run(at(2000)); err != nil {
				t.Fatal(err)
			}
			ex.Shutdown()
			if done != n {
				t.Fatalf("completed %d of %d jobs", done, n)
			}
			if peak := ex.PoolPeak(); peak > 8 {
				t.Errorf("pool peaked at %d workers, want <= MaxGoroutines (8)", peak)
			}
			// The process never carried anything close to one goroutine
			// per thread.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before+8 && time.Now().Before(deadline) {
				runtime.Gosched()
				time.Sleep(time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before+16 {
				t.Errorf("goroutines: before=%d after=%d (pool leaked)", before, after)
			}
		})
	}
}

// TestPooledShutdownReleasesGoroutines mirrors the per-thread shutdown
// test: killed mid-body threads, sleepers, and never-started threads (which
// in pooled mode never got a goroutine at all) must all be reaped.
func TestPooledShutdownReleasesGoroutines(t *testing.T) {
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		t.Run(kind.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			for i := 0; i < 20; i++ {
				ex := NewWithOptions(nil, Options{Kernel: kind, MaxGoroutines: 4})
				q := NewWaitQueue("never")
				ex.Spawn("blocked", 1, 0, func(tc *TC) { tc.Wait(q) })
				ex.Spawn("sleeper", 1, 0, func(tc *TC) { tc.SleepUntil(at(1e6)) })
				ex.Spawn("never-started", 1, at(1e6), func(tc *TC) {})
				if err := ex.Run(at(5)); err != nil {
					t.Fatal(err)
				}
				ex.Shutdown()
			}
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
				runtime.Gosched()
				time.Sleep(time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before+5 {
				t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
			}
		})
	}
}

// TestPooledOverCapAndRetire pins the resident-size semantics: when more
// bodies must be suspended mid-execution than MaxGoroutines, the pool grows
// past the cap (refusing would deadlock the executive) and retires back
// down as bodies finish.
func TestPooledOverCapAndRetire(t *testing.T) {
	ex := NewWithOptions(nil, Options{Kernel: DirectKernel, MaxGoroutines: 1})
	// A priority ladder: each thread is preempted mid-consume by the next,
	// so at time 5 all five bodies are live at once.
	for i := 0; i < 5; i++ {
		ex.Spawn(fmt.Sprintf("rung%d", i), 1+i, at(float64(i)), func(tc *TC) {
			tc.Consume(tu(10))
		})
	}
	if err := ex.Run(at(100)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	if peak := ex.PoolPeak(); peak != 5 {
		t.Errorf("pool peak = %d, want 5 (one per concurrently live body)", peak)
	}
}

// TestPooledBurstNoChurn pins the relaxed availability accounting: a
// serial burst of run-to-completion jobs (each finishing before the next
// starts) on a pool whose transient depth exceeded MaxGoroutines must
// reuse the over-cap worker when it is the only one available, instead of
// retiring it and respawning a fresh goroutine for every job.
func TestPooledBurstNoChurn(t *testing.T) {
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		t.Run(kind.String(), func(t *testing.T) {
			ex := NewWithOptions(nil, Options{Kernel: kind, MaxGoroutines: 1})
			// Phase 1: a priority ladder forces the pool two over its cap.
			for i := 0; i < 3; i++ {
				ex.Spawn(fmt.Sprintf("rung%d", i), 5+i, at(float64(i)), func(tc *TC) {
					tc.Consume(tu(5))
				})
			}
			// Phase 2: a serial burst after the ladder has drained.
			const burst = 50
			done := 0
			for i := 0; i < burst; i++ {
				ex.Spawn(fmt.Sprintf("b%d", i), 1, at(float64(40+i)), func(tc *TC) {
					tc.Consume(tu(0.5))
					done++
				})
			}
			if err := ex.Run(at(200)); err != nil {
				t.Fatal(err)
			}
			ex.Shutdown()
			if done != burst {
				t.Fatalf("completed %d of %d burst jobs", done, burst)
			}
			if peak, spawned := ex.PoolPeak(), ex.PoolSpawned(); spawned != peak {
				t.Errorf("spawned %d workers for peak %d: burst churned retire/respawn", spawned, peak)
			}
		})
	}
}

// TestPooledRetireConvergesToCap: after a transient over-cap episode, the
// pool drains back to MaxGoroutines (one retirement per finish) once
// enough bodies finish with another worker already available.
func TestPooledRetireConvergesToCap(t *testing.T) {
	ex := NewWithOptions(nil, Options{Kernel: DirectKernel, MaxGoroutines: 2})
	for i := 0; i < 6; i++ {
		ex.Spawn(fmt.Sprintf("rung%d", i), 1+i, at(float64(i)), func(tc *TC) {
			tc.Consume(tu(10))
		})
	}
	if err := ex.Run(at(100)); err != nil {
		t.Fatal(err)
	}
	if peak := ex.PoolPeak(); peak != 6 {
		t.Errorf("pool peak = %d, want 6", peak)
	}
	// All bodies finished; the pool must have shed its over-cap workers.
	p := &ex.pool
	p.mu.Lock()
	live := p.live
	p.mu.Unlock()
	if live > 2 {
		t.Errorf("pool kept %d live workers after quiescence, cap is 2", live)
	}
	ex.Shutdown()
}

// TestPooledAccountingDeterministic runs the same preemption-heavy
// workload repeatedly and requires identical pool metrics every time: the
// accounting happens only at synchronous scheduling points, so pool sizes
// are a pure function of the schedule.
func TestPooledAccountingDeterministic(t *testing.T) {
	run := func() (int, int) {
		ex := NewWithOptions(nil, Options{Kernel: DirectKernel, MaxGoroutines: 2})
		rng := newDetRand(11)
		for i := 0; i < 300; i++ {
			prio := 1 + rng.next()%5
			start := rtime.Time(rtime.Duration(rng.next()%600) * rtime.TU / 10)
			cost := rtime.Duration(1+rng.next()%20) * rtime.TU / 10
			ex.Spawn(fmt.Sprintf("j%d", i), prio, start, func(tc *TC) { tc.Consume(cost) })
		}
		if err := ex.Run(at(500)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		return ex.PoolPeak(), ex.PoolSpawned()
	}
	peak0, spawned0 := run()
	for i := 0; i < 5; i++ {
		if peak, spawned := run(); peak != peak0 || spawned != spawned0 {
			t.Fatalf("run %d: pool metrics drifted: peak %d/%d spawned %d/%d",
				i, peak, peak0, spawned, spawned0)
		}
	}
}

// TestPooledErrorSurfaces: a panicking body on a pool worker reports its
// error exactly like a dedicated goroutine would.
func TestPooledErrorSurfaces(t *testing.T) {
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		ex := NewWithOptions(nil, Options{Kernel: kind, MaxGoroutines: 2})
		ex.Spawn("ok", 2, 0, func(tc *TC) { tc.Consume(tu(1)) })
		ex.Spawn("bad", 1, 0, func(tc *TC) {
			tc.Consume(tu(1))
			panic("boom")
		})
		err := ex.Run(at(10))
		ex.Shutdown()
		if err == nil {
			t.Fatalf("%v pooled: panic not surfaced", kind)
		}
	}
}

// TestWithBudgetZeroAndNegative pins the defined semantics of a
// non-positive budget on every executive configuration: the section's
// first Consume unwinds before any CPU is consumed; a section that never
// consumes completes.
func TestWithBudgetZeroAndNegative(t *testing.T) {
	for _, cfg := range diffConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			type outcome struct {
				interrupted bool
				elapsed     rtime.Duration
				reached     bool
			}
			var zero, neg, noConsume outcome
			var afterConsumed rtime.Duration
			ex := NewWithOptions(trace.New(), cfg.opts)
			th := ex.Spawn("srv", 1, 0, func(tc *TC) {
				start := tc.Now()
				zero.interrupted = tc.WithBudget(0, func() {
					tc.Consume(tu(3))
					zero.reached = true
				})
				zero.elapsed = tc.Now().Sub(start)

				start = tc.Now()
				neg.interrupted = tc.WithBudget(tu(-2), func() {
					tc.Consume(tu(3))
					neg.reached = true
				})
				neg.elapsed = tc.Now().Sub(start)

				noConsume.interrupted = tc.WithBudget(0, func() {
					noConsume.reached = true // zero-time work: completes
				})

				// The thread is fully usable after the unwinds.
				tc.Consume(tu(2))
				afterConsumed = tc.Thread().Consumed()
			})
			if err := ex.Run(at(50)); err != nil {
				t.Fatal(err)
			}
			ex.Shutdown()
			for i, o := range []outcome{zero, neg} {
				if !o.interrupted {
					t.Errorf("case %d: non-positive budget must interrupt", i)
				}
				if o.reached {
					t.Errorf("case %d: code after the first Consume ran", i)
				}
				if o.elapsed != 0 {
					t.Errorf("case %d: elapsed = %v, want 0", i, o.elapsed)
				}
			}
			if noConsume.interrupted || !noConsume.reached {
				t.Errorf("consume-free section: interrupted=%v reached=%v, want completed",
					noConsume.interrupted, noConsume.reached)
			}
			if afterConsumed != tu(2) || th.Consumed() != tu(2) {
				t.Errorf("consumed = %v, want 2tu (budgeted consumes must not charge)", th.Consumed())
			}
		})
	}
}
