package exec

import "sync"

// workerPool multiplexes thread bodies over a bounded set of goroutines
// (Options.MaxGoroutines). It is shared by both kernels: only the body
// runner differs (runPooledDirect / runPooledChannel).
//
// Why a pool is possible at all: the executive is a uniprocessor — at any
// instant at most one thread executes user code, and the scheduler hands a
// brand-new thread to the pool only at that single point (the token owner
// in the direct kernel, the kernel loop in the channel kernel). A worker is
// therefore pinned only while "its" body is in progress (running, or parked
// mid-body at a kernel call); when the body returns, the worker is recycled
// for the next unstarted thread. For run-to-completion workloads the number
// of bodies simultaneously in progress — and hence the number of live
// workers — is bounded by the preemption depth, not by the thread count.
//
// Worker accounting is race-free by construction: a finishing body calls
// bodyFinished *before* the scheduling token moves on (before the direct
// kernel wakes the successor, before the channel kernel receives the
// terminate request), so when the scheduler next starts an unstarted
// thread, the just-freed worker is already counted available and is reused
// instead of spawning a fresh goroutine. The pool's peak size therefore
// equals the true peak of concurrently in-progress bodies.
//
// Resident-size semantics: maxResident is the number of workers kept alive
// once free. If a start arrives while every worker is pinned, a fresh
// worker is spawned regardless of the cap (refusing would deadlock the
// executive); a worker above the cap retires when its body finishes while
// another worker is already available — if it is the only candidate to
// serve an immediately following start, it is kept and reused instead
// (burst workloads would otherwise retire a worker and respawn one a
// moment later for every job). The pool therefore converges back to
// maxResident as bodies finish, one retirement per finish, rather than
// oscillating. All accounting happens at the two synchronous points
// (startThread, bodyFinished) under the scheduling token, so pool sizes
// are deterministic for a deterministic schedule.
//
// Fate plumbing: bodyFinished decides whether the finishing worker rejoins
// the pool or retires, and records the verdict in the worker's own
// workerFate struct (bound to the thread, under the pool mutex, for the
// duration of one body). The fate cannot live on the Thread itself: an
// activation entity's Thread is dispatched once per release, so a later
// release's bodyFinished on another worker would race with this worker's
// post-body read.
type workerPool struct {
	mu          sync.Mutex
	cond        sync.Cond
	queue       []*Thread // unstarted threads awaiting a worker; guarded by mu
	avail       int       // workers free to take from the queue (idle or finishing up); guarded by mu
	live        int       // all pool goroutines; guarded by mu
	peak        int       // high-water mark of live; guarded by mu
	spawned     int       // total goroutines ever created; guarded by mu
	maxResident int       // set once by init, immutable afterwards
	closed      bool      // guarded by mu
}

func (p *workerPool) init(maxResident int) {
	p.cond.L = &p.mu
	p.maxResident = maxResident
}

// peakWorkers returns the high-water mark of simultaneously live workers.
func (p *workerPool) peakWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// spawnedWorkers returns the total number of worker goroutines ever
// created.
func (p *workerPool) spawnedWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// startThread hands th's body to a worker: an available one if any,
// otherwise a freshly spawned goroutine.
func (ex *Exec) startThread(th *Thread) {
	p := &ex.pool
	p.mu.Lock()
	p.queue = append(p.queue, th)
	if ex.statsOn {
		ex.stats.PoolQueueMax.Max(int64(len(p.queue)))
	}
	if p.avail >= len(p.queue) {
		p.cond.Signal()
	} else {
		p.live++
		p.avail++
		p.spawned++
		if p.live > p.peak {
			p.peak = p.live
		}
		ex.stats.PoolSpawns.Inc()
		go ex.poolWorker()
	}
	p.mu.Unlock()
}

// workerFate is a pool worker's per-body verdict, written by bodyFinished
// (on the worker's own goroutine) and read by the worker after the body
// returns. Each dispatch gets a fresh zero value.
type workerFate struct {
	retire  bool // bodyFinished dropped this worker from live; exit now
	counted bool // bodyFinished already counted this worker in avail
}

// bodyFinished records that th's body returned and its worker is about to
// rejoin the pool — or retire, when the pool is over its resident size AND
// another worker is already available to serve an immediately following
// start. Keeping the only available worker (even over-cap) lets a burst's
// next thread reuse it instead of spawning a replacement; the pool still
// drains back to maxResident because each subsequent finish that does see
// an available worker retires one. Must be called in the worker's
// goroutine before the scheduling token is handed on (see the package
// comment for why that makes reuse race-free).
func (ex *Exec) bodyFinished(th *Thread) {
	p := &ex.pool
	p.mu.Lock()
	w := th.worker
	if p.live > p.maxResident && p.avail > 0 {
		p.live--
		w.retire = true
		ex.stats.PoolRetires.Inc()
		p.cond.Broadcast() // close() waits on live==0
	} else {
		p.avail++
		w.counted = true
	}
	p.mu.Unlock()
}

// close retires every worker and waits for them to exit, so Shutdown
// leaves no goroutines behind. Must be called after the kernel-specific
// shutdown has unwound all started thread bodies.
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	for p.live > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// poolWorker runs thread bodies until the pool closes or the worker is
// retired as over-cap. counted tracks whether this worker is currently
// included in p.avail. Each body dispatch binds a fresh fate struct to the
// thread (under the pool mutex); a body that never reaches bodyFinished —
// a thread killed during shutdown — leaves the zero fate, which makes the
// worker re-count itself and then observe the closed pool.
func (ex *Exec) poolWorker() {
	p := &ex.pool
	counted := true // startThread counted the spawn in avail
	// One fate struct per worker, reset and re-bound per dispatch: only
	// the worker currently running a body (and bodyFinished on its
	// goroutine) touches it, so reuse is race-free and keeps the dispatch
	// path allocation-free.
	var fate workerFate
	for {
		p.mu.Lock()
		if !counted {
			p.avail++
			counted = true
		}
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.avail--
			p.live--
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		th := p.queue[0]
		p.queue = p.queue[1:]
		p.avail--
		if len(p.queue) > 0 && p.avail > 0 {
			// Propagate the wakeup: with more queued starts and more
			// available workers, one Signal per enqueue is not enough once
			// the queue runs deeper than one (a woken worker may consume a
			// signal meant for a start that arrived while it was waking).
			p.cond.Signal()
		}
		fate = workerFate{}
		th.worker = &fate
		p.mu.Unlock()
		counted = false

		if ex.kind == ChannelKernel {
			th.runPooledChannel()
		} else {
			th.runPooledDirect()
		}

		if fate.retire {
			return // bodyFinished already dropped it from live
		}
		counted = fate.counted
	}
}
