package exec

import "sync"

// workerPool multiplexes thread bodies over a bounded set of goroutines
// (Options.MaxGoroutines). It is shared by both kernels: only the body
// runner differs (runPooledDirect / runPooledChannel).
//
// Why a pool is possible at all: the executive is a uniprocessor — at any
// instant at most one thread executes user code, and the scheduler hands a
// brand-new thread to the pool only at that single point (the token owner
// in the direct kernel, the kernel loop in the channel kernel). A worker is
// therefore pinned only while "its" body is in progress (running, or parked
// mid-body at a kernel call); when the body returns, the worker is recycled
// for the next unstarted thread. For run-to-completion workloads the number
// of bodies simultaneously in progress — and hence the number of live
// workers — is bounded by the preemption depth, not by the thread count.
//
// Worker accounting is race-free by construction: a finishing body calls
// bodyFinished *before* the scheduling token moves on (before the direct
// kernel wakes the successor, before the channel kernel receives the
// terminate request), so when the scheduler next starts an unstarted
// thread, the just-freed worker is already counted available and is reused
// instead of spawning a fresh goroutine. The pool's peak size therefore
// equals the true peak of concurrently in-progress bodies.
//
// Resident-size semantics: maxResident is the number of workers kept alive
// once free. If a start arrives while every worker is pinned, a fresh
// worker is spawned regardless of the cap (refusing would deadlock the
// executive); workers above the cap retire as soon as their body finishes.
type workerPool struct {
	mu          sync.Mutex
	cond        sync.Cond
	queue       []*Thread // unstarted threads awaiting a worker (length <= 1 in practice)
	avail       int       // workers free to take from the queue (idle or finishing up)
	live        int       // all pool goroutines
	peak        int       // high-water mark of live
	maxResident int
	closed      bool
}

func (p *workerPool) init(maxResident int) {
	p.cond.L = &p.mu
	p.maxResident = maxResident
}

// peakWorkers returns the high-water mark of simultaneously live workers.
func (p *workerPool) peakWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// startThread hands th's body to a worker: an available one if any,
// otherwise a freshly spawned goroutine.
func (ex *Exec) startThread(th *Thread) {
	p := &ex.pool
	p.mu.Lock()
	p.queue = append(p.queue, th)
	if p.avail >= len(p.queue) {
		p.cond.Signal()
	} else {
		p.live++
		p.avail++
		if p.live > p.peak {
			p.peak = p.live
		}
		go ex.poolWorker()
	}
	p.mu.Unlock()
}

// bodyFinished records that th's body returned and its worker is about to
// rejoin the pool — or retire, when the pool is over its resident size.
// Must be called in the worker's goroutine before the scheduling token is
// handed on (see the package comment for why that makes reuse race-free).
func (ex *Exec) bodyFinished(th *Thread) {
	p := &ex.pool
	p.mu.Lock()
	if p.live > p.maxResident {
		p.live--
		th.poolRetire = true
		p.cond.Broadcast() // close() waits on live==0
	} else {
		p.avail++
		th.poolCounted = true
	}
	p.mu.Unlock()
}

// close retires every worker and waits for them to exit, so Shutdown
// leaves no goroutines behind. Must be called after the kernel-specific
// shutdown has unwound all started thread bodies.
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	for p.live > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// poolWorker runs thread bodies until the pool closes or the worker is
// retired as over-cap. counted tracks whether this worker is currently
// included in p.avail.
func (ex *Exec) poolWorker() {
	p := &ex.pool
	counted := true // startThread counted the spawn in avail
	for {
		p.mu.Lock()
		if !counted {
			p.avail++
			counted = true
		}
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.avail--
			p.live--
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		th := p.queue[0]
		p.queue = p.queue[1:]
		p.avail--
		p.mu.Unlock()
		counted = false

		if ex.kind == ChannelKernel {
			th.runPooledChannel()
		} else {
			th.runPooledDirect()
		}

		if th.poolRetire {
			return // bodyFinished already dropped it from live
		}
		counted = th.poolCounted
	}
}
