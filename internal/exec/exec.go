// Package exec is a deterministic virtual-time executive: it runs goroutines
// as preemptive fixed-priority threads over a simulated clock.
//
// This is the substrate that replaces the paper's execution platform (the
// RTSJ reference implementation on a real-time Linux kernel). Go's garbage
// collector and goroutine scheduler preclude faithful hard real-time
// behaviour on the wall clock, so instead the executive virtualizes time:
// threads declare CPU demand with Consume, and the kernel advances a virtual
// clock, preempting and interleaving exactly as a uniprocessor
// fixed-priority scheduler would. Everything the paper's measurements depend
// on — preemption by higher-priority timer threads, asynchronous
// interruption of a budgeted section (Timed/AIE), wall-clock capacity
// accounting — is reproduced exactly and deterministically.
//
// Mechanics: thread bodies are goroutines, but exactly one runs at a time.
// The kernel hands control to a thread with a channel send and waits for the
// thread's next kernel call; code between kernel calls executes in zero
// virtual time. Virtual time only advances while a thread is inside Consume
// or when the processor is idle.
package exec

import (
	"fmt"
	"sort"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

type threadState int

const (
	stateNew threadState = iota
	stateReady
	stateSleeping
	stateBlocked
	stateDone
)

// resumeMsg is what the kernel sends a parked thread goroutine.
type resumeMsg struct {
	interrupted bool // the pending Consume was asynchronously interrupted
	kill        bool // the executive is shutting down; unwind now
}

type reqKind int

const (
	reqConsume reqKind = iota
	reqSleep
	reqWait
	reqTerminate
)

type request struct {
	th   *Thread
	kind reqKind

	// consume
	amount rtime.Duration

	// sleep
	until rtime.Time

	// wait
	queue *WaitQueue

	// terminate
	err error
}

// Thread is a schedulable entity of the executive.
type Thread struct {
	ex   *Exec
	name string
	prio int

	state    threadState
	readySeq int64
	wakeAt   rtime.Time

	resumeCh chan resumeMsg

	// Consume state.
	needCPU  rtime.Duration
	consumed rtime.Duration // total CPU consumed, for accounting

	// Budgeted-section (Timed) state.
	inBudget      bool
	pendingIntr   bool
	intrDelivered bool

	// Priority-inheritance state.
	boost     int
	held      []*Mutex
	waitingOn *Mutex

	label string
	body  func(tc *TC)
	err   error
}

// Name returns the thread's trace row name.
func (th *Thread) Name() string { return th.name }

// Priority returns the thread's fixed priority (larger is higher).
func (th *Thread) Priority() int { return th.prio }

// Consumed returns the total virtual CPU time the thread has consumed.
func (th *Thread) Consumed() rtime.Duration { return th.consumed }

// Done reports whether the thread has terminated.
func (th *Thread) Done() bool { return th.state == stateDone }

// Err returns the error a thread terminated with (a panic in its body).
func (th *Thread) Err() error { return th.err }

// timerEv is a kernel time event: at instant at, run fn in kernel context.
// Kernel functions must be tiny (wake a thread, set a flag); anything that
// costs CPU must be modeled as a thread.
type timerEv struct {
	at        rtime.Time
	seq       int64
	fn        func()
	cancelled bool
}

// WaitQueue is a FIFO queue of blocked threads, the executive's only
// blocking primitive (condition-variable style: wait / notify).
type WaitQueue struct {
	name    string
	waiters []*Thread
}

// NewWaitQueue returns a named wait queue.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// Exec is the virtual-time executive. Create with New, add threads with
// Spawn, then call Run.
type Exec struct {
	now     rtime.Time
	threads []*Thread
	timers  []*timerEv
	tr      *trace.Trace

	reqCh    chan request
	seq      int64
	running  bool
	shutdown bool
	errs     []error
}

// New returns an executive tracing into tr (may be nil).
func New(tr *trace.Trace) *Exec {
	if tr == nil {
		tr = trace.New()
	}
	return &Exec{tr: tr, reqCh: make(chan request)}
}

// Trace returns the execution trace.
func (ex *Exec) Trace() *trace.Trace { return ex.tr }

// Now returns the current virtual time. Safe to call from thread bodies.
func (ex *Exec) Now() rtime.Time { return ex.now }

// Spawn creates a thread that becomes ready at startAt. The body runs in its
// own goroutine but under the executive's scheduling discipline.
func (ex *Exec) Spawn(name string, prio int, startAt rtime.Time, body func(tc *TC)) *Thread {
	th := &Thread{
		ex:       ex,
		name:     name,
		prio:     prio,
		boost:    prio,
		state:    stateNew,
		resumeCh: make(chan resumeMsg),
		body:     body,
	}
	ex.threads = append(ex.threads, th)
	ex.tr.DeclareEntity(name)
	go th.run()
	if startAt <= ex.now {
		ex.makeReady(th)
	} else {
		th.state = stateSleeping
		th.wakeAt = startAt
		ex.At(startAt, func() { ex.makeReady(th) })
	}
	return th
}

// run is the goroutine wrapper around a thread body.
func (th *Thread) run() {
	msg := <-th.resumeCh
	if msg.kill {
		th.ex.reqCh <- request{th: th, kind: reqTerminate}
		return
	}
	defer func() {
		var err error
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				err = fmt.Errorf("exec: thread %s panicked: %v", th.name, r)
			}
		}
		th.ex.reqCh <- request{th: th, kind: reqTerminate, err: err}
	}()
	th.body(&TC{th: th})
}

type killSentinel struct{}

// aieSentinel models the AsynchronouslyInterruptedException unwinding a
// Timed section.
type aieSentinel struct{}

// At schedules fn to run in kernel context at instant at (>= now). It
// returns a cancel function. Safe to call before Run and from thread bodies.
func (ex *Exec) At(at rtime.Time, fn func()) (cancel func()) {
	if at < ex.now {
		at = ex.now
	}
	ev := &timerEv{at: at, seq: ex.nextSeq(), fn: fn}
	ex.timers = append(ex.timers, ev)
	return func() { ev.cancelled = true }
}

func (ex *Exec) nextSeq() int64 {
	ex.seq++
	return ex.seq
}

func (ex *Exec) makeReady(th *Thread) {
	if th.state == stateDone {
		return
	}
	th.state = stateReady
	th.readySeq = ex.nextSeq()
}

// pickReady returns the highest-priority ready thread (FIFO within a
// priority level by wake order), or nil.
func (ex *Exec) pickReady() *Thread {
	var best *Thread
	for _, th := range ex.threads {
		if th.state != stateReady {
			continue
		}
		if best == nil || th.effPrio() > best.effPrio() ||
			(th.effPrio() == best.effPrio() && th.readySeq < best.readySeq) {
			best = th
		}
	}
	return best
}

// nextTimer returns the earliest pending timer, or nil.
func (ex *Exec) nextTimer() *timerEv {
	var best *timerEv
	for _, ev := range ex.timers {
		if ev.cancelled {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	return best
}

// fireDueTimers runs every timer due at or before now, in (time, seq) order.
func (ex *Exec) fireDueTimers() {
	for {
		var due []*timerEv
		rest := ex.timers[:0]
		for _, ev := range ex.timers {
			if !ev.cancelled && ev.at <= ex.now {
				due = append(due, ev)
			} else if !ev.cancelled {
				rest = append(rest, ev)
			}
		}
		ex.timers = rest
		if len(due) == 0 {
			return
		}
		sort.Slice(due, func(i, j int) bool {
			if due[i].at != due[j].at {
				return due[i].at < due[j].at
			}
			return due[i].seq < due[j].seq
		})
		for _, ev := range due {
			ev.fn() // may schedule new timers; loop again
		}
	}
}

// Run advances virtual time until the horizon, or until the system
// quiesces (no ready thread and no pending timer). It returns the first
// thread body error, if any.
func (ex *Exec) Run(until rtime.Time) error {
	if ex.running {
		return fmt.Errorf("exec: Run called re-entrantly")
	}
	ex.running = true
	defer func() { ex.running = false }()

	zeroSteps := 0
	lastNow := ex.now
	for ex.now < until {
		ex.fireDueTimers()
		th := ex.pickReady()
		if th == nil {
			ev := ex.nextTimer()
			if ev == nil {
				break // quiescent: nothing will ever happen again
			}
			ex.now = rtime.Min(ev.at, until)
			continue
		}
		if th.needCPU > 0 {
			ex.runSlice(th, until)
			continue
		}
		// Zero-time step: let the thread execute Go code until its next
		// kernel call.
		if ex.now == lastNow {
			zeroSteps++
			if zeroSteps > 1_000_000 {
				return fmt.Errorf("exec: livelock at %v: thread %s loops without consuming",
					ex.now, th.name)
			}
		} else {
			zeroSteps = 0
			lastNow = ex.now
		}
		th.resumeCh <- resumeMsg{}
		req := <-ex.reqCh
		ex.handle(req)
	}
	if ex.now > until {
		ex.now = until
	}
	// Drain zero-time work pending at the horizon instant: a consume that
	// finished exactly at the horizon must still return to its thread so
	// completion bookkeeping (e.g. a server marking a handler served) is
	// observable — the discrete-event simulator records such completions,
	// and the two engines must agree at the boundary.
	for steps := 0; steps < 1_000_000; steps++ {
		th := ex.pickReadyZeroCPU()
		if th == nil {
			break
		}
		th.resumeCh <- resumeMsg{}
		req := <-ex.reqCh
		ex.handle(req)
	}
	if len(ex.errs) > 0 {
		return ex.errs[0]
	}
	return nil
}

// pickReadyZeroCPU returns the highest-priority ready thread that is not
// mid-consume (used by the horizon drain).
func (ex *Exec) pickReadyZeroCPU() *Thread {
	var best *Thread
	for _, th := range ex.threads {
		if th.state != stateReady || th.needCPU > 0 {
			continue
		}
		if best == nil || th.effPrio() > best.effPrio() ||
			(th.effPrio() == best.effPrio() && th.readySeq < best.readySeq) {
			best = th
		}
	}
	return best
}

// handle processes one kernel request from a thread.
func (ex *Exec) handle(req request) {
	th := req.th
	switch req.kind {
	case reqConsume:
		th.needCPU = req.amount
	case reqSleep:
		if req.until <= ex.now {
			// Already due: stay ready (deterministic re-queue).
			ex.makeReady(th)
			return
		}
		th.state = stateSleeping
		th.wakeAt = req.until
		ex.At(req.until, func() {
			if th.state == stateSleeping {
				ex.makeReady(th)
			}
		})
	case reqWait:
		th.state = stateBlocked
		if req.queue != nil {
			req.queue.waiters = append(req.queue.waiters, th)
		}
		// A nil queue is a bare suspension (mutex hand-off): the waker
		// calls makeReady explicitly.
	case reqTerminate:
		th.state = stateDone
		if req.err != nil {
			th.err = req.err
			ex.errs = append(ex.errs, req.err)
		}
	}
}

// runSlice advances time while th consumes CPU, stopping at the next timer
// or the horizon (whichever comes first) so preemption can occur.
func (ex *Exec) runSlice(th *Thread, until rtime.Time) {
	stop := until
	if ev := ex.nextTimer(); ev != nil {
		stop = rtime.Min(stop, ev.at)
	}
	delta := rtime.MinDur(th.needCPU, stop.Sub(ex.now))
	if delta <= 0 {
		// A timer due exactly now; fire it on the next loop iteration.
		return
	}
	ex.tr.Run(th.name, ex.now, ex.now.Add(delta), th.label)
	ex.now = ex.now.Add(delta)
	th.needCPU -= delta
	th.consumed += delta
}

// interruptNow delivers an asynchronous interrupt to th's budgeted section:
// if th is consuming, the consume aborts; the interrupt stays pending until
// the section ends otherwise. While the thread holds any lock the delivery
// is deferred — the RTSJ defers AsynchronouslyInterruptedException inside
// synchronized code, so critical sections never unwind half-way (Unlock
// re-arms the delivery).
func (ex *Exec) interruptNow(th *Thread) {
	if !th.inBudget || th.state == stateDone {
		return
	}
	th.pendingIntr = true
	if len(th.held) > 0 {
		return
	}
	if th.state == stateReady && th.needCPU > 0 {
		// Abort the in-progress consume; the thread will observe the
		// interruption when next scheduled.
		th.needCPU = 0
		th.intrDelivered = true
	}
}

// Shutdown unwinds every live thread goroutine. Call after Run to avoid
// goroutine leaks when many executives are created (e.g. in benchmarks).
func (ex *Exec) Shutdown() {
	ex.shutdown = true
	for _, th := range ex.threads {
		if th.state == stateDone {
			continue
		}
		th.resumeCh <- resumeMsg{kill: true}
		req := <-ex.reqCh
		if req.kind != reqTerminate {
			// The kill unwinds to the terminate request; anything else is
			// a protocol bug.
			panic(fmt.Sprintf("exec: thread %s sent %d during shutdown", req.th.name, req.kind))
		}
		req.th.state = stateDone
	}
}

// Errors returns all thread body errors observed.
func (ex *Exec) Errors() []error { return ex.errs }
