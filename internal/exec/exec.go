package exec

import (
	"fmt"
	"sync"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Kernel selects the executive's scheduling implementation.
type Kernel int

const (
	// DirectKernel is the channel-free executive: inline scheduling with
	// batched same-thread steps and condition-variable handoffs.
	DirectKernel Kernel = iota
	// ChannelKernel is the legacy channel-rendezvous executive, kept as the
	// reference implementation for differential testing.
	ChannelKernel
)

// String returns the kernel's short name ("direct" or "channel").
func (k Kernel) String() string {
	if k == ChannelKernel {
		return "channel"
	}
	return "direct"
}

// Options configures an executive beyond the sink it records into.
type Options struct {
	// Kernel selects the scheduling implementation (default DirectKernel).
	Kernel Kernel
	// MaxGoroutines, when positive, multiplexes thread bodies over a
	// bounded pool of worker goroutines instead of one goroutine per
	// thread: a thread's goroutine is materialized lazily the first time
	// the scheduler runs it, and when its body returns the worker is
	// recycled for other bodies. MaxGoroutines is the pool's resident
	// size: workers beyond it retire as bodies finish, one per finish,
	// unless the finishing worker is the only one available to serve an
	// immediately following start (then it is reused instead). The
	// pool can transiently exceed the cap when more than MaxGoroutines
	// bodies are suspended mid-execution at once (each suspended body pins
	// its worker's stack) — the bound that holds is the peak number of
	// concurrently in-progress bodies, which for run-to-completion
	// workloads is tiny regardless of the thread count. Zero (the default)
	// keeps the goroutine-per-thread mode. Scheduling is identical either
	// way, enforced by the kernel differential tests.
	MaxGoroutines int
	// CPUs is the number of virtual CPUs the executive schedules (see
	// smp.go). Zero and one are the uniprocessor: the same code path with
	// one CPU, byte-identical to the pre-SMP executive.
	CPUs int
	// Migration selects how ready threads map onto the CPUs (Global,
	// Partitioned, Clustered). Irrelevant with one CPU.
	Migration MigrationPolicy
	// ClusterSize is the CPUs-per-cluster of the Clustered policy
	// (default 2). Ignored by the other policies.
	ClusterSize int
	// MigrationCost, when positive, is added to a thread's remaining
	// demand each time it resumes a consume on a different CPU than the
	// one it last occupied — the cache-reload penalty of a migration.
	MigrationCost rtime.Duration
	// Stats, when non-nil, wires the executive's kernel counters (context
	// switches, preemptions, heap high-water marks, pool churn) into the
	// given instrument set. Nil (the default) disables all accounting:
	// every hook site collapses to one predictable branch. Stats never
	// affect scheduling, traces or metrics — they are observational only.
	Stats *Stats
}

// MissPolicy selects how a periodic entity (SpawnPeriodic) handles a
// deadline overrun — a body still running when its next release comes due.
// The policy is applied by the activation rearm path, so it is identical
// across kernels and worker modes.
type MissPolicy int

const (
	// MissSkip (the default) skips releases the body overran past,
	// counting each skip (Thread.MissedActivations) — the RTSJ's
	// WaitForNextPeriod semantics without a miss handler.
	MissSkip MissPolicy = iota
	// MissContinueLate releases the next period immediately when it is
	// already past due instead of skipping to the next on-time release:
	// the entity runs late but performs every release. Late releases are
	// counted in Thread.MissedActivations.
	MissContinueLate
	// MissAbort bounds each activation by its implicit deadline (release +
	// period): a body still consuming at the deadline unwinds via the
	// budgeted-section mechanism (see TC.WithBudget) and the abort is
	// counted (Thread.AbortedActivations). The body must not open its own
	// WithBudget section — budgeted sections do not nest.
	MissAbort
)

// String returns the policy's short name.
func (p MissPolicy) String() string {
	switch p {
	case MissContinueLate:
		return "continue-late"
	case MissAbort:
		return "abort"
	default:
		return "skip"
	}
}

type threadState int

const (
	stateNew threadState = iota
	stateReady
	stateSleeping
	stateBlocked
	stateDone
)

// resumeMsg is what the kernel delivers to a parked thread goroutine.
type resumeMsg struct {
	kill bool // the executive is shutting down; unwind now
}

type reqKind int

const (
	reqConsume reqKind = iota
	reqSleep
	reqWait
	reqTerminate
	// reqRearm ends one activation of a periodic entity (ChannelKernel;
	// the direct kernel calls rearm inline): advance the release, then
	// sleep until it as reqSleep would.
	reqRearm
)

type request struct {
	th   *Thread
	kind reqKind

	// consume
	amount rtime.Duration

	// sleep
	until rtime.Time

	// wait
	queue *WaitQueue

	// terminate
	err error
}

// Thread is a schedulable entity of the executive.
type Thread struct {
	ex   *Exec
	name string
	prio int

	state    threadState
	readySeq int64
	wakeAt   rtime.Time

	// ChannelKernel handoff.
	resumeCh chan resumeMsg

	// DirectKernel handoff: park/wake under ex.mu.
	cond      *sync.Cond
	scheduled bool // wake flag of the park/wake protocol; guarded by mu
	killed    bool // shutdown kill flag; guarded by mu
	heapIdx   int  // position in the ready heap, -1 when not enqueued

	// Pooled mode: whether the body has been handed to a worker yet (a
	// thread that never starts never costs a goroutine), and the fate
	// struct of the worker currently running the body (bound per dispatch
	// by poolWorker, written by bodyFinished).
	started bool
	worker  *workerFate

	// Activation-driven periodic state (SpawnPeriodic): the release period,
	// the current/next release instant, the overrun miss policy and its
	// skip/abort counts, the optional per-release dynamic priority hook
	// (ActivationSpec.Priority), and the detach flag raised while a
	// finished body's goroutine leaves the scheduling loop (its thread
	// lives on, so handoff must not park it).
	periodic   bool
	period     rtime.Duration
	nextRel    rtime.Time
	missPolicy MissPolicy
	missed     int
	aborted    int
	detached   bool
	dynPrio    func(release rtime.Time) int

	// SMP state (kernel/token-owned, like the scheduling state above):
	// the requested CPU affinity (-1 when none), the scheduling domain
	// whose ready queue the thread lives in, the CPU it last occupied
	// (-1 before first placement) and its cross-CPU migration count.
	affinity   int
	domain     int
	lastCPU    int
	migrations int

	// Consume state.
	needCPU  rtime.Duration
	consumed rtime.Duration // total CPU consumed, for accounting

	// Budgeted-section (Timed) state.
	inBudget      bool
	pendingIntr   bool
	intrDelivered bool

	// Priority-inheritance state.
	boost     int
	held      []*Mutex
	waitingOn *Mutex

	label string
	body  func(tc *TC)
	err   error
}

// Name returns the thread's trace row name.
func (th *Thread) Name() string { return th.name }

// Priority returns the thread's fixed priority (larger is higher).
func (th *Thread) Priority() int { return th.prio }

// Consumed returns the total virtual CPU time the thread has consumed.
func (th *Thread) Consumed() rtime.Duration { return th.consumed }

// Done reports whether the thread has terminated.
func (th *Thread) Done() bool { return th.state == stateDone }

// Err returns the error a thread terminated with (a panic in its body).
func (th *Thread) Err() error { return th.err }

// timerEv is a kernel time event: at instant at, run fn in kernel context.
// Kernel functions must be tiny (wake a thread, set a flag); anything that
// costs CPU must be modeled as a thread.
type timerEv struct {
	at        rtime.Time
	seq       int64
	fn        func()
	cancelled bool
}

// WaitQueue is a FIFO queue of blocked threads, the executive's only
// blocking primitive (condition-variable style: wait / notify).
type WaitQueue struct {
	name    string
	waiters []*Thread
}

// NewWaitQueue returns a named wait queue.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// runPhase is the DirectKernel scheduling-loop phase (see dispatch).
type runPhase int

const (
	phaseIdle runPhase = iota
	phaseRunning
	phaseDraining
	phaseDone
)

// Exec is the virtual-time executive. Create with New (direct kernel) or
// NewKernel, add threads with Spawn, then call Run.
type Exec struct {
	kind    Kernel
	now     rtime.Time
	threads []*Thread
	sink    trace.Sink    // never nil; trace.Nop when nothing records
	tr      *trace.Trace  // the sink when it is a *trace.Trace, else nil
	cpuSink trace.CPUSink // sink when it also records CPU indices, else nil
	stats   Stats         // instrument set; zero (all nil) when disabled
	statsOn bool          // Options.Stats was non-nil; guards hook bodies

	// Pooled mode (Options.MaxGoroutines > 0): the shared worker pool.
	pooled bool
	pool   workerPool

	// ChannelKernel state: pending timers (linear) and the request channel.
	timers []*timerEv
	reqCh  chan request

	// SMP topology (smp.go): the virtual CPU count, migration policy,
	// per-domain CPU index sets, the per-domain ready queues (DirectKernel
	// heaps; one domain with one CPU is the uniprocessor), the CPU
	// occupancy vector recomputed by assignCPUs each scheduling decision,
	// a scratch buffer for top-K selection, and the migration tally.
	ncpu        int
	policy      MigrationPolicy
	clusterSize int
	migrateCost rtime.Duration
	domains     [][]int
	readyQ      []readyHeap
	cpuRun      []*Thread
	pickBuf     []*Thread
	migrations  int

	// DirectKernel state: the timer heap and the handoff protocol.
	theap  timerHeap
	mu     sync.Mutex
	main   sync.Cond // parks the Run goroutine while threads hold the CPU
	reap   sync.Cond // Shutdown waits here for killed threads to die
	mainOn bool      // main has been scheduled (run is over); guarded by mu

	// Run-loop state shared with dispatch (DirectKernel).
	phase      runPhase
	until      rtime.Time
	zeroSteps  int
	lastNow    rtime.Time
	drainSteps int
	runErr     error

	seq      int64
	running  bool
	shutdown bool
	errs     []error
}

// New returns an executive recording into sink, on the default direct
// (channel-free) kernel. A nil sink records nothing — the metrics-only fast
// path (same contract as the sim engine); pass trace.New() to keep a full
// schedule recording.
func New(sink trace.Sink) *Exec { return NewWithOptions(sink, Options{}) }

// NewKernel returns an executive on an explicitly chosen kernel. Both
// kernels implement the same deterministic scheduling contract; the choice
// only affects how goroutine handoffs are realized.
func NewKernel(sink trace.Sink, kind Kernel) *Exec {
	return NewWithOptions(sink, Options{Kernel: kind})
}

// NewWithOptions returns a fully configured executive. A nil sink (or a nil
// *trace.Trace inside the interface) is normalized to trace.Nop.
func NewWithOptions(sink trace.Sink, opts Options) *Exec {
	if tr, ok := sink.(*trace.Trace); ok && tr == nil {
		sink = nil
	}
	if sink == nil {
		sink = trace.Nop{}
	}
	ex := &Exec{kind: opts.Kernel, sink: sink, pooled: opts.MaxGoroutines > 0}
	ex.tr, _ = sink.(*trace.Trace)
	ex.cpuSink, _ = sink.(trace.CPUSink)
	if opts.Stats != nil {
		ex.stats = *opts.Stats
		ex.statsOn = true
	}
	ex.ncpu = opts.CPUs
	if ex.ncpu <= 0 {
		ex.ncpu = 1
	}
	ex.policy = opts.Migration
	ex.clusterSize = opts.ClusterSize
	if ex.clusterSize <= 0 {
		ex.clusterSize = 2
	}
	ex.migrateCost = opts.MigrationCost
	switch {
	case ex.policy == Partitioned && ex.ncpu > 1:
		for c := 0; c < ex.ncpu; c++ {
			ex.domains = append(ex.domains, []int{c})
		}
	case ex.policy == Clustered && ex.ncpu > 1:
		for lo := 0; lo < ex.ncpu; lo += ex.clusterSize {
			hi := lo + ex.clusterSize
			if hi > ex.ncpu {
				hi = ex.ncpu
			}
			cl := make([]int, 0, hi-lo)
			for c := lo; c < hi; c++ {
				cl = append(cl, c)
			}
			ex.domains = append(ex.domains, cl)
		}
	default:
		all := make([]int, ex.ncpu)
		for c := range all {
			all[c] = c
		}
		ex.domains = [][]int{all}
	}
	ex.readyQ = make([]readyHeap, len(ex.domains))
	ex.cpuRun = make([]*Thread, ex.ncpu)
	if opts.Kernel == ChannelKernel {
		ex.reqCh = make(chan request)
	}
	// The direct kernel parks on these; the channel kernel never touches
	// them, but initializing unconditionally keeps the zero-value checks
	// out of the hot path.
	ex.main.L = &ex.mu
	ex.reap.L = &ex.mu
	if ex.pooled {
		ex.pool.init(opts.MaxGoroutines)
	}
	return ex
}

// KernelKind returns the kernel this executive runs on.
func (ex *Exec) KernelKind() Kernel { return ex.kind }

// Pooled reports whether thread bodies are multiplexed over the worker
// pool (Options.MaxGoroutines > 0).
func (ex *Exec) Pooled() bool { return ex.pooled }

// PoolPeak returns the peak number of pool worker goroutines that have
// existed simultaneously (0 in goroutine-per-thread mode).
func (ex *Exec) PoolPeak() int { return ex.pool.peakWorkers() }

// PoolSpawned returns the total number of pool worker goroutines ever
// created (0 in goroutine-per-thread mode). PoolSpawned equal to PoolPeak
// means every worker was reused until the pool quiesced — no
// retire-then-respawn churn.
func (ex *Exec) PoolSpawned() int { return ex.pool.spawnedWorkers() }

// Sink returns the sink this executive records into (never nil).
func (ex *Exec) Sink() trace.Sink { return ex.sink }

// Trace returns the execution trace when the executive records into a
// *trace.Trace, and nil on the metrics-only fast path.
func (ex *Exec) Trace() *trace.Trace { return ex.tr }

// Now returns the current virtual time. Safe to call from thread bodies.
func (ex *Exec) Now() rtime.Time { return ex.now }

// Threads returns every spawned thread, in spawn order. Call only while no
// Run is in progress (the slice itself is copied, but thread state is owned
// by the scheduling loop).
func (ex *Exec) Threads() []*Thread {
	out := make([]*Thread, len(ex.threads))
	copy(out, ex.threads)
	return out
}

// newThread constructs and registers a thread without starting or
// scheduling it — the construction invariants shared by Spawn and
// SpawnPeriodic (entity declaration, scheduling-domain assignment,
// kernel-specific handoff state). affinity is a CPU index or -1 for none.
func (ex *Exec) newThread(name string, prio, affinity int, body func(tc *TC)) *Thread {
	if affinity < -1 || affinity >= ex.ncpu {
		ex.panicBadCPU(name, affinity)
	}
	th := &Thread{
		ex:       ex,
		name:     name,
		prio:     prio,
		boost:    prio,
		state:    stateNew,
		heapIdx:  -1,
		affinity: affinity,
		lastCPU:  -1,
		body:     body,
	}
	ex.threads = append(ex.threads, th)
	th.domain = ex.domainFor(affinity, len(ex.threads)-1)
	ex.sink.DeclareEntity(name)
	if ex.kind == ChannelKernel {
		th.resumeCh = make(chan resumeMsg)
	} else {
		th.cond = sync.NewCond(&ex.mu)
	}
	return th
}

// scheduleFirstRelease makes th ready at startAt: immediately when due,
// else sleeping behind a wake timer.
func (ex *Exec) scheduleFirstRelease(th *Thread, startAt rtime.Time) {
	if startAt <= ex.now {
		ex.makeReady(th)
	} else {
		th.state = stateSleeping
		th.wakeAt = startAt
		ex.At(startAt, func() { ex.makeReady(th) })
	}
}

// Spawn creates a thread that becomes ready at startAt. The body runs in its
// own goroutine but under the executive's scheduling discipline. SpawnOn is
// the same with an explicit CPU affinity.
func (ex *Exec) Spawn(name string, prio int, startAt rtime.Time, body func(tc *TC)) *Thread {
	return ex.SpawnOn(name, prio, startAt, -1, body)
}

type killSentinel struct{}

// aieSentinel models the AsynchronouslyInterruptedException unwinding a
// Timed section.
type aieSentinel struct{}

// At schedules fn to run in kernel context at instant at (>= now). It
// returns a cancel function. Safe to call before Run and from thread bodies.
func (ex *Exec) At(at rtime.Time, fn func()) (cancel func()) {
	if at < ex.now {
		at = ex.now
	}
	ev := &timerEv{at: at, seq: ex.nextSeq(), fn: fn}
	if ex.kind == ChannelKernel {
		ex.timers = append(ex.timers, ev)
		if ex.statsOn {
			ex.stats.TimerHeapMax.Max(int64(len(ex.timers)))
		}
	} else {
		ex.theap.push(ev)
		if ex.statsOn {
			ex.stats.TimerHeapMax.Max(int64(len(ex.theap.a)))
		}
	}
	return func() { ev.cancelled = true }
}

func (ex *Exec) nextSeq() int64 {
	ex.seq++
	return ex.seq
}

// makeReady moves th to its domain's ready queue (re-queuing, with a fresh
// FIFO rank, if it was already there).
func (ex *Exec) makeReady(th *Thread) {
	if th.state == stateDone {
		return
	}
	th.state = stateReady
	th.readySeq = ex.nextSeq()
	if ex.kind == DirectKernel {
		if th.heapIdx >= 0 {
			ex.readyQ[th.domain].fix(th.heapIdx) // seq grew: sink to the new FIFO rank
		} else {
			ex.readyQ[th.domain].push(th)
			if ex.statsOn {
				ex.stats.ReadyMax.Max(int64(len(ex.readyQ[th.domain].a)))
			}
		}
	}
}

// readyRemove drops th from its domain's ready heap (DirectKernel
// bookkeeping; the channel kernel scans thread states instead).
func (ex *Exec) readyRemove(th *Thread) {
	if ex.kind == DirectKernel && th.heapIdx >= 0 {
		ex.readyQ[th.domain].remove(th)
	}
}

// nextTimer returns the earliest pending timer, or nil.
func (ex *Exec) nextTimer() *timerEv {
	if ex.kind == DirectKernel {
		return ex.theap.peek()
	}
	var best *timerEv
	for _, ev := range ex.timers {
		if ev.cancelled {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best = ev
		}
	}
	return best
}

// apply processes one kernel request from a thread.
func (ex *Exec) apply(req request) {
	th := req.th
	switch req.kind {
	case reqConsume:
		th.needCPU = req.amount
	case reqSleep:
		if req.until <= ex.now {
			// Already due: stay ready (deterministic re-queue).
			ex.makeReady(th)
			return
		}
		th.state = stateSleeping
		th.wakeAt = req.until
		ex.readyRemove(th)
		ex.At(req.until, func() {
			if th.state == stateSleeping {
				ex.makeReady(th)
			}
		})
	case reqWait:
		th.state = stateBlocked
		ex.readyRemove(th)
		if req.queue != nil {
			req.queue.waiters = append(req.queue.waiters, th)
		}
		// A nil queue is a bare suspension (mutex hand-off): the waker
		// calls makeReady explicitly.
	case reqTerminate:
		th.state = stateDone
		ex.readyRemove(th)
		if req.err != nil {
			th.err = req.err
			ex.errs = append(ex.errs, req.err)
		}
	case reqRearm:
		ex.rearm(th)
	}
}

// Run advances virtual time until the horizon, or until the system
// quiesces (no ready thread and no pending timer). It returns the first
// thread body error, if any.
func (ex *Exec) Run(until rtime.Time) error {
	if ex.running {
		return fmt.Errorf("exec: Run called re-entrantly")
	}
	ex.running = true
	defer func() { ex.running = false }()
	if ex.kind == ChannelKernel {
		return ex.runChannel(until)
	}
	return ex.runDirect(until)
}

// interruptNow delivers an asynchronous interrupt to th's budgeted section:
// if th is consuming, the consume aborts; the interrupt stays pending until
// the section ends otherwise. While the thread holds any lock the delivery
// is deferred — the RTSJ defers AsynchronouslyInterruptedException inside
// synchronized code, so critical sections never unwind half-way (Unlock
// re-arms the delivery).
func (ex *Exec) interruptNow(th *Thread) {
	if !th.inBudget || th.state == stateDone {
		return
	}
	th.pendingIntr = true
	if len(th.held) > 0 {
		return
	}
	if th.state == stateReady && th.needCPU > 0 {
		// Abort the in-progress consume; the thread will observe the
		// interruption when next scheduled.
		th.needCPU = 0
		th.intrDelivered = true
	}
}

// Shutdown unwinds every live thread goroutine. Call after Run to avoid
// goroutine leaks when many executives are created (e.g. in benchmarks).
func (ex *Exec) Shutdown() {
	ex.shutdown = true
	if ex.kind == ChannelKernel {
		ex.shutdownChannel()
	} else {
		ex.shutdownDirect()
	}
	if ex.pooled {
		ex.pool.close()
	}
}

// Errors returns all thread body errors observed.
func (ex *Exec) Errors() []error { return ex.errs }
