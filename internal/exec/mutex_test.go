package exec

import (
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func TestMutexMutualExclusion(t *testing.T) {
	m := NewMutex("m")
	var order []string
	runExec(t, 20, func(ex *Exec) {
		for _, name := range []string{"a", "b"} {
			name := name
			ex.Spawn(name, 1, 0, func(tc *TC) {
				tc.WithLock(m, func() {
					order = append(order, name+"+")
					tc.Consume(tu(2))
					order = append(order, name+"-")
				})
			})
		}
	})
	want := []string{"a+", "a-", "b+", "b-"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (critical sections interleaved)", order, want)
		}
	}
}

func TestMutexGrantsByPriority(t *testing.T) {
	m := NewMutex("m")
	var order []string
	runExec(t, 30, func(ex *Exec) {
		ex.Spawn("holder", 5, 0, func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(3)) })
		})
		// Both block while holder runs; the high-priority waiter must win
		// even though the low one queued first.
		ex.Spawn("low", 1, at(1), func(tc *TC) {
			tc.WithLock(m, func() {
				order = append(order, "low")
				tc.Consume(tu(1))
			})
		})
		ex.Spawn("high", 9, at(2), func(tc *TC) {
			tc.WithLock(m, func() {
				order = append(order, "high")
				tc.Consume(tu(1))
			})
		})
	})
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("order = %v", order)
	}
}

// The classic bounded-inversion scenario: lo holds the lock, hi blocks on
// it, mid preempts lo. With priority inheritance, lo inherits hi's priority
// and finishes its critical section before mid runs.
func TestMutexPriorityInheritanceBoundsInversion(t *testing.T) {
	run := func(inherit bool) (hiDone, midDone rtime.Time) {
		var m *Mutex
		if inherit {
			m = NewMutex("m")
		} else {
			m = NewMutexNoInherit("m")
		}
		ex := New(trace.New())
		ex.Spawn("lo", 1, 0, func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(4)) })
		})
		ex.Spawn("mid", 5, at(2), func(tc *TC) {
			tc.Consume(tu(4))
			midDone = tc.Now()
		})
		ex.Spawn("hi", 9, at(1), func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(1)) })
			hiDone = tc.Now()
		})
		if err := ex.Run(at(30)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		if err := ex.Trace().CheckSingleCPU(); err != nil {
			t.Fatal(err)
		}
		return
	}

	hiPI, midPI := run(true)
	// With PI: lo runs [0,1), hi blocks at 1, lo inherits 9 and finishes
	// its section at 4 despite mid arriving at 2; hi then runs [4,5).
	if hiPI != at(5) {
		t.Errorf("with PI, hi done at %v, want 5", hiPI.TUs())
	}
	if midPI != at(9) {
		t.Errorf("with PI, mid done at %v, want 9", midPI.TUs())
	}

	hiNo, _ := run(false)
	// Without PI: mid preempts lo at 2 for 4tu; lo's section ends at 8;
	// hi runs [8,9). Unbounded inversion (here bounded only by mid's
	// length).
	if hiNo != at(9) {
		t.Errorf("without PI, hi done at %v, want 9", hiNo.TUs())
	}
	if hiPI >= hiNo {
		t.Errorf("PI must strictly improve hi: %v vs %v", hiPI.TUs(), hiNo.TUs())
	}
}

// Transitive inheritance: hi blocks on m2 held by mid, which blocks on m1
// held by lo — lo must inherit hi's priority through the chain.
func TestMutexTransitiveInheritance(t *testing.T) {
	m1 := NewMutex("m1")
	m2 := NewMutex("m2")
	var loFinishedCS rtime.Time
	runExec(t, 40, func(ex *Exec) {
		ex.Spawn("lo", 1, 0, func(tc *TC) {
			tc.WithLock(m1, func() {
				tc.Consume(tu(4))
				loFinishedCS = tc.Now()
			})
		})
		ex.Spawn("mid", 5, at(1), func(tc *TC) {
			tc.WithLock(m2, func() {
				tc.Lock(m1) // blocks on lo
				tc.Consume(tu(1))
				tc.Unlock(m1)
			})
		})
		ex.Spawn("hi", 9, at(2), func(tc *TC) {
			tc.Lock(m2) // blocks on mid, which blocks on lo
			tc.Consume(tu(1))
			tc.Unlock(m2)
		})
		// An interfering priority-7 thread: without transitive
		// inheritance it would preempt lo (eff 5) at 3.
		ex.Spawn("noise", 7, at(3), func(tc *TC) { tc.Consume(tu(5)) })
	})
	// lo runs [0,1) at base, inherits 5 at 1, 9 at 2; noise at 3 must NOT
	// preempt: lo finishes the section at 4.
	if loFinishedCS != at(4) {
		t.Fatalf("lo finished its critical section at %v, want 4 (transitive boost)", loFinishedCS.TUs())
	}
}

func TestMutexBoostDropsAfterUnlock(t *testing.T) {
	m := NewMutex("m")
	var loAfter rtime.Time
	runExec(t, 40, func(ex *Exec) {
		ex.Spawn("lo", 1, 0, func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(2)) })
			tc.Consume(tu(2)) // back at base priority
			loAfter = tc.Now()
		})
		ex.Spawn("hi", 9, at(1), func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(1)) })
		})
		ex.Spawn("mid", 5, at(1.5), func(tc *TC) { tc.Consume(tu(3)) })
	})
	// lo boosted [1,2), hi [2,3), then mid (5) outranks lo (1): lo's tail
	// work waits for mid: 3+3=6, lo finishes 6+... lo ran [0,2) incl CS;
	// remaining 2 tail: [6,8).
	if loAfter != at(8) {
		t.Fatalf("lo tail finished at %v, want 8 (boost dropped)", loAfter.TUs())
	}
}

func TestMutexErrors(t *testing.T) {
	m := NewMutex("m")
	ex := New(nil)
	ex.Spawn("a", 1, 0, func(tc *TC) {
		tc.Lock(m)
		tc.Lock(m) // recursive: panics
	})
	if err := ex.Run(at(5)); err == nil {
		t.Fatal("recursive lock must error")
	}
	ex.Shutdown()

	m2 := NewMutex("m2")
	ex2 := New(nil)
	ex2.Spawn("b", 1, 0, func(tc *TC) {
		tc.Unlock(m2) // not held
	})
	if err := ex2.Run(at(5)); err == nil {
		t.Fatal("unlocking an unheld mutex must error")
	}
	ex2.Shutdown()
}

// RTSJ defers asynchronous interruption inside synchronized code: a Timed
// expiry during a locked section takes effect only once the lock is
// released, so critical sections never unwind half-way.
func TestInterruptDeferredWhileHoldingLock(t *testing.T) {
	m := NewMutex("m")
	var interrupted bool
	var sectionCompleted bool
	var elapsed rtime.Duration
	runExec(t, 30, func(ex *Exec) {
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			start := tc.Now()
			interrupted = tc.WithBudget(tu(2), func() {
				tc.WithLock(m, func() {
					tc.Consume(tu(4)) // budget expires at 2, mid-lock
					sectionCompleted = true
				})
				tc.Consume(tu(1)) // unwinds here, after the unlock
			})
			elapsed = tc.Now().Sub(start)
		})
	})
	if !interrupted {
		t.Fatal("expected interruption after the critical section")
	}
	if !sectionCompleted {
		t.Fatal("the locked section must complete (deferred AIE)")
	}
	if elapsed != tu(4) {
		t.Fatalf("elapsed = %v, want 4tu (full critical section, no tail)", elapsed)
	}
	if m.Owner() != nil {
		t.Fatal("lock leaked")
	}
}

func TestMutexUncontendedIsZeroTime(t *testing.T) {
	m := NewMutex("m")
	var elapsed rtime.Duration
	runExec(t, 10, func(ex *Exec) {
		ex.Spawn("a", 1, 0, func(tc *TC) {
			start := tc.Now()
			for i := 0; i < 100; i++ {
				tc.Lock(m)
				tc.Unlock(m)
			}
			elapsed = tc.Now().Sub(start)
		})
	})
	if elapsed != 0 {
		t.Fatalf("uncontended lock consumed %v of virtual time", elapsed)
	}
}
