package exec

import "rtsj/internal/obs"

// Stats is the executive's observability hook set: obs instruments the
// kernel bumps while it schedules. Every field may be nil (bumping a nil
// instrument is a no-op), and a nil *Stats in Options disables the whole
// layer — the executive then pays one predictable branch per hook site.
//
// The counters are observational only: they count kernel-internal work
// (context switches, heap growth, pool churn) whose exact values are
// stable for a fixed configuration but are NOT part of the simulation
// result. Nothing here may feed a fingerprint, trace or metrics output —
// rtlint's nondeterm analyzer enforces that reads stay out of the
// deterministic packages.
type Stats struct {
	// ContextSwitches counts real control transfers between goroutines
	// (direct-kernel handoffs, channel-kernel resumes).
	ContextSwitches *obs.Counter
	// Preemptions counts threads displaced from a CPU while still ready
	// with demand remaining.
	Preemptions *obs.Counter
	// Migrations counts threads resuming on a different CPU than the one
	// they last occupied (SMP only).
	Migrations *obs.Counter
	// TimerHeapMax is the timer queue's high-water mark.
	TimerHeapMax *obs.Gauge
	// ReadyMax is the high-water mark across the per-domain ready queues.
	ReadyMax *obs.Gauge
	// PoolSpawns counts worker goroutines created by the pooled mode.
	PoolSpawns *obs.Counter
	// PoolRetires counts pool workers retired after a body finished.
	PoolRetires *obs.Counter
	// PoolQueueMax is the high-water mark of the pool's pending-start queue.
	PoolQueueMax *obs.Gauge
	// Dispatches counts periodic activation releases that reached a body.
	Dispatches *obs.Counter
	// Misses counts deadline overruns handled by the rearm path (skipped
	// or late releases, per the thread's MissPolicy).
	Misses *obs.Counter
}

// NewStats builds a Stats wired to registry r under "exec."-prefixed
// metric names. A nil registry yields a Stats of nil instruments, which
// is equivalent to no stats at all.
func NewStats(r *obs.Registry) *Stats {
	return &Stats{
		ContextSwitches: r.Counter("exec.context_switches"),
		Preemptions:     r.Counter("exec.preemptions"),
		Migrations:      r.Counter("exec.migrations"),
		TimerHeapMax:    r.Gauge("exec.timer_heap_max"),
		ReadyMax:        r.Gauge("exec.ready_max"),
		PoolSpawns:      r.Counter("exec.pool_spawns"),
		PoolRetires:     r.Counter("exec.pool_retires"),
		PoolQueueMax:    r.Gauge("exec.pool_queue_max"),
		Dispatches:      r.Counter("exec.dispatches"),
		Misses:          r.Counter("exec.misses"),
	}
}
