package exec

import (
	"fmt"

	"rtsj/internal/rtime"
)

// This file is the activation-driven periodic dispatch path, shared by both
// kernels.
//
// A thread spawned with SpawnPeriodic has no long-lived body goroutine:
// instead of a loop that parks on "work; WaitForNextPeriod()", the kernel
// dispatches the body once per release — on a pool worker in pooled mode
// (Options.MaxGoroutines > 0), or on a short-lived goroutine otherwise —
// and the body RETURNING is the release boundary. The kernel then rearms
// the entity: it advances the release instant by one period, skips (and
// counts, see Thread.MissedActivations) any releases the body overran
// past, and applies exactly the sleep request a per-thread loop's
// WaitForNextPeriod would have issued at the same point in the schedule.
//
// Because the rearm reproduces the loop's kernel-call sequence verbatim —
// same requests, same timer registrations, same sequence numbers — an
// activation entity is trace-for-trace identical to the equivalent looping
// thread on every executive configuration (pinned by TestActivationDiff*).
// What changes is the resource cost: between releases the entity owns no
// goroutine at all, so a system of tens of thousands of periodic entities
// holds its goroutine count at the pool size instead of one per entity.

// ActivationSpec describes an activation-driven periodic entity for
// SpawnPeriodic: first release at Start (clamped to now), then one body
// dispatch every Period.
type ActivationSpec struct {
	// Start is the first release instant. A Start at or before the current
	// virtual time releases the entity immediately.
	Start rtime.Time
	// Period is the release period; it must be positive.
	Period rtime.Duration
	// Miss selects the overrun policy (default MissSkip).
	Miss MissPolicy
	// Priority, when non-nil, computes the entity's base priority for each
	// release from the release instant (called in kernel context at spawn
	// and at every rearm, overriding the prio argument): the job-level
	// fixed-priority hook that EDF scheduling builds on — return the
	// negated absolute deadline and earliest-deadline jobs rank highest.
	// A looping thread gets the same effect by calling TC.SetPriority at
	// the same point in its loop (after advancing its release, before the
	// sleep), which keeps the two formulations schedule-identical.
	Priority func(release rtime.Time) int
}

// SpawnPeriodic creates an activation-driven periodic entity: body runs
// once per release, on a pool worker (Options.MaxGoroutines > 0) or a
// per-activation goroutine otherwise, and returning from body ends the
// activation — the kernel rearms the entity for its next release,
// skipping (and counting) releases the body overran past. The schedule is
// identical to a Spawn'ed thread looping "body; sleep-until-next-release",
// but the entity pins no goroutine between releases.
//
// A body that panics terminates the entity (no further releases), exactly
// as a panic would unwind a per-thread periodic loop.
func (ex *Exec) SpawnPeriodic(name string, prio int, spec ActivationSpec, body func(tc *TC)) *Thread {
	return ex.SpawnPeriodicOn(name, prio, -1, spec, body)
}

// SpawnPeriodicOn creates an activation-driven periodic entity like
// SpawnPeriodic with an explicit CPU affinity (a CPU index, or -1 for
// none — see SpawnOn for the affinity contract).
func (ex *Exec) SpawnPeriodicOn(name string, prio, cpu int, spec ActivationSpec, body func(tc *TC)) *Thread {
	if spec.Period <= 0 {
		panic(fmt.Sprintf("exec: SpawnPeriodic %s needs a positive period (got %v)", name, spec.Period))
	}
	th := ex.newThread(name, prio, cpu, body)
	th.periodic = true
	th.period = spec.Period
	th.missPolicy = spec.Miss
	th.dynPrio = spec.Priority
	startAt := spec.Start
	if startAt < ex.now {
		startAt = ex.now
	}
	th.nextRel = startAt
	if th.dynPrio != nil {
		th.prio = th.dynPrio(startAt)
		th.boost = th.prio
	}
	// Unlike Spawn, no goroutine is created even outside pooled mode: the
	// body is dispatched lazily at each release (handoff on the direct
	// kernel, resume on the channel kernel).
	ex.scheduleFirstRelease(th, startAt)
	return th
}

// Periodic reports whether the thread is an activation-driven periodic
// entity (created with SpawnPeriodic).
func (th *Thread) Periodic() bool { return th.periodic }

// CurrentRelease returns the entity's current release instant: while a body
// runs, the release that activated it; between activations, the next
// pending release. It is meaningful only for SpawnPeriodic threads.
func (th *Thread) CurrentRelease() rtime.Time { return th.nextRel }

// MissedActivations returns how many releases the entity has skipped
// because a body overran past them (the skip-and-count overrun semantics
// of the RTSJ's WaitForNextPeriod without a miss handler), or — under
// MissContinueLate — how many releases happened late.
func (th *Thread) MissedActivations() int { return th.missed }

// AbortedActivations returns how many activations the MissAbort policy cut
// short at their deadline. Always 0 under other policies.
func (th *Thread) AbortedActivations() int { return th.aborted }

// Miss returns the entity's overrun policy.
func (th *Thread) Miss() MissPolicy { return th.missPolicy }

// rearm ends an activation in kernel context: it advances th's release by
// one period, handles releases the body overran past according to the miss
// policy (MissSkip skips and counts them; MissContinueLate keeps the first
// past-due release, counting it late), and applies the same sleep request
// a per-thread loop's WaitForNextPeriod would issue here — so timer
// sequence numbers, ready-queue ranks and therefore whole schedules match
// the loop formulation exactly (a past-due sleep re-queues the thread
// immediately and deterministically; see apply). It also detaches the body
// (started=false) so the next release dispatches a fresh one.
func (ex *Exec) rearm(th *Thread) {
	th.started = false
	th.nextRel = th.nextRel.Add(th.period)
	if th.missPolicy == MissContinueLate {
		if th.nextRel < ex.now {
			th.missed++
			ex.stats.Misses.Inc()
		}
	} else {
		for th.nextRel < ex.now {
			th.nextRel = th.nextRel.Add(th.period)
			th.missed++
			ex.stats.Misses.Inc()
		}
	}
	if th.dynPrio != nil {
		// Rebase the priority for the next release before the sleep, the
		// same point a looping thread would call TC.SetPriority.
		ex.setBasePrio(th, th.dynPrio(th.nextRel))
	}
	ex.apply(request{th: th, kind: reqSleep, until: th.nextRel})
}

// callBody runs one dispatch of the thread body, applying the entity's
// miss policy. Under MissAbort the body runs inside a budgeted section
// spanning the activation's implicit deadline (release + period): a body
// still consuming at the deadline unwinds there, the abort is counted, and
// the entity rearms for the release falling at that very instant. Every
// other configuration dispatches the body directly.
func (th *Thread) callBody() {
	if th.periodic {
		th.ex.stats.Dispatches.Inc()
	}
	tc := &TC{th: th}
	if th.periodic && th.missPolicy == MissAbort {
		if tc.WithBudget(th.nextRel.Add(th.period).Sub(th.ex.now), func() { th.body(tc) }) {
			th.aborted++
		}
		return
	}
	th.body(tc)
}
