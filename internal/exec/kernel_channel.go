package exec

import (
	"fmt"
	"sort"

	"rtsj/internal/rtime"
)

// This file is the legacy ChannelKernel, preserved as the reference
// implementation: a central kernel loop in the Run goroutine hands control
// to a thread with a channel send and waits for the thread's next kernel
// call on a shared request channel. Every kernel call therefore costs two
// goroutine handoffs; the ready queue and timer list are linear scans. The
// DirectKernel (kernel_direct.go) must produce schedules identical to this
// one — see the differential tests.
//
// One deliberate semantic fix over the seed implementation, shared by both
// kernels and pinned by TestKernelDiffSameInstantCancel: a timer cancelled
// by an earlier timer fn due at the same instant never fires (the seed's
// batch collection fired it anyway).

// channelRun is the goroutine wrapper around a thread body (ChannelKernel,
// goroutine-per-thread mode).
func (th *Thread) channelRun() {
	msg := <-th.resumeCh
	if msg.kill {
		th.ex.reqCh <- request{th: th, kind: reqTerminate}
		return
	}
	th.channelBody()
}

// runPooledChannel runs the body on a pool worker (ChannelKernel, pooled
// mode). The kernel loop just resumed the thread by handing it to the pool,
// so there is no initial rendezvous on resumeCh.
func (th *Thread) runPooledChannel() { th.channelBody() }

// channelBody executes the body with the executive's panic discipline and
// reports termination — or, for an activation entity that completed
// normally, the rearm for its next release — to the kernel loop.
func (th *Thread) channelBody() {
	defer func() {
		var err error
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				err = fmt.Errorf("exec: thread %s panicked: %v", th.name, r)
			}
		}
		if th.ex.pooled {
			// Declare this worker free (or retire it) before the kernel
			// loop learns of the termination and possibly starts the next
			// unstarted thread.
			th.ex.bodyFinished(th)
		}
		kind := reqTerminate
		if th.periodic && err == nil && !th.ex.shutdown {
			kind = reqRearm
		}
		th.ex.reqCh <- request{th: th, kind: kind, err: err}
	}()
	th.callBody()
}

// resume lets th execute user code to its next kernel call: waking its
// parked goroutine, or — for an unstarted body (pooled thread before first
// dispatch, or an activation entity at a release) — dispatching the body
// on a pool worker, or a fresh per-activation goroutine outside pooled
// mode.
func (ex *Exec) resume(th *Thread) {
	ex.stats.ContextSwitches.Inc()
	if !th.started {
		th.started = true
		th.detached = false
		if ex.pooled {
			ex.startThread(th)
		} else {
			go th.channelBody()
		}
		return
	}
	th.resumeCh <- resumeMsg{}
}

// channelCall posts a kernel request and parks until the kernel resumes the
// thread (ChannelKernel side of TC.kernelCall).
func (tc *TC) channelCall(req request) {
	tc.th.ex.reqCh <- req
	msg := <-tc.th.resumeCh
	if msg.kill {
		panic(killSentinel{})
	}
}

// pickReady returns the highest-priority ready thread (FIFO within a
// priority level by wake order), or nil.
func (ex *Exec) pickReady() *Thread {
	var best *Thread
	for _, th := range ex.threads {
		if th.state != stateReady {
			continue
		}
		if best == nil || th.effPrio() > best.effPrio() ||
			(th.effPrio() == best.effPrio() && th.readySeq < best.readySeq) {
			best = th
		}
	}
	return best
}

// pickReadyZeroCPU returns the highest-priority ready thread that is not
// mid-consume (used by the horizon drain).
func (ex *Exec) pickReadyZeroCPU() *Thread {
	var best *Thread
	for _, th := range ex.threads {
		if th.state != stateReady || th.needCPU > 0 {
			continue
		}
		if best == nil || th.effPrio() > best.effPrio() ||
			(th.effPrio() == best.effPrio() && th.readySeq < best.readySeq) {
			best = th
		}
	}
	return best
}

// fireDueTimers runs every timer due at or before now, in (time, seq) order.
func (ex *Exec) fireDueTimers() {
	for {
		var due []*timerEv
		rest := ex.timers[:0]
		for _, ev := range ex.timers {
			if !ev.cancelled && ev.at <= ex.now {
				due = append(due, ev)
			} else if !ev.cancelled {
				rest = append(rest, ev)
			}
		}
		ex.timers = rest
		if len(due) == 0 {
			return
		}
		sort.Slice(due, func(i, j int) bool {
			if due[i].at != due[j].at {
				return due[i].at < due[j].at
			}
			return due[i].seq < due[j].seq
		})
		for _, ev := range due {
			if ev.cancelled {
				// Cancelled by an earlier fn in this batch: a cancelled
				// timer never fires (matches the direct kernel's lazy-
				// deletion pop, which re-checks the flag at the top).
				continue
			}
			ev.fn() // may schedule new timers; loop again
		}
	}
}

// runChannel is the ChannelKernel main loop.
func (ex *Exec) runChannel(until rtime.Time) error {
	zeroSteps := 0
	lastNow := ex.now
	for ex.now < until {
		ex.fireDueTimers()
		if ex.assignCPUs() == 0 {
			ev := ex.nextTimer()
			if ev == nil {
				break // quiescent: nothing will ever happen again
			}
			ex.now = rtime.Min(ev.at, until)
			continue
		}
		th := ex.zeroStepOccupant()
		if th == nil {
			ex.runSlices(until)
			continue
		}
		// Zero-time step: let the thread execute Go code until its next
		// kernel call.
		if ex.now == lastNow {
			zeroSteps++
			if zeroSteps > 1_000_000 {
				return fmt.Errorf("exec: livelock at %v: thread %s loops without consuming",
					ex.now, th.name)
			}
		} else {
			zeroSteps = 0
			lastNow = ex.now
		}
		ex.resume(th)
		req := <-ex.reqCh
		ex.apply(req)
	}
	if ex.now > until {
		ex.now = until
	}
	// Drain zero-time work pending at the horizon instant: a consume that
	// finished exactly at the horizon must still return to its thread so
	// completion bookkeeping (e.g. a server marking a handler served) is
	// observable — the discrete-event simulator records such completions,
	// and the two engines must agree at the boundary.
	for steps := 0; steps < 1_000_000; steps++ {
		th := ex.pickReadyZeroCPU()
		if th == nil {
			break
		}
		ex.resume(th)
		req := <-ex.reqCh
		ex.apply(req)
	}
	if len(ex.errs) > 0 {
		return ex.errs[0]
	}
	return nil
}

// shutdownChannel unwinds every live thread goroutine (ChannelKernel).
func (ex *Exec) shutdownChannel() {
	for _, th := range ex.threads {
		if th.state == stateDone {
			continue
		}
		if !th.started {
			// No body in progress, so there is no goroutine to unwind: a
			// pooled thread never dispatched, or an activation entity
			// between releases (on any executive configuration).
			th.state = stateDone
			continue
		}
		th.resumeCh <- resumeMsg{kill: true}
		req := <-ex.reqCh
		if req.kind != reqTerminate {
			// The kill unwinds to the terminate request; anything else is
			// a protocol bug.
			panic(fmt.Sprintf("exec: thread %s sent %d during shutdown", req.th.name, req.kind))
		}
		req.th.state = stateDone
	}
}
