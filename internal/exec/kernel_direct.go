package exec

import (
	"fmt"

	"rtsj/internal/rtime"
)

// This file is the DirectKernel: the channel-free executive.
//
// Handoff protocol. At any instant exactly one goroutine owns the virtual
// CPU (the "token"): either the Run goroutine or one thread goroutine. The
// token owner runs the scheduling loop (dispatch) inline. When the loop
// picks the owner's own thread, dispatch simply returns — consecutive
// same-thread Consume/advance/sleep steps therefore never leave the
// goroutine (batching; zero futex operations). Only when a *different*
// thread must run does the owner wake that thread's condition variable and
// park on its own: one parked-goroutine handoff per real context switch,
// instead of the channel kernel's two channel rendezvous per kernel call.
//
// All park/wake flags live under ex.mu; the mutex handoff also publishes
// every kernel-state write of the old owner to the new one (the race
// detector sees the happens-before edge through ex.mu). Kernel state itself
// needs no lock: only the token owner touches it.
//
// Determinism contract. dispatch reproduces the channel kernel's loop
// structure exactly — fire due timers, assign ready threads to the virtual
// CPUs (per-domain top-K by priority, FIFO within a priority by wake
// order; see smp.go), zero-step occupants in ascending CPU index order,
// advance consume slices on every occupied CPU in lockstep to the next
// timer or horizon, drain zero-CPU threads at the horizon — so both
// kernels produce identical schedules, timestamps and trace segments. The
// per-domain ready queues and the timer queue are binary heaps (heap.go)
// keyed exactly like the channel kernel's linear-scan tie-breaks; with one
// CPU the assignment degenerates to "the heap top runs", the pre-SMP loop.

// directRun is the goroutine wrapper around a thread body (DirectKernel,
// goroutine-per-thread mode).
func (th *Thread) directRun() {
	if msg := th.park(); msg.kill {
		th.directFinish(nil)
		return
	}
	th.directBody()
}

// runPooledDirect runs the body on a pool worker (DirectKernel, pooled
// mode). The thread was just picked by the scheduler, so unlike directRun
// there is no initial park: the worker already holds the virtual CPU.
func (th *Thread) runPooledDirect() { th.directBody() }

// directBody executes the body with the executive's panic discipline and
// finishes the thread — or, for an activation entity that completed
// normally, rearms it for the next release instead.
func (th *Thread) directBody() {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); !isKill {
					err = fmt.Errorf("exec: thread %s panicked: %v", th.name, r)
				}
			}
		}()
		th.callBody()
	}()
	if th.periodic && err == nil && !th.ex.shutdown {
		th.directRearm()
		return
	}
	th.directFinish(err)
}

// directRearm ends one activation: the body just returned, so detach it
// (this goroutine leaves, but the thread lives on to its next release),
// rearm the release bookkeeping and keep scheduling until the token is
// handed off — the activation analogue of directFinish.
func (th *Thread) directRearm() {
	ex := th.ex
	th.detached = true
	ex.rearm(th)
	if ex.pooled {
		// Declare this worker free (or retire it) before the token is
		// handed on, exactly as directFinish does for a terminating body.
		ex.bodyFinished(th)
	}
	ex.dispatch(th)
}

// directFinish terminates the thread: during a run it applies the terminate
// request and keeps scheduling in this goroutine until the token is handed
// off; during shutdown it only reports the death to the reaper.
func (th *Thread) directFinish(err error) {
	ex := th.ex
	if ex.shutdown {
		ex.mu.Lock()
		th.state = stateDone
		if err != nil {
			th.err = err
			ex.errs = append(ex.errs, err)
		}
		ex.reap.Broadcast()
		ex.mu.Unlock()
		return
	}
	ex.apply(request{th: th, kind: reqTerminate, err: err})
	if ex.pooled {
		// Declare this worker free (or retire it) before the token is
		// handed on, so a successor thread starting right away reuses it
		// instead of growing the pool.
		ex.bodyFinished(th)
	}
	ex.dispatch(th)
}

// directCall posts a kernel request and schedules inline (DirectKernel side
// of TC.kernelCall). The calling goroutine returns once its thread is
// picked to run user code again — possibly without ever parking.
func (tc *TC) directCall(req request) {
	ex := tc.th.ex
	ex.apply(req)
	if msg := ex.dispatch(tc.th); msg.kill {
		panic(killSentinel{})
	}
}

// park blocks the calling thread goroutine until it is scheduled or killed.
func (th *Thread) park() resumeMsg {
	ex := th.ex
	ex.mu.Lock()
	for !th.scheduled && !th.killed {
		th.cond.Wait()
	}
	th.scheduled = false
	killed := th.killed
	ex.mu.Unlock()
	return resumeMsg{kill: killed}
}

// wake marks th scheduled and signals its goroutine.
func (ex *Exec) wake(th *Thread) {
	ex.mu.Lock()
	th.scheduled = true
	th.cond.Signal()
	ex.mu.Unlock()
}

// parkMain blocks the Run goroutine until a thread ends the run.
func (ex *Exec) parkMain() {
	ex.mu.Lock()
	for !ex.mainOn {
		ex.main.Wait()
	}
	ex.mainOn = false
	ex.mu.Unlock()
}

// wakeMain hands the token back to the Run goroutine.
func (ex *Exec) wakeMain() {
	ex.mu.Lock()
	ex.mainOn = true
	ex.main.Signal()
	ex.mu.Unlock()
}

// handoff transfers the token from cur (nil for the Run goroutine) to next
// and parks cur. A terminated or detached cur hands off without parking:
// its goroutine is about to exit (or return to the pool). A thread whose
// body has not started — a pooled thread before its first dispatch, or an
// activation entity at a release — is handed to a pool worker (or a fresh
// per-activation goroutine outside pooled mode) instead of woken: it has
// no goroutine parked yet.
func (ex *Exec) handoff(cur, next *Thread) resumeMsg {
	ex.stats.ContextSwitches.Inc()
	// Read our own state while we still hold the token: the instant next
	// is woken (or handed to a pool worker) it may run kernel code that
	// writes thread states concurrently with this goroutine's epilogue.
	// (next may be cur itself — a detached activation re-released at the
	// current instant — so capture before startThread clears the flag.)
	curDone := cur != nil && (cur.state == stateDone || cur.detached)
	if !next.started {
		next.started = true
		next.detached = false
		if ex.pooled {
			ex.startThread(next)
		} else {
			go next.directBody()
		}
	} else {
		ex.wake(next)
	}
	if cur == nil {
		ex.parkMain()
		return resumeMsg{}
	}
	if curDone {
		return resumeMsg{}
	}
	return cur.park()
}

// fireDueTimersHeap pops and runs every timer due at or before now in
// (time, seq) order. Timers scheduled by a fired fn are clamped to >= now
// and carry a larger seq, so heap pop order matches the channel kernel's
// collect-sort-fire batches.
func (ex *Exec) fireDueTimersHeap() {
	for {
		ev := ex.theap.peek()
		if ev == nil || ev.at > ex.now {
			return
		}
		ex.theap.pop()
		ev.fn()
	}
}

// pickReadyZeroCPUHeap returns the highest-priority ready thread across
// every scheduling domain that is not mid-consume (horizon drain — time is
// frozen at the horizon instant, so the drain serializes zero-time
// completions globally, exactly like the channel kernel's all-thread scan).
func (ex *Exec) pickReadyZeroCPUHeap() *Thread {
	var best *Thread
	for d := range ex.readyQ {
		th := ex.pickReadyZeroCPUDomain(d)
		if th != nil && (best == nil || higherRank(th, best)) {
			best = th
		}
	}
	return best
}

// runDirect is the DirectKernel Run: it seeds the scheduling loop in the
// Run goroutine; the loop then migrates between goroutines with the token
// and the Run goroutine parks until the horizon, quiescence or a livelock
// ends the run.
func (ex *Exec) runDirect(until rtime.Time) error {
	ex.until = until
	ex.phase = phaseRunning
	ex.zeroSteps = 0
	ex.lastNow = ex.now
	ex.runErr = nil
	ex.dispatch(nil)
	ex.phase = phaseIdle
	if ex.runErr != nil {
		return ex.runErr
	}
	if len(ex.errs) > 0 {
		return ex.errs[0]
	}
	return nil
}

// dispatch runs the scheduling loop inline in the calling goroutine (cur's
// goroutine; cur == nil for the Run goroutine). It returns when cur's own
// thread is picked to run user code, or — after handing the token off —
// when cur is woken again. The loop structure mirrors runChannel exactly.
func (ex *Exec) dispatch(cur *Thread) resumeMsg {
	for {
		switch ex.phase {
		case phaseRunning:
			if ex.now >= ex.until {
				if ex.now > ex.until {
					ex.now = ex.until
				}
				ex.drainSteps = 0
				ex.phase = phaseDraining
				continue
			}
			ex.fireDueTimersHeap()
			if ex.assignCPUs() == 0 {
				ev := ex.theap.peek()
				if ev == nil {
					ex.phase = phaseDone // quiescent: nothing will ever happen again
					continue
				}
				ex.now = rtime.Min(ev.at, ex.until)
				continue
			}
			th := ex.zeroStepOccupant()
			if th == nil {
				ex.runSlices(ex.until)
				continue
			}
			// Zero-time step: let th execute Go code to its next kernel call.
			if ex.now == ex.lastNow {
				ex.zeroSteps++
				if ex.zeroSteps > 1_000_000 {
					ex.runErr = fmt.Errorf("exec: livelock at %v: thread %s loops without consuming",
						ex.now, th.name)
					ex.phase = phaseDone
					continue
				}
			} else {
				ex.zeroSteps = 0
				ex.lastNow = ex.now
			}
			if debugChecks {
				ex.checkReadyHeap()
			}
			if th == cur && !cur.detached {
				return resumeMsg{} // batched continuation: no handoff
			}
			// A detached cur re-picked at the same instant is NOT a
			// continuation: its body already returned, so the next
			// activation needs a fresh dispatch via handoff.
			return ex.handoff(cur, th)
		case phaseDraining:
			// Zero-time work pending at the horizon instant (see runChannel).
			th := ex.pickReadyZeroCPUHeap()
			if th == nil || ex.drainSteps >= 1_000_000 {
				ex.phase = phaseDone
				continue
			}
			ex.drainSteps++
			if th == cur && !cur.detached {
				return resumeMsg{}
			}
			return ex.handoff(cur, th)
		case phaseDone:
			if cur == nil {
				return resumeMsg{} // Run goroutine: runDirect returns
			}
			// Read before the token moves; a detached cur must not park —
			// its goroutine is leaving while the thread sleeps on.
			curDone := cur.state == stateDone || cur.detached
			ex.wakeMain()
			if curDone {
				return resumeMsg{} // goroutine exits via directFinish
			}
			return cur.park() // resumes in a later Run (or unwinds on kill)
		default:
			panic("exec: kernel call outside Run")
		}
	}
}

// shutdownDirect unwinds every live thread goroutine (DirectKernel). Each
// parked thread is killed and the reaper waits for its death before moving
// on, so Shutdown returns with every goroutine gone.
func (ex *Exec) shutdownDirect() {
	for _, th := range ex.threads {
		if th.state == stateDone {
			continue
		}
		if !th.started {
			// No body in progress, so there is no goroutine to unwind: a
			// pooled thread never dispatched, or an activation entity
			// between releases (on any executive configuration).
			th.state = stateDone
			continue
		}
		ex.mu.Lock()
		th.killed = true
		th.cond.Signal()
		for th.state != stateDone {
			ex.reap.Wait()
		}
		ex.mu.Unlock()
	}
}
