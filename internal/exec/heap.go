package exec

// Binary heaps backing the DirectKernel's ready queue and timer queue.
// Both are keyed exactly like the channel kernel's linear-scan tie-breaks,
// so pop order is identical to the reference implementation:
//
//   ready: (effective priority desc, readySeq asc) — FIFO within a
//          priority level by wake order; readySeq is unique, so the order
//          is total and deterministic.
//   timer: (instant asc, seq asc).
//
// The ready heap maintains Thread.heapIdx so membership tests, removal and
// re-keying (priority-inheritance boosts, FIFO re-queues) are O(log n)
// without searching. The timer heap uses lazy deletion: cancelled events
// stay in the heap and are dropped when they surface at the top.

type readyHeap struct{ a []*Thread }

func (h *readyHeap) less(i, j int) bool {
	ti, tj := h.a[i], h.a[j]
	pi, pj := ti.effPrio(), tj.effPrio()
	if pi != pj {
		return pi > pj
	}
	return ti.readySeq < tj.readySeq
}

func (h *readyHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].heapIdx = i
	h.a[j].heapIdx = j
}

func (h *readyHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *readyHeap) down(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *readyHeap) push(th *Thread) {
	th.heapIdx = len(h.a)
	h.a = append(h.a, th)
	h.up(th.heapIdx)
}

func (h *readyHeap) peek() *Thread {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *readyHeap) pop() *Thread {
	top := h.a[0]
	h.removeAt(0)
	return top
}

// fix restores heap order after the key of the thread at index i changed
// (a priority boost floats it up; a fresh readySeq sinks it down).
func (h *readyHeap) fix(i int) {
	h.up(i)
	h.down(i)
}

func (h *readyHeap) remove(th *Thread) {
	if th.heapIdx >= 0 {
		h.removeAt(th.heapIdx)
	}
}

func (h *readyHeap) removeAt(i int) {
	n := len(h.a) - 1
	out := h.a[i]
	if i != n {
		h.swap(i, n)
	}
	h.a[n] = nil
	h.a = h.a[:n]
	out.heapIdx = -1
	if i < n {
		h.fix(i)
	}
}

type timerHeap struct{ a []*timerEv }

func (h *timerHeap) less(i, j int) bool {
	ei, ej := h.a[i], h.a[j]
	if ei.at != ej.at {
		return ei.at < ej.at
	}
	return ei.seq < ej.seq
}

func (h *timerHeap) push(ev *timerEv) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// peek returns the earliest pending timer, discarding cancelled events that
// have surfaced at the top (lazy deletion).
func (h *timerHeap) peek() *timerEv {
	for len(h.a) > 0 {
		if !h.a[0].cancelled {
			return h.a[0]
		}
		h.pop()
	}
	return nil
}

func (h *timerHeap) pop() *timerEv {
	n := len(h.a)
	top := h.a[0]
	h.a[0] = h.a[n-1]
	h.a[n-1] = nil
	h.a = h.a[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
