package exec

import (
	"fmt"
	"strings"
)

// CheckInvariants audits the executive's internal consistency: per-thread
// accounting (consumed CPU, miss and abort counts never negative),
// priority-inheritance sanity (a thread's boost never drops below its base
// priority, and collapses back to it once the thread holds no locks), and
// the DirectKernel's ready-heap bookkeeping (heap indices consistent, done
// threads evicted). It is meant to be called after (or between) runs —
// from the overload scenario family, the differential-test net and the
// fault-plan fuzz run — and returns one error listing every violation, or
// nil. Calling it mid-run from a kernel timer function is also safe: the
// caller runs under the scheduling token, which owns all audited state.
func (ex *Exec) CheckInvariants() error {
	var probs []string
	note := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	for _, th := range ex.threads {
		if th.consumed < 0 {
			note("thread %s: negative consumed %v", th.name, th.consumed)
		}
		if th.needCPU < 0 {
			note("thread %s: negative pending consume %v", th.name, th.needCPU)
		}
		if th.missed < 0 || th.aborted < 0 {
			note("thread %s: negative miss/abort counts %d/%d", th.name, th.missed, th.aborted)
		}
		if th.aborted > 0 && th.missPolicy != MissAbort {
			note("thread %s: aborted activations under policy %v", th.name, th.missPolicy)
		}
		if th.boost < th.prio {
			note("thread %s: boost %d below base priority %d", th.name, th.boost, th.prio)
		}
		if len(th.held) == 0 && th.boost != th.prio {
			note("thread %s: boost %d with no held locks (base %d)", th.name, th.boost, th.prio)
		}
		if th.waitingOn != nil && th.state != stateBlocked && th.state != stateDone {
			note("thread %s: waiting on %s but in state %d", th.name, th.waitingOn.name, th.state)
		}
		if ex.kind == DirectKernel {
			if th.state == stateDone && th.heapIdx >= 0 {
				note("thread %s: done but still in the ready heap", th.name)
			}
			if th.heapIdx >= 0 && th.state != stateReady {
				note("thread %s: in the ready heap in state %d", th.name, th.state)
			}
		}
	}
	if ex.kind == DirectKernel {
		for d := range ex.readyQ {
			for i, th := range ex.readyQ[d].a {
				if th.heapIdx != i {
					note("ready heap %d: slot %d holds %s with heapIdx %d", d, i, th.name, th.heapIdx)
				}
				if th.domain != d {
					note("ready heap %d: holds %s of domain %d", d, th.name, th.domain)
				}
			}
		}
	}
	for c, th := range ex.cpuRun {
		if th != nil && th.lastCPU != c {
			note("cpu %d: occupant %s has lastCPU %d", c, th.name, th.lastCPU)
		}
	}
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("exec: %d invariant violation(s):\n  %s",
		len(probs), strings.Join(probs, "\n  "))
}
