package exec

import (
	"fmt"
	"runtime"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Differential tests for the activation-driven periodic dispatch path: a
// periodic workload expressed as SpawnPeriodic activations must be
// trace-for-trace identical to the same workload expressed as looping
// Spawn threads (work; sleep-until-next-release), on every executive
// configuration — the full {Channel, Direct} × {per-thread, pooled,
// activation} matrix, with channel/per-thread/loop as the reference.

// periodicEntity is one periodic workload item, buildable either as a
// looping thread or as an activation entity.
type periodicEntity struct {
	name   string
	prio   int
	start  rtime.Time
	period rtime.Duration
	// work runs once per release; k is the activation index.
	work func(tc *TC, k int)
}

// buildLoop expresses e as a classic looping thread: the reference
// formulation, including WaitForNextPeriod's skip-and-count overrun
// handling. missed receives the loop's skip count (may be nil).
func (e periodicEntity) buildLoop(ex *Exec, missed *int) {
	// The release grid anchors at the spawn-time first release (as
	// rtsjvm.NewRealtimeThread does), NOT at Now() when the body first
	// executes — that may already be later if higher-priority work ran.
	first := e.start
	if now := ex.Now(); first < now {
		first = now
	}
	ex.Spawn(e.name, e.prio, first, func(tc *TC) {
		next := first
		for k := 0; ; k++ {
			e.work(tc, k)
			next = next.Add(e.period)
			for next < tc.Now() {
				next = next.Add(e.period)
				if missed != nil {
					*missed++
				}
			}
			tc.SleepUntil(next)
		}
	})
}

// buildActivation expresses e as an activation-driven entity.
func (e periodicEntity) buildActivation(ex *Exec) *Thread {
	k := 0
	return ex.SpawnPeriodic(e.name, e.prio, ActivationSpec{Start: e.start, Period: e.period}, func(tc *TC) {
		e.work(tc, k)
		k++
	})
}

// activationDiffRun builds the scenario in both formulations on every
// executive configuration and compares everything observable against the
// loop formulation on the channel reference kernel.
func activationDiffRun(t *testing.T, name string, horizon rtime.Time,
	entities []periodicEntity, extra func(ex *Exec)) {
	t.Helper()
	run := func(opts Options, activation bool) *Exec {
		t.Helper()
		ex := NewWithOptions(trace.New(), opts)
		for _, e := range entities {
			if activation {
				e.buildActivation(ex)
			} else {
				e.buildLoop(ex, nil)
			}
		}
		if extra != nil {
			extra(ex)
		}
		if err := ex.Run(horizon); err != nil {
			t.Fatalf("%s: run failed on %v/activation=%v: %v", name, opts.Kernel, activation, err)
		}
		return ex
	}
	ref := run(Options{Kernel: ChannelKernel}, false)
	defer ref.Shutdown()
	for _, cfg := range diffConfigs {
		for _, activation := range []bool{false, true} {
			if cfg.opts.Kernel == ChannelKernel && cfg.opts.MaxGoroutines == 0 && !activation {
				continue // the reference itself
			}
			label := fmt.Sprintf("%s/%s-act=%v", name, cfg.name, activation)
			got := run(cfg.opts, activation)
			compareExecs(t, label, ref, got)
			got.Shutdown()
		}
	}
}

func TestActivationDiffBasicPeriodic(t *testing.T) {
	activationDiffRun(t, "basic", at(40), []periodicEntity{
		{"p1", 5, 0, tu(5), func(tc *TC, _ int) { tc.Consume(tu(1)) }},
		{"p2", 3, at(1), tu(7), func(tc *TC, _ int) { tc.Consume(tu(2)) }},
	}, nil)
}

func TestActivationDiffPreemptionAndSporadics(t *testing.T) {
	activationDiffRun(t, "preempt", at(60), []periodicEntity{
		{"hi", 8, 0, tu(4), func(tc *TC, _ int) { tc.Consume(tu(1)) }},
		{"lo", 2, 0, tu(9), func(tc *TC, _ int) { tc.Consume(tu(4)) }},
	}, func(ex *Exec) {
		ex.Spawn("oneshot-a", 5, at(3), func(tc *TC) { tc.Consume(tu(2)) })
		ex.Spawn("oneshot-b", 5, at(17), func(tc *TC) { tc.Consume(tu(3)) })
	})
}

func TestActivationDiffOverrunSkips(t *testing.T) {
	// The first activation overruns two whole periods; the entity must skip
	// the missed releases (counting them) and resume on the grid.
	activationDiffRun(t, "overrun", at(50), []periodicEntity{
		{"over", 5, 0, tu(4), func(tc *TC, k int) {
			if k == 0 {
				tc.Consume(tu(9))
			} else {
				tc.Consume(tu(1))
			}
		}},
	}, nil)
}

func TestActivationDiffZeroWorkAndExactBoundary(t *testing.T) {
	activationDiffRun(t, "boundary", at(30), []periodicEntity{
		// Zero-work body: rearm must still advance the release grid.
		{"idle", 4, 0, tu(3), func(tc *TC, _ int) {}},
		// Work that ends exactly on the next release (next == now in the
		// skip loop): the entity re-queues ready without a timer.
		{"exact", 2, 0, tu(5), func(tc *TC, _ int) { tc.Consume(tu(10)) }},
	}, nil)
}

func TestActivationDiffBlockingBody(t *testing.T) {
	// An activation body that blocks mid-release (sleep and wait/notify):
	// its worker parks and resumes like any thread's goroutine.
	q := func(ex *Exec) *WaitQueue { return NewWaitQueue("aq") }
	_ = q
	activationDiffRun(t, "blocking", at(60), []periodicEntity{
		{"napper", 6, 0, tu(10), func(tc *TC, _ int) {
			tc.Consume(tu(1))
			tc.Sleep(tu(2))
			tc.Consume(tu(1))
		}},
		{"busy", 1, 0, tu(6), func(tc *TC, _ int) { tc.Consume(tu(3)) }},
	}, nil)
}

func TestActivationMissedCountMatchesLoop(t *testing.T) {
	e := periodicEntity{"over", 5, 0, tu(4), func(tc *TC, k int) {
		if k%3 == 0 {
			tc.Consume(tu(13)) // overruns three releases
		} else {
			tc.Consume(tu(1))
		}
	}}
	loopMissed := 0
	exL := New(nil)
	e.buildLoop(exL, &loopMissed)
	if err := exL.Run(at(100)); err != nil {
		t.Fatal(err)
	}
	exL.Shutdown()

	for _, cfg := range diffConfigs {
		ex := NewWithOptions(nil, cfg.opts)
		th := e.buildActivation(ex)
		if err := ex.Run(at(100)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		if th.MissedActivations() != loopMissed {
			t.Errorf("%s: activation missed %d releases, loop missed %d",
				cfg.name, th.MissedActivations(), loopMissed)
		}
		if loopMissed == 0 {
			t.Error("scenario never overran; test is vacuous")
		}
		if !th.Periodic() {
			t.Errorf("%s: thread not marked periodic", cfg.name)
		}
	}
}

func TestActivationRunContinuation(t *testing.T) {
	// Activations must survive multiple Run windows: entities sleeping
	// between releases at a horizon resume identically in the next window.
	entities := []periodicEntity{
		{"a", 4, 0, tu(5), func(tc *TC, _ int) { tc.Consume(tu(2)) }},
		{"b", 2, at(1), tu(7), func(tc *TC, _ int) { tc.Consume(tu(3)) }},
	}
	build := func(ex *Exec, activation bool) {
		for _, e := range entities {
			if activation {
				e.buildActivation(ex)
			} else {
				e.buildLoop(ex, nil)
			}
		}
	}
	ref := NewKernel(trace.New(), ChannelKernel)
	build(ref, false)
	type variant struct {
		label string
		ex    *Exec
	}
	var others []variant
	for _, cfg := range diffConfigs {
		ex := NewWithOptions(trace.New(), cfg.opts)
		build(ex, true)
		others = append(others, variant{cfg.name + "-act", ex})
	}
	for _, horizon := range []rtime.Time{at(4), at(11), at(12), at(50)} {
		if err := ref.Run(horizon); err != nil {
			t.Fatal(err)
		}
		for _, v := range others {
			if err := v.ex.Run(horizon); err != nil {
				t.Fatal(err)
			}
			compareExecs(t, fmt.Sprintf("continuation@%v/%s", horizon.TUs(), v.label), ref, v.ex)
		}
	}
	ref.Shutdown()
	for _, v := range others {
		v.ex.Shutdown()
	}
}

func TestActivationBodyPanicTerminates(t *testing.T) {
	for _, cfg := range diffConfigs {
		ex := NewWithOptions(nil, cfg.opts)
		runs := 0
		th := ex.SpawnPeriodic("boom", 5, ActivationSpec{Period: tu(2)}, func(tc *TC) {
			runs++
			tc.Consume(tu(1))
			if runs == 3 {
				panic("third activation explodes")
			}
		})
		err := ex.Run(at(20))
		ex.Shutdown()
		if err == nil {
			t.Fatalf("%s: run did not surface the body panic", cfg.name)
		}
		if runs != 3 {
			t.Errorf("%s: body ran %d times, want 3 (panic must stop releases)", cfg.name, runs)
		}
		if !th.Done() {
			t.Errorf("%s: panicked activation entity not terminated", cfg.name)
		}
		if th.Err() == nil {
			t.Errorf("%s: thread error not recorded", cfg.name)
		}
	}
}

func TestActivationGoroutineFootprint(t *testing.T) {
	// Many periodic entities, pooled: the goroutine count is bounded by the
	// pool, not the entity count — the whole point of the activation path.
	const n = 400
	for _, kind := range []Kernel{DirectKernel, ChannelKernel} {
		before := runtime.NumGoroutine()
		ex := NewWithOptions(nil, Options{Kernel: kind, MaxGoroutines: 8})
		done := 0
		for i := 0; i < n; i++ {
			prio := 2 + i%5
			ex.SpawnPeriodic(fmt.Sprintf("p%d", i), prio,
				ActivationSpec{Start: rtime.Time(rtime.TUs(float64(i % 50))), Period: tu(100)},
				func(tc *TC) { tc.Consume(tu(0.1)); done++ })
		}
		if err := ex.Run(at(500)); err != nil {
			t.Fatal(err)
		}
		if peak := ex.PoolPeak(); peak == 0 || peak > 8+1 {
			t.Errorf("%v: pool peaked at %d workers for %d entities, want <= pool size", kind, peak, n)
		}
		if done < n {
			t.Errorf("%v: only %d of %d entities ever activated", kind, done, n)
		}
		ex.Shutdown()
		if after := runtime.NumGoroutine(); after > before+4 {
			t.Errorf("%v: goroutines leaked: before=%d after=%d", kind, before, after)
		}
	}
}

func TestSpawnPeriodicValidation(t *testing.T) {
	ex := New(nil)
	defer ex.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnPeriodic with non-positive period did not panic")
		}
	}()
	ex.SpawnPeriodic("bad", 1, ActivationSpec{Period: 0}, func(tc *TC) {})
}
