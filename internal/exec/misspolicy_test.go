package exec

import (
	"fmt"
	"testing"

	"rtsj/internal/faults"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Miss-policy tests: the three deterministic overrun policies (MissSkip,
// MissContinueLate, MissAbort) must behave identically on every executive
// configuration, and the two periodic emulation styles (looping thread vs
// activation entity) must stay schedule-identical per policy.

// continueLateLoop expresses a ContinueLate periodic as a looping thread:
// advance exactly one period per release (counting it late when past due)
// and sleep — a past-due sleep is an immediate deterministic re-queue, the
// same kernel-call sequence the activation rearm issues for the policy.
func continueLateLoop(ex *Exec, name string, prio int, start rtime.Time, period rtime.Duration,
	work func(tc *TC, k int), missed *int) {
	first := start
	if now := ex.Now(); first < now {
		first = now
	}
	ex.Spawn(name, prio, first, func(tc *TC) {
		next := first
		for k := 0; ; k++ {
			work(tc, k)
			next = next.Add(period)
			if next < tc.Now() {
				if missed != nil {
					*missed++
				}
			}
			tc.SleepUntil(next)
		}
	})
}

// TestMissContinueLateLoopActivationParity overruns a ContinueLate
// periodic (every third release costs 2.5 periods) and requires the loop
// and activation formulations to be trace-identical on every
// configuration, with matching late counts.
func TestMissContinueLateLoopActivationParity(t *testing.T) {
	const period = 4.0
	work := func(tc *TC, k int) {
		c := tu(1)
		if k%3 == 0 {
			c = tu(2.5 * period)
		}
		tc.Consume(c)
	}
	type outcome struct {
		ex     *Exec
		missed int
	}
	run := func(opts Options, activation bool) outcome {
		t.Helper()
		ex := NewWithOptions(trace.New(), opts)
		o := outcome{ex: ex}
		// A higher-priority periodic guarantees the overrunner is also
		// preempted, not just late on its own.
		ex.SpawnPeriodic("hi", 10, ActivationSpec{Period: tu(6)}, func(tc *TC) { tc.Consume(tu(0.5)) })
		var th *Thread
		if activation {
			k := 0
			th = ex.SpawnPeriodic("late", 5, ActivationSpec{Period: tu(period), Miss: MissContinueLate},
				func(tc *TC) { work(tc, k); k++ })
		} else {
			continueLateLoop(ex, "late", 5, 0, tu(period), work, &o.missed)
		}
		if err := ex.Run(at(100)); err != nil {
			t.Fatal(err)
		}
		if th != nil {
			o.missed = th.MissedActivations()
		}
		if err := ex.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
		return o
	}
	ref := run(Options{Kernel: ChannelKernel}, false)
	defer ref.ex.Shutdown()
	if ref.missed == 0 {
		t.Fatal("scenario produced no late release: not exercising ContinueLate")
	}
	for _, cfg := range diffConfigs {
		for _, activation := range []bool{false, true} {
			if cfg.opts.Kernel == ChannelKernel && cfg.opts.MaxGoroutines == 0 && !activation {
				continue
			}
			label := fmt.Sprintf("%s-act=%v", cfg.name, activation)
			got := run(cfg.opts, activation)
			compareExecs(t, label, ref.ex, got.ex)
			if got.missed != ref.missed {
				t.Errorf("%s: late count %d, ref %d", label, got.missed, ref.missed)
			}
			got.ex.Shutdown()
		}
	}
}

// TestMissAbortCutsOverrunningBodies runs a MissAbort activation entity
// whose body periodically overruns: the overrunning releases must be cut
// at the next release boundary (aborted, not late, not skipped), the
// well-behaved releases must complete, and the schedule must be identical
// on all four executive configurations.
func TestMissAbortCutsOverrunningBodies(t *testing.T) {
	const period = 5.0
	run := func(opts Options) (*Exec, *Thread, int) {
		t.Helper()
		ex := NewWithOptions(trace.New(), opts)
		completed := 0
		k := 0
		th := ex.SpawnPeriodic("ab", 5, ActivationSpec{Period: tu(period), Miss: MissAbort},
			func(tc *TC) {
				myK := k
				k++
				if myK%4 == 1 {
					tc.Consume(tu(3 * period)) // overrun: must be aborted
				} else {
					tc.Consume(tu(1))
				}
				completed++
			})
		if err := ex.Run(at(80)); err != nil {
			t.Fatal(err)
		}
		if err := ex.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
		return ex, th, completed
	}
	ref, refTh, refDone := run(Options{Kernel: ChannelKernel})
	defer ref.Shutdown()
	if refTh.AbortedActivations() == 0 {
		t.Fatal("no activation aborted: not exercising MissAbort")
	}
	if refDone == 0 {
		t.Fatal("no activation completed")
	}
	// An aborted body is cut at its release boundary: the entity never
	// skips releases under MissAbort (the budget expires exactly at the
	// next release, so the rearm finds nextRel >= now).
	if refTh.MissedActivations() != 0 {
		t.Errorf("MissAbort skipped %d releases; aborts should keep the release grid", refTh.MissedActivations())
	}
	for _, cfg := range diffConfigs[1:] {
		got, gotTh, gotDone := run(cfg.opts)
		compareExecs(t, cfg.name, ref, got)
		if gotTh.AbortedActivations() != refTh.AbortedActivations() {
			t.Errorf("%s: aborted %d, ref %d", cfg.name, gotTh.AbortedActivations(), refTh.AbortedActivations())
		}
		if gotDone != refDone {
			t.Errorf("%s: completed %d, ref %d", cfg.name, gotDone, refDone)
		}
		got.Shutdown()
	}
}

// TestMissPolicyString pins the textual names.
func TestMissPolicyString(t *testing.T) {
	for p, want := range map[MissPolicy]string{
		MissSkip: "skip", MissContinueLate: "continue-late", MissAbort: "abort",
	} {
		if got := p.String(); got != want {
			t.Errorf("MissPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

// TestWithBudgetUnderInjectedOverruns drives WithBudget with actual costs
// drawn from a seeded fault plan, on all four executive configurations:
// a job must be interrupted exactly when its faulted cost exceeds the
// budget, and the outcome sequence must be configuration-independent.
func TestWithBudgetUnderInjectedOverruns(t *testing.T) {
	plan := &faults.Plan{Seed: 42, OverrunProb: 0.5, OverrunMax: 2}
	const jobs = 40
	budget := tu(2)
	declared := tu(1.2)
	run := func(opts Options) (fp uint64, interrupted int) {
		t.Helper()
		ex := NewWithOptions(trace.Nop{}, opts)
		fp = 14695981039346656037
		// Releases spaced so jobs never overlap: the budget clock is
		// wall-clock, so isolation makes "interrupted" a pure function of
		// the faulted cost.
		for i := 0; i < jobs; i++ {
			i := i
			actual := plan.JobFault(0, i).Apply(declared)
			ex.Spawn(fmt.Sprintf("j%d", i), 5, at(float64(i*10)), func(tc *TC) {
				cut := tc.WithBudget(budget, func() { tc.Consume(actual) })
				if cut != (actual > budget) {
					t.Errorf("job %d: interrupted=%v for actual=%v budget=%v", i, cut, actual, budget)
				}
				if cut {
					interrupted++
				}
				fp = (fp ^ uint64(i)) * 1099511628211
				fp = (fp ^ uint64(tc.Now())) * 1099511628211
				if cut {
					fp = (fp ^ 1) * 1099511628211
				}
			})
		}
		if err := ex.Run(at(jobs * 10)); err != nil {
			t.Fatal(err)
		}
		if err := ex.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
		ex.Shutdown()
		return fp, interrupted
	}
	refFP, refInt := run(diffConfigs[0].opts)
	if refInt == 0 || refInt == jobs {
		t.Fatalf("degenerate overrun draw: %d of %d interrupted", refInt, jobs)
	}
	for _, cfg := range diffConfigs[1:] {
		fp, n := run(cfg.opts)
		if fp != refFP || n != refInt {
			t.Errorf("%s: fp=%#x interrupted=%d; ref fp=%#x interrupted=%d", cfg.name, fp, n, refFP, refInt)
		}
	}
}
