//go:build !debugchecks

package exec

// debugChecks gates the O(n log n) ready-queue invariant verification
// (checkReadyHeap) out of the per-dispatch hot path. Build with
// `-tags debugchecks` to run the full sorted-order check on every dispatch;
// in default builds the constant folds the call away entirely.
const debugChecks = false

func (ex *Exec) checkReadyHeap() {}
