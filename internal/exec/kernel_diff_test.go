package exec

import (
	"fmt"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Differential kernel tests: every scenario is built identically on every
// executive configuration — {ChannelKernel, DirectKernel} × {one goroutine
// per thread, pooled workers} — and must produce trace-for-trace identical
// schedules — same segments, same preemption points, same virtual
// timestamps, same point events, same per-thread accounting. The channel
// kernel in goroutine-per-thread mode is the reference implementation.

// diffConfigs is the executive configuration matrix under differential
// test. The small MaxGoroutines forces worker recycling (and transient
// over-cap growth) inside the scenarios rather than hiding it.
// The two smp1 entries run the whole corpus through the M=1 SMP
// reduction — an explicit CPU count and a non-trivial migration policy —
// which must stay byte-identical to the uniprocessor schedules
// (TestSMPM1MatchesUniprocessor pins the same property against Options{}).
var diffConfigs = []struct {
	name string
	opts Options
}{
	{"channel", Options{Kernel: ChannelKernel}},
	{"direct", Options{Kernel: DirectKernel}},
	{"channel-pooled", Options{Kernel: ChannelKernel, MaxGoroutines: 2}},
	{"direct-pooled", Options{Kernel: DirectKernel, MaxGoroutines: 2}},
	{"channel-smp1", Options{Kernel: ChannelKernel, CPUs: 1, Migration: Clustered}},
	{"direct-smp1", Options{Kernel: DirectKernel, CPUs: 1, Migration: Partitioned}},
}

// diffRun builds the scenario on every configuration, runs to the horizon
// and compares everything observable against the channel reference.
func diffRun(t *testing.T, name string, horizon rtime.Time, build func(ex *Exec)) {
	t.Helper()
	run := func(opts Options) (*Exec, error) {
		ex := NewWithOptions(trace.New(), opts)
		build(ex)
		err := ex.Run(horizon)
		return ex, err
	}
	ref, refErr := run(diffConfigs[0].opts)
	defer ref.Shutdown()
	for _, cfg := range diffConfigs[1:] {
		got, gotErr := run(cfg.opts)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: channel=%v %s=%v", name, refErr, cfg.name, gotErr)
		}
		compareExecs(t, name+"/"+cfg.name, ref, got)
		got.Shutdown()
	}
}

func compareExecs(t *testing.T, name string, ref, got *Exec) {
	t.Helper()
	compareExecsCPUs(t, name, ref, got, 1)
}

// compareExecsCPUs is compareExecs under an m-CPU occupancy bound: traces
// must still be byte-identical, but up to m segments may overlap.
func compareExecsCPUs(t *testing.T, name string, ref, got *Exec, m int) {
	t.Helper()
	if ref.Now() != got.Now() {
		t.Errorf("%s: final time differs: ref=%v got=%v", name, ref.Now().TUs(), got.Now().TUs())
	}
	a, b := ref.Trace(), got.Trace()
	if err := b.CheckCPUs(m); err != nil {
		t.Errorf("%s: trace invalid: %v", name, err)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Errorf("%s: segment counts differ: ref=%d got=%d\nref:\n%s\ngot:\n%s",
			name, len(a.Segments), len(b.Segments),
			a.Gantt(trace.GanttOptions{}), b.Gantt(trace.GanttOptions{}))
		return
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Errorf("%s: segment %d differs: ref=%+v got=%+v", name, i, a.Segments[i], b.Segments[i])
			return
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("%s: event counts differ: ref=%d got=%d", name, len(a.Events), len(b.Events))
		return
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("%s: event %d differs: ref=%+v got=%+v", name, i, a.Events[i], b.Events[i])
			return
		}
	}
	for i := range ref.threads {
		ta, tb := ref.threads[i], got.threads[i]
		if ta.Name() != tb.Name() || ta.Consumed() != tb.Consumed() || ta.Done() != tb.Done() {
			t.Errorf("%s: thread %s accounting differs: ref consumed=%v done=%v, got consumed=%v done=%v",
				name, ta.Name(), ta.Consumed(), ta.Done(), tb.Consumed(), tb.Done())
		}
	}
}

func TestKernelDiffPreemptionAndFIFO(t *testing.T) {
	diffRun(t, "preemption", at(20), func(ex *Exec) {
		ex.Spawn("lo", 1, 0, func(tc *TC) { tc.Consume(tu(6)) })
		ex.Spawn("hi", 2, at(2), func(tc *TC) { tc.Consume(tu(2)) })
		ex.Spawn("peer-a", 1, 0, func(tc *TC) { tc.Consume(tu(1)) })
		ex.Spawn("peer-b", 1, 0, func(tc *TC) { tc.Consume(tu(1)) })
	})
}

func TestKernelDiffSleepWaitNotify(t *testing.T) {
	diffRun(t, "sleep-wait-notify", at(30), func(ex *Exec) {
		q := NewWaitQueue("q")
		ex.Spawn("periodic", 3, 0, func(tc *TC) {
			next := rtime.Time(0)
			for i := 0; i < 4; i++ {
				tc.Consume(tu(1))
				next = next.Add(tu(5))
				tc.SleepUntil(next)
			}
		})
		ex.Spawn("waiter", 2, 0, func(tc *TC) {
			tc.Wait(q)
			tc.Consume(tu(2))
		})
		ex.Spawn("notifier", 1, 0, func(tc *TC) {
			tc.Consume(tu(4))
			tc.NotifyAll(q)
			tc.Consume(tu(1))
		})
	})
}

func TestKernelDiffBudgetInterrupt(t *testing.T) {
	diffRun(t, "budget", at(30), func(ex *Exec) {
		ex.Spawn("timerd", 9, at(1), func(tc *TC) { tc.Consume(tu(1)) })
		ex.Spawn("srv", 1, 0, func(tc *TC) {
			tc.WithBudget(tu(3), func() { tc.Consume(tu(3)) }) // wall-clock: interrupted
			tc.WithBudget(tu(5), func() { tc.Consume(tu(2)) }) // completes
		})
	})
}

func TestKernelDiffMutexPriorityInheritance(t *testing.T) {
	diffRun(t, "mutex-pi", at(40), func(ex *Exec) {
		m := NewMutex("m")
		ex.Spawn("low", 1, 0, func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(5)) })
			tc.Consume(tu(1))
		})
		ex.Spawn("mid", 2, at(1), func(tc *TC) { tc.Consume(tu(3)) })
		ex.Spawn("high", 3, at(2), func(tc *TC) {
			tc.WithLock(m, func() { tc.Consume(tu(1)) })
		})
	})
}

func TestKernelDiffSpawnFromThreadAndHorizonDrain(t *testing.T) {
	diffRun(t, "spawn-horizon", at(5), func(ex *Exec) {
		ex.Spawn("parent", 1, 0, func(tc *TC) {
			tc.Consume(tu(1))
			tc.Exec().Spawn("child", 2, tc.Now(), func(tc2 *TC) {
				tc2.Consume(tu(2))
			})
			tc.Consume(tu(10)) // still mid-consume at the horizon
		})
	})
}

func TestKernelDiffRunContinuation(t *testing.T) {
	// Two Run calls: threads parked mid-consume at the first horizon must
	// continue identically in the second window on both kernels.
	build := func(ex *Exec) {
		ex.Spawn("a", 2, 0, func(tc *TC) {
			for i := 0; i < 3; i++ {
				tc.Consume(tu(4))
				tc.Sleep(tu(2))
			}
		})
		ex.Spawn("b", 1, 0, func(tc *TC) { tc.Consume(tu(9)) })
	}
	ref := NewKernel(trace.New(), ChannelKernel)
	build(ref)
	others := make([]*Exec, 0, len(diffConfigs)-1)
	for _, cfg := range diffConfigs[1:] {
		ex := NewWithOptions(trace.New(), cfg.opts)
		build(ex)
		others = append(others, ex)
	}
	for _, horizon := range []rtime.Time{at(5), at(11), at(40)} {
		if err := ref.Run(horizon); err != nil {
			t.Fatal(err)
		}
		for i, ex := range others {
			if err := ex.Run(horizon); err != nil {
				t.Fatal(err)
			}
			compareExecs(t, fmt.Sprintf("continuation@%v/%s", horizon.TUs(), diffConfigs[i+1].name), ref, ex)
		}
	}
	ref.Shutdown()
	for _, ex := range others {
		ex.Shutdown()
	}
}

// TestKernelDiffFuzz runs randomized thread/priority workloads through both
// kernels: random mixes of consume, sleep, contended locking and budgeted
// sections across threads with random priorities and release offsets.
func TestKernelDiffFuzz(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := newDetRand(uint64(4000 + trial))
		n := 2 + rng.next()%6
		type op struct {
			kind  int // 0 consume, 1 sleep, 2 lock+consume, 3 budget+consume, 4 wait, 5 notify
			dur   rtime.Duration
			mutex int
		}
		plans := make([][]op, n)
		prios := make([]int, n)
		starts := make([]rtime.Time, n)
		for i := 0; i < n; i++ {
			prios[i] = 1 + rng.next()%4
			starts[i] = rtime.Time(rtime.Duration(rng.next()%12) * rtime.TU / 2)
			steps := 1 + rng.next()%6
			for s := 0; s < steps; s++ {
				plans[i] = append(plans[i], op{
					kind:  rng.next() % 6,
					dur:   rtime.Duration(1+rng.next()%40) * rtime.TU / 10,
					mutex: rng.next() % 2,
				})
			}
		}
		diffRun(t, fmt.Sprintf("fuzz-%d", trial), at(100), func(ex *Exec) {
			ms := []*Mutex{NewMutex("m0"), NewMutex("m1")}
			q := NewWaitQueue("fq")
			for i := 0; i < n; i++ {
				plan := plans[i]
				ex.Spawn(fmt.Sprintf("f%d", i), prios[i], starts[i], func(tc *TC) {
					for _, o := range plan {
						switch o.kind {
						case 0:
							tc.Consume(o.dur)
						case 1:
							tc.Sleep(o.dur)
						case 2:
							tc.WithLock(ms[o.mutex], func() { tc.Consume(o.dur) })
						case 3:
							tc.WithBudget(o.dur, func() { tc.Consume(o.dur + o.dur/2) })
						case 4:
							tc.NotifyAll(q) // wake anyone parked before us, then park
							tc.Wait(q)
						case 5:
							tc.NotifyAll(q)
							tc.Consume(o.dur / 2)
						}
					}
					tc.NotifyAll(q) // do not strand waiters at exit
				})
			}
		})
		if t.Failed() {
			t.Fatalf("fuzz trial %d diverged (seed %d)", trial, 4000+trial)
		}
	}
}

// TestKernelDiffSameInstantCancel pins the edge where a timer fn cancels
// another timer due at the same instant: on both kernels a cancelled timer
// never fires, even when it was already due when the batch began.
func TestKernelDiffSameInstantCancel(t *testing.T) {
	for _, kind := range []Kernel{ChannelKernel, DirectKernel} {
		ex := NewKernel(nil, kind)
		fired := false
		var cancel func()
		ex.At(at(5), func() { cancel() })
		cancel = ex.At(at(5), func() { fired = true })
		if err := ex.Run(at(10)); err != nil {
			t.Fatal(err)
		}
		ex.Shutdown()
		if fired {
			t.Errorf("%v kernel: timer cancelled at its own instant still fired", kind)
		}
	}
	// And the schedules around such a cancellation stay identical.
	diffRun(t, "same-instant-cancel", at(20), func(ex *Exec) {
		e := ex
		var cancel func()
		q := NewWaitQueue("q")
		ex.Spawn("victim", 2, 0, func(tc *TC) {
			tc.Wait(q)
			tc.Consume(tu(1))
		})
		e.At(at(5), func() { cancel() })
		cancel = e.At(at(5), func() { e.NotifyAll(q) })
		e.At(at(7), func() { e.NotifyAll(q) })
		ex.Spawn("busy", 1, 0, func(tc *TC) { tc.Consume(tu(12)) })
	})
}

// TestChannelKernelStillWorks pins the reference kernel's basic behaviour
// so the differential baseline itself cannot silently rot.
func TestChannelKernelStillWorks(t *testing.T) {
	ex := NewKernel(nil, ChannelKernel)
	if ex.KernelKind() != ChannelKernel {
		t.Fatal("kernel kind not recorded")
	}
	th := ex.Spawn("a", 1, 0, func(tc *TC) {
		tc.Consume(tu(2))
		tc.Sleep(tu(1))
		tc.Consume(tu(1))
	})
	if err := ex.Run(at(10)); err != nil {
		t.Fatal(err)
	}
	ex.Shutdown()
	if th.Consumed() != tu(3) || !th.Done() {
		t.Fatalf("consumed=%v done=%v", th.Consumed(), th.Done())
	}
}
