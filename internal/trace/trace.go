// Package trace records what happened during a simulated or emulated
// execution: which entity occupied the processor when, and point events such
// as arrivals, completions, interruptions and capacity changes.
//
// Both engines (the discrete-event simulator in internal/sim and the
// virtual-time executive in internal/exec) emit the same trace format, so
// executions and simulations can be rendered and compared with the same
// tooling — this mirrors the paper's side-by-side temporal diagrams
// (Figures 2–4).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"rtsj/internal/rtime"
)

// EventKind classifies a point event on a trace row.
type EventKind int

// Point event kinds.
const (
	Arrival     EventKind = iota // a job or asynchronous event was released
	Completion                   // a job or handler finished normally
	Interrupted                  // a handler was asynchronously interrupted
	DeadlineMiss
	Replenish    // a server recovered its capacity
	CapacityLost // a polling server dropped its remaining capacity
	Shed         // a server dropped a release under overload (load shedding)
	Custom
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Completion:
		return "completion"
	case Interrupted:
		return "interrupted"
	case DeadlineMiss:
		return "deadline-miss"
	case Replenish:
		return "replenish"
	case CapacityLost:
		return "capacity-lost"
	case Shed:
		return "shed"
	default:
		return "custom"
	}
}

// marker is the Gantt glyph for each event kind.
func (k EventKind) marker() byte {
	switch k {
	case Arrival:
		return '^'
	case Completion:
		return 'v'
	case Interrupted:
		return 'x'
	case DeadlineMiss:
		return '!'
	case Replenish:
		return 'r'
	case CapacityLost:
		return 'l'
	case Shed:
		return 's'
	default:
		return '*'
	}
}

// Segment is a half-open interval [Start, End) during which Entity occupied
// the processor. Label optionally names the work performed (for a server,
// the handler being served).
type Segment struct {
	// Entity names the trace row (the thread or task that ran).
	Entity string
	// Start and End delimit the half-open execution interval.
	Start, End rtime.Time
	// Label optionally names the work performed.
	Label string
	// CPU is the virtual CPU the segment ran on (always 0 for the
	// uniprocessor engines; the SMP executive records real indices).
	CPU int
}

// Dur returns the segment length.
func (s Segment) Dur() rtime.Duration { return s.End.Sub(s.Start) }

// Event is a point event attached to an entity's row.
type Event struct {
	// Entity names the trace row the event belongs to.
	Entity string
	// At is the event instant.
	At rtime.Time
	// Kind classifies the event (release, completion, interruption, ...).
	Kind EventKind
	// Label optionally annotates the event.
	Label string
}

// Sink receives schedule recordings from an engine. *Trace is the
// accumulating implementation; Nop discards everything, which lets
// metrics-only runs (the table and matrix cells) skip all trace
// bookkeeping and its allocations.
type Sink interface {
	// DeclareEntity registers a row before any segment is recorded.
	DeclareEntity(name string)
	// Run records that entity executed over [start, end).
	Run(entity string, start, end rtime.Time, label string)
	// Mark records a point event.
	Mark(entity string, at rtime.Time, kind EventKind, label string)
}

// CPUSink is the optional Sink extension for engines that schedule more
// than one virtual CPU: RunOn is Run with an explicit CPU index. Engines
// probe for it once with a type assertion and fall back to Run (CPU 0)
// when the sink does not care.
type CPUSink interface {
	Sink
	// RunOn records that entity executed over [start, end) on cpu.
	RunOn(entity string, cpu int, start, end rtime.Time, label string)
}

// Nop is a Sink that discards every recording.
type Nop struct{}

// DeclareEntity implements Sink.
func (Nop) DeclareEntity(string) {}

// Run implements Sink.
func (Nop) Run(string, rtime.Time, rtime.Time, string) {}

// RunOn implements CPUSink.
func (Nop) RunOn(string, int, rtime.Time, rtime.Time, string) {}

// Mark implements Sink.
func (Nop) Mark(string, rtime.Time, EventKind, string) {}

// Trace accumulates segments and events for one run. The zero value is
// ready to use. Trace is not safe for concurrent use; both engines are
// single-threaded at the points where they record.
type Trace struct {
	// Segments is every execution interval, in recording order.
	Segments []Segment
	// Events is every point event, in recording order.
	Events []Event

	order map[string]int
	names []string
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Both implementations satisfy Sink and the CPU-aware extension.
var (
	_ CPUSink = (*Trace)(nil)
	_ CPUSink = Nop{}
)

func (tr *Trace) noteEntity(name string) {
	if tr.order == nil {
		tr.order = make(map[string]int)
	}
	if _, ok := tr.order[name]; !ok {
		tr.order[name] = len(tr.names)
		tr.names = append(tr.names, name)
	}
}

// DeclareEntity registers a row (and its display position) before any
// segment is recorded, so idle entities still appear in the Gantt chart.
func (tr *Trace) DeclareEntity(name string) { tr.noteEntity(name) }

// Run records that entity executed over [start, end) on CPU 0.
// Zero-length segments are dropped. Adjacent segments with equal label
// are merged.
func (tr *Trace) Run(entity string, start, end rtime.Time, label string) {
	tr.RunOn(entity, 0, start, end, label)
}

// RunOn records that entity executed over [start, end) on cpu
// (CPUSink). Zero-length segments are dropped. Adjacent segments with
// equal label and CPU are merged — the SMP executive re-places an
// occupant on the same CPU across consecutive slices, so the CPU
// condition only splits segments at real migrations.
func (tr *Trace) RunOn(entity string, cpu int, start, end rtime.Time, label string) {
	if end <= start {
		return
	}
	tr.noteEntity(entity)
	if n := len(tr.Segments); n > 0 {
		last := &tr.Segments[n-1]
		if last.Entity == entity && last.End == start && last.Label == label && last.CPU == cpu {
			last.End = end
			return
		}
	}
	tr.Segments = append(tr.Segments, Segment{Entity: entity, Start: start, End: end, Label: label, CPU: cpu})
}

// Mark records a point event.
func (tr *Trace) Mark(entity string, at rtime.Time, kind EventKind, label string) {
	tr.noteEntity(entity)
	tr.Events = append(tr.Events, Event{Entity: entity, At: at, Kind: kind, Label: label})
}

// Entities returns row names in first-seen order.
func (tr *Trace) Entities() []string {
	out := make([]string, len(tr.names))
	copy(out, tr.names)
	return out
}

// BusyTime returns the total time entity occupied the processor.
func (tr *Trace) BusyTime(entity string) rtime.Duration {
	var total rtime.Duration
	for _, s := range tr.Segments {
		if s.Entity == entity {
			total += s.Dur()
		}
	}
	return total
}

// TotalBusy returns the processor busy time across all entities.
func (tr *Trace) TotalBusy() rtime.Duration {
	var total rtime.Duration
	for _, s := range tr.Segments {
		total += s.Dur()
	}
	return total
}

// End returns the latest instant covered by any segment or event.
func (tr *Trace) End() rtime.Time {
	var end rtime.Time
	for _, s := range tr.Segments {
		end = rtime.Max(end, s.End)
	}
	for _, e := range tr.Events {
		end = rtime.Max(end, e.At)
	}
	return end
}

// CheckSingleCPU verifies that no two segments overlap in time — the
// fundamental invariant of a uniprocessor schedule.
func (tr *Trace) CheckSingleCPU() error { return tr.CheckCPUs(1) }

// CheckCPUs verifies that at most m segments overlap at any instant — the
// occupancy invariant of an m-CPU schedule (m = 1 is the uniprocessor
// check). Segments must have been recorded in chronological order (both
// engines do).
func (tr *Trace) CheckCPUs(m int) error {
	segs := make([]Segment, len(tr.Segments))
	copy(segs, tr.Segments)
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	var active []Segment // overlapping window, bounded by m
	for _, s := range segs {
		live := active[:0]
		for _, a := range active {
			if a.End > s.Start {
				live = append(live, a)
			}
		}
		active = append(live, s)
		if len(active) > m {
			prev := active[len(active)-2]
			return fmt.Errorf("trace: %d segments overlap on %d CPU(s): %s[%v,%v) and %s[%v,%v)",
				len(active), m,
				prev.Entity, prev.Start, prev.End,
				s.Entity, s.Start, s.End)
		}
	}
	return nil
}

// SegmentsOf returns the segments for one entity, in recorded order.
func (tr *Trace) SegmentsOf(entity string) []Segment {
	var out []Segment
	for _, s := range tr.Segments {
		if s.Entity == entity {
			out = append(out, s)
		}
	}
	return out
}

// EventsOf returns the point events for one entity, in recorded order.
func (tr *Trace) EventsOf(entity string) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Entity == entity {
			out = append(out, e)
		}
	}
	return out
}

// GanttOptions controls rendering.
type GanttOptions struct {
	// Scale is the duration represented by one column. Defaults to 1 tu.
	Scale rtime.Duration
	// Until clips the chart; defaults to the trace end rounded up to Scale.
	Until rtime.Time
	// AxisEvery labels the axis every N columns. Defaults to 6.
	AxisEvery int
}

// Gantt renders the trace as an ASCII temporal diagram in the style of the
// paper's Figures 2–4. Each entity has a row of '#' (running) and '.'
// (not running); '+' marks a column only partially occupied. A marker row
// below shows point events (^ arrival, v completion, x interruption,
// r replenishment, l capacity lost, ! deadline miss).
func (tr *Trace) Gantt(opts GanttOptions) string {
	scale := opts.Scale
	if scale <= 0 {
		scale = rtime.TU
	}
	until := opts.Until
	if until == 0 {
		until = tr.End()
	}
	cols := int(rtime.DivCeil(rtime.Duration(until), scale))
	if cols <= 0 {
		cols = 1
	}
	axisEvery := opts.AxisEvery
	if axisEvery <= 0 {
		axisEvery = 6
	}

	nameW := 0
	for _, n := range tr.names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	if nameW < 4 {
		nameW = 4
	}

	var b strings.Builder
	// Axis.
	fmt.Fprintf(&b, "%-*s ", nameW, "t(tu)")
	axis := make([]byte, cols)
	for i := range axis {
		axis[i] = ' '
	}
	for c := 0; c < cols; c += axisEvery {
		lbl := rtime.Duration(rtime.Time(c) * rtime.Time(scale)).String()
		lbl = strings.TrimSuffix(lbl, "tu")
		for i, ch := range []byte(lbl) {
			if c+i < cols {
				axis[c+i] = ch
			}
		}
	}
	b.Write(axis)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s ", nameW, "")
	for c := 0; c < cols; c++ {
		if c%axisEvery == 0 {
			b.WriteByte('|')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')

	for _, name := range tr.names {
		row := make([]byte, cols)
		fill := make([]rtime.Duration, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range tr.Segments {
			if s.Entity != name {
				continue
			}
			for c := 0; c < cols; c++ {
				cs := rtime.Time(c) * rtime.Time(scale)
				ce := cs.Add(scale)
				lo := rtime.Max(cs, s.Start)
				hi := rtime.Min(ce, s.End)
				if hi > lo {
					fill[c] += hi.Sub(lo)
				}
			}
		}
		for c := 0; c < cols; c++ {
			switch {
			case fill[c] >= scale:
				row[c] = '#'
			case fill[c] > 0:
				row[c] = '+'
			}
		}
		fmt.Fprintf(&b, "%-*s %s\n", nameW, name, row)

		marks := make([]byte, cols)
		any := false
		for i := range marks {
			marks[i] = ' '
		}
		for _, e := range tr.Events {
			if e.Entity != name {
				continue
			}
			c := int(rtime.DivFloor(rtime.Duration(e.At), scale))
			if c >= cols {
				c = cols - 1
			}
			if c < 0 {
				c = 0
			}
			marks[c] = e.Kind.marker()
			any = true
		}
		if any {
			fmt.Fprintf(&b, "%-*s %s\n", nameW, "", marks)
		}
	}
	return b.String()
}
