package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rtsj/internal/rtime"
)

// perfettoDoc mirrors the exported JSON shape for decoding in tests.
type perfettoDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		S    string  `json:"s"`
		Args struct {
			Name  string `json:"name"`
			Label string `json:"label"`
			Kind  string `json:"kind"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func buildSMPTrace(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{}
	tr.DeclareEntity("T1")
	tr.DeclareEntity("T2")
	tr.DeclareEntity("T3")
	tu := rtime.Duration(rtime.TU)
	at := func(n int64) rtime.Time { return rtime.Time(0).Add(rtime.Duration(n) * tu) }
	tr.Mark("T1", at(0), Arrival, "")
	tr.RunOn("T1", 0, at(0), at(3), "")
	tr.RunOn("T2", 1, at(0), at(2), "svc")
	tr.RunOn("T3", 1, at(2), at(4), "")
	tr.RunOn("T1", 1, at(3), at(5), "") // T1 migrates to CPU 1
	tr.Mark("T1", at(5), Completion, "")
	tr.Mark("T2", at(2), Completion, "")
	return tr
}

// The exporter must emit schema-valid Chrome trace-event JSON: known
// phases, µs timestamps, positive durations on complete events, the
// thread-scoped flag on instants, and a named track per CPU and entity.
func TestWritePerfettoSchema(t *testing.T) {
	tr := buildSMPTrace(t)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var threads []string
	nX, nI := 0, 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if e.Ts < 0 {
			t.Fatalf("event %d has negative ts %v", i, e.Ts)
		}
		switch e.Ph {
		case "M":
			if e.Args.Name == "" {
				t.Fatalf("metadata event %d has no args.name", i)
			}
			if e.Name == "thread_name" {
				threads = append(threads, e.Args.Name)
			}
		case "X":
			nX++
			if e.Dur <= 0 {
				t.Fatalf("complete event %d has dur %v", i, e.Dur)
			}
			if e.Pid != 0 {
				t.Fatalf("complete event %d on pid %d, want CPU process 0", i, e.Pid)
			}
		case "i":
			nI++
			if e.S != "t" {
				t.Fatalf("instant event %d scope %q, want thread scope", i, e.S)
			}
			if e.Pid != 1 {
				t.Fatalf("instant event %d on pid %d, want entity process 1", i, e.Pid)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
	}
	if nX != 4 || nI != 3 {
		t.Fatalf("got %d complete + %d instant events, want 4 + 3", nX, nI)
	}
	got := strings.Join(threads, ",")
	want := "cpu 0,cpu 1,T1,T2,T3"
	if got != want {
		t.Fatalf("thread tracks %q, want %q", got, want)
	}
}

// Timestamps are microseconds: 1 paper time unit = 1 ms = 1000 µs.
func TestWritePerfettoMicroseconds(t *testing.T) {
	tr := &Trace{}
	tr.DeclareEntity("T1")
	tr.RunOn("T1", 0, rtime.Time(0), rtime.Time(0).Add(3*rtime.Duration(rtime.TU)), "")
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			if e.Ts != 0 || e.Dur != 3000 {
				t.Fatalf("segment ts=%v dur=%v, want 0 and 3000 µs", e.Ts, e.Dur)
			}
			return
		}
	}
	t.Fatal("no complete event in export")
}
