package trace

import (
	"bufio"
	"encoding/json"
	"io"

	"rtsj/internal/rtime"
)

// Perfetto / Chrome trace-event export: the schedule-visualization format
// ui.perfetto.dev and chrome://tracing read. The mapping is:
//
//   - One thread track per virtual CPU (pid 0, tid = CPU index): every
//     execution segment becomes a complete ("X") event named after the
//     entity that ran, so an SMP schedule reads as a per-CPU timeline
//     with migrations visible as an entity hopping tracks.
//   - One thread track per entity (pid 1, tid = first-seen entity index):
//     every point event becomes a thread-scoped instant ("i") named after
//     its kind, so arrivals, completions and misses line up under the
//     entity that owns them.
//   - Metadata ("M") events name both processes and every track, which
//     preserves entity names in the UI.
//
// Timestamps are microseconds (the trace-event convention); one paper
// time unit is 1 ms of virtual time, so 1 tu renders as 1000 µs.

// perfettoEvent is one trace-event object. Field order is the serialized
// key order, which keeps the export byte-stable for golden tests.
type perfettoEvent struct {
	Name string        `json:"name"`
	Ph   string        `json:"ph"`
	Ts   float64       `json:"ts"`
	Dur  float64       `json:"dur,omitempty"`
	Pid  int           `json:"pid"`
	Tid  int           `json:"tid"`
	S    string        `json:"s,omitempty"`
	Args *perfettoArgs `json:"args,omitempty"`
}

// perfettoArgs carries the optional event payload.
type perfettoArgs struct {
	Name  string `json:"name,omitempty"`  // metadata: process/thread name
	Label string `json:"label,omitempty"` // segment or event label
	Kind  string `json:"kind,omitempty"`  // point-event kind
}

// perfettoUS converts a virtual instant to trace-event microseconds.
func perfettoUS(t rtime.Time) float64 { return float64(t) / float64(rtime.Microsecond) }

// WritePerfetto exports the trace as Chrome trace-event JSON for
// ui.perfetto.dev: per-CPU segment tracks, per-entity instant tracks,
// names preserved via metadata events (see the file comment for the
// mapping). The output is deterministic: metadata first, then segments
// and events in recording order, one JSON object per line.
func (tr *Trace) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e perfettoEvent) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	ncpu := 1
	for _, s := range tr.Segments {
		if s.CPU+1 > ncpu {
			ncpu = s.CPU + 1
		}
	}
	meta := func(pid, tid int, key, name string) perfettoEvent {
		return perfettoEvent{Name: key, Ph: "M", Pid: pid, Tid: tid, Args: &perfettoArgs{Name: name}}
	}
	events := []perfettoEvent{
		meta(0, 0, "process_name", "virtual CPUs"),
		meta(1, 0, "process_name", "entities"),
	}
	for c := 0; c < ncpu; c++ {
		e := meta(0, c, "thread_name", "cpu "+itoa(c))
		events = append(events, e)
	}
	for i, name := range tr.names {
		events = append(events, meta(1, i, "thread_name", name))
	}
	for _, e := range events {
		if err := emit(e); err != nil {
			return err
		}
	}

	for _, s := range tr.Segments {
		e := perfettoEvent{
			Name: s.Entity, Ph: "X",
			Ts: perfettoUS(s.Start), Dur: perfettoUS(rtime.Time(s.Dur())),
			Pid: 0, Tid: s.CPU,
		}
		if s.Label != "" {
			e.Args = &perfettoArgs{Label: s.Label}
		}
		if err := emit(e); err != nil {
			return err
		}
	}
	for _, ev := range tr.Events {
		e := perfettoEvent{
			Name: ev.Kind.String(), Ph: "i",
			Ts:  perfettoUS(ev.At),
			Pid: 1, Tid: tr.order[ev.Entity], S: "t",
			Args: &perfettoArgs{Kind: ev.Kind.String()},
		}
		if ev.Label != "" {
			e.Args.Label = ev.Label
		}
		if err := emit(e); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// itoa is strconv.Itoa for the small non-negative CPU indices used here,
// kept local to avoid importing strconv for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
