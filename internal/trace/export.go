package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV exports the trace as CSV with one row per segment and per point
// event, for plotting outside the toolchain:
//
//	kind,entity,start_tu,end_tu,label
//	run,PS,0,2,h1
//	event,PS,2,2,completion:h1
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "entity", "start_tu", "end_tu", "label"}); err != nil {
		return err
	}
	ftu := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range tr.Segments {
		if err := cw.Write([]string{"run", s.Entity, ftu(s.Start.TUs()), ftu(s.End.TUs()), s.Label}); err != nil {
			return err
		}
	}
	for _, e := range tr.Events {
		label := e.Kind.String()
		if e.Label != "" {
			label += ":" + e.Label
		}
		if err := cw.Write([]string{"event", e.Entity, ftu(e.At.TUs()), ftu(e.At.TUs()), label}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonTrace is the stable JSON shape of a trace.
type jsonTrace struct {
	Entities []string      `json:"entities"`
	Segments []jsonSegment `json:"segments"`
	Events   []jsonEvent   `json:"events"`
}

type jsonSegment struct {
	Entity string  `json:"entity"`
	Start  float64 `json:"start_tu"`
	End    float64 `json:"end_tu"`
	Label  string  `json:"label,omitempty"`
}

type jsonEvent struct {
	Entity string  `json:"entity"`
	At     float64 `json:"at_tu"`
	Kind   string  `json:"kind"`
	Label  string  `json:"label,omitempty"`
}

// WriteJSON exports the trace as a single JSON document.
func (tr *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{Entities: tr.Entities()}
	for _, s := range tr.Segments {
		out.Segments = append(out.Segments, jsonSegment{
			Entity: s.Entity, Start: s.Start.TUs(), End: s.End.TUs(), Label: s.Label,
		})
	}
	for _, e := range tr.Events {
		out.Events = append(out.Events, jsonEvent{
			Entity: e.Entity, At: e.At.TUs(), Kind: e.Kind.String(), Label: e.Label,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
