package trace

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rtsj/internal/rtime"
)

func TestRunMergesAdjacent(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(0), rtime.AtTU(1), "")
	tr.Run("A", rtime.AtTU(1), rtime.AtTU(2), "")
	if len(tr.Segments) != 1 {
		t.Fatalf("expected merge, got %d segments", len(tr.Segments))
	}
	if got := tr.Segments[0].Dur(); got != rtime.TUs(2) {
		t.Fatalf("merged dur = %v", got)
	}
}

func TestRunNoMergeAcrossLabels(t *testing.T) {
	tr := New()
	tr.Run("S", rtime.AtTU(0), rtime.AtTU(1), "h1")
	tr.Run("S", rtime.AtTU(1), rtime.AtTU(2), "h2")
	if len(tr.Segments) != 2 {
		t.Fatalf("expected 2 segments, got %d", len(tr.Segments))
	}
}

func TestRunDropsEmpty(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(1), rtime.AtTU(1), "")
	tr.Run("A", rtime.AtTU(2), rtime.AtTU(1), "")
	if len(tr.Segments) != 0 {
		t.Fatalf("expected no segments, got %d", len(tr.Segments))
	}
}

func TestBusyTime(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(0), rtime.AtTU(2), "")
	tr.Run("B", rtime.AtTU(2), rtime.AtTU(3), "")
	tr.Run("A", rtime.AtTU(3), rtime.AtTU(4), "")
	if got := tr.BusyTime("A"); got != rtime.TUs(3) {
		t.Errorf("BusyTime(A) = %v", got)
	}
	if got := tr.TotalBusy(); got != rtime.TUs(4) {
		t.Errorf("TotalBusy = %v", got)
	}
	if got := tr.End(); got != rtime.AtTU(4) {
		t.Errorf("End = %v", got)
	}
}

func TestCheckSingleCPU(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(0), rtime.AtTU(2), "")
	tr.Run("B", rtime.AtTU(2), rtime.AtTU(3), "")
	if err := tr.CheckSingleCPU(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Run("C", rtime.AtTU(2.5), rtime.AtTU(3.5), "")
	if err := tr.CheckSingleCPU(); err == nil {
		t.Fatal("overlapping trace accepted")
	}
}

func TestEntitiesOrder(t *testing.T) {
	tr := New()
	tr.DeclareEntity("PS")
	tr.Run("tau1", rtime.AtTU(0), rtime.AtTU(1), "")
	tr.Mark("e1", rtime.AtTU(0), Arrival, "")
	got := tr.Entities()
	want := []string{"PS", "tau1", "e1"}
	if len(got) != len(want) {
		t.Fatalf("entities = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entities = %v, want %v", got, want)
		}
	}
}

func TestSegmentsAndEventsOf(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(0), rtime.AtTU(1), "")
	tr.Run("B", rtime.AtTU(1), rtime.AtTU(2), "")
	tr.Mark("A", rtime.AtTU(1), Completion, "")
	if n := len(tr.SegmentsOf("A")); n != 1 {
		t.Errorf("SegmentsOf(A) = %d", n)
	}
	if n := len(tr.EventsOf("A")); n != 1 {
		t.Errorf("EventsOf(A) = %d", n)
	}
	if n := len(tr.EventsOf("B")); n != 0 {
		t.Errorf("EventsOf(B) = %d", n)
	}
}

func TestGanttBasics(t *testing.T) {
	tr := New()
	tr.Run("PS", rtime.AtTU(0), rtime.AtTU(2), "h1")
	tr.Run("tau1", rtime.AtTU(2), rtime.AtTU(4), "")
	tr.Mark("PS", rtime.AtTU(0), Arrival, "e1")
	g := tr.Gantt(GanttOptions{Until: rtime.AtTU(6)})
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// axis + tick row + PS row + PS marks + tau1 row
	if len(lines) != 5 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	var psRow, tauRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "PS ") {
			psRow = l
		}
		if strings.HasPrefix(l, "tau1 ") {
			tauRow = l
		}
	}
	if !strings.Contains(psRow, "##....") {
		t.Errorf("PS row = %q", psRow)
	}
	if !strings.Contains(tauRow, "..##..") {
		t.Errorf("tau1 row = %q", tauRow)
	}
}

func TestGanttPartialColumns(t *testing.T) {
	tr := New()
	tr.Run("A", rtime.AtTU(0.5), rtime.AtTU(1), "")
	g := tr.Gantt(GanttOptions{Until: rtime.AtTU(2)})
	if !strings.Contains(g, "+.") {
		t.Errorf("expected partial column marker:\n%s", g)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := New()
	g := tr.Gantt(GanttOptions{})
	if g == "" {
		t.Fatal("empty gantt output")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{Arrival, Completion, Interrupted, DeadlineMiss, Replenish, CapacityLost, Custom}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/dup name %q", k, s)
		}
		seen[s] = true
	}
}

// Property: for any set of chronologically recorded, non-overlapping
// segments, CheckSingleCPU accepts, and TotalBusy equals the sum of lengths.
func TestTraceProperties(t *testing.T) {
	f := func(lens []uint8, gaps []uint8) bool {
		tr := New()
		now := rtime.Time(0)
		var want rtime.Duration
		n := len(lens)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			l := rtime.Duration(lens[i]%7) * rtime.TU
			g := rtime.Duration(gaps[i]%3) * rtime.TU
			now = now.Add(g)
			tr.Run("A", now, now.Add(l), "")
			now = now.Add(l)
			want += l
		}
		return tr.CheckSingleCPU() == nil && tr.TotalBusy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Gantt '#' and '+' column counts reflect busy time at 1tu scale.
func TestGanttBusyColumnsProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		tr := New()
		now := rtime.Time(0)
		for _, l := range lens {
			d := rtime.Duration(l%5) * rtime.TU
			tr.Run("A", now, now.Add(d), "")
			now = now.Add(d + rtime.TU) // 1tu idle gap
		}
		g := tr.Gantt(GanttOptions{})
		var full int
		for _, line := range strings.Split(g, "\n") {
			if strings.HasPrefix(line, "A ") {
				full = strings.Count(line, "#")
			}
		}
		wantCols := int(tr.TotalBusy() / rtime.TU)
		return full == wantCols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentsSortedByStart(t *testing.T) {
	// The engines record chronologically; verify sort stability assumption.
	tr := New()
	tr.Run("A", rtime.AtTU(0), rtime.AtTU(1), "")
	tr.Run("B", rtime.AtTU(1), rtime.AtTU(2), "")
	tr.Run("A", rtime.AtTU(2), rtime.AtTU(3), "")
	if !sort.SliceIsSorted(tr.Segments, func(i, j int) bool {
		return tr.Segments[i].Start < tr.Segments[j].Start
	}) {
		t.Fatal("segments not chronological")
	}
}
