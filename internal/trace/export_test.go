package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"rtsj/internal/rtime"
)

func exportTrace() *Trace {
	tr := New()
	tr.Run("PS", rtime.AtTU(0), rtime.AtTU(2), "h1")
	tr.Run("tau1", rtime.AtTU(2), rtime.AtTU(4), "")
	tr.Mark("PS", rtime.AtTU(2), Completion, "h1")
	return tr
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 2 segments + 1 event
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][0] != "run" || rows[1][1] != "PS" || rows[1][2] != "0" || rows[1][3] != "2" || rows[1][4] != "h1" {
		t.Errorf("segment row = %v", rows[1])
	}
	if rows[3][0] != "event" || !strings.Contains(rows[3][4], "completion:h1") {
		t.Errorf("event row = %v", rows[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Entities []string `json:"entities"`
		Segments []struct {
			Entity string  `json:"entity"`
			Start  float64 `json:"start_tu"`
			End    float64 `json:"end_tu"`
			Label  string  `json:"label"`
		} `json:"segments"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 2 || len(doc.Segments) != 2 || len(doc.Events) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Segments[0].Label != "h1" || doc.Segments[0].End != 2 {
		t.Errorf("segment = %+v", doc.Segments[0])
	}
	if doc.Events[0].Kind != "completion" {
		t.Errorf("event = %+v", doc.Events[0])
	}
}

// evilTrace exercises every metacharacter the exporters must keep intact:
// commas (CSV field separator), double quotes (CSV/JSON quoting), newlines
// (CSV record separator), and backslashes (JSON escapes).
func evilTrace() *Trace {
	tr := New()
	tr.DeclareEntity(`srv,"quoted"`)
	tr.Run(`srv,"quoted"`, rtime.AtTU(0), rtime.AtTU(1), "h1,h2")
	tr.Run(`srv,"quoted"`, rtime.AtTU(1), rtime.AtTU(2), "line1\nline2")
	tr.Run(`srv,"quoted"`, rtime.AtTU(2), rtime.AtTU(3), `say "hi"`)
	tr.Run(`srv,"quoted"`, rtime.AtTU(3), rtime.AtTU(4), `back\slash`)
	tr.Mark(`srv,"quoted"`, rtime.AtTU(4), Completion, "done,\n\"ok\"")
	return tr
}

func TestWriteCSVRoundTripsEvilLabels(t *testing.T) {
	tr := evilTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse back: %v", err)
	}
	if len(rows) != 1+len(tr.Segments)+len(tr.Events) {
		t.Fatalf("rows = %d, want %d", len(rows), 1+len(tr.Segments)+len(tr.Events))
	}
	for i, s := range tr.Segments {
		row := rows[1+i]
		if row[1] != s.Entity || row[4] != s.Label {
			t.Errorf("segment %d round-trip: entity %q label %q, want %q %q",
				i, row[1], row[4], s.Entity, s.Label)
		}
	}
	ev := rows[1+len(tr.Segments)]
	if ev[1] != tr.Events[0].Entity || ev[4] != "completion:"+tr.Events[0].Label {
		t.Errorf("event round-trip: %q / %q", ev[1], ev[4])
	}
}

func TestWriteJSONRoundTripsEvilLabels(t *testing.T) {
	tr := evilTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Entities []string `json:"entities"`
		Segments []struct {
			Entity string `json:"entity"`
			Label  string `json:"label"`
		} `json:"segments"`
		Events []struct {
			Entity string `json:"entity"`
			Label  string `json:"label"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse back: %v", err)
	}
	if len(doc.Entities) != 1 || doc.Entities[0] != tr.Entities()[0] {
		t.Fatalf("entities = %q", doc.Entities)
	}
	for i, s := range tr.Segments {
		if doc.Segments[i].Entity != s.Entity || doc.Segments[i].Label != s.Label {
			t.Errorf("segment %d round-trip: %+v, want entity %q label %q",
				i, doc.Segments[i], s.Entity, s.Label)
		}
	}
	if doc.Events[0].Label != tr.Events[0].Label {
		t.Errorf("event label = %q, want %q", doc.Events[0].Label, tr.Events[0].Label)
	}
}

func TestExportEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
