package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"rtsj/internal/rtime"
)

func exportTrace() *Trace {
	tr := New()
	tr.Run("PS", rtime.AtTU(0), rtime.AtTU(2), "h1")
	tr.Run("tau1", rtime.AtTU(2), rtime.AtTU(4), "")
	tr.Mark("PS", rtime.AtTU(2), Completion, "h1")
	return tr
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 2 segments + 1 event
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][0] != "run" || rows[1][1] != "PS" || rows[1][2] != "0" || rows[1][3] != "2" || rows[1][4] != "h1" {
		t.Errorf("segment row = %v", rows[1])
	}
	if rows[3][0] != "event" || !strings.Contains(rows[3][4], "completion:h1") {
		t.Errorf("event row = %v", rows[3])
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Entities []string `json:"entities"`
		Segments []struct {
			Entity string  `json:"entity"`
			Start  float64 `json:"start_tu"`
			End    float64 `json:"end_tu"`
			Label  string  `json:"label"`
		} `json:"segments"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Entities) != 2 || len(doc.Segments) != 2 || len(doc.Events) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Segments[0].Label != "h1" || doc.Segments[0].End != 2 {
		t.Errorf("segment = %+v", doc.Segments[0])
	}
	if doc.Events[0].Kind != "completion" {
		t.Errorf("event = %+v", doc.Events[0])
	}
}

func TestExportEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
