package rtsjvm

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Kernel differential tests over the rtsjvm corpus: every VM scenario from
// the package tests is built on both executive kernels and must produce
// trace-for-trace identical schedules — the timer daemon, event releases,
// Timed/AIE interruption points and monitor hand-offs all included.

type vmScenario struct {
	name    string
	oh      Overheads
	horizon rtime.Time
	build   func(vm *VM)
}

// vmCorpus mirrors the scenarios exercised by the package's unit tests.
var vmCorpus = []vmScenario{
	{"periodic-thread", Overheads{}, rtime.AtTU(20), func(vm *VM) {
		pp := &PeriodicParameters{Period: rtime.TUs(5), Cost: rtime.TUs(1)}
		vm.NewRealtimeThread("p", 5, pp, func(r *RTC) {
			for i := 0; i < 3; i++ {
				r.Consume(rtime.TUs(1))
				r.WaitForNextPeriod()
			}
		})
	}},
	{"overrun-skips-activations", Overheads{}, rtime.AtTU(40), func(vm *VM) {
		pp := &PeriodicParameters{Period: rtime.TUs(4), Cost: rtime.TUs(1)}
		vm.NewRealtimeThread("p", 5, pp, func(r *RTC) {
			r.Consume(rtime.TUs(9))
			r.WaitForNextPeriod()
			r.Consume(rtime.TUs(1))
			r.WaitForNextPeriod()
		})
	}},
	{"async-event-handlers", Overheads{}, rtime.AtTU(20), func(vm *VM) {
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(1)) })
		e := vm.NewAsyncEvent("e")
		e.AddHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(2), e, "e").Start()
		vm.NewOneShotTimer(rtime.AtTU(5), e, "e").Start()
	}},
	{"fire-count-bursts", Overheads{}, rtime.AtTU(20), func(vm *VM) {
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(3)) })
		e := vm.NewAsyncEvent("e")
		e.AddHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(0), e, "e").Start()
		vm.NewOneShotTimer(rtime.AtTU(1), e, "e").Start()
	}},
	{"multi-handler-priority", Overheads{}, rtime.AtTU(10), func(vm *VM) {
		mk := func(name string, prio int) *AsyncEventHandler {
			return vm.NewAsyncEventHandler(name, prio, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(1)) })
		}
		hi, lo := mk("hi", 9), mk("lo", 2)
		e := vm.NewAsyncEvent("e")
		e.AddHandler(lo)
		e.AddHandler(hi)
		vm.NewOneShotTimer(rtime.AtTU(0), e, "e").Start()
	}},
	{"periodic-timer", Overheads{}, rtime.AtTU(11), func(vm *VM) {
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(0.5)) })
		e := vm.NewAsyncEvent("tick")
		e.AddHandler(h)
		vm.NewPeriodicTimer(rtime.AtTU(1), rtime.TUs(3), e, "tick").Start()
	}},
	{"timer-fire-overhead", Overheads{TimerFire: rtime.TUs(0.5)}, rtime.AtTU(20), func(vm *VM) {
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(1)) })
		e := vm.NewAsyncEvent("e")
		e.AddHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(2), e, "e").Start()
		vm.NewRealtimeThread("busy", 1, nil, func(r *RTC) { r.Consume(rtime.TUs(10)) })
	}},
	{"release-overhead", Overheads{EventRelease: rtime.TUs(0.25)}, rtime.AtTU(10), func(vm *VM) {
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(1)) })
		e := vm.NewAsyncEvent("e")
		e.AddHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(0), e, "e").Start()
	}},
	{"timed-interrupt-action", Overheads{Interrupt: rtime.TUs(0.5)}, rtime.AtTU(10), func(vm *VM) {
		vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
			timed := vm.NewTimed(rtime.TUs(2))
			timed.DoInterruptible(r.TC, Interruptible{
				Run:             func(tc *exec.TC) { tc.Consume(rtime.TUs(5)) },
				InterruptAction: func(tc *exec.TC) { tc.Consume(rtime.TUs(0.25)) },
			})
		})
	}},
	{"timed-preempted-budget", Overheads{}, rtime.AtTU(10), func(vm *VM) {
		vm.NewRealtimeThread("intruder", 9,
			&PeriodicParameters{Start: rtime.AtTU(1), Period: rtime.TUs(100), Cost: rtime.TUs(1)},
			func(r *RTC) { r.Consume(rtime.TUs(1)) })
		vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
			timed := vm.NewTimed(rtime.TUs(4))
			timed.DoInterruptible(r.TC, Interruptible{
				Run: func(tc *exec.TC) { tc.Consume(rtime.TUs(2)) },
			})
		})
	}},
	{"monitor-inversion-avoided", Overheads{}, rtime.AtTU(40), func(vm *VM) {
		m := vm.NewMonitor("m")
		vm.NewRealtimeThread("low", 1, nil, func(r *RTC) {
			m.Synchronized(r.TC, func() { r.Consume(rtime.TUs(5)) })
		})
		vm.NewRealtimeThread("mid", 2, &PeriodicParameters{Start: rtime.AtTU(1)}, func(r *RTC) {
			r.Consume(rtime.TUs(3))
		})
		vm.NewRealtimeThread("high", 3, &PeriodicParameters{Start: rtime.AtTU(2)}, func(r *RTC) {
			m.Synchronized(r.TC, func() { r.Consume(rtime.TUs(1)) })
		})
	}},
	{"pgp-enforced", Overheads{}, rtime.AtTU(100), func(vm *VM) {
		g := vm.NewProcessingGroupParameters(0, rtime.TUs(10), rtime.TUs(2), true)
		vm.NewRealtimeThread("member", 5, nil, func(r *RTC) {
			g.ConsumeGoverned(r.TC, rtime.TUs(6))
		})
	}},
	{"timer-stop-midway", Overheads{}, rtime.AtTU(20), func(vm *VM) {
		count := 0
		h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { count++; tc.Consume(rtime.TUs(0.25)) })
		e := vm.NewAsyncEvent("tick")
		e.AddHandler(h)
		pt := vm.NewPeriodicTimer(rtime.AtTU(0), rtime.TUs(2), e, "tick")
		pt.Start()
		vm.NewRealtimeThread("stopper", 9, nil, func(r *RTC) {
			r.SleepUntil(rtime.AtTU(5))
			pt.Stop()
		})
	}},
}

// vmDiffConfigs is the executive configuration matrix the corpus runs on:
// both kernels, each in goroutine-per-thread and pooled mode. The channel
// per-thread configuration is the reference.
var vmDiffConfigs = []struct {
	name string
	opts exec.Options
}{
	{"channel", exec.Options{Kernel: exec.ChannelKernel}},
	{"direct", exec.Options{Kernel: exec.DirectKernel}},
	{"channel-pooled", exec.Options{Kernel: exec.ChannelKernel, MaxGoroutines: 2}},
	{"direct-pooled", exec.Options{Kernel: exec.DirectKernel, MaxGoroutines: 2}},
	// The M=1 SMP reduction must be byte-identical to the uniprocessor
	// schedule on the whole VM corpus too.
	{"direct-smp1", exec.Options{Kernel: exec.DirectKernel, CPUs: 1, Migration: exec.Partitioned}},
}

func TestKernelDiffVMCorpus(t *testing.T) {
	for _, sc := range vmCorpus {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(opts exec.Options) *VM {
				vm := NewVMSink(trace.New(), sc.oh, opts)
				sc.build(vm)
				if err := vm.Run(sc.horizon); err != nil {
					t.Fatalf("%s kernel: %v", opts.Kernel, err)
				}
				vm.Shutdown()
				return vm
			}
			ref := run(vmDiffConfigs[0].opts)
			for _, cfg := range vmDiffConfigs[1:] {
				got := run(cfg.opts)
				compareVMTraces(t, sc.name+"/"+cfg.name, ref.Trace(), got.Trace())
				if ref.Now() != got.Now() {
					t.Errorf("%s/%s: final time differs: ref=%v got=%v",
						sc.name, cfg.name, ref.Now().TUs(), got.Now().TUs())
				}
			}
		})
	}
}

func compareVMTraces(t *testing.T, name string, a, b *trace.Trace) {
	t.Helper()
	if err := b.CheckSingleCPU(); err != nil {
		t.Errorf("%s: trace invalid: %v", name, err)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Errorf("%s: segment counts differ: ref=%d got=%d\nref:\n%s\ngot:\n%s",
			name, len(a.Segments), len(b.Segments),
			a.Gantt(trace.GanttOptions{}), b.Gantt(trace.GanttOptions{}))
		return
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Errorf("%s: segment %d differs: ref=%+v got=%+v",
				name, i, a.Segments[i], b.Segments[i])
			return
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("%s: event counts differ: ref=%d got=%d", name, len(a.Events), len(b.Events))
		return
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("%s: event %d differs: ref=%+v got=%+v",
				name, i, a.Events[i], b.Events[i])
			return
		}
	}
}
