package rtsjvm

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

// Interruptible mirrors javax.realtime.Interruptible: logic that can be
// asynchronously interrupted, with a compensation action.
type Interruptible struct {
	// Run is the interruptible logic.
	Run func(tc *exec.TC)
	// InterruptAction runs if Run was interrupted before completing.
	InterruptAction func(tc *exec.TC)
}

// Timed mirrors javax.realtime.Timed: it executes an Interruptible's run
// method for at most a given budget of (virtual) wall-clock time, raising
// the interruption — modeled as a section unwind — when the budget expires
// first. This is the mechanism the paper's servers use to enforce their
// capacity (Section 4).
type Timed struct {
	vm     *VM
	budget rtime.Duration
}

// NewTimed creates a timed executor with the given budget.
func (vm *VM) NewTimed(budget rtime.Duration) *Timed {
	return &Timed{vm: vm, budget: budget}
}

// Budget returns the configured budget.
func (t *Timed) Budget() rtime.Duration { return t.budget }

// DoInterruptible runs i under the budget in the calling thread's context.
// It returns whether the run completed and the elapsed virtual time — the
// quantity the paper's servers subtract from their remaining capacity ("we
// just have to measure the time passed in the run method and decrease the
// remaining capacity accordingly"). Elapsed time is wall-clock virtual
// time: preemptions by higher-priority threads (the timer daemon) count
// against the budget, which is the root cause of the interrupted-aperiodics
// ratio measured in the paper's Tables 3 and 5.
func (t *Timed) DoInterruptible(tc *exec.TC, i Interruptible) (completed bool, elapsed rtime.Duration) {
	start := tc.Now()
	interrupted := tc.WithBudget(t.budget, func() { i.Run(tc) })
	if interrupted {
		if oh := t.vm.oh.Interrupt; oh > 0 {
			tc.Consume(oh) // exception unwind cost, charged to the server
		}
	}
	elapsed = tc.Now().Sub(start)
	if interrupted && i.InterruptAction != nil {
		i.InterruptAction(tc)
	}
	return !interrupted, elapsed
}
