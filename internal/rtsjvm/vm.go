package rtsjvm

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Priority levels. Application priorities live in [MinPriority,
// MaxPriority]; the timer daemon runs above all of them, as the paper
// observes of the RTSJ reference implementation.
const (
	MinPriority   = 1
	MaxPriority   = 99
	TimerPriority = 1000
)

// Overheads configures the virtual cost of VM-internal operations. The
// zero value is a cost-free VM (what the paper's simulator assumes); the
// table-reproduction harness uses non-zero values to model the execution
// platform.
type Overheads struct {
	// TimerFire is consumed by the timer daemon, at TimerPriority, for
	// every timer-driven event firing.
	TimerFire rtime.Duration
	// EventRelease is consumed in the firing context for each handler
	// released by AsyncEvent.Fire (the "cost of the events' release").
	EventRelease rtime.Duration
	// Dispatch is consumed by a task server for each chooseNextEvent scan.
	Dispatch rtime.Duration
	// Interrupt is consumed by a thread whose Timed section was
	// asynchronously interrupted (exception unwind cost).
	Interrupt rtime.Duration
}

// Firable is anything a timer can fire: AsyncEvent and its subclasses.
type Firable interface {
	// Fire releases the bound handlers. It runs in the firing thread's
	// context (usually the timer daemon).
	Fire(tc *exec.TC)
}

// FirableFunc adapts a function to the Firable interface.
type FirableFunc func(tc *exec.TC)

// Fire implements Firable.
func (f FirableFunc) Fire(tc *exec.TC) { f(tc) }

type pendingFire struct {
	target Firable
	label  string
}

// VM is an emulated RTSJ virtual machine instance.
type VM struct {
	ex      *exec.Exec
	oh      Overheads
	daemonQ *exec.WaitQueue
	pending []pendingFire
	sched   *PriorityScheduler
}

// NewVM creates a VM tracing into tr with the given overhead model, on the
// executive's default (direct, channel-free) kernel. A nil tr records into
// a fresh trace (this convenience constructor always yields a readable
// Trace); use NewVMSink with trace.Nop for the metrics-only fast path. The
// timer daemon thread is created immediately.
func NewVM(tr *trace.Trace, oh Overheads) *VM {
	return NewVMKernel(tr, oh, exec.DirectKernel)
}

// NewVMKernel creates a VM on an explicitly chosen executive kernel. Both
// kernels are contractually schedule-identical; the differential kernel
// tests run the same workloads through each and compare traces. A nil tr
// records into a fresh trace, as in NewVM.
func NewVMKernel(tr *trace.Trace, oh Overheads, kind exec.Kernel) *VM {
	if tr == nil {
		tr = trace.New()
	}
	return NewVMSink(tr, oh, exec.Options{Kernel: kind})
}

// NewVMSink is the fully explicit constructor: the VM records into sink
// (nil or trace.Nop records nothing — the metrics-only fast path used by
// the execution tables) on an executive configured by opts, including the
// pooled thread-body mode (opts.MaxGoroutines).
func NewVMSink(sink trace.Sink, oh Overheads, opts exec.Options) *VM {
	vm := &VM{
		ex:      exec.NewWithOptions(sink, opts),
		oh:      oh,
		daemonQ: exec.NewWaitQueue("timerd"),
		sched:   NewPriorityScheduler(),
	}
	vm.ex.Spawn("timerd", TimerPriority, 0, vm.daemonBody)
	return vm
}

// Exec exposes the underlying executive.
func (vm *VM) Exec() *exec.Exec { return vm.ex }

// Overheads returns the VM's overhead model.
func (vm *VM) Overheads() Overheads { return vm.oh }

// Scheduler returns the VM's priority scheduler (feasibility set).
func (vm *VM) Scheduler() *PriorityScheduler { return vm.sched }

// Trace returns the execution trace (nil when the VM records into a
// non-accumulating sink, e.g. trace.Nop).
func (vm *VM) Trace() *trace.Trace { return vm.ex.Trace() }

// Now returns the current virtual time.
func (vm *VM) Now() rtime.Time { return vm.ex.Now() }

// Run advances the system until the horizon (or quiescence).
func (vm *VM) Run(until rtime.Time) error { return vm.ex.Run(until) }

// Shutdown unwinds all thread goroutines; call once per VM after Run.
func (vm *VM) Shutdown() { vm.ex.Shutdown() }

// daemonBody is the timer daemon: it pops due firings scheduled by
// enqueueFire, charges the timer-fire overhead and fires the target. It is
// the highest-priority thread in the system — exactly the situation the
// paper describes ("there is also more highest priority tasks: the timers
// charged to fire the asynchronous events").
func (vm *VM) daemonBody(tc *exec.TC) {
	for {
		for len(vm.pending) == 0 {
			tc.Wait(vm.daemonQ)
		}
		p := vm.pending[0]
		vm.pending = vm.pending[1:]
		tc.SetLabel(p.label)
		if vm.oh.TimerFire > 0 {
			tc.Consume(vm.oh.TimerFire)
		}
		p.target.Fire(tc)
		tc.SetLabel("")
	}
}

// enqueueFire hands a firing to the timer daemon. Safe from kernel timer
// functions and thread bodies.
func (vm *VM) enqueueFire(target Firable, label string) {
	vm.pending = append(vm.pending, pendingFire{target: target, label: label})
	vm.ex.NotifyAll(vm.daemonQ)
}

// FireAt schedules target to be fired by the timer daemon at instant at.
// It returns a cancel function. This is the primitive OneShotTimer and
// PeriodicTimer are built on.
func (vm *VM) FireAt(at rtime.Time, target Firable, label string) (cancel func()) {
	return vm.ex.At(at, func() { vm.enqueueFire(target, label) })
}
