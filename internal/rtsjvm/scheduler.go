package rtsjvm

import (
	"rtsj/internal/rtime"
)

// Schedulable mirrors javax.realtime.Schedulable: an object the scheduler
// can reason about. RealtimeThread, AsyncEventHandler and the framework's
// TaskServer implement it.
type Schedulable interface {
	SchedulableName() string
	SchedulablePriority() int
	// SchedulableRelease returns the object's release parameters; nil when
	// unknown (such an object cannot be analyzed).
	SchedulableRelease() ReleaseParameters
}

// InterferenceProvider is the extension the paper proposes in Section 3:
// "each schedulable object should have a getInterference() method, which
// would be called by the Scheduler feasibility methods". A schedulable that
// implements it contributes policy-specific interference to lower-priority
// tasks — for example a Deferrable Server reports its back-to-back hit,
// which the centralized RTSJ analysis cannot express.
type InterferenceProvider interface {
	// Interference returns the worst-case processor time this schedulable
	// can steal from a lower-priority task over a window w.
	Interference(w rtime.Duration) rtime.Duration
}

// FeasibilityResult is the per-schedulable outcome of the scheduler's
// analysis.
type FeasibilityResult struct {
	// Name identifies the schedulable.
	Name string
	// Priority is the schedulable's fixed priority.
	Priority int
	// Analyzable is false for unbounded aperiodic releases (and for tasks
	// with such a release above them).
	Analyzable bool
	// R is the computed worst-case response time.
	R rtime.Duration
	// Deadline is the effective relative deadline the analysis used.
	Deadline rtime.Duration
	// Feasible reports whether the analysis converged with R <= Deadline.
	Feasible bool
}

// PriorityScheduler mirrors javax.realtime.PriorityScheduler, holding the
// feasibility set and running response-time analysis over it.
type PriorityScheduler struct {
	set []Schedulable
}

// NewPriorityScheduler returns an empty scheduler.
func NewPriorityScheduler() *PriorityScheduler { return &PriorityScheduler{} }

// AddToFeasibility adds obj to the feasibility set, as
// Schedulable.addToFeasibility.
func (s *PriorityScheduler) AddToFeasibility(obj Schedulable) {
	s.set = append(s.set, obj)
}

// RemoveFromFeasibility removes obj; it reports whether obj was present.
func (s *PriorityScheduler) RemoveFromFeasibility(obj Schedulable) bool {
	for i, x := range s.set {
		if x == obj {
			s.set = append(s.set[:i], s.set[i+1:]...)
			return true
		}
	}
	return false
}

// FeasibilitySet returns the current set.
func (s *PriorityScheduler) FeasibilitySet() []Schedulable { return s.set }

// interferenceOf returns obj's interference over a window w: the
// InterferenceProvider hook when implemented, else the classical periodic
// bound ceil(w/T)*C.
func interferenceOf(obj Schedulable, w rtime.Duration) (rtime.Duration, bool) {
	if p, ok := obj.(InterferenceProvider); ok {
		return p.Interference(w), true
	}
	rp := obj.SchedulableRelease()
	if rp == nil || rp.ReleasePeriod() <= 0 {
		return 0, false // unbounded: cannot be bounded in a window
	}
	return rtime.Duration(rtime.DivCeil(w, rp.ReleasePeriod())) * rp.ReleaseCost(), true
}

// ResponseTimes runs fixed-priority response-time analysis over the
// feasibility set, using each schedulable's interference hook. Objects with
// unbounded releases (plain AperiodicParameters or nil) are reported
// Analyzable=false; if such an object has priority above an analyzed task,
// that task is unanalyzable too — reproducing the paper's point that the
// only way to include a plain handler in the feasibility process is to know
// its worst-case occurring frequency.
func (s *PriorityScheduler) ResponseTimes() []FeasibilityResult {
	out := make([]FeasibilityResult, 0, len(s.set))
	for i, obj := range s.set {
		rp := obj.SchedulableRelease()
		res := FeasibilityResult{
			Name:     obj.SchedulableName(),
			Priority: obj.SchedulablePriority(),
		}
		if rp == nil || rp.ReleasePeriod() <= 0 || rp.ReleaseCost() <= 0 {
			out = append(out, res)
			continue
		}
		res.Deadline = rp.ReleaseDeadline()
		if res.Deadline <= 0 {
			res.Deadline = rp.ReleasePeriod()
		}
		w := rp.ReleaseCost()
		analyzable := true
		converged := false
		for iter := 0; iter < 10_000 && analyzable; iter++ {
			next := rp.ReleaseCost()
			for k, other := range s.set {
				if k == i || other.SchedulablePriority() < obj.SchedulablePriority() {
					continue
				}
				intf, ok := interferenceOf(other, w)
				if !ok {
					analyzable = false
					break
				}
				next += intf
			}
			if next == w {
				converged = true
				break
			}
			w = next
			if w > res.Deadline {
				break // diverged past the deadline
			}
		}
		res.Analyzable = analyzable
		res.R = w
		res.Feasible = analyzable && converged && w <= res.Deadline
		out = append(out, res)
	}
	return out
}

// IsFeasible reports whether every member of the feasibility set is
// analyzable and meets its deadline.
func (s *PriorityScheduler) IsFeasible() bool {
	for _, r := range s.ResponseTimes() {
		if !r.Feasible {
			return false
		}
	}
	return true
}
