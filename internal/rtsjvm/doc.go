// Package rtsjvm emulates the Real-Time Specification for Java API surface
// the paper's framework is built on: realtime threads with periodic release
// parameters, asynchronous events and handlers, timers, interruptible timed
// sections, processing group parameters and a priority scheduler with a
// feasibility set.
//
// The emulation runs on the virtual-time executive (internal/exec) instead
// of a real RTSJ VM on a real-time kernel. The VM charges explicit,
// configurable overheads for the operations whose hidden costs drive the
// paper's measured results: timer firings (the paper notes the timers that
// fire asynchronous events are the real highest-priority tasks in the
// system), event releases, and server dispatching.
//
// # Constructors and executive configuration
//
// NewVM is the convenience constructor (direct kernel, always-readable
// trace); NewVMKernel picks the executive kernel explicitly; NewVMSink is
// fully explicit — any trace.Sink (nil or trace.Nop for the metrics-only
// fast path) and any exec.Options, including the pooled thread-body mode
// (exec.Options.MaxGoroutines).
//
// # Periodic emulation modes
//
// A periodic realtime thread can be emulated two ways, with identical
// schedules (pinned by TestPeriodicModeDiffCorpus):
//
//   - Looping mode (NewRealtimeThread): the body loops "work;
//     WaitForNextPeriod()" and parks on a goroutine between releases —
//     the literal RTSJ programming model.
//   - Activation mode (NewActivationThread): the body is dispatched once
//     per release on the executive's activation path (exec.SpawnPeriodic)
//     and returning from the body is the release boundary; the thread owns
//     no goroutine between releases.
//
// Prefer activation mode when a workload carries many periodic entities on
// a pooled executive: looping bodies pin one pool worker each for the whole
// run, while activations keep the goroutine count at the pool size.
// Overrun semantics match exactly: releases the body overran past are
// skipped and counted (RTC.Missed / exec.Thread.MissedActivations), the
// RTSJ's deadline-miss handling for the default no-miss-handler
// configuration.
package rtsjvm
