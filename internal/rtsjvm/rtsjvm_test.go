package rtsjvm

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

func tu(v float64) rtime.Duration { return rtime.TUs(v) }
func at(v float64) rtime.Time     { return rtime.AtTU(v) }

func newTestVM(oh Overheads) *VM { return NewVM(nil, oh) }

func runVM(t *testing.T, vm *VM, horizon float64) {
	t.Helper()
	if err := vm.Run(at(horizon)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	if err := vm.Trace().CheckSingleCPU(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicRealtimeThread(t *testing.T) {
	vm := newTestVM(Overheads{})
	pp := &PeriodicParameters{Period: tu(5), Cost: tu(1)}
	var releases []float64
	vm.NewRealtimeThread("p", 5, pp, func(r *RTC) {
		for i := 0; i < 3; i++ {
			releases = append(releases, r.Now().TUs())
			r.Consume(tu(1))
			r.WaitForNextPeriod()
		}
	})
	runVM(t, vm, 20)
	want := []float64{0, 5, 10}
	if len(releases) != len(want) {
		t.Fatalf("releases = %v", releases)
	}
	for i := range want {
		if releases[i] != want[i] {
			t.Errorf("release %d at %v, want %v", i, releases[i], want[i])
		}
	}
}

func TestWaitForNextPeriodSkipsMissedActivations(t *testing.T) {
	vm := newTestVM(Overheads{})
	pp := &PeriodicParameters{Period: tu(4), Cost: tu(1)}
	var onTimes []bool
	var rtc *RTC
	vm.NewRealtimeThread("p", 5, pp, func(r *RTC) {
		rtc = r
		r.Consume(tu(9)) // overruns two periods
		onTimes = append(onTimes, r.WaitForNextPeriod())
		r.Consume(tu(1))
		onTimes = append(onTimes, r.WaitForNextPeriod())
	})
	runVM(t, vm, 40)
	// After consuming 9, the releases at 4 and 8 are missed; the thread
	// resumes at 12.
	if len(onTimes) != 2 || onTimes[0] != false || onTimes[1] != true {
		t.Fatalf("onTimes = %v", onTimes)
	}
	if rtc.Missed != 2 {
		t.Fatalf("Missed = %d, want 2", rtc.Missed)
	}
}

func TestAsyncEventReleasesHandlers(t *testing.T) {
	vm := newTestVM(Overheads{})
	var handledAt []float64
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) {
		tc.Consume(tu(1))
		handledAt = append(handledAt, tc.Now().TUs())
	})
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	vm.NewOneShotTimer(at(2), e, "e").Start()
	vm.NewOneShotTimer(at(5), e, "e").Start()
	runVM(t, vm, 20)
	if len(handledAt) != 2 || handledAt[0] != 3 || handledAt[1] != 6 {
		t.Fatalf("handledAt = %v", handledAt)
	}
	if h.HandledCount() != 2 || h.ReleasedCount() != 2 || h.FireCount() != 0 {
		t.Fatalf("counts: handled=%d released=%d pending=%d",
			h.HandledCount(), h.ReleasedCount(), h.FireCount())
	}
}

func TestFireCountBuffersBursts(t *testing.T) {
	// Two fires while the handler is busy: both must eventually run.
	vm := newTestVM(Overheads{})
	var done int
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) {
		tc.Consume(tu(3))
		done++
	})
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	vm.NewOneShotTimer(at(1), e, "e").Start()
	runVM(t, vm, 20)
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

func TestMultipleHandlersOneEvent(t *testing.T) {
	vm := newTestVM(Overheads{})
	var order []string
	mk := func(name string, prio int) *AsyncEventHandler {
		return vm.NewAsyncEventHandler(name, prio, nil, func(tc *exec.TC) {
			tc.Consume(tu(1))
			order = append(order, name)
		})
	}
	hi := mk("hi", 9)
	lo := mk("lo", 2)
	e := vm.NewAsyncEvent("e")
	e.AddHandler(lo)
	e.AddHandler(hi)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	runVM(t, vm, 10)
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Fatalf("order = %v (priority must win)", order)
	}
}

func TestRemoveHandler(t *testing.T) {
	vm := newTestVM(Overheads{})
	ran := false
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { ran = true })
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	e.RemoveHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	runVM(t, vm, 5)
	if ran {
		t.Fatal("removed handler must not run")
	}
	if len(e.Handlers()) != 0 {
		t.Fatal("handler list not empty")
	}
}

func TestPeriodicTimer(t *testing.T) {
	vm := newTestVM(Overheads{})
	var fires []float64
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) {
		fires = append(fires, tc.Now().TUs())
	})
	e := vm.NewAsyncEvent("tick")
	e.AddHandler(h)
	pt := vm.NewPeriodicTimer(at(1), tu(3), e, "tick")
	pt.Start()
	runVM(t, vm, 11)
	want := []float64{1, 4, 7, 10}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestPeriodicTimerStop(t *testing.T) {
	vm := newTestVM(Overheads{})
	count := 0
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { count++ })
	e := vm.NewAsyncEvent("tick")
	e.AddHandler(h)
	pt := vm.NewPeriodicTimer(at(0), tu(2), e, "tick")
	pt.Start()
	stopper := vm.NewRealtimeThread("stopper", 9, nil, func(r *RTC) {
		r.SleepUntil(at(5))
		pt.Stop()
	})
	_ = stopper
	runVM(t, vm, 20)
	if count != 3 { // fires at 0, 2, 4
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestOneShotTimerStop(t *testing.T) {
	vm := newTestVM(Overheads{})
	ran := false
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { ran = true })
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	timer := vm.NewOneShotTimer(at(5), e, "e")
	timer.Start()
	if !timer.Stop() {
		t.Fatal("Stop on armed timer should succeed")
	}
	if timer.Stop() {
		t.Fatal("second Stop should fail")
	}
	runVM(t, vm, 10)
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerFireOverheadChargedAtTopPriority(t *testing.T) {
	oh := Overheads{TimerFire: tu(0.5)}
	vm := newTestVM(oh)
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(tu(1)) })
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	vm.NewOneShotTimer(at(2), e, "e").Start()
	// A lower-priority busy thread: the daemon must preempt it.
	vm.NewRealtimeThread("busy", 1, nil, func(r *RTC) { r.Consume(tu(10)) })
	runVM(t, vm, 20)
	segs := vm.Trace().SegmentsOf("timerd")
	if len(segs) != 1 || segs[0].Start != at(2) || segs[0].End != at(2.5) {
		t.Fatalf("timerd segments = %+v", segs)
	}
}

func TestEventReleaseOverheadCharged(t *testing.T) {
	oh := Overheads{EventRelease: tu(0.25)}
	vm := newTestVM(oh)
	h := vm.NewAsyncEventHandler("h", 5, nil, func(tc *exec.TC) { tc.Consume(tu(1)) })
	e := vm.NewAsyncEvent("e")
	e.AddHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	runVM(t, vm, 10)
	// Release overhead is consumed by the firing context (the daemon).
	if got := vm.Trace().BusyTime("timerd"); got != tu(0.25) {
		t.Fatalf("timerd busy = %v, want 0.25tu", got)
	}
	segs := vm.Trace().SegmentsOf("h")
	if len(segs) != 1 || segs[0].Start != at(0.25) {
		t.Fatalf("handler segments = %+v", segs)
	}
}

func TestTimedCompletesWithinBudget(t *testing.T) {
	vm := newTestVM(Overheads{})
	var completed bool
	var elapsed rtime.Duration
	vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
		timed := vm.NewTimed(tu(4))
		completed, elapsed = timed.DoInterruptible(r.TC, Interruptible{
			Run: func(tc *exec.TC) { tc.Consume(tu(2)) },
		})
	})
	runVM(t, vm, 10)
	if !completed || elapsed != tu(2) {
		t.Fatalf("completed=%v elapsed=%v", completed, elapsed)
	}
}

func TestTimedInterruptsAndRunsAction(t *testing.T) {
	vm := newTestVM(Overheads{})
	var completed bool
	var elapsed rtime.Duration
	var actionRan bool
	vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
		timed := vm.NewTimed(tu(2))
		completed, elapsed = timed.DoInterruptible(r.TC, Interruptible{
			Run:             func(tc *exec.TC) { tc.Consume(tu(5)) },
			InterruptAction: func(tc *exec.TC) { actionRan = true },
		})
	})
	runVM(t, vm, 10)
	if completed || elapsed != tu(2) || !actionRan {
		t.Fatalf("completed=%v elapsed=%v actionRan=%v", completed, elapsed, actionRan)
	}
}

func TestTimedElapsedIncludesPreemption(t *testing.T) {
	// Wall-clock budget: a higher-priority thread running inside the
	// window counts against the budget.
	vm := newTestVM(Overheads{})
	var completed bool
	var elapsed rtime.Duration
	vm.NewRealtimeThread("intruder", 9, &PeriodicParameters{Start: at(1), Period: tu(100), Cost: tu(1)},
		func(r *RTC) { r.Consume(tu(1)) })
	vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
		timed := vm.NewTimed(tu(4))
		completed, elapsed = timed.DoInterruptible(r.TC, Interruptible{
			Run: func(tc *exec.TC) { tc.Consume(tu(2)) },
		})
	})
	runVM(t, vm, 10)
	if !completed {
		t.Fatal("should still complete: 2 CPU + 1 preemption <= 4 budget")
	}
	if elapsed != tu(3) {
		t.Fatalf("elapsed = %v, want 3tu (wall clock)", elapsed)
	}
}

func TestTimedInterruptOverhead(t *testing.T) {
	vm := newTestVM(Overheads{Interrupt: tu(0.5)})
	var elapsed rtime.Duration
	vm.NewRealtimeThread("srv", 5, nil, func(r *RTC) {
		timed := vm.NewTimed(tu(2))
		_, elapsed = timed.DoInterruptible(r.TC, Interruptible{
			Run: func(tc *exec.TC) { tc.Consume(tu(5)) },
		})
	})
	runVM(t, vm, 10)
	if elapsed != tu(2.5) {
		t.Fatalf("elapsed = %v, want 2.5tu (budget + unwind)", elapsed)
	}
}

func TestPGPWithoutEnforcementHasNoEffect(t *testing.T) {
	// The paper's critique: without cost enforcement (optional in the
	// RTSJ, absent from the reference implementation), PGP budgets change
	// nothing.
	vm := newTestVM(Overheads{})
	g := vm.NewProcessingGroupParameters(0, tu(10), tu(2), false)
	var finished rtime.Time
	vm.NewRealtimeThread("member", 5, nil, func(r *RTC) {
		g.ConsumeGoverned(r.TC, tu(8)) // four times the budget
		finished = r.Now()
	})
	runVM(t, vm, 50)
	if finished != at(8) {
		t.Fatalf("finished at %v, want 8 (budget ignored)", finished.TUs())
	}
}

func TestPGPWithEnforcementThrottles(t *testing.T) {
	vm := newTestVM(Overheads{})
	g := vm.NewProcessingGroupParameters(0, tu(10), tu(2), true)
	var finished rtime.Time
	vm.NewRealtimeThread("member", 5, nil, func(r *RTC) {
		g.ConsumeGoverned(r.TC, tu(6))
		finished = r.Now()
	})
	runVM(t, vm, 100)
	// 2 units in [0,2), 2 in [10,12), 2 in [20,22).
	if finished != at(22) {
		t.Fatalf("finished at %v, want 22 (throttled)", finished.TUs())
	}
	if rem := g.Remaining(at(22)); rem != 0 {
		t.Fatalf("remaining = %v, want 0", rem)
	}
	if rem := g.Remaining(at(30)); rem != tu(2) {
		t.Fatalf("remaining after replenish = %v, want 2tu", rem)
	}
}

func TestSchedulerFeasibilityClassic(t *testing.T) {
	vm := newTestVM(Overheads{})
	s := vm.Scheduler()
	t1 := vm.NewRealtimeThread("t1", 3, &PeriodicParameters{Period: tu(4), Cost: tu(1)}, func(r *RTC) {})
	t2 := vm.NewRealtimeThread("t2", 2, &PeriodicParameters{Period: tu(6), Cost: tu(2)}, func(r *RTC) {})
	t3 := vm.NewRealtimeThread("t3", 1, &PeriodicParameters{Period: tu(12), Cost: tu(3)}, func(r *RTC) {})
	s.AddToFeasibility(t1)
	s.AddToFeasibility(t2)
	s.AddToFeasibility(t3)
	rs := s.ResponseTimes()
	want := map[string]float64{"t1": 1, "t2": 3, "t3": 10}
	for _, r := range rs {
		if !r.Analyzable || !r.Feasible {
			t.Errorf("%s not feasible: %+v", r.Name, r)
		}
		if got := r.R.TUs(); got != want[r.Name] {
			t.Errorf("%s R = %v, want %v", r.Name, got, want[r.Name])
		}
	}
	if !s.IsFeasible() {
		t.Error("set should be feasible")
	}
	vm.Shutdown()
}

func TestSchedulerUnanalyzableAperiodic(t *testing.T) {
	vm := newTestVM(Overheads{})
	s := vm.Scheduler()
	// A plain aperiodic handler at high priority poisons the analysis of
	// everything below it — the paper's Section 3 argument.
	h := vm.NewAsyncEventHandler("h", 9, &AperiodicParameters{Cost: tu(1)}, func(tc *exec.TC) {})
	low := vm.NewRealtimeThread("low", 1, &PeriodicParameters{Period: tu(10), Cost: tu(1)}, func(r *RTC) {})
	s.AddToFeasibility(h)
	s.AddToFeasibility(low)
	rs := s.ResponseTimes()
	for _, r := range rs {
		if r.Analyzable {
			t.Errorf("%s should be unanalyzable", r.Name)
		}
	}
	if s.IsFeasible() {
		t.Error("set with unbounded aperiodic must not be feasible")
	}
	vm.Shutdown()
}

func TestSchedulerSporadicAnalyzable(t *testing.T) {
	vm := newTestVM(Overheads{})
	s := vm.Scheduler()
	h := vm.NewAsyncEventHandler("h", 9,
		&SporadicParameters{AperiodicParameters: AperiodicParameters{Cost: tu(1), Deadline: tu(5)}, MinInterarrival: tu(5)},
		func(tc *exec.TC) {})
	low := vm.NewRealtimeThread("low", 1, &PeriodicParameters{Period: tu(10), Cost: tu(2)}, func(r *RTC) {})
	s.AddToFeasibility(h)
	s.AddToFeasibility(low)
	for _, r := range s.ResponseTimes() {
		if !r.Analyzable || !r.Feasible {
			t.Errorf("%s: %+v", r.Name, r)
		}
	}
	vm.Shutdown()
}

func TestSchedulerRemoveFromFeasibility(t *testing.T) {
	vm := newTestVM(Overheads{})
	s := vm.Scheduler()
	t1 := vm.NewRealtimeThread("t1", 3, &PeriodicParameters{Period: tu(4), Cost: tu(1)}, func(r *RTC) {})
	s.AddToFeasibility(t1)
	if !s.RemoveFromFeasibility(t1) {
		t.Error("remove failed")
	}
	if s.RemoveFromFeasibility(t1) {
		t.Error("double remove succeeded")
	}
	if len(s.FeasibilitySet()) != 0 {
		t.Error("set not empty")
	}
	vm.Shutdown()
}

// interferenceStub exercises the paper's proposed getInterference hook.
type interferenceStub struct {
	name string
	prio int
	cs   rtime.Duration
	ts   rtime.Duration
}

func (d *interferenceStub) SchedulableName() string               { return d.name }
func (d *interferenceStub) SchedulablePriority() int              { return d.prio }
func (d *interferenceStub) SchedulableRelease() ReleaseParameters { return nil }
func (d *interferenceStub) Interference(w rtime.Duration) rtime.Duration {
	// Deferrable-server style: release jitter Ts - Cs.
	return rtime.Duration(rtime.DivCeil(w+(d.ts-d.cs), d.ts)) * d.cs
}

func TestSchedulerUsesInterferenceProvider(t *testing.T) {
	vm := newTestVM(Overheads{})
	s := vm.Scheduler()
	ds := &interferenceStub{name: "DS", prio: 10, cs: tu(2), ts: tu(5)}
	low := vm.NewRealtimeThread("low", 1, &PeriodicParameters{Period: tu(10), Cost: tu(2)}, func(r *RTC) {})
	s.AddToFeasibility(ds)
	s.AddToFeasibility(low)
	var lowR rtime.Duration
	for _, r := range s.ResponseTimes() {
		if r.Name == "low" {
			if !r.Analyzable {
				t.Fatal("low should be analyzable via the interference hook")
			}
			lowR = r.R
		}
	}
	// Double hit: w = 2 + 2*2 = 6 (same as analysis.WithDeferrableServer).
	if lowR != tu(6) {
		t.Fatalf("low R = %v, want 6tu", lowR)
	}
	vm.Shutdown()
}
