package rtsjvm

import (
	"fmt"
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Differential tests for the two periodic emulation modes at the VM layer:
// a periodic realtime thread written as a WaitForNextPeriod loop
// (NewRealtimeThread) and the same thread written as a per-release
// activation body (NewActivationThread) must produce trace-for-trace
// identical schedules on every executive configuration — the
// {Channel, Direct} × {per-thread, pooled} × {loop, activation} matrix,
// with channel/per-thread/loop as the reference.

// periodicScenario builds a VM workload from a per-release work function
// for each periodic thread, so the same scenario can be expressed in
// either mode.
type periodicScenario struct {
	name    string
	oh      Overheads
	horizon rtime.Time
	// build creates the workload; periodic installs one periodic thread in
	// the mode under test.
	build func(vm *VM, periodic func(name string, prio int, pp *PeriodicParameters, work func(*RTC)))
}

var periodicModeCorpus = []periodicScenario{
	{"plain-periodics", Overheads{}, rtime.AtTU(40), func(vm *VM, periodic func(string, int, *PeriodicParameters, func(*RTC))) {
		periodic("p1", 5, &PeriodicParameters{Period: rtime.TUs(5), Cost: rtime.TUs(1)},
			func(r *RTC) { r.Consume(rtime.TUs(1)) })
		periodic("p2", 3, &PeriodicParameters{Start: rtime.AtTU(1), Period: rtime.TUs(7), Cost: rtime.TUs(2)},
			func(r *RTC) { r.Consume(rtime.TUs(2)) })
	}},
	{"overrun-skips", Overheads{}, rtime.AtTU(60), func(vm *VM, periodic func(string, int, *PeriodicParameters, func(*RTC))) {
		n := 0
		periodic("over", 5, &PeriodicParameters{Period: rtime.TUs(4), Cost: rtime.TUs(1)},
			func(r *RTC) {
				n++
				if n == 1 {
					r.Consume(rtime.TUs(9)) // overruns two releases
				} else {
					r.Consume(rtime.TUs(1))
				}
			})
	}},
	{"periodic-vs-events", Overheads{TimerFire: rtime.TUs(0.15), EventRelease: rtime.TUs(0.05)},
		rtime.AtTU(30), func(vm *VM, periodic func(string, int, *PeriodicParameters, func(*RTC))) {
			periodic("p", 4, &PeriodicParameters{Period: rtime.TUs(6), Cost: rtime.TUs(2)},
				func(r *RTC) { r.Consume(rtime.TUs(2)) })
			h := vm.NewAsyncEventHandler("h", 6, nil, func(tc *exec.TC) { tc.Consume(rtime.TUs(1)) })
			e := vm.NewAsyncEvent("e")
			e.AddHandler(h)
			vm.NewOneShotTimer(rtime.AtTU(3), e, "e").Start()
			vm.NewPeriodicTimer(rtime.AtTU(8), rtime.TUs(9), e, "e").Start()
		}},
	{"periodic-with-monitor", Overheads{}, rtime.AtTU(50), func(vm *VM, periodic func(string, int, *PeriodicParameters, func(*RTC))) {
		m := vm.NewMonitor("m")
		periodic("locker", 3, &PeriodicParameters{Period: rtime.TUs(8), Cost: rtime.TUs(3)},
			func(r *RTC) { m.Synchronized(r.TC, func() { r.Consume(rtime.TUs(3)) }) })
		vm.NewRealtimeThread("contender", 5, nil, func(r *RTC) {
			r.SleepUntil(rtime.AtTU(1))
			for i := 0; i < 3; i++ {
				m.Synchronized(r.TC, func() { r.Consume(rtime.TUs(1)) })
				r.Sleep(rtime.TUs(7))
			}
		})
	}},
	{"periodic-with-timed", Overheads{Interrupt: rtime.TUs(0.1)}, rtime.AtTU(40), func(vm *VM, periodic func(string, int, *PeriodicParameters, func(*RTC))) {
		periodic("budgeted", 4, &PeriodicParameters{Period: rtime.TUs(10), Cost: rtime.TUs(4)},
			func(r *RTC) {
				timed := vm.NewTimed(rtime.TUs(2))
				timed.DoInterruptible(r.TC, Interruptible{
					Run: func(tc *exec.TC) { tc.Consume(rtime.TUs(4)) },
				})
			})
		vm.NewRealtimeThread("bg", 1, nil, func(r *RTC) { r.Consume(rtime.TUs(20)) })
	}},
}

func TestPeriodicModeDiffCorpus(t *testing.T) {
	configs := []struct {
		name string
		opts exec.Options
	}{
		{"channel", exec.Options{Kernel: exec.ChannelKernel}},
		{"direct", exec.Options{Kernel: exec.DirectKernel}},
		{"channel-pooled", exec.Options{Kernel: exec.ChannelKernel, MaxGoroutines: 2}},
		{"direct-pooled", exec.Options{Kernel: exec.DirectKernel, MaxGoroutines: 2}},
	}
	for _, sc := range periodicModeCorpus {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(opts exec.Options, activation bool) *VM {
				t.Helper()
				vm := NewVMSink(trace.New(), sc.oh, opts)
				sc.build(vm, func(name string, prio int, pp *PeriodicParameters, work func(*RTC)) {
					if activation {
						vm.NewActivationThread(name, prio, pp, work)
						return
					}
					vm.NewRealtimeThread(name, prio, pp, func(r *RTC) {
						for {
							work(r)
							r.WaitForNextPeriod()
						}
					})
				})
				if err := vm.Run(sc.horizon); err != nil {
					t.Fatalf("%v/activation=%v: %v", opts.Kernel, activation, err)
				}
				vm.Shutdown()
				return vm
			}
			ref := run(configs[0].opts, false)
			for _, cfg := range configs {
				for _, activation := range []bool{false, true} {
					if cfg.name == "channel" && !activation {
						continue // the reference itself
					}
					got := run(cfg.opts, activation)
					label := fmt.Sprintf("%s/%s-act=%v", sc.name, cfg.name, activation)
					compareVMTraces(t, label, ref.Trace(), got.Trace())
					if ref.Now() != got.Now() {
						t.Errorf("%s: final time differs: ref=%v got=%v",
							label, ref.Now().TUs(), got.Now().TUs())
					}
				}
			}
		})
	}
}

// TestActivationThreadMissedMatchesLoop pins the skip-and-count overrun
// semantics across the two modes: the activation entity's missed count
// must equal the count a looping WaitForNextPeriod accumulates.
func TestActivationThreadMissedMatchesLoop(t *testing.T) {
	pp := &PeriodicParameters{Period: rtime.TUs(4), Cost: rtime.TUs(1)}
	overrunWork := func(k int) rtime.Duration {
		if k%2 == 0 {
			return rtime.TUs(9) // overruns two releases
		}
		return rtime.TUs(1)
	}

	// Horizon 62: the last overrun's WaitForNextPeriod returns at t=60, so
	// the loop observes its final skip count before the run ends (Missed
	// only updates inside WaitForNextPeriod, which the horizon must not
	// truncate).
	vmLoop := NewVM(nil, Overheads{})
	loopMissed := 0
	vmLoop.NewRealtimeThread("p", 5, pp, func(r *RTC) {
		for k := 0; ; k++ {
			r.Consume(overrunWork(k))
			r.WaitForNextPeriod()
			loopMissed = r.Missed
		}
	})
	if err := vmLoop.Run(rtime.AtTU(62)); err != nil {
		t.Fatal(err)
	}
	vmLoop.Shutdown()
	if loopMissed == 0 {
		t.Fatal("loop scenario never missed a release; test is vacuous")
	}

	vmAct := NewVM(nil, Overheads{})
	k, lastMissed := 0, 0
	rt := vmAct.NewActivationThread("p", 5, pp, func(r *RTC) {
		r.Consume(overrunWork(k))
		k++
		lastMissed = r.Missed
	})
	if err := vmAct.Run(rtime.AtTU(62)); err != nil {
		t.Fatal(err)
	}
	vmAct.Shutdown()
	if got := rt.Thread().MissedActivations(); got != loopMissed {
		t.Errorf("activation mode missed %d releases, loop mode %d", got, loopMissed)
	}
	if !rt.Activation() {
		t.Error("thread not reported as activation mode")
	}
	_ = lastMissed // the per-body snapshot lags the post-run total by design
}

func TestWaitForNextPeriodPanicsInActivationBody(t *testing.T) {
	vm := NewVM(nil, Overheads{})
	defer vm.Shutdown()
	vm.NewActivationThread("p", 5, &PeriodicParameters{Period: rtime.TUs(5), Cost: rtime.TUs(1)},
		func(r *RTC) { r.WaitForNextPeriod() })
	err := vm.Run(rtime.AtTU(10))
	if err == nil {
		t.Fatal("WaitForNextPeriod in an activation body did not fail the run")
	}
}
