package rtsjvm

import (
	"testing"

	"rtsj/internal/rtime"
)

func TestMonitorSynchronized(t *testing.T) {
	vm := newTestVM(Overheads{})
	mon := vm.NewMonitor("m")
	var order []string
	mk := func(name string, prio int, start float64) {
		vm.NewRealtimeThread(name, prio, nil, func(r *RTC) {
			r.SleepUntil(at(start))
			mon.Synchronized(r.TC, func() {
				order = append(order, name)
				r.Consume(tu(2))
			})
		})
	}
	mk("first", 1, 0)
	mk("second", 5, 1)
	runVM(t, vm, 20)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestMonitorInheritanceProtectsDeadline(t *testing.T) {
	measure := func(inherit bool) rtime.Time {
		vm := newTestVM(Overheads{})
		var mon *Monitor
		if inherit {
			mon = vm.NewMonitor("bus")
		} else {
			mon = vm.NewMonitorNoAvoidance("bus")
		}
		var hiDone rtime.Time
		vm.NewRealtimeThread("lo", 1, nil, func(r *RTC) {
			mon.Synchronized(r.TC, func() { r.Consume(tu(3)) })
		})
		vm.NewRealtimeThread("mid", 5, nil, func(r *RTC) {
			r.SleepUntil(at(2))
			r.Consume(tu(4))
		})
		vm.NewRealtimeThread("hi", 9, nil, func(r *RTC) {
			r.SleepUntil(at(1))
			mon.Enter(r.TC)
			r.Consume(tu(1))
			mon.Exit(r.TC)
			hiDone = r.Now()
		})
		runVM(t, vm, 30)
		return hiDone
	}
	with := measure(true)
	without := measure(false)
	if with != at(4) {
		t.Errorf("with PI: hi done at %v, want 4", with.TUs())
	}
	if without != at(8) {
		t.Errorf("without PI: hi done at %v, want 8", without.TUs())
	}
}
