package rtsjvm

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

// RealtimeThread mirrors javax.realtime.RealtimeThread: a fixed-priority
// thread, optionally with periodic release parameters.
type RealtimeThread struct {
	vm   *VM
	name string
	prio int
	pp   *PeriodicParameters
	th   *exec.Thread
}

// RTC is the context passed to a realtime thread's body; it extends the
// executive's thread context with RTSJ-style periodic release handling.
type RTC struct {
	*exec.TC
	rt   *RealtimeThread
	next rtime.Time
	// Missed counts skipped activations (deadline-miss style overruns).
	Missed int
}

// NewRealtimeThread creates and starts a realtime thread. With periodic
// parameters the thread is released at pp.Start; otherwise it starts
// immediately. The body typically loops on WaitForNextPeriod.
func (vm *VM) NewRealtimeThread(name string, prio int, pp *PeriodicParameters, body func(*RTC)) *RealtimeThread {
	rt := &RealtimeThread{vm: vm, name: name, prio: prio, pp: pp}
	start := vm.ex.Now()
	if pp != nil && pp.Start > start {
		start = pp.Start
	}
	first := start
	rt.th = vm.ex.Spawn(name, prio, start, func(tc *exec.TC) {
		body(&RTC{TC: tc, rt: rt, next: first})
	})
	return rt
}

// Thread exposes the underlying executive thread.
func (rt *RealtimeThread) Thread() *exec.Thread { return rt.th }

// SchedulableName implements Schedulable.
func (rt *RealtimeThread) SchedulableName() string { return rt.name }

// SchedulablePriority implements Schedulable.
func (rt *RealtimeThread) SchedulablePriority() int { return rt.prio }

// SchedulableRelease implements Schedulable.
func (rt *RealtimeThread) SchedulableRelease() ReleaseParameters {
	if rt.pp == nil {
		return nil
	}
	return rt.pp
}

// WaitForNextPeriod suspends the thread until its next periodic release.
// If the thread overran past one or more releases, those activations are
// skipped (the next release strictly after now is used) and the method
// returns false, mirroring the RTSJ's deadline-miss handling for the
// default (no miss handler) configuration.
func (r *RTC) WaitForNextPeriod() bool {
	if r.rt.pp == nil || r.rt.pp.Period <= 0 {
		panic("rtsjvm: WaitForNextPeriod on a non-periodic thread")
	}
	r.next = r.next.Add(r.rt.pp.Period)
	onTime := true
	for r.next < r.Now() {
		r.next = r.next.Add(r.rt.pp.Period)
		r.Missed++
		onTime = false
	}
	r.SleepUntil(r.next)
	return onTime
}

// CurrentRelease returns the activation instant of the current period.
func (r *RTC) CurrentRelease() rtime.Time { return r.next }
