package rtsjvm

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

// RealtimeThread mirrors javax.realtime.RealtimeThread: a fixed-priority
// thread, optionally with periodic release parameters. It is created in
// one of two emulation modes: the classic looping mode (NewRealtimeThread,
// the body parks in WaitForNextPeriod between releases) or activation mode
// (NewActivationThread, the body is dispatched once per release and owns
// no goroutine in between).
type RealtimeThread struct {
	vm         *VM
	name       string
	prio       int
	pp         *PeriodicParameters
	th         *exec.Thread
	activation bool
}

// RTC is the context passed to a realtime thread's body; it extends the
// executive's thread context with RTSJ-style periodic release handling.
type RTC struct {
	*exec.TC
	rt   *RealtimeThread
	next rtime.Time
	// Missed counts skipped activations (deadline-miss style overruns). In
	// looping mode it accumulates as WaitForNextPeriod skips releases; in
	// activation mode each body receives the entity's total skip count at
	// release time (exec.Thread.MissedActivations).
	Missed int
}

// NewRealtimeThread creates and starts a realtime thread. With periodic
// parameters the thread is released at pp.Start; otherwise it starts
// immediately. The body typically loops on WaitForNextPeriod.
func (vm *VM) NewRealtimeThread(name string, prio int, pp *PeriodicParameters, body func(*RTC)) *RealtimeThread {
	return vm.NewRealtimeThreadOn(name, prio, -1, pp, body)
}

// NewRealtimeThreadOn creates and starts a realtime thread like
// NewRealtimeThread with an explicit CPU affinity — the RTSJ-style
// processor-affinity surface over exec.SpawnOn. cpu is a virtual CPU index
// or -1 for no affinity; it is the static placement input of the
// Partitioned and Clustered migration policies (exec.Options.Migration)
// and is recorded but non-constraining under Global.
func (vm *VM) NewRealtimeThreadOn(name string, prio, cpu int, pp *PeriodicParameters, body func(*RTC)) *RealtimeThread {
	if pp != nil && pp.Miss == exec.MissAbort {
		panic("rtsjvm: the abort miss policy requires activation mode (NewActivationThread)")
	}
	rt := &RealtimeThread{vm: vm, name: name, prio: prio, pp: pp}
	start := vm.ex.Now()
	if pp != nil && pp.Start > start {
		start = pp.Start
	}
	first := start
	rt.th = vm.ex.SpawnOn(name, prio, start, cpu, func(tc *exec.TC) {
		body(&RTC{TC: tc, rt: rt, next: first})
	})
	return rt
}

// NewActivationThread creates a periodic realtime thread in activation
// mode: body runs once per release, dispatched by the executive's
// activation path (exec.SpawnPeriodic) on a pool worker when the VM runs
// pooled (exec.Options.MaxGoroutines > 0), so the thread owns no goroutine
// between releases. Returning from body is the activation-mode
// WaitForNextPeriod: if the body overran past one or more releases, those
// activations are skipped and counted (RTC.Missed), exactly as the looping
// mode's WaitForNextPeriod would have — the two modes are
// schedule-identical (pinned by TestPeriodicModeDiffCorpus).
//
// pp must carry a positive Period. Calling WaitForNextPeriod inside an
// activation body panics: the release boundary is the body return.
func (vm *VM) NewActivationThread(name string, prio int, pp *PeriodicParameters, body func(*RTC)) *RealtimeThread {
	return vm.NewActivationThreadOn(name, prio, -1, pp, body)
}

// NewActivationThreadOn creates an activation-mode periodic thread like
// NewActivationThread with an explicit CPU affinity (a virtual CPU index,
// or -1 for none — see NewRealtimeThreadOn for the affinity contract).
func (vm *VM) NewActivationThreadOn(name string, prio, cpu int, pp *PeriodicParameters, body func(*RTC)) *RealtimeThread {
	if pp == nil || pp.Period <= 0 {
		panic("rtsjvm: NewActivationThread needs periodic parameters with a positive period")
	}
	rt := &RealtimeThread{vm: vm, name: name, prio: prio, pp: pp, activation: true}
	start := vm.ex.Now()
	if pp.Start > start {
		start = pp.Start
	}
	rt.th = vm.ex.SpawnPeriodicOn(name, prio, cpu,
		exec.ActivationSpec{Start: start, Period: pp.Period, Miss: pp.Miss},
		func(tc *exec.TC) {
			body(&RTC{
				TC:     tc,
				rt:     rt,
				next:   tc.Thread().CurrentRelease(),
				Missed: tc.Thread().MissedActivations(),
			})
		})
	return rt
}

// Activation reports whether the thread runs in activation mode
// (NewActivationThread) rather than the classic looping mode.
func (rt *RealtimeThread) Activation() bool { return rt.activation }

// Thread exposes the underlying executive thread.
func (rt *RealtimeThread) Thread() *exec.Thread { return rt.th }

// SchedulableName implements Schedulable.
func (rt *RealtimeThread) SchedulableName() string { return rt.name }

// SchedulablePriority implements Schedulable.
func (rt *RealtimeThread) SchedulablePriority() int { return rt.prio }

// SchedulableRelease implements Schedulable.
func (rt *RealtimeThread) SchedulableRelease() ReleaseParameters {
	if rt.pp == nil {
		return nil
	}
	return rt.pp
}

// WaitForNextPeriod suspends the thread until its next periodic release.
// If the thread overran past one or more releases, the periodic
// parameters' miss policy decides: under the default (exec.MissSkip) the
// overrun activations are skipped (the next release strictly after now is
// used) and the method returns false, mirroring the RTSJ's deadline-miss
// handling for the no-miss-handler configuration; under
// exec.MissContinueLate the next release is kept even though it is past
// due — the thread continues immediately, late, and the method returns
// false. Either way the kernel-call sequence matches the activation-mode
// rearm for the same policy, keeping the two emulation modes
// schedule-identical.
func (r *RTC) WaitForNextPeriod() bool {
	if r.rt.pp == nil || r.rt.pp.Period <= 0 {
		panic("rtsjvm: WaitForNextPeriod on a non-periodic thread")
	}
	if r.rt.activation {
		panic("rtsjvm: WaitForNextPeriod inside an activation-mode body (return from the body instead)")
	}
	r.next = r.next.Add(r.rt.pp.Period)
	onTime := true
	if r.rt.pp.Miss == exec.MissContinueLate {
		if r.next < r.Now() {
			r.Missed++
			onTime = false
		}
	} else {
		for r.next < r.Now() {
			r.next = r.next.Add(r.rt.pp.Period)
			r.Missed++
			onTime = false
		}
	}
	r.SleepUntil(r.next)
	return onTime
}

// CurrentRelease returns the activation instant of the current period.
func (r *RTC) CurrentRelease() rtime.Time { return r.next }
