package rtsjvm

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

// ReleaseParameters describes the release pattern of a schedulable object,
// mirroring javax.realtime.ReleaseParameters.
type ReleaseParameters interface {
	// ReleaseCost is the declared worst-case execution time per release.
	ReleaseCost() rtime.Duration
	// ReleaseDeadline is the relative deadline (0: none / same as period).
	ReleaseDeadline() rtime.Duration
	// ReleasePeriod is the period, or the minimum interarrival time for
	// sporadic releases; 0 for unbounded aperiodic releases.
	ReleasePeriod() rtime.Duration
}

// PeriodicParameters mirrors javax.realtime.PeriodicParameters.
type PeriodicParameters struct {
	// Start is the first release instant.
	Start rtime.Time
	// Period is the release period.
	Period rtime.Duration
	// Cost is the declared worst-case execution time per release.
	Cost rtime.Duration
	// Deadline is the relative deadline; 0 means deadline = period.
	Deadline rtime.Duration
	// Miss selects the overrun policy (the RTSJ's miss-handler choice,
	// reduced to the three deterministic policies the executive supports):
	// exec.MissSkip skips overrun releases, exec.MissContinueLate releases
	// late, exec.MissAbort cuts the body off at its implicit deadline.
	// MissAbort requires activation mode (NewActivationThread) — the
	// looping mode's body owns the release loop, so the VM cannot bound a
	// single release from outside it.
	Miss exec.MissPolicy
}

// ReleaseCost implements ReleaseParameters.
func (p *PeriodicParameters) ReleaseCost() rtime.Duration { return p.Cost }

// ReleaseDeadline implements ReleaseParameters.
func (p *PeriodicParameters) ReleaseDeadline() rtime.Duration {
	if p.Deadline > 0 {
		return p.Deadline
	}
	return p.Period
}

// ReleasePeriod implements ReleaseParameters.
func (p *PeriodicParameters) ReleasePeriod() rtime.Duration { return p.Period }

// AperiodicParameters mirrors javax.realtime.AperiodicParameters: releases
// with no arrival bound, which is why the RTSJ cannot include plain
// aperiodic handlers in feasibility analysis (Section 3 of the paper).
type AperiodicParameters struct {
	// Cost is the declared worst-case execution time per release.
	Cost rtime.Duration
	// Deadline is the relative deadline; 0 means none.
	Deadline rtime.Duration
}

// ReleaseCost implements ReleaseParameters.
func (p *AperiodicParameters) ReleaseCost() rtime.Duration { return p.Cost }

// ReleaseDeadline implements ReleaseParameters.
func (p *AperiodicParameters) ReleaseDeadline() rtime.Duration { return p.Deadline }

// ReleasePeriod implements ReleaseParameters: no bound.
func (p *AperiodicParameters) ReleasePeriod() rtime.Duration { return 0 }

// SporadicParameters mirrors javax.realtime.SporadicParameters: aperiodic
// releases with a minimum interarrival time, analyzable as a periodic task
// at the worst-case occurring frequency.
type SporadicParameters struct {
	AperiodicParameters
	// MinInterarrival is the minimum time between consecutive releases.
	MinInterarrival rtime.Duration
}

// ReleasePeriod implements ReleaseParameters using the interarrival bound.
func (p *SporadicParameters) ReleasePeriod() rtime.Duration { return p.MinInterarrival }

// ProcessingGroupParameters mirrors javax.realtime.ProcessingGroupParameters:
// a periodically replenished cost budget shared by a group of schedulables.
//
// The paper (after Burns & Wellings) criticizes PGP on two grounds this
// type makes concrete: no server policy is attached to the budget, and cost
// enforcement is an optional VM feature — "without this feature, PGP are
// useless". Construct with Enforcing=false to reproduce the reference
// implementation's behaviour, where the group budget has no effect at all.
type ProcessingGroupParameters struct {
	vm *VM
	// Start anchors the replenishment grid.
	Start rtime.Time
	// Period is the replenishment period of the group budget.
	Period rtime.Duration
	// Cost is the group budget per period.
	Cost rtime.Duration
	// Enforcing selects whether the VM implements cost enforcement (an
	// optional RTSJ feature); without it the budget is tracked but never
	// acted upon.
	Enforcing bool

	curPeriod int64
	used      rtime.Duration
}

// NewProcessingGroupParameters creates a group budget. enforcing selects
// whether the VM implements cost enforcement (optional per the RTSJ).
func (vm *VM) NewProcessingGroupParameters(start rtime.Time, period, cost rtime.Duration, enforcing bool) *ProcessingGroupParameters {
	if period <= 0 {
		panic("rtsjvm: processing group period must be positive")
	}
	return &ProcessingGroupParameters{
		vm: vm, Start: start, Period: period, Cost: cost, Enforcing: enforcing,
	}
}

// refresh lazily replenishes the budget at period boundaries.
func (g *ProcessingGroupParameters) refresh(now rtime.Time) {
	p := rtime.DivFloor(now.Sub(g.Start), g.Period)
	if p > g.curPeriod {
		g.curPeriod = p
		g.used = 0
	}
}

// Remaining returns the group budget left in the current period.
func (g *ProcessingGroupParameters) Remaining(now rtime.Time) rtime.Duration {
	g.refresh(now)
	if g.used >= g.Cost {
		return 0
	}
	return g.Cost - g.used
}

// ConsumeGoverned consumes d units of CPU on behalf of a group member.
// With enforcement, the member is descheduled whenever the group budget is
// exhausted, resuming after the next replenishment. Without enforcement the
// call degenerates to a plain Consume: the budget is tracked but never
// acted upon — the RTSJ reference implementation behaviour the paper calls
// out.
func (g *ProcessingGroupParameters) ConsumeGoverned(tc *exec.TC, d rtime.Duration) {
	if !g.Enforcing {
		g.refresh(tc.Now())
		g.used += d // accounting only; no effect
		tc.Consume(d)
		return
	}
	for d > 0 {
		g.refresh(tc.Now())
		avail := g.Cost - g.used
		if avail <= 0 {
			next := g.Start.Add(rtime.Duration(g.curPeriod+1) * g.Period)
			tc.SleepUntil(next)
			continue
		}
		chunk := rtime.MinDur(d, avail)
		tc.Consume(chunk)
		g.used += chunk
		d -= chunk
	}
}
