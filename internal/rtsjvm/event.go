package rtsjvm

import (
	"rtsj/internal/exec"
)

// AsyncEvent mirrors javax.realtime.AsyncEvent: an event that, when fired,
// releases all its attached handlers.
type AsyncEvent struct {
	name     string
	vm       *VM
	handlers []*AsyncEventHandler
}

// NewAsyncEvent creates an asynchronous event.
func (vm *VM) NewAsyncEvent(name string) *AsyncEvent {
	return &AsyncEvent{name: name, vm: vm}
}

// Name returns the event name.
func (e *AsyncEvent) Name() string { return e.name }

// VM returns the owning virtual machine.
func (e *AsyncEvent) VM() *VM { return e.vm }

// AddHandler attaches a handler, as AsyncEvent.addHandler.
func (e *AsyncEvent) AddHandler(h *AsyncEventHandler) {
	e.handlers = append(e.handlers, h)
}

// RemoveHandler detaches a handler.
func (e *AsyncEvent) RemoveHandler(h *AsyncEventHandler) {
	for i, x := range e.handlers {
		if x == h {
			e.handlers = append(e.handlers[:i], e.handlers[i+1:]...)
			return
		}
	}
}

// Handlers returns the attached handlers.
func (e *AsyncEvent) Handlers() []*AsyncEventHandler { return e.handlers }

// Fire releases every attached handler. It implements Firable so timers can
// fire events; application threads may also fire events directly from their
// own context.
func (e *AsyncEvent) Fire(tc *exec.TC) {
	for _, h := range e.handlers {
		h.Release(tc)
	}
}

// AsyncEventHandler mirrors javax.realtime.AsyncEventHandler: a schedulable
// object with a fire count, backed by a dedicated server thread that runs
// the handler logic once per release.
type AsyncEventHandler struct {
	name    string
	vm      *VM
	prio    int
	release ReleaseParameters
	logic   func(tc *exec.TC)

	fireCount int
	released  int
	handled   int
	q         *exec.WaitQueue
	th        *exec.Thread
}

// NewAsyncEventHandler creates a handler whose logic runs at the given
// priority each time a bound event fires. release may be nil (plain
// aperiodic, not analyzable — the situation the paper's framework fixes).
func (vm *VM) NewAsyncEventHandler(name string, prio int, release ReleaseParameters, logic func(tc *exec.TC)) *AsyncEventHandler {
	h := &AsyncEventHandler{
		name:    name,
		vm:      vm,
		prio:    prio,
		release: release,
		logic:   logic,
		q:       exec.NewWaitQueue(name),
	}
	h.th = vm.ex.Spawn(name, prio, 0, h.body)
	return h
}

func (h *AsyncEventHandler) body(tc *exec.TC) {
	for {
		for h.fireCount == 0 {
			tc.Wait(h.q)
		}
		h.fireCount--
		h.logic(tc)
		h.handled++
	}
}

// Release increments the fire count and wakes the handler's thread,
// charging the release overhead to the firing context.
func (h *AsyncEventHandler) Release(tc *exec.TC) {
	if oh := h.vm.oh.EventRelease; oh > 0 {
		tc.Consume(oh)
	}
	h.fireCount++
	h.released++
	h.vm.ex.NotifyAll(h.q)
}

// Name returns the handler name.
func (h *AsyncEventHandler) Name() string { return h.name }

// FireCount returns the pending (unhandled) fire count.
func (h *AsyncEventHandler) FireCount() int { return h.fireCount }

// ReleasedCount returns the total number of releases.
func (h *AsyncEventHandler) ReleasedCount() int { return h.released }

// HandledCount returns the number of completed executions of the logic.
func (h *AsyncEventHandler) HandledCount() int { return h.handled }

// SchedulableName implements Schedulable.
func (h *AsyncEventHandler) SchedulableName() string { return h.name }

// SchedulablePriority implements Schedulable.
func (h *AsyncEventHandler) SchedulablePriority() int { return h.prio }

// SchedulableRelease implements Schedulable.
func (h *AsyncEventHandler) SchedulableRelease() ReleaseParameters { return h.release }
