package rtsjvm

import (
	"rtsj/internal/exec"
)

// Monitor models an RTSJ synchronized monitor. The RTSJ mandates a
// priority-inversion avoidance protocol for all monitors, with priority
// inheritance (javax.realtime.PriorityInheritance) as the required
// default; NewMonitorNoAvoidance builds the unprotected variant to
// demonstrate why the mandate exists.
type Monitor struct {
	mu *exec.Mutex
}

// NewMonitor creates a priority-inheritance monitor.
func (vm *VM) NewMonitor(name string) *Monitor {
	return &Monitor{mu: exec.NewMutex(name)}
}

// NewMonitorNoAvoidance creates a monitor without inversion avoidance.
func (vm *VM) NewMonitorNoAvoidance(name string) *Monitor {
	return &Monitor{mu: exec.NewMutexNoInherit(name)}
}

// Enter acquires the monitor.
func (m *Monitor) Enter(tc *exec.TC) { tc.Lock(m.mu) }

// Exit releases the monitor.
func (m *Monitor) Exit(tc *exec.TC) { tc.Unlock(m.mu) }

// Synchronized runs fn holding the monitor, like a synchronized block.
func (m *Monitor) Synchronized(tc *exec.TC, fn func()) { tc.WithLock(m.mu, fn) }
