package rtsjvm

import (
	"rtsj/internal/rtime"
)

// OneShotTimer mirrors javax.realtime.OneShotTimer: it fires an event once
// at an absolute instant, through the timer daemon (which charges the
// timer-fire overhead at the highest priority).
type OneShotTimer struct {
	vm      *VM
	at      rtime.Time
	target  Firable
	label   string
	cancel  func()
	started bool
}

// NewOneShotTimer creates a timer firing target at instant at. The label
// annotates the timer daemon's trace segments. Call Start to arm it.
func (vm *VM) NewOneShotTimer(at rtime.Time, target Firable, label string) *OneShotTimer {
	return &OneShotTimer{vm: vm, at: at, target: target, label: label}
}

// Start arms the timer.
func (t *OneShotTimer) Start() {
	if t.started {
		return
	}
	t.started = true
	t.cancel = t.vm.FireAt(t.at, t.target, t.label)
}

// Stop disarms the timer; returns false if it was not armed.
func (t *OneShotTimer) Stop() bool {
	if !t.started || t.cancel == nil {
		return false
	}
	t.cancel()
	t.cancel = nil
	return true
}

// PeriodicTimer mirrors javax.realtime.PeriodicTimer: it fires an event at
// start and then every interval, through the timer daemon.
type PeriodicTimer struct {
	vm       *VM
	start    rtime.Time
	interval rtime.Duration
	target   Firable
	label    string
	stopped  bool
	started  bool
	cancel   func()
}

// NewPeriodicTimer creates a periodic timer. Call Start to arm it.
func (vm *VM) NewPeriodicTimer(start rtime.Time, interval rtime.Duration, target Firable, label string) *PeriodicTimer {
	if interval <= 0 {
		panic("rtsjvm: periodic timer interval must be positive")
	}
	return &PeriodicTimer{vm: vm, start: start, interval: interval, target: target, label: label}
}

// Start arms the timer.
func (t *PeriodicTimer) Start() {
	if t.started {
		return
	}
	t.started = true
	t.arm(t.start)
}

func (t *PeriodicTimer) arm(at rtime.Time) {
	t.cancel = t.vm.ex.At(at, func() {
		if t.stopped {
			return
		}
		t.vm.enqueueFire(t.target, t.label)
		t.arm(at.Add(t.interval))
	})
}

// Stop disarms the timer permanently.
func (t *PeriodicTimer) Stop() {
	t.stopped = true
	if t.cancel != nil {
		t.cancel()
	}
}
