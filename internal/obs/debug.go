package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Publish registers the registry's live snapshot in the process-wide
// expvar namespace under name, so it appears in /debug/vars. Publishing
// the same name twice is a no-op (expvar itself panics on duplicates);
// the first registry wins. Nil receiver is a no-op.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Map() }))
}

// ServeDebug starts an HTTP debug endpoint on addr (":0" picks a free
// port) exposing /debug/vars (expvar, including every published registry)
// and /debug/pprof. It returns the bound address. The server runs until
// the process exits; connection errors after startup are discarded — the
// endpoint is best-effort observability, never load-bearing.
func ServeDebug(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
