package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// Every instrument method must be a safe no-op on a nil receiver: that is
// the whole zero-overhead-when-disabled contract.
func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Max(9)
	if g.Add(2) != 0 || g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", []int64{1}) != nil {
		t.Fatal("nil registry built an instrument")
	}
	if r.Snapshot() != nil || r.Map() != nil || r.Format() != "" {
		t.Fatal("nil registry produced a snapshot")
	}
	r.Publish("nil-registry")
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("b.count")
	c2 := r.Counter("b.count")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Add(2)
	r.Gauge("a.gauge").Set(7)
	r.Histogram("c.lat", []int64{1, 10}).Observe(5)
	r.Histogram("c.lat", []int64{1, 10}).Observe(50)

	var names []string
	for _, m := range r.Snapshot() {
		names = append(names, fmt.Sprintf("%s=%d", m.Name, m.Value))
	}
	want := "a.gauge=7 b.count=2 c.lat.le1=0 c.lat.le10=1 c.lat.leinf=1 c.lat.count=2 c.lat.sum=55"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("snapshot:\n got %s\nwant %s", got, want)
	}
	wantFmt := "a.gauge 7\nb.count 2\nc.lat.le1 0\nc.lat.le10 1\nc.lat.leinf 1\nc.lat.count 2\nc.lat.sum 55\n"
	if got := r.Format(); got != wantFmt {
		t.Fatalf("format:\n got %q\nwant %q", got, wantFmt)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering x as a gauge after a counter")
		}
	}()
	r.Gauge("x")
}

func TestGaugeMaxIsHighWaterMark(t *testing.T) {
	g := &Gauge{}
	g.Max(5)
	g.Max(3)
	if g.Value() != 5 {
		t.Fatalf("Max lowered the gauge: %d", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("Max did not raise the gauge: %d", g.Value())
	}
}

func TestInstrumentsAreConcurrencySafe(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Max(int64(i))
				h.Observe(int64(i % 40))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 999 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestServeDebugExposesVarsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.requests").Add(42)
	r.Publish("obs-test")
	r.Publish("obs-test") // duplicate publish must not panic

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var snap map[string]int64
	if err := json.Unmarshal(vars["obs-test"], &snap); err != nil {
		t.Fatalf("obs-test var: %v", err)
	}
	if snap["test.requests"] != 42 {
		t.Fatalf("test.requests = %d, want 42", snap["test.requests"])
	}
	idx, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx.Body.Close()
	if idx.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", idx.StatusCode)
	}
}
