// Package obs is the runtime observability layer: a registry of atomic
// counters, gauges and histograms that the executive, the harness and the
// campaign fabric bump while they run, plus expvar/pprof debug endpoints
// for the long-lived processes (cmd/shard -listen, cmd/stress).
//
// The layer is zero-overhead when disabled: every instrument method is a
// nil-receiver no-op, so a component whose stats were never wired holds
// nil pointers and pays one inlined nil check per hook. Snapshots are
// deterministic (sorted by metric name) so two runs of the same workload
// print their stats identically.
//
// Counters are observational only. Nothing read back from an instrument
// may feed a fingerprint, a trace, or a metrics output — the determinism
// contract of the core packages is that their results are pure functions
// of (inputs, seed), and instrument values depend on wall-clock interleaving
// (pool reuse, worker scheduling). rtlint's nondeterm analyzer enforces
// the split: instrument *bumps* are permitted inside deterministic
// packages, instrument *reads* are a finding there.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards every bump, which is how disabled
// components skip stats without branching at call sites.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver). Never feed the
// value into a fingerprint, trace or metrics output — see the package
// comment.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, in-flight count)
// that also supports high-water-mark raising. The zero value is ready; a
// nil *Gauge discards every update.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta and returns the new value (0 on a nil receiver).
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(delta)
}

// Max raises the gauge to v if v exceeds the current value — the
// high-water-mark update. Safe on a nil receiver (no-op).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver). Observational
// only — see the package comment.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed buckets (cumulative
// "le" semantics: bucket i counts observations <= Bounds[i], with one
// overflow bucket above the last bound). Construct through
// Registry.Histogram; a nil *Histogram discards every observation.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// DefaultLatencyBuckets are the stock request-latency bucket bounds, in
// integer milliseconds, used by the shard fabric's request histograms.
var DefaultLatencyBuckets = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on a nil receiver).
// Observational only — see the package comment.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
// Observational only — see the package comment.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metric is a registered instrument: it knows how to expand itself into
// named snapshot entries.
type metric interface {
	expand(name string, emit func(name string, value int64))
}

func (c *Counter) expand(name string, emit func(string, int64)) { emit(name, c.Value()) }
func (g *Gauge) expand(name string, emit func(string, int64))   { emit(name, g.Value()) }

func (h *Histogram) expand(name string, emit func(string, int64)) {
	for i, b := range h.bounds {
		emit(fmt.Sprintf("%s.le%d", name, b), h.counts[i].Load())
	}
	emit(name+".leinf", h.counts[len(h.bounds)].Load())
	emit(name+".count", h.count.Load())
	emit(name+".sum", h.sum.Load())
}

// Registry holds named instruments. Constructors are idempotent: asking
// twice for the same name and kind returns the same instrument, so
// several components can share one metric. A nil *Registry returns nil
// instruments from every constructor, which makes wiring optional all the
// way down: pass a nil registry and the whole stats path collapses to
// inlined nil checks.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Nil receiver returns nil. Panics if name is already registered as
// a different kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a counter", name, m))
		}
		return c
	}
	c := &Counter{}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil receiver returns nil. Panics if name is already registered as
// a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a gauge", name, m))
		}
		return g
	}
	g := &Gauge{}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given cumulative bucket bounds (which must be sorted ascending) on
// first use. Nil receiver returns nil. Panics if name is already
// registered as a different kind.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a histogram", name, m))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	r.metrics[name] = h
	return h
}

// Metric is one named snapshot entry.
type Metric struct {
	// Name is the metric name (histograms expand into one entry per
	// bucket plus ".count" and ".sum").
	Name string
	// Value is the entry's value at snapshot time.
	Value int64
}

// Snapshot returns every entry, sorted by instrument name (histogram
// bucket entries stay in bound order under their instrument). The order
// is deterministic, so snapshots of identical states print identically.
// Nil receiver returns nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Metric
	for _, name := range names {
		r.metrics[name].expand(name, func(n string, v int64) {
			out = append(out, Metric{Name: n, Value: v})
		})
	}
	return out
}

// Map returns the snapshot as a name->value map, the shape expvar
// publishes (JSON object keys are emitted sorted by encoding/json).
// Nil receiver returns nil.
func (r *Registry) Map() map[string]int64 {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	out := make(map[string]int64, len(snap))
	for _, m := range snap {
		out[m.Name] = m.Value
	}
	return out
}

// Format renders the snapshot as "name value" lines in snapshot order —
// the text form cmd/stress -stats prints. Nil receiver returns "".
func (r *Registry) Format() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
	}
	return b.String()
}
