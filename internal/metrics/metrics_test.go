package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"rtsj/internal/core"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

func ev(rel, fin float64, served, interrupted bool) Event {
	return Event{
		Released:    rtime.AtTU(rel),
		Finished:    rtime.AtTU(fin),
		Served:      served,
		Interrupted: interrupted,
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		ev(0, 3, true, false),
		ev(2, 9, true, false),
		ev(4, 6, false, true),
		ev(10, 0, false, false),
	}
	s := Summarize(events)
	if s.Total != 4 || s.Served != 2 || s.Interrupted != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AvgResponse != 5 { // (3 + 7) / 2
		t.Errorf("AvgResponse = %v, want 5", s.AvgResponse)
	}
	if s.MaxResponse != 7 {
		t.Errorf("MaxResponse = %v, want 7", s.MaxResponse)
	}
	if s.ServedRatio != 0.5 || s.InterruptedRatio != 0.25 {
		t.Errorf("ratios: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.AvgResponse != 0 || s.ServedRatio != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestAggregate(t *testing.T) {
	set := Aggregate([]Summary{
		{AvgResponse: 4, ServedRatio: 0.5, InterruptedRatio: 0.1},
		{AvgResponse: 8, ServedRatio: 1.0, InterruptedRatio: 0.3},
	})
	if set.AART != 6 || set.ASR != 0.75 || math.Abs(set.AIR-0.2) > 1e-12 || set.Systems != 2 {
		t.Errorf("aggregate: %+v", set)
	}
	if Aggregate(nil).Systems != 0 {
		t.Error("empty aggregate")
	}
	if s := set.String(); s == "" {
		t.Error("empty String")
	}
}

func TestFromSimResult(t *testing.T) {
	sys := sim.System{
		Aperiodics: []sim.AperiodicJob{
			{Name: "a", Release: 0, Cost: rtime.TUs(2)},
		},
		Server: &sim.ServerSpec{Policy: sim.DeferrableServer,
			Capacity: rtime.TUs(3), Period: rtime.TUs(6), Priority: 10},
	}
	r, err := sim.Run(sys, sim.NewFP(sys, nil), rtime.AtTU(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := FromSimResult(r)
	if len(evs) != 1 || !evs[0].Served || evs[0].Response() != 2 {
		t.Fatalf("events: %+v", evs)
	}
}

func TestFromRecords(t *testing.T) {
	recs := []*core.EventRecord{
		{Handler: "h1", Released: rtime.AtTU(1), Finished: rtime.AtTU(4), Served: true},
		{Handler: "h2", Released: rtime.AtTU(2), Finished: rtime.AtTU(5), Interrupted: true},
	}
	evs := FromRecords(recs)
	if len(evs) != 2 {
		t.Fatal("length")
	}
	if !evs[0].Served || evs[0].Response() != 3 {
		t.Errorf("h1: %+v", evs[0])
	}
	if evs[1].Served || !evs[1].Interrupted || evs[1].Response() != 0 {
		t.Errorf("h2: %+v", evs[1])
	}
}

func TestResponsePercentile(t *testing.T) {
	var events []Event
	for i := 1; i <= 10; i++ {
		events = append(events, ev(0, float64(i), true, false))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, c := range cases {
		if got := ResponsePercentile(events, c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := ResponsePercentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	unserved := []Event{ev(0, 5, false, false)}
	if got := ResponsePercentile(unserved, 50); got != 0 {
		t.Errorf("unserved-only percentile = %v", got)
	}
}

// Property: ratios stay in [0,1], AvgResponse is within [min,max] response.
func TestSummarizeProperties(t *testing.T) {
	f := func(spec []uint8) bool {
		var events []Event
		for i, b := range spec {
			served := b&1 == 1
			interrupted := !served && b&2 == 2
			events = append(events, ev(float64(i), float64(i)+float64(b%16)+1, served, interrupted))
		}
		s := Summarize(events)
		if s.ServedRatio < 0 || s.ServedRatio > 1 || s.InterruptedRatio < 0 || s.InterruptedRatio > 1 {
			return false
		}
		if s.Served+0 > s.Total || s.Interrupted > s.Total {
			return false
		}
		return s.AvgResponse <= s.MaxResponse+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
