package metrics

import (
	"fmt"

	"rtsj/internal/rtime"
)

// Partial is a mergeable partial aggregate of per-system campaign
// outcomes: the unit a campaign shard computes for one system-index range
// and the coordinator merges into curve points.
//
// Every field is an integer tally — counts, and response times in integer
// virtual-time ticks (rtime's fixed-point nanoseconds) — so Merge is exact
// and associative: folding systems one at a time in-process, merging
// per-range partials from one shard, or merging partials from N shards in
// any grouping all produce the same Partial bit for bit. That exactness is
// what makes the campaign fabric's "in-process == 1 shard == N shards"
// differential guarantee possible; a float accumulator would drift with
// the grouping. Ratios and averages are derived views (ScheduleRatio,
// ServedRatio, MeanResponseTU), computed only after merging.
type Partial struct {
	// Systems counts the systems aggregated into this partial.
	Systems int `json:"systems"`
	// Schedulable counts systems whose every aperiodic event was served —
	// the numerator of the schedulability curve.
	Schedulable int `json:"schedulable"`
	// Events counts all aperiodic events across the systems.
	Events int `json:"events"`
	// Served counts events served to completion.
	Served int `json:"served"`
	// Interrupted counts events interrupted mid-service.
	Interrupted int `json:"interrupted"`
	// Shed counts events dropped at registration by an overloaded server.
	Shed int `json:"shed"`
	// RespTicks is the summed response time of served events, in integer
	// virtual-time ticks. The tick sum of a million-system campaign still
	// fits comfortably in an int64 (1e6 systems x ~30 events x ~60 ms of
	// virtual time is ~2e18 at worst; typical campaigns are far below).
	RespTicks int64 `json:"resp_ticks"`
	// MaxRespTicks is the largest single served-event response, in ticks.
	MaxRespTicks int64 `json:"max_resp_ticks"`
}

// AddSystem folds one system's event outcomes into the partial.
func (p *Partial) AddSystem(events []Event) {
	p.Systems++
	all := true
	for _, e := range events {
		p.Events++
		if e.Interrupted {
			p.Interrupted++
		}
		if e.Shed {
			p.Shed++
		}
		if !e.Served {
			all = false
			continue
		}
		p.Served++
		ticks := int64(e.Finished.Sub(e.Released))
		p.RespTicks += ticks
		if ticks > p.MaxRespTicks {
			p.MaxRespTicks = ticks
		}
	}
	if all {
		p.Schedulable++
	}
}

// Merge folds another partial into p. Because every field is an integer
// tally, Merge is exact, associative and commutative: any shard split of a
// campaign merges to the same result.
func (p *Partial) Merge(q Partial) {
	p.Systems += q.Systems
	p.Schedulable += q.Schedulable
	p.Events += q.Events
	p.Served += q.Served
	p.Interrupted += q.Interrupted
	p.Shed += q.Shed
	p.RespTicks += q.RespTicks
	if q.MaxRespTicks > p.MaxRespTicks {
		p.MaxRespTicks = q.MaxRespTicks
	}
}

// ScheduleRatio returns the fraction of systems whose every event was
// served — one point of the schedulability curve.
func (p Partial) ScheduleRatio() float64 {
	if p.Systems == 0 {
		return 0
	}
	return float64(p.Schedulable) / float64(p.Systems)
}

// ServedRatio returns the fraction of events served to completion.
func (p Partial) ServedRatio() float64 {
	if p.Events == 0 {
		return 0
	}
	return float64(p.Served) / float64(p.Events)
}

// MeanResponseTU returns the mean response time of served events, in paper
// time units.
func (p Partial) MeanResponseTU() float64 {
	if p.Served == 0 {
		return 0
	}
	return rtime.Duration(p.RespTicks).TUs() / float64(p.Served)
}

// MaxResponseTU returns the largest served-event response, in paper time
// units.
func (p Partial) MaxResponseTU() float64 {
	return rtime.Duration(p.MaxRespTicks).TUs()
}

// String renders the derived measures, for logs and error messages.
func (p Partial) String() string {
	return fmt.Sprintf("systems=%d schedulable=%.4f served=%.4f mean-resp=%.2ftu",
		p.Systems, p.ScheduleRatio(), p.ServedRatio(), p.MeanResponseTU())
}
