// Package metrics computes the paper's evaluation measures over aperiodic
// events: per-system average response time of served events, served ratio
// and interrupted ratio, and per-set averages of those (AART, ASR, AIR —
// Section 6.1).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"rtsj/internal/core"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

// Event is one aperiodic event outcome, the unit of measurement.
type Event struct {
	Name        string     // event name, matching the job it came from
	Released    rtime.Time // firing instant
	Finished    rtime.Time // completion instant, when Served
	Served      bool       // the handler ran to completion
	Interrupted bool       // the handler was interrupted mid-service
	// Shed marks an event dropped at registration by an overloaded server
	// (core.TaskServer.SetMaxPending): never queued, never served.
	Shed bool
}

// Response returns the response time in time units (served events only).
func (e Event) Response() float64 {
	if !e.Served {
		return 0
	}
	return e.Finished.Sub(e.Released).TUs()
}

// FromSimResult extracts events from a simulator run.
func FromSimResult(r *sim.Result) []Event {
	jobs := r.Aperiodics()
	out := make([]Event, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, Event{
			Name:        j.Name(),
			Released:    j.Release,
			Finished:    j.Finish,
			Served:      j.Finished,
			Interrupted: j.Aborted,
		})
	}
	return out
}

// FromRecords extracts events from a task server's records.
func FromRecords(recs []*core.EventRecord) []Event {
	out := make([]Event, 0, len(recs))
	for _, r := range recs {
		out = append(out, Event{
			Name:        r.Handler,
			Released:    r.Released,
			Finished:    r.Finished,
			Served:      r.Served,
			Interrupted: r.Interrupted,
			Shed:        r.Shed,
		})
	}
	return out
}

// Summary holds the per-system measures of Section 6.1.
type Summary struct {
	Total       int // aperiodic events observed
	Served      int // events served to completion
	Interrupted int // events interrupted mid-service
	// Shed counts events dropped at registration under overload.
	Shed int
	// AvgResponse is the average response time of served events, in tu.
	AvgResponse float64
	// MaxResponse is the largest observed response time, in tu.
	MaxResponse float64
	// ServedRatio is Served/Total; InterruptedRatio is Interrupted/Total.
	ServedRatio      float64
	InterruptedRatio float64 // Interrupted/Total
}

// Summarize computes the per-system measures.
func Summarize(events []Event) Summary {
	s := Summary{Total: len(events)}
	sum := 0.0
	for _, e := range events {
		if e.Interrupted {
			s.Interrupted++
		}
		if e.Shed {
			s.Shed++
		}
		if !e.Served {
			continue
		}
		s.Served++
		r := e.Response()
		sum += r
		if r > s.MaxResponse {
			s.MaxResponse = r
		}
	}
	if s.Served > 0 {
		s.AvgResponse = sum / float64(s.Served)
	}
	if s.Total > 0 {
		s.ServedRatio = float64(s.Served) / float64(s.Total)
		s.InterruptedRatio = float64(s.Interrupted) / float64(s.Total)
	}
	return s
}

// ResponsePercentile returns the p-th percentile (0..100) of the response
// times of served events, in time units — useful beyond the paper's
// averages when comparing policy tails.
func ResponsePercentile(events []Event, p float64) float64 {
	var rs []float64
	for _, e := range events {
		if e.Served {
			rs = append(rs, e.Response())
		}
	}
	if len(rs) == 0 {
		return 0
	}
	sort.Float64s(rs)
	if p <= 0 {
		return rs[0]
	}
	if p >= 100 {
		return rs[len(rs)-1]
	}
	// Nearest-rank.
	rank := int(math.Ceil(p/100*float64(len(rs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return rs[rank]
}

// SetSummary holds the per-set averages reported in Tables 2-5.
type SetSummary struct {
	// AART is the average of the per-system average response times (tu).
	AART float64
	// AIR is the average interrupted-aperiodics ratio.
	AIR float64
	// ASR is the average served-aperiodics ratio.
	ASR float64
	// Systems is the number of systems aggregated.
	Systems int
}

// Aggregate averages per-system summaries into the paper's set measures.
// Systems that served no event contribute 0 to the response-time average,
// matching a plain mean over systems.
func Aggregate(summaries []Summary) SetSummary {
	out := SetSummary{Systems: len(summaries)}
	if len(summaries) == 0 {
		return out
	}
	for _, s := range summaries {
		out.AART += s.AvgResponse
		out.AIR += s.InterruptedRatio
		out.ASR += s.ServedRatio
	}
	n := float64(len(summaries))
	out.AART /= n
	out.AIR /= n
	out.ASR /= n
	return out
}

// String formats the set summary like a paper table cell.
func (s SetSummary) String() string {
	return fmt.Sprintf("AART=%.2f AIR=%.2f ASR=%.2f", s.AART, s.AIR, s.ASR)
}
