package faults

import (
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

func TestJobFaultDeterministicAndOrderIndependent(t *testing.T) {
	p := &Plan{Seed: 7, OverrunProb: 0.5, OverrunMax: 1, JitterProb: 0.5, JitterMax: rtime.TUs(2), DropProb: 0.1}
	forward := make([]Fault, 50)
	for i := range forward {
		forward[i] = p.JobFault(3, i)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := p.JobFault(3, i); got != forward[i] {
			t.Fatalf("job %d: fault depends on call order: %+v vs %+v", i, got, forward[i])
		}
	}
	q := *p
	if got := q.JobFault(3, 10); got != forward[10] {
		t.Fatalf("equal plans disagree: %+v vs %+v", got, forward[10])
	}
	q.Seed = 8
	same := 0
	for i := range forward {
		if q.JobFault(3, i) == forward[i] {
			same++
		}
	}
	if same == len(forward) {
		t.Fatal("changing the seed changed no fault")
	}
}

func TestKindStreamsIndependent(t *testing.T) {
	// Enabling drops must not shift the overrun/jitter schedule of
	// non-dropped jobs.
	base := &Plan{Seed: 1, OverrunProb: 0.4, OverrunMax: 0.5, JitterProb: 0.4, JitterMax: rtime.TUs(1)}
	withDrops := *base
	withDrops.DropProb = 0.2
	for i := 0; i < 100; i++ {
		f := withDrops.JobFault(0, i)
		if f.Dropped {
			continue
		}
		if want := base.JobFault(0, i); f != want {
			t.Fatalf("job %d: drop knob shifted other kinds: %+v vs %+v", i, f, want)
		}
	}
}

func TestFaultBounds(t *testing.T) {
	p := &Plan{Seed: 3, OverrunProb: 1, OverrunMax: 0.5, JitterProb: 1, JitterMax: rtime.TUs(2)}
	for i := 0; i < 200; i++ {
		f := p.JobFault(0, i)
		if f.CostFactor <= 1 || f.CostFactor > 1.5 {
			t.Fatalf("job %d: cost factor %v outside (1, 1.5]", i, f.CostFactor)
		}
		if f.Jitter <= 0 || f.Jitter > rtime.TUs(2) {
			t.Fatalf("job %d: jitter %v outside (0, 2tu]", i, f.Jitter)
		}
		af := p.ActivationFault(0, 1, i)
		if af.CostFactor <= 1 || af.CostFactor > 1.5 {
			t.Fatalf("release %d: activation factor %v outside (1, 1.5]", i, af.CostFactor)
		}
	}
}

func TestNilAndDisabledPlans(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan reports enabled")
	}
	if f := nilPlan.JobFault(0, 0); f.Dropped || f.Jitter != 0 || f.CostFactor != 1 {
		t.Errorf("nil plan injects: %+v", f)
	}
	if f := nilPlan.ActivationFault(0, 0, 0); f.CostFactor != 1 {
		t.Errorf("nil plan injects activation fault: %+v", f)
	}
	sys := sim.System{Aperiodics: []sim.AperiodicJob{{Name: "J1", Cost: rtime.TU}}}
	if out := nilPlan.ApplySystem(sys, 0); len(out.Aperiodics) != 1 || out.Aperiodics[0] != sys.Aperiodics[0] {
		t.Error("nil plan perturbed the system")
	}
	zero := &Plan{Seed: 42}
	if zero.Enabled() {
		t.Error("zero-knob plan reports enabled")
	}
}

func TestApplySystem(t *testing.T) {
	jobs := make([]sim.AperiodicJob, 40)
	for i := range jobs {
		jobs[i] = sim.AperiodicJob{Name: "J", Release: rtime.AtTU(float64(i)), Cost: rtime.TU}
	}
	p := &Plan{Seed: 11, OverrunProb: 0.5, OverrunMax: 1, JitterProb: 0.5, JitterMax: rtime.TUs(3), DropProb: 0.25}
	out := p.ApplySystem(sim.System{Aperiodics: jobs}, 0)
	if len(out.Aperiodics) >= len(jobs) {
		t.Fatalf("no job dropped: %d of %d remain", len(out.Aperiodics), len(jobs))
	}
	overrun, jittered := 0, 0
	for _, j := range out.Aperiodics {
		if j.Cost > rtime.TU {
			overrun++
			if j.Declared != rtime.TU {
				t.Fatalf("overrun job lost its declared cost: %v", j.Declared)
			}
		}
	}
	// Jitter only delays: find each surviving job's original by name-free
	// release comparison (original releases are the integers).
	for _, j := range out.Aperiodics {
		if j.Release != rtime.Time(rtime.DivFloor(rtime.Duration(j.Release), rtime.TU))*rtime.Time(rtime.TU) {
			jittered++
		}
	}
	if overrun == 0 {
		t.Error("no job overran")
	}
	if jittered == 0 {
		t.Error("no release jittered")
	}
	// The input system is untouched.
	for i, j := range jobs {
		if j.Cost != rtime.TU || j.Declared != 0 || j.Release != rtime.AtTU(float64(i)) {
			t.Fatalf("ApplySystem mutated its input at %d: %+v", i, j)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"seed=7",
		"seed=7 overrun=0.3:0.5",
		"seed=-2 overrun=0.3:0.5 jitter=0.2:1.5tu drop=0.05",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if *q != *p {
			t.Fatalf("%q: round trip %+v != %+v", s, q, p)
		}
	}
	for _, s := range []string{"", "off", "none", "  off  "} {
		p, err := Parse(s)
		if err != nil || p != nil {
			t.Fatalf("%q: want nil plan, got %+v, %v", s, p, err)
		}
	}
	for _, s := range []string{"bogus", "seed", "seed=x", "overrun=0.3", "jitter=0.1:zz", "what=1"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("%q: want parse error", s)
		}
	}
}

func TestCheckerConservation(t *testing.T) {
	c := &Checker{}
	c.Conservation(Counts{Released: 10, Served: 5, Interrupted: 2, Rejected: 1, Shed: 1, Pending: 1})
	if err := c.Err(); err != nil {
		t.Fatalf("balanced counts flagged: %v", err)
	}
	c.Conservation(Counts{Released: 10, Served: 5})
	if c.Err() == nil {
		t.Fatal("leaky counts not flagged")
	}
	c2 := &Checker{}
	c2.Conservation(Counts{Released: 1, Served: 2, Pending: -1})
	if c2.Err() == nil {
		t.Fatal("negative bucket not flagged")
	}
}

func TestCheckerMonotone(t *testing.T) {
	c := &Checker{}
	c.Monotone("x", 1)
	c.Monotone("x", 1)
	c.Monotone("x", 3)
	if err := c.Err(); err != nil {
		t.Fatalf("monotone sequence flagged: %v", err)
	}
	c.Monotone("x", 2)
	if c.Err() == nil {
		t.Fatal("regression not flagged")
	}
	c2 := &Checker{}
	c2.NonNegative("cap", rtime.TUs(-1))
	if c2.Err() == nil {
		t.Fatal("negative duration not flagged")
	}
	if len(c2.Violations()) != 1 {
		t.Fatalf("want 1 violation, got %v", c2.Violations())
	}
}
