// Package faults provides deterministic fault injection for the executive
// and the simulator: seeded plans that perturb a workload with cost
// overruns (WCET violations), release jitter, and dropped releases, plus a
// runtime invariant checker used by the differential-test net.
//
// A Plan derives every fault from a hash of (seed, system index, job
// index) — never from call order — so the fault schedule is a pure
// function of the workload identity. The same plan applied to the same
// system yields the same faults on every engine, kernel and worker mode:
// {Channel, Direct} × {per-thread, pooled, activation} all see an
// identical perturbed workload, which is what lets the overload scenarios
// pin cross-configuration fingerprints.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

// Plan is a seeded fault-injection plan. The zero value (and a nil plan)
// injects nothing; every knob defaults to off. Probabilities are in
// [0, 1] and evaluated independently per job from the plan's seed.
type Plan struct {
	// Seed selects the fault schedule; two plans with equal knobs and
	// equal seeds inject identical faults.
	Seed int64
	// OverrunProb is the probability that a job's actual cost exceeds its
	// declared cost.
	OverrunProb float64
	// OverrunMax is the maximum fractional inflation of an overrunning
	// job's cost: the cost factor is drawn uniformly from
	// (1, 1+OverrunMax].
	OverrunMax float64
	// JitterProb is the probability that a release is delayed.
	JitterProb float64
	// JitterMax is the maximum release delay, drawn uniformly from
	// (0, JitterMax].
	JitterMax rtime.Duration
	// DropProb is the probability that a release is dropped entirely
	// (the event never fires).
	DropProb float64
}

// Fault is the perturbation a plan assigns to one job or activation. The
// zero fault plus CostFactor 1 means "unperturbed".
type Fault struct {
	// Dropped marks a release that never happens.
	Dropped bool
	// Jitter delays the release.
	Jitter rtime.Duration
	// CostFactor scales the job's actual execution demand; always >= 1.
	CostFactor float64
}

// Apply scales cost by the fault's cost factor.
func (f Fault) Apply(cost rtime.Duration) rtime.Duration {
	if f.CostFactor <= 1 {
		return cost
	}
	return rtime.Duration(float64(cost) * f.CostFactor)
}

// Fault kind salts: each knob draws from its own stream so enabling one
// kind never shifts another kind's schedule.
const (
	kindDrop       = 0x71AB3C5D17E94F01
	kindOverrun    = 0x3C79AC492BA7B653
	kindJitter     = 0x1C69B3F74AC4CB2D
	kindActivation = 0x9E6D62D06F151FD3
)

// rng is a splitmix64 stream, the same generator family used by
// internal/gen for workload noise.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// stream seeds a fault-kind-specific generator for one (system, job)
// coordinate. The constants match internal/gen's index mixing.
func (p *Plan) stream(kind uint64, sysIndex, jobIndex int) rng {
	x := uint64(p.Seed) ^ kind ^
		uint64(sysIndex)*0xA24BAED4963EE407 ^
		uint64(jobIndex)*0x9FB21C651E98DF25
	r := rng{s: x}
	r.next() // decorrelate nearby coordinates
	return r
}

// Enabled reports whether the plan can inject anything at all. A nil plan
// is disabled.
func (p *Plan) Enabled() bool {
	return p != nil && (p.DropProb > 0 ||
		(p.OverrunProb > 0 && p.OverrunMax > 0) ||
		(p.JitterProb > 0 && p.JitterMax > 0))
}

// JobFault derives the fault for aperiodic job jobIndex of system
// sysIndex. The result depends only on (Seed, knobs, sysIndex, jobIndex).
// A nil plan returns the unperturbed fault.
func (p *Plan) JobFault(sysIndex, jobIndex int) Fault {
	f := Fault{CostFactor: 1}
	if p == nil {
		return f
	}
	if p.DropProb > 0 {
		r := p.stream(kindDrop, sysIndex, jobIndex)
		if r.float64() < p.DropProb {
			f.Dropped = true
			return f
		}
	}
	if p.OverrunProb > 0 && p.OverrunMax > 0 {
		r := p.stream(kindOverrun, sysIndex, jobIndex)
		if r.float64() < p.OverrunProb {
			f.CostFactor = 1 + p.OverrunMax*(1-r.float64())
		}
	}
	if p.JitterProb > 0 && p.JitterMax > 0 {
		r := p.stream(kindJitter, sysIndex, jobIndex)
		if r.float64() < p.JitterProb {
			f.Jitter = rtime.Duration(float64(p.JitterMax) * (1 - r.float64()))
		}
	}
	return f
}

// ActivationFault derives the cost-overrun fault for release number
// release of periodic task taskIndex in system sysIndex. Periodic
// activations only overrun (they are never dropped or jittered: the
// release clock is the executive's own). A nil plan returns the
// unperturbed fault.
func (p *Plan) ActivationFault(sysIndex, taskIndex, release int) Fault {
	f := Fault{CostFactor: 1}
	if p == nil || p.OverrunProb <= 0 || p.OverrunMax <= 0 {
		return f
	}
	r := p.stream(kindActivation, sysIndex, taskIndex*0x10001+release)
	if r.float64() < p.OverrunProb {
		f.CostFactor = 1 + p.OverrunMax*(1-r.float64())
	}
	return f
}

// ApplySystem returns a copy of sys with the plan's job faults applied at
// the workload level: dropped jobs are removed, jittered releases are
// delayed, and overruns inflate the actual cost while pinning Declared to
// the original cost (the WCET the job announced). Periodic tasks are
// untouched. A nil or disabled plan returns sys unchanged.
func (p *Plan) ApplySystem(sys sim.System, sysIndex int) sim.System {
	if !p.Enabled() {
		return sys
	}
	out := sys
	out.Aperiodics = make([]sim.AperiodicJob, 0, len(sys.Aperiodics))
	for i, j := range sys.Aperiodics {
		f := p.JobFault(sysIndex, i)
		if f.Dropped {
			continue
		}
		if f.CostFactor > 1 {
			if j.Declared == 0 {
				j.Declared = j.Cost
			}
			j.Cost = f.Apply(j.Cost)
		}
		j.Release = j.Release.Add(f.Jitter)
		out.Aperiodics = append(out.Aperiodics, j)
	}
	return out
}

// Parse decodes a plan from its textual encoding, a space-separated list
// of key=value options:
//
//	seed=7 overrun=0.3:0.5 jitter=0.2:1.5 drop=0.05
//
// overrun is prob:max-fraction, jitter is prob:max-delay (a
// rtime.ParseDuration value), drop is a probability. The strings "off",
// "none" and "" decode to a nil plan.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" || s == "none" {
		return nil, nil
	}
	return ParseArgs(strings.Fields(s))
}

// ParseArgs decodes a plan from pre-split key=value fields (the spec
// parser hands directive arguments in this form).
func ParseArgs(fields []string) (*Plan, error) {
	p := &Plan{}
	for _, opt := range fields {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, fmt.Errorf("faults: malformed option %q (want key=value)", opt)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "overrun":
			err = parseProbPair(v, &p.OverrunProb, func(s string) error {
				f, e := strconv.ParseFloat(s, 64)
				p.OverrunMax = f
				return e
			})
		case "jitter":
			err = parseProbPair(v, &p.JitterProb, func(s string) error {
				d, e := rtime.ParseDuration(s)
				p.JitterMax = d
				return e
			})
		case "drop":
			p.DropProb, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("faults: unknown option %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: option %q: %v", opt, err)
		}
	}
	return p, nil
}

// parseProbPair splits "prob:arg" and parses the probability, handing the
// second component to parseArg.
func parseProbPair(v string, prob *float64, parseArg func(string) error) error {
	ps, as, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("want prob:value")
	}
	p, err := strconv.ParseFloat(ps, 64)
	if err != nil {
		return err
	}
	*prob = p
	return parseArg(as)
}

// String renders the plan in the encoding Parse accepts. A nil plan
// renders as "off".
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.OverrunProb > 0 && p.OverrunMax > 0 {
		parts = append(parts, fmt.Sprintf("overrun=%g:%g", p.OverrunProb, p.OverrunMax))
	}
	if p.JitterProb > 0 && p.JitterMax > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%g:%s", p.JitterProb, p.JitterMax))
	}
	if p.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropProb))
	}
	return strings.Join(parts, " ")
}
