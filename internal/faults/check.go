package faults

import (
	"fmt"
	"strings"

	"rtsj/internal/rtime"
)

// Counts is the per-run job accounting fed to Checker.Conservation: every
// released job must end up in exactly one of the outcome buckets.
type Counts struct {
	// Released is the number of jobs whose release actually happened.
	Released int
	// Served is the number of jobs that completed normally.
	Served int
	// Interrupted is the number of jobs a server aborted mid-service.
	Interrupted int
	// Rejected is the number of jobs an admission test turned away.
	Rejected int
	// Shed is the number of jobs dropped by server load shedding.
	Shed int
	// Pending is the number of jobs still queued or in service when the
	// run's horizon cut it off.
	Pending int
}

// Checker accumulates invariant violations over a run. The zero value is
// ready to use; check methods record a violation instead of failing, so a
// run can be audited completely and reported once via Err.
type Checker struct {
	violations []string
	last       map[string]int
}

// Checkf records a violation (formatted like fmt.Sprintf) unless ok.
func (c *Checker) Checkf(ok bool, format string, args ...any) {
	if !ok {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Conservation checks that released jobs are conserved: every release is
// served, interrupted, rejected, shed, or still pending — nothing is lost
// and nothing is double-counted.
func (c *Checker) Conservation(ct Counts) {
	sum := ct.Served + ct.Interrupted + ct.Rejected + ct.Shed + ct.Pending
	c.Checkf(ct.Released == sum,
		"conservation: released %d != served %d + interrupted %d + rejected %d + shed %d + pending %d",
		ct.Released, ct.Served, ct.Interrupted, ct.Rejected, ct.Shed, ct.Pending)
	c.Checkf(ct.Released >= 0 && ct.Served >= 0 && ct.Interrupted >= 0 &&
		ct.Rejected >= 0 && ct.Shed >= 0 && ct.Pending >= 0,
		"conservation: negative bucket in %+v", ct)
}

// Monotone checks that the counter named key never decreases across
// successive calls (miss counts, shed counts, release counts).
func (c *Checker) Monotone(key string, value int) {
	if c.last == nil {
		c.last = make(map[string]int)
	}
	if prev, ok := c.last[key]; ok {
		c.Checkf(value >= prev, "monotone: %s decreased %d -> %d", key, prev, value)
	}
	c.last[key] = value
}

// NonNegative checks that a duration-valued quantity (server capacity,
// remaining budget) has not gone negative.
func (c *Checker) NonNegative(key string, d rtime.Duration) {
	c.Checkf(d >= 0, "non-negative: %s = %s", key, d)
}

// Violations returns every recorded violation, in recording order.
func (c *Checker) Violations() []string { return c.violations }

// Err returns nil if no violation was recorded, else one error listing
// them all.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("faults: %d invariant violation(s):\n  %s",
		len(c.violations), strings.Join(c.violations, "\n  "))
}
