// Package gen is the random real-time system generator of the paper's
// Section 6.1 (the fr.umlv.randomGenerator package): it produces sets of
// systems from (taskDensity, averageCost, stdDeviation, serverCapacity,
// serverPeriod, nbGeneration, seed), deterministically across platforms.
//
// The paper's cost-generation quirk is reproduced on purpose: normally
// distributed costs below 0.1 tu are clamped to 0.1 tu, which the authors
// note biases the average cost upward ("a bad-design issue on our costs
// generation").
package gen

import (
	"math"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

// ArrivalModel selects how aperiodic arrivals are drawn.
type ArrivalModel int

// Arrival models.
const (
	// PerPeriodArrivals draws round(density) arrivals uniformly inside
	// each server period. This matches the paper's measured served ratios
	// best (its generator is driven by "the average number of aperiodic
	// events per server period") and is the default.
	PerPeriodArrivals ArrivalModel = iota
	// PoissonArrivals draws a Poisson(density*periods) total count with
	// uniform arrival instants over the whole horizon: burstier, used by
	// the robustness experiments.
	PoissonArrivals
	// MMPPArrivals draws from a two-state Markov-modulated Poisson
	// process: the source alternates between a calm state at the base
	// density and a burst state at BurstFactor times that density, with
	// exponentially distributed sojourn times. It produces the arrival
	// storms the overload scenario family needs while staying fully
	// deterministic under the seed.
	MMPPArrivals
)

// Params mirrors the constructor parameters of randomSystemGenerator.
type Params struct {
	// TaskDensity is the average number of aperiodic events per server
	// period.
	TaskDensity float64
	// Arrivals selects the arrival process (default PerPeriodArrivals).
	Arrivals ArrivalModel
	// AverageCost is the mean aperiodic event cost, in time units.
	AverageCost float64
	// StdDeviation is the standard deviation of event costs, in time units.
	StdDeviation float64
	// ServerCapacity and ServerPeriod define the task server, in time
	// units.
	ServerCapacity float64
	ServerPeriod   float64 // server replenishment period, in time units
	// NbGeneration is the number of systems to generate.
	NbGeneration int
	// Seed makes the generation reproducible across platforms.
	Seed int64
	// HorizonPeriods is the observation window in server periods (the
	// paper limits simulations and executions to ten server periods).
	HorizonPeriods int
	// BurstFactor multiplies the arrival rate in the MMPP burst state
	// (MMPPArrivals only); 0 defaults to 8.
	BurstFactor float64
	// BurstMeanPeriods is the mean burst-state sojourn in server periods
	// (MMPPArrivals only); 0 defaults to 1.
	BurstMeanPeriods float64
	// CalmMeanPeriods is the mean calm-state sojourn in server periods
	// (MMPPArrivals only); 0 defaults to 3.
	CalmMeanPeriods float64
}

// Horizon returns the observation window of the generated systems.
func (p Params) Horizon() rtime.Time {
	return rtime.Time(rtime.TUs(p.ServerPeriod)) * rtime.Time(p.HorizonPeriods)
}

// MinCost is the clamp the paper applies to generated costs.
const MinCost = 0.1

// Generate produces the systems for one parameter tuple. The returned
// systems carry no server policy: use WithServer to attach one.
func Generate(p Params) []sim.System {
	if p.NbGeneration <= 0 {
		return nil
	}
	if p.HorizonPeriods <= 0 {
		p.HorizonPeriods = 10
	}
	r := newRNG(uint64(p.Seed))
	out := make([]sim.System, 0, p.NbGeneration)
	for n := 0; n < p.NbGeneration; n++ {
		out = append(out, genSystem(p, r))
	}
	return out
}

// SystemAt returns system i of the unbounded, index-addressable campaign
// population for p. Unlike Generate, whose systems share one sequential
// random stream (system n depends on every draw before it), each index
// derives its own splitmix stream from (Seed, i): SystemAt is a pure
// function of (p, i), so a shard worker can generate any index range of a
// campaign without replaying the prefix — the foundation of the campaign
// fabric's deterministic sharding. NbGeneration is ignored.
//
// SystemAt(p, i) and Generate(p)[i] draw from different streams and do not
// produce the same systems; campaigns are a distinct population from the
// paper's NbGeneration sets.
func SystemAt(p Params, i int) sim.System {
	if p.HorizonPeriods <= 0 {
		p.HorizonPeriods = 10
	}
	// Per-index stream derivation mirrors Noise: the seed and the index mix
	// through distinct odd constants so neighbouring indices land in
	// unrelated splitmix states.
	r := newRNG(uint64(p.Seed)*0x9E3779B97F4A7C15 ^ (uint64(i)+1)*0xA24BAED4963EE407)
	return genSystem(p, r)
}

// genSystem draws one system from r: the shared body of Generate (one
// sequential stream across systems) and SystemAt (one stream per index).
// The caller must have defaulted HorizonPeriods.
func genSystem(p Params, r *rng) sim.System {
	horizonTU := p.ServerPeriod * float64(p.HorizonPeriods)
	var arrivals []float64
	switch p.Arrivals {
	case MMPPArrivals:
		arrivals = mmppArrivals(p, r, horizonTU)
	case PoissonArrivals:
		lambda := p.TaskDensity * float64(p.HorizonPeriods)
		count := r.poisson(lambda)
		arrivals = make([]float64, count)
		for i := range arrivals {
			arrivals[i] = r.float64() * horizonTU
		}
	default: // PerPeriodArrivals
		perPeriod := int(p.TaskDensity + 0.5)
		for k := 0; k < p.HorizonPeriods; k++ {
			for i := 0; i < perPeriod; i++ {
				arrivals = append(arrivals,
					(float64(k)+r.float64())*p.ServerPeriod)
			}
		}
	}
	sortFloats(arrivals)
	jobs := make([]sim.AperiodicJob, 0, len(arrivals))
	for i, a := range arrivals {
		cost := p.AverageCost + p.StdDeviation*r.norm()
		if cost < MinCost {
			cost = MinCost
		}
		jobs = append(jobs, sim.AperiodicJob{
			Name:    jobName(i),
			Release: rtime.AtTU(a),
			Cost:    rtime.TUs(cost),
		})
	}
	return sim.System{Aperiodics: jobs}
}

// mmppArrivals walks the two-state chain across the horizon: each sojourn
// length is exponential with the state's mean, the arrivals inside it are
// Poisson at the state's rate with uniform instants in the window.
func mmppArrivals(p Params, r *rng, horizonTU float64) []float64 {
	burstFactor := p.BurstFactor
	if burstFactor <= 0 {
		burstFactor = 8
	}
	burstMean := p.BurstMeanPeriods
	if burstMean <= 0 {
		burstMean = 1
	}
	calmMean := p.CalmMeanPeriods
	if calmMean <= 0 {
		calmMean = 3
	}
	calmRate := p.TaskDensity / p.ServerPeriod // arrivals per tu
	var arrivals []float64
	t := 0.0
	burst := false
	for t < horizonTU {
		mean, rate := calmMean, calmRate
		if burst {
			mean, rate = burstMean, calmRate*burstFactor
		}
		sojourn := -mean * p.ServerPeriod * math.Log(1-r.float64())
		end := t + sojourn
		if end > horizonTU {
			end = horizonTU
		}
		n := r.poisson(rate * (end - t))
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, t+r.float64()*(end-t))
		}
		t = end
		burst = !burst
	}
	return arrivals
}

// WithServer returns a copy of sys with the given server policy attached,
// using the generation parameters' capacity and period. The server runs at
// the highest application priority, as the paper requires.
func WithServer(sys sim.System, p Params, policy sim.ServerPolicy, prio int) sim.System {
	out := sys
	spec := ServerSpecOf(p, policy, prio)
	out.Server = &spec
	return out
}

// ServerSpecOf builds the server specification for a parameter tuple.
func ServerSpecOf(p Params, policy sim.ServerPolicy, prio int) sim.ServerSpec {
	return sim.ServerSpec{
		Policy:   policy,
		Capacity: rtime.TUs(p.ServerCapacity),
		Period:   rtime.TUs(p.ServerPeriod),
		Priority: prio,
	}
}

func jobName(i int) string {
	// J1, J2, ... without fmt to keep the hot path allocation-light.
	digits := [20]byte{}
	pos := len(digits)
	n := i + 1
	for n > 0 {
		pos--
		digits[pos] = byte('0' + n%10)
		n /= 10
	}
	return "J" + string(digits[pos:])
}

func sortFloats(a []float64) {
	// Insertion sort: arrival lists are small and this avoids pulling in
	// sort for a hot generation loop.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// rng is a splitmix64 generator: tiny, fast, and stable across Go versions
// and platforms (the paper passes a seed "in order to generate the same
// systems on multiple platforms").
type rng struct {
	s     uint64
	spare float64
	has   bool
}

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// norm returns a standard normal value (Box-Muller, with the spare cached).
func (r *rng) norm() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	var u, v float64
	for u == 0 {
		u = r.float64()
	}
	v = r.float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.has = true
	return mag * math.Cos(2*math.Pi*v)
}

// poisson draws a Poisson-distributed count (Knuth's method; the paper's
// densities keep lambda small enough for it).
func (r *rng) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.float64()
		if p <= l {
			return k
		}
		k++
		if k > 100000 {
			return k // defensive; unreachable for sane lambda
		}
	}
}

// Noise derives a deterministic per-event cost-noise factor in [0, 1),
// independent of generation order, for the execution model's WCET jitter.
func Noise(seed int64, sysIndex, jobIndex int) float64 {
	r := newRNG(uint64(seed) ^ uint64(sysIndex)*0xA24BAED4963EE407 ^ uint64(jobIndex)*0x9FB21C651E98DF25)
	return r.float64()
}
