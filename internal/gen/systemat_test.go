package gen

import (
	"reflect"
	"testing"
)

func campaignParams() Params {
	return Params{
		TaskDensity:    2,
		AverageCost:    3,
		StdDeviation:   2,
		ServerCapacity: 4,
		ServerPeriod:   6,
		Seed:           1983,
		HorizonPeriods: 10,
	}
}

// TestSystemAtPure pins the index-addressable contract: SystemAt is a pure
// function of (params, index), independent of call order — the property
// that lets any shard generate any range without replaying a prefix.
func TestSystemAtPure(t *testing.T) {
	p := campaignParams()
	a := SystemAt(p, 17)
	// Interleave other indices, out of order, before asking again.
	_ = SystemAt(p, 3)
	_ = SystemAt(p, 99)
	b := SystemAt(p, 17)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SystemAt(p, 17) differs between calls")
	}
}

// TestSystemAtDistinctIndices checks neighbouring indices draw from
// unrelated streams: a campaign population, not one system repeated.
func TestSystemAtDistinctIndices(t *testing.T) {
	p := campaignParams()
	a, b := SystemAt(p, 0), SystemAt(p, 1)
	if reflect.DeepEqual(a, b) {
		t.Fatal("systems 0 and 1 are identical")
	}
	if len(a.Aperiodics) == 0 || len(b.Aperiodics) == 0 {
		t.Fatal("generated systems carry no aperiodics")
	}
}

// TestSystemAtSeedSeparation checks different seeds give different
// populations at the same index.
func TestSystemAtSeedSeparation(t *testing.T) {
	p := campaignParams()
	q := p
	q.Seed = p.Seed + 1
	if reflect.DeepEqual(SystemAt(p, 5), SystemAt(q, 5)) {
		t.Fatal("seed change did not change system 5")
	}
}

// TestSystemAtDefaultsHorizon checks the zero HorizonPeriods defaults to
// the paper's ten periods, like Generate.
func TestSystemAtDefaultsHorizon(t *testing.T) {
	p := campaignParams()
	p.HorizonPeriods = 0
	q := campaignParams()
	q.HorizonPeriods = 10
	if !reflect.DeepEqual(SystemAt(p, 2), SystemAt(q, 2)) {
		t.Fatal("HorizonPeriods=0 does not default to 10")
	}
}
