package gen

import (
	"math"
	"testing"
	"testing/quick"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
)

func baseParams() Params {
	return Params{
		TaskDensity:    2,
		AverageCost:    3,
		StdDeviation:   2,
		ServerCapacity: 4,
		ServerPeriod:   6,
		NbGeneration:   10,
		Seed:           1983,
		HorizonPeriods: 10,
	}
}

func TestGenerateCount(t *testing.T) {
	systems := Generate(baseParams())
	if len(systems) != 10 {
		t.Fatalf("systems = %d", len(systems))
	}
	// Per-period arrivals: exactly density*periods events per system.
	for i, s := range systems {
		if len(s.Aperiodics) != 20 {
			t.Errorf("system %d: %d events, want 20", i, len(s.Aperiodics))
		}
	}
}

func TestGenerateZero(t *testing.T) {
	if Generate(Params{}) != nil {
		t.Error("zero params should generate nothing")
	}
	p := baseParams()
	p.NbGeneration = 0
	if Generate(p) != nil {
		t.Error("NbGeneration=0 should generate nothing")
	}
}

func TestCostClamp(t *testing.T) {
	p := baseParams()
	p.AverageCost = 0.05 // mostly below the clamp
	p.StdDeviation = 0.01
	for _, s := range Generate(p) {
		for _, j := range s.Aperiodics {
			if j.Cost < rtime.TUs(MinCost) {
				t.Fatalf("cost %v below clamp", j.Cost)
			}
		}
	}
}

func TestCostStatistics(t *testing.T) {
	p := baseParams()
	p.NbGeneration = 200
	var sum, sumSq float64
	n := 0
	for _, s := range Generate(p) {
		for _, j := range s.Aperiodics {
			c := j.Cost.TUs()
			sum += c
			sumSq += c * c
			n++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	// The clamp biases the mean upward, as the paper notes.
	if mean < 3.0 || mean > 3.6 {
		t.Errorf("mean cost = %.3f, want ~3.2 (clamped normal)", mean)
	}
	if sd < 1.4 || sd > 2.2 {
		t.Errorf("cost sd = %.3f, want ~1.8", sd)
	}
}

func TestPoissonArrivalModel(t *testing.T) {
	p := baseParams()
	p.Arrivals = PoissonArrivals
	p.NbGeneration = 300
	total := 0
	for _, s := range Generate(p) {
		total += len(s.Aperiodics)
	}
	mean := float64(total) / 300
	if mean < 17 || mean > 23 {
		t.Errorf("Poisson mean count = %.2f, want ~20", mean)
	}
}

func TestArrivalsSortedAndInHorizon(t *testing.T) {
	for _, model := range []ArrivalModel{PerPeriodArrivals, PoissonArrivals} {
		p := baseParams()
		p.Arrivals = model
		for _, s := range Generate(p) {
			for i, j := range s.Aperiodics {
				if j.Release < 0 || j.Release >= p.Horizon() {
					t.Fatalf("model %d: release %v outside [0,%v)", model, j.Release, p.Horizon())
				}
				if i > 0 && j.Release < s.Aperiodics[i-1].Release {
					t.Fatalf("model %d: arrivals unsorted", model)
				}
			}
		}
	}
}

func TestWithServer(t *testing.T) {
	p := baseParams()
	sys := Generate(p)[0]
	if sys.Server != nil {
		t.Fatal("generated system should carry no server")
	}
	s2 := WithServer(sys, p, sim.LimitedPollingServer, 42)
	if s2.Server == nil || s2.Server.Priority != 42 ||
		s2.Server.Capacity != rtime.TUs(4) || s2.Server.Period != rtime.TUs(6) {
		t.Fatalf("server spec: %+v", s2.Server)
	}
	if sys.Server != nil {
		t.Fatal("WithServer mutated its input")
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJobNames(t *testing.T) {
	sys := Generate(baseParams())[0]
	if sys.Aperiodics[0].Name != "J1" {
		t.Errorf("first job name = %q", sys.Aperiodics[0].Name)
	}
	if sys.Aperiodics[19].Name != "J20" {
		t.Errorf("20th job name = %q", sys.Aperiodics[19].Name)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := newRNG(7)
	var sum float64
	const n = 100000
	buckets := [10]int{}
	for i := 0; i < n; i++ {
		v := r.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Errorf("bucket %d = %d, want ~%d", i, b, n/10)
		}
	}
}

func TestRNGNormal(t *testing.T) {
	r := newRNG(13)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(sd-1) > 0.02 {
		t.Errorf("normal sd = %v", sd)
	}
}

func TestPoissonMean(t *testing.T) {
	r := newRNG(29)
	for _, lambda := range []float64{0.5, 3, 10} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += r.poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.poisson(0) != 0 || r.poisson(-1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	f := func(seed int64, si, ji uint8) bool {
		a := Noise(seed, int(si), int(ji))
		b := Noise(seed, int(si), int(ji))
		return a == b && a >= 0 && a < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Noise(1, 0, 0) == Noise(1, 0, 1) {
		t.Error("noise should differ across job indices")
	}
	if Noise(1, 0, 0) == Noise(2, 0, 0) {
		t.Error("noise should differ across seeds")
	}
}

func TestJobNameHelper(t *testing.T) {
	cases := map[int]string{0: "J1", 8: "J9", 9: "J10", 99: "J100"}
	for i, want := range cases {
		if got := jobName(i); got != want {
			t.Errorf("jobName(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestSortFloats(t *testing.T) {
	f := func(in []float32) bool {
		a := make([]float64, len(in))
		for i, v := range in {
			a[i] = float64(v)
		}
		sortFloats(a)
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
