// Package core implements the paper's contribution: the Task Server
// Framework, an RTSJ extension for servicing aperiodic events with task
// servers.
//
// The framework's six classes map to:
//
//   - ServableAsyncEvent: an AsyncEvent subclass whose Fire also releases
//     servable handlers through their task server.
//   - ServableAsyncEventHandler: the code bound to a servable event. It is
//     not a Schedulable and owns no thread: it executes inside its unique
//     TaskServer.
//   - TaskServer: the abstract server — here an interface plus a shared
//     core (serverCore). It is schedulable (it is a periodic entity the
//     feasibility analysis can include) and it is a scheduler (it orders
//     its pending handlers).
//   - PollingTaskServer / DeferrableTaskServer: the two policies of
//     Section 4, with the exact implementation limitations the paper
//     describes (non-resumable handlers, admission on declared cost,
//     Timed-based capacity enforcement, budget extension across a DS
//     replenishment).
//   - TaskServerParameters: ReleaseParameters for constructing a server.
//
// Servers also implement the paper's Section 3 proposal: a
// getInterference hook (rtsjvm.InterferenceProvider) so the scheduler's
// feasibility analysis accounts for policy-specific interference (the
// Deferrable Server's back-to-back hit).
package core

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/trace"
)

// TaskServerParameters is the ReleaseParameters subclass used to construct
// a task server: a periodic release whose cost is the server capacity.
type TaskServerParameters struct {
	rtsjvm.PeriodicParameters
}

// NewTaskServerParameters builds server parameters: the server replenishes
// capacity every period, starting at start.
func NewTaskServerParameters(start rtime.Time, capacity, period rtime.Duration) *TaskServerParameters {
	if capacity <= 0 || period <= 0 || capacity > period {
		panic("core: server needs 0 < capacity <= period")
	}
	return &TaskServerParameters{
		PeriodicParameters: rtsjvm.PeriodicParameters{Start: start, Period: period, Cost: capacity},
	}
}

// Capacity returns the server capacity (the periodic cost budget).
func (p *TaskServerParameters) Capacity() rtime.Duration { return p.Cost }

// TaskServer is the abstract task server of the framework.
type TaskServer interface {
	rtsjvm.Schedulable
	rtsjvm.InterferenceProvider

	// ServableEventReleased hands a fired handler to the server. It is
	// called by ServableAsyncEvent.Fire in the firing context.
	ServableEventReleased(tc *exec.TC, h *ServableAsyncEventHandler)
	// Records returns one record per handler release, in release order.
	Records() []*EventRecord
	// Params returns the server's construction parameters.
	Params() *TaskServerParameters
	// PendingCount returns the number of queued releases.
	PendingCount() int
	// SetMaxPending bounds the pending queue for graceful degradation
	// under overload: releases arriving at a full queue are shed (see
	// EventRecord.Shed). Zero, the default, keeps the queue unbounded.
	SetMaxPending(n int)
	// ShedCount returns how many releases load shedding has dropped.
	ShedCount() int
	// SetClampCapacity makes the server clamp its capacity at zero after
	// every charge, for policies (the Deferrable Server's budget-extension
	// rule) whose capacity may otherwise transiently go negative.
	SetClampCapacity(on bool)
	// CapacityFloor returns the lowest capacity value observed after any
	// charge or replenishment (<= 0; a negative floor means the capacity
	// dipped below zero at some point).
	CapacityFloor() rtime.Duration
}

// EventRecord measures one servable-event release, the unit of the paper's
// evaluation metrics (response times, served ratio, interrupted ratio).
type EventRecord struct {
	// Handler names the handler the event was bound to.
	Handler string
	// Released is the instant the event fired.
	Released rtime.Time
	// Started is the instant the handler first ran for this release.
	Started rtime.Time
	// Finished is the instant the handler completed (served events only).
	Finished rtime.Time

	// Served is set when the handler ran to completion.
	Served bool
	// Interrupted is set when the handler was cut off by budget exhaustion.
	Interrupted bool
	// Rejected is set when on-line admission control cancelled the event
	// at its release: the predicted response time exceeded the event's
	// deadline (the cancellation Section 7 anticipates).
	Rejected bool
	// Shed is set when the server dropped the release at registration
	// because its pending queue was full (SetMaxPending): load shedding
	// under overload. A shed release is never queued or served.
	Shed bool
	// Predicted is the on-line response-time estimate of Section 7
	// (admission-queue servers only; 0 otherwise).
	Predicted rtime.Duration
}

// Response returns the measured response time of a served release.
func (r *EventRecord) Response() rtime.Duration {
	if !r.Served {
		return -1
	}
	return r.Finished.Sub(r.Released)
}

// ServableAsyncEventHandler embodies the code associated with a servable
// event. It is bound to a unique TaskServer; firing any event it is
// attached to appends it to that server's pending list.
type ServableAsyncEventHandler struct {
	name     string
	cost     rtime.Duration // declared cost (the admission parameter)
	actual   rtime.Duration // actual demand; defaults to the declared cost
	deadline rtime.Duration // relative deadline for admission control (0: none)
	logic    func(tc *exec.TC)
	server   TaskServer
}

// NewServableAsyncEventHandler binds a handler with the given declared cost
// to its (unique) server. By default the handler's logic consumes exactly
// the declared cost; SetActualCost and SetLogic override it — scenario 3 of
// the paper declares a cost below the actual demand.
func NewServableAsyncEventHandler(server TaskServer, name string, cost rtime.Duration) *ServableAsyncEventHandler {
	if cost <= 0 {
		panic("core: handler cost must be positive")
	}
	return &ServableAsyncEventHandler{name: name, cost: cost, actual: cost, server: server}
}

// Name returns the handler name.
func (h *ServableAsyncEventHandler) Name() string { return h.name }

// Cost returns the declared cost.
func (h *ServableAsyncEventHandler) Cost() rtime.Duration { return h.cost }

// ActualCost returns the handler's actual demand.
func (h *ServableAsyncEventHandler) ActualCost() rtime.Duration { return h.actual }

// Server returns the unique server the handler is bound to.
func (h *ServableAsyncEventHandler) Server() TaskServer { return h.server }

// SetActualCost sets the real demand, which may exceed the declared cost.
func (h *ServableAsyncEventHandler) SetActualCost(d rtime.Duration) *ServableAsyncEventHandler {
	h.actual = d
	return h
}

// SetLogic replaces the default logic (Consume(actual)). The logic runs in
// the server's thread, inside the Timed section.
func (h *ServableAsyncEventHandler) SetLogic(f func(tc *exec.TC)) *ServableAsyncEventHandler {
	h.logic = f
	return h
}

// SetDeadline sets a relative deadline used by on-line admission control:
// an admission-queue server whose response-time prediction at release
// exceeds it cancels the event immediately (recorded as Rejected).
func (h *ServableAsyncEventHandler) SetDeadline(d rtime.Duration) *ServableAsyncEventHandler {
	h.deadline = d
	return h
}

// Deadline returns the handler's admission deadline (0 when absent).
func (h *ServableAsyncEventHandler) Deadline() rtime.Duration { return h.deadline }

// run executes the handler's logic in the server context.
func (h *ServableAsyncEventHandler) run(tc *exec.TC) {
	if h.logic != nil {
		h.logic(tc)
		return
	}
	tc.Consume(h.actual)
}

// ServableAsyncEvent is the AsyncEvent subclass of the framework: firing it
// releases its standard handlers (inherited behaviour) and registers its
// servable handlers with their task servers.
type ServableAsyncEvent struct {
	*rtsjvm.AsyncEvent
	servable []*ServableAsyncEventHandler
}

// NewServableAsyncEvent creates a servable event.
func NewServableAsyncEvent(vm *rtsjvm.VM, name string) *ServableAsyncEvent {
	return &ServableAsyncEvent{AsyncEvent: vm.NewAsyncEvent(name)}
}

// AddServableHandler binds a servable handler — the overload of addHandler
// the paper introduces.
func (e *ServableAsyncEvent) AddServableHandler(h *ServableAsyncEventHandler) {
	e.servable = append(e.servable, h)
}

// ServableHandlers returns the bound servable handlers.
func (e *ServableAsyncEvent) ServableHandlers() []*ServableAsyncEventHandler {
	return e.servable
}

// Fire redefines AsyncEvent.fire: standard handlers are released as usual,
// then each servable handler is handed to its server.
func (e *ServableAsyncEvent) Fire(tc *exec.TC) {
	e.AsyncEvent.Fire(tc)
	for _, h := range e.servable {
		h.server.ServableEventReleased(tc, h)
	}
}

// release is one pending execution request for a handler.
type release struct {
	h   *ServableAsyncEventHandler
	rec *EventRecord
}

// serverCore is the state shared by the server policies.
type serverCore struct {
	vm      *rtsjvm.VM
	name    string
	prio    int
	params  *TaskServerParameters
	pending []*release
	records []*EventRecord

	capacity rtime.Duration

	// Overload-degradation state: the pending bound (0 = unbounded), the
	// shed count, the clamp-at-zero flag and the lowest capacity value
	// ever observed (the "capacity never negative" invariant input).
	maxPending int
	shed       int
	clamp      bool
	capFloor   rtime.Duration
}

func newServerCore(vm *rtsjvm.VM, name string, prio int, params *TaskServerParameters) serverCore {
	return serverCore{vm: vm, name: name, prio: prio, params: params}
}

// SchedulableName implements rtsjvm.Schedulable.
func (s *serverCore) SchedulableName() string { return s.name }

// SchedulablePriority implements rtsjvm.Schedulable.
func (s *serverCore) SchedulablePriority() int { return s.prio }

// SchedulableRelease implements rtsjvm.Schedulable: the server is a
// periodic entity, so addToFeasibility works on it (Section 3).
func (s *serverCore) SchedulableRelease() rtsjvm.ReleaseParameters {
	return &s.params.PeriodicParameters
}

// Params implements TaskServer.
func (s *serverCore) Params() *TaskServerParameters { return s.params }

// Records implements TaskServer.
func (s *serverCore) Records() []*EventRecord { return s.records }

// Capacity returns the remaining capacity (for inspection/tests).
func (s *serverCore) Capacity() rtime.Duration { return s.capacity }

// SetMaxPending implements TaskServer.
func (s *serverCore) SetMaxPending(n int) { s.maxPending = n }

// ShedCount implements TaskServer.
func (s *serverCore) ShedCount() int { return s.shed }

// SetClampCapacity implements TaskServer.
func (s *serverCore) SetClampCapacity(on bool) { s.clamp = on }

// CapacityFloor implements TaskServer.
func (s *serverCore) CapacityFloor() rtime.Duration { return s.capFloor }

// chargeCapacity subtracts a service charge from the capacity, applying
// the clamp-at-zero policy if enabled, and tracks the capacity floor.
func (s *serverCore) chargeCapacity(elapsed rtime.Duration) {
	s.capacity -= elapsed
	s.noteCapacity()
	if s.clamp && s.capacity < 0 {
		s.capacity = 0
	}
}

// noteCapacity records the capacity low-water mark. Call after every
// capacity mutation, before any clamping, so CapacityFloor reports
// excursions below zero even when the clamp hides them.
func (s *serverCore) noteCapacity() {
	if s.capacity < s.capFloor {
		s.capFloor = s.capacity
	}
}

// register appends a fired handler to the pending list (FIFO), recording
// its release, and charges the release overhead to the firing context.
// When the pending queue is at its bound (SetMaxPending), the release is
// shed instead: recorded (with Shed set, and a shed trace mark) but never
// queued — register returns nil and the caller must not wake the server
// for it.
func (s *serverCore) register(tc *exec.TC, h *ServableAsyncEventHandler) *release {
	// The release instant is the fire instant: the registration overhead
	// charged below is part of the event's measured response time (the
	// paper's simulations ignore "the costs of the events' release"; its
	// executions pay them).
	rec := &EventRecord{Handler: h.name, Released: tc.Now()}
	if oh := s.vm.Overheads().EventRelease; oh > 0 {
		tc.Consume(oh)
	}
	if s.maxPending > 0 && len(s.pending) >= s.maxPending {
		rec.Shed = true
		s.shed++
		s.records = append(s.records, rec)
		s.vm.Exec().Sink().Mark(s.name, tc.Now(), trace.Shed, h.name)
		return nil
	}
	rel := &release{h: h, rec: rec}
	s.records = append(s.records, rec)
	s.pending = append(s.pending, rel)
	return rel
}

// firstFitting returns the first pending release whose declared cost fits
// the budget granted by fit — the paper's chooseNextEvent (which may serve
// a later, smaller event before an earlier, larger one).
func (s *serverCore) firstFitting(fit func(h *ServableAsyncEventHandler) rtime.Duration) *release {
	for _, rel := range s.pending {
		if rel.h.cost <= fit(rel.h) {
			return rel
		}
	}
	return nil
}

// removePending drops a release from the pending list.
func (s *serverCore) removePending(rel *release) {
	for i, x := range s.pending {
		if x == rel {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// PendingCount returns the number of queued releases.
func (s *serverCore) PendingCount() int { return len(s.pending) }

// serve executes one release under a Timed budget in the server's thread
// context, measures the elapsed (virtual wall-clock) time, and records the
// outcome. It returns the elapsed time so the caller can charge capacity.
func (s *serverCore) serve(tc *exec.TC, rel *release, budget rtime.Duration) rtime.Duration {
	rel.rec.Started = tc.Now()
	tc.SetLabel(rel.h.name)
	timed := s.vm.NewTimed(budget)
	completed, elapsed := timed.DoInterruptible(tc, rtsjvm.Interruptible{
		Run: rel.h.run,
	})
	tc.SetLabel("")
	s.removePending(rel)
	if completed {
		rel.rec.Served = true
		rel.rec.Finished = tc.Now()
	} else {
		rel.rec.Interrupted = true
		rel.rec.Finished = tc.Now()
	}
	return elapsed
}
