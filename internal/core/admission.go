package core

import (
	"rtsj/internal/rtime"
)

// AdmissionQueue is the Section 7 improvement of the paper: instead of a
// flat FIFO pending list, handlers are grouped into a list of lists, each
// inner list holding only handlers servable within a single server
// instance, alongside the running total of their declared costs. The
// position of a newly registered handler then yields its response time in
// constant time (equation (5)):
//
//	Ra = (Ia*Ts + Cpa + Ca) - ra
//
// where Ia is the server instance that will run the handler, Cpa the
// cumulated declared cost of the handlers placed before it in the same
// instance, and Ca its own declared cost.
//
// As the paper notes, the structure makes registration slightly more
// expensive in exchange for constant-time prediction (and the possibility
// of cancelling an event whose predicted response time is unacceptable) —
// BenchmarkAdmission* quantifies the trade.
type AdmissionQueue struct {
	start rtime.Time
	cs    rtime.Duration
	ts    rtime.Duration

	firstInst  int64 // absolute instance index that serves lists[0]
	lastSync   int64 // most recent activation index seen
	closed     bool  // the server suspended after activation closedInst
	closedInst int64
	lists      [][]*release
	costs      []rtime.Duration // total declared cost placed per list
}

// NewAdmissionQueue builds the structure for a server with the given
// activation start, capacity and period.
func NewAdmissionQueue(cs, ts rtime.Duration) *AdmissionQueue {
	return &AdmissionQueue{cs: cs, ts: ts}
}

// Unservable marks a prediction for a handler that can never be served
// (declared cost above the full server capacity).
const Unservable rtime.Duration = -1

func (q *AdmissionQueue) inst(now rtime.Time) int64 {
	return rtime.DivFloor(now.Sub(q.start), q.ts)
}

// Register places a release and returns its predicted response time, or
// Unservable when the declared cost exceeds the server capacity.
func (q *AdmissionQueue) Register(now rtime.Time, rel *release) rtime.Duration {
	ca := rel.h.cost
	if ca > q.cs {
		return Unservable
	}
	if len(q.lists) == 0 {
		// First pending event: it will be handled in the activation that
		// contains now — unless the server already gave up on it, in
		// which case the next one.
		c := q.inst(now)
		if q.closed && c <= q.closedInst {
			c = q.closedInst + 1
		}
		q.firstInst = c
	}
	idx := len(q.lists) - 1
	if idx >= 0 && q.costs[idx]+ca <= q.cs {
		q.lists[idx] = append(q.lists[idx], rel)
	} else {
		q.lists = append(q.lists, []*release{rel})
		q.costs = append(q.costs, 0)
		idx++
	}
	cpa := q.costs[idx]
	q.costs[idx] += ca
	ia := q.firstInst + int64(idx)
	finish := q.start.Add(rtime.Duration(ia)*q.ts + cpa + ca)
	return finish.Sub(now)
}

// RegisterCost registers a synthetic release of the given declared cost and
// returns its predicted response time. It exists for benchmarks and
// admission-control front-ends that probe the queue without a full handler.
func (q *AdmissionQueue) RegisterCost(now rtime.Time, cost rtime.Duration) rtime.Duration {
	h := &ServableAsyncEventHandler{name: "probe", cost: cost, actual: cost}
	return q.Register(now, &release{h: h, rec: &EventRecord{Handler: h.name}})
}

// SyncInstance informs the queue that the server's activation number k
// begins now.
func (q *AdmissionQueue) SyncInstance(k int64) {
	q.lastSync = k
	q.closed = false
	q.popEmptyLeading()
	if len(q.lists) == 0 || q.firstInst < k {
		q.firstInst = k
	}
}

// Closed informs the queue that the server suspended until its next
// activation (chooseNextEvent returned null). Any backlog left (a head too
// large for the remaining capacity) shifts to the next activation.
func (q *AdmissionQueue) Closed() {
	q.closed = true
	q.closedInst = q.lastSync
	if len(q.lists) > 0 && q.firstInst <= q.closedInst {
		q.firstInst = q.closedInst + 1
	}
}

func (q *AdmissionQueue) popEmptyLeading() {
	for len(q.lists) > 0 && len(q.lists[0]) == 0 {
		q.lists = q.lists[1:]
		q.costs = q.costs[1:]
		q.firstInst++
	}
}

// Head returns the next release to serve under the remaining capacity:
// strictly the head of the current inner list (the structure preserves
// placement order, unlike the flat FIFO's first-fit scan).
func (q *AdmissionQueue) Head(remaining rtime.Duration) *release {
	q.popEmptyLeading()
	if len(q.lists) == 0 {
		return nil
	}
	head := q.lists[0][0]
	if head.h.cost <= remaining {
		return head
	}
	return nil
}

// Remove drops a release (after service or interruption). The consumed
// space in its list stays claimed, keeping the remaining predictions valid.
func (q *AdmissionQueue) Remove(rel *release) {
	for li, l := range q.lists {
		for i, x := range l {
			if x == rel {
				q.lists[li] = append(l[:i], l[i+1:]...)
				return
			}
		}
	}
}

// Cancel withdraws a release before service (on-line admission rejection).
// If the release is the most recent registration (the tail of the last
// list), its claimed cost is returned to the list so later registrations
// reuse the slot exactly; otherwise the claim is kept, which keeps the
// predictions of already-registered later events valid (conservative).
func (q *AdmissionQueue) Cancel(rel *release) {
	last := len(q.lists) - 1
	if last >= 0 {
		l := q.lists[last]
		if len(l) > 0 && l[len(l)-1] == rel {
			q.lists[last] = l[:len(l)-1]
			q.costs[last] -= rel.h.cost
			if len(q.lists[last]) == 0 && q.costs[last] == 0 {
				q.lists = q.lists[:last]
				q.costs = q.costs[:last]
			}
			return
		}
	}
	q.Remove(rel)
}

// Len returns the number of queued releases.
func (q *AdmissionQueue) Len() int {
	n := 0
	for _, l := range q.lists {
		n += len(l)
	}
	return n
}

// Depth returns the number of inner lists (pending server instances).
func (q *AdmissionQueue) Depth() int { return len(q.lists) }
