package core

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
)

// SporadicTaskServer is a third TaskServer policy built on the framework —
// the Sporadic Server of Sprunt, Sha & Lehoczky, which the paper cites as
// the SS policy. It demonstrates the framework's stated goal: "this allows
// developers to write different behaviours for different task server
// policies".
//
// Unlike the deferrable server's full periodic refill, the sporadic server
// replenishes exactly what a serving burst consumed, one server period
// after the burst began. It therefore never carries the DS's back-to-back
// interference: for feasibility analysis it behaves like a plain periodic
// task (Sprunt's result), which its Interference hook reports.
//
// Like the other framework servers it inherits the Java implementation
// constraints: handlers are not resumable, admission is on declared cost,
// and the Timed budget is the remaining capacity.
type SporadicTaskServer struct {
	serverCore
	wakeUp *rtsjvm.AsyncEvent
	aeh    *rtsjvm.AsyncEventHandler

	running bool
	repls   []sporadicRepl
	inBurst bool
	burstAt rtime.Time
	used    rtime.Duration
}

type sporadicRepl struct {
	at     rtime.Time
	amount rtime.Duration
}

// NewSporadicTaskServer creates and starts a sporadic server.
func NewSporadicTaskServer(vm *rtsjvm.VM, name string, prio int, params *TaskServerParameters) *SporadicTaskServer {
	s := &SporadicTaskServer{serverCore: newServerCore(vm, name, prio, params)}
	s.capacity = params.Capacity()
	s.wakeUp = vm.NewAsyncEvent(name + ".wakeUp")
	s.aeh = vm.NewAsyncEventHandler(name, prio, &params.PeriodicParameters, s.runOnce)
	s.wakeUp.AddHandler(s.aeh)
	return s
}

// ServableEventReleased implements TaskServer. A shed release (register
// returned nil) never wakes the server.
func (s *SporadicTaskServer) ServableEventReleased(tc *exec.TC, h *ServableAsyncEventHandler) {
	if s.register(tc, h) == nil {
		return
	}
	if !s.running {
		s.wakeUp.Fire(tc)
	}
}

// recover applies the replenishments due by now.
func (s *SporadicTaskServer) recover(now rtime.Time) {
	for len(s.repls) > 0 && s.repls[0].at <= now {
		s.capacity += s.repls[0].amount
		if s.capacity > s.params.Capacity() {
			s.capacity = s.params.Capacity()
		}
		s.repls = s.repls[1:]
	}
}

// closeBurst schedules the replenishment of what the burst consumed, one
// period after it began, and arms a timer to wake the server then.
func (s *SporadicTaskServer) closeBurst() {
	if !s.inBurst {
		return
	}
	s.inBurst = false
	if s.used <= 0 {
		return
	}
	at := s.burstAt.Add(s.params.Period)
	s.repls = append(s.repls, sporadicRepl{at: at, amount: s.used})
	s.used = 0
	s.vm.FireAt(at, rtsjvm.FirableFunc(func(tc *exec.TC) {
		if !s.running {
			s.wakeUp.Fire(tc)
		}
	}), s.name+".repl")
}

// runOnce drains every admissible pending event, then closes the burst.
func (s *SporadicTaskServer) runOnce(tc *exec.TC) {
	s.running = true
	defer func() { s.running = false }()
	for {
		s.recover(tc.Now())
		if oh := s.vm.Overheads().Dispatch; oh > 0 {
			tc.Consume(oh)
		}
		rel := s.firstFitting(func(*ServableAsyncEventHandler) rtime.Duration { return s.capacity })
		if rel == nil {
			s.closeBurst()
			return
		}
		if !s.inBurst {
			s.inBurst = true
			s.burstAt = tc.Now()
		}
		elapsed := s.serve(tc, rel, s.capacity)
		s.capacity -= elapsed
		s.noteCapacity()
		if s.capacity < 0 {
			s.capacity = 0
		}
		s.used += elapsed
	}
}

// Interference implements the Section 3 hook: a sporadic server interferes
// like a plain periodic task.
func (s *SporadicTaskServer) Interference(w rtime.Duration) rtime.Duration {
	return rtime.Duration(rtime.DivCeil(w, s.params.Period)) * s.params.Capacity()
}
