package core

import (
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
)

func mkRelease(cost float64) *release {
	h := &ServableAsyncEventHandler{name: "h", cost: tu(cost), actual: tu(cost)}
	return &release{h: h, rec: &EventRecord{Handler: "h"}}
}

func TestAdmissionPlacement(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	// Three events of cost 3: each occupies its own inner list (3+3 > 4).
	r1 := q.Register(0, mkRelease(3))
	r2 := q.Register(0, mkRelease(3))
	r3 := q.Register(0, mkRelease(3))
	if q.Depth() != 3 || q.Len() != 3 {
		t.Fatalf("depth=%d len=%d", q.Depth(), q.Len())
	}
	// Instance 0 at t=0: R = 0*6+3, 1*6+3, 2*6+3.
	for i, want := range []float64{3, 9, 15} {
		got := []rtime.Duration{r1, r2, r3}[i]
		if got != tu(want) {
			t.Errorf("prediction %d = %v, want %v", i, got.TUs(), want)
		}
	}
}

func TestAdmissionPacksSmallEvents(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	r1 := q.Register(0, mkRelease(2))
	r2 := q.Register(0, mkRelease(2)) // fits the same instance
	r3 := q.Register(0, mkRelease(2)) // overflows to the next
	if q.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.Depth())
	}
	if r1 != tu(2) || r2 != tu(4) || r3 != tu(8) {
		t.Errorf("predictions: %v %v %v", r1.TUs(), r2.TUs(), r3.TUs())
	}
}

func TestAdmissionUnservable(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	if got := q.Register(0, mkRelease(5)); got != Unservable {
		t.Fatalf("oversized prediction = %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("oversized release must not be queued (it would wedge the head)")
	}
}

func TestAdmissionClosedInstanceShiftsToNext(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	q.SyncInstance(0)
	q.Closed() // the server suspended during instance 0
	// An arrival at t=2 is served at the next activation (t=6).
	r := q.Register(rtime.AtTU(2), mkRelease(3))
	if r != tu(7) { // 6 + 3 - 2
		t.Fatalf("prediction = %v, want 7", r.TUs())
	}
}

func TestAdmissionHeadRespectsOrder(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	relA := mkRelease(3)
	relB := mkRelease(1)
	q.Register(0, relA)
	q.Register(0, relB) // same list: 3+1 = 4
	if got := q.Head(tu(4)); got != relA {
		t.Fatalf("head = %v, want A", got)
	}
	q.Remove(relA)
	if got := q.Head(tu(1)); got != relB {
		t.Fatalf("head after remove = %v, want B", got)
	}
	// Unlike the FIFO first-fit, the structure never serves out of order:
	// a head that does not fit blocks the queue.
	relC := mkRelease(3)
	relD := mkRelease(1)
	q2 := NewAdmissionQueue(tu(4), tu(6))
	q2.Register(0, relC)
	q2.Register(0, relD)
	if got := q2.Head(tu(2)); got != nil {
		t.Fatalf("head with budget 2 = %v, want nil (C blocks)", got)
	}
}

func TestAdmissionSyncPopsServedLists(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	relA := mkRelease(3)
	q.Register(0, relA)
	relB := mkRelease(3)
	q.Register(0, relB)
	q.SyncInstance(0)
	q.Remove(relA)
	q.SyncInstance(1)
	if got := q.Head(tu(4)); got != relB {
		t.Fatalf("head = %v, want B", got)
	}
	if q.Depth() != 1 {
		t.Fatalf("depth = %d", q.Depth())
	}
}

// End to end: with a cost-free platform, the predictions recorded at
// registration match the measured response times exactly (the Section 7
// design goal).
func TestAdmissionPredictionsExact(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(6))).
		UseAdmissionQueue()
	costs := []float64{2, 1.5, 3, 0.5, 2.5, 4, 1}
	for i, c := range costs {
		h := NewServableAsyncEventHandler(srv, "h"+string(rune('1'+i)), tu(c))
		e := NewServableAsyncEvent(vm, h.Name())
		e.AddServableHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(float64(i)*1.3), e, h.Name()).Start()
	}
	if err := vm.Run(rtime.AtTU(60)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	for _, rec := range srv.Records() {
		if !rec.Served {
			t.Errorf("%s unserved", rec.Handler)
			continue
		}
		if rec.Predicted != rec.Response() {
			t.Errorf("%s: predicted %v, measured %v",
				rec.Handler, rec.Predicted.TUs(), rec.Response().TUs())
		}
	}
}

// On-line admission control: events whose predicted response time exceeds
// their deadline are cancelled at release (Section 7's anticipated use).
func TestAdmissionControlRejects(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(6))).
		UseAdmissionQueue()
	mk := func(name string, cost, deadline, fire float64) {
		h := NewServableAsyncEventHandler(srv, name, tu(cost)).SetDeadline(tu(deadline))
		e := NewServableAsyncEvent(vm, name)
		e.AddServableHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(fire), e, name).Start()
	}
	mk("ok", 3, 10, 0)      // predicted 3 <= 10: accepted
	mk("tight", 3, 5, 0)    // predicted 6+3=9 > 5: rejected
	mk("big", 5, 100, 0)    // cost > capacity: unservable, rejected
	mk("later", 3, 12, 0.5) // with "tight" cancelled, predicted 9 - 0.5 <= 12: accepted
	if err := vm.Run(rtime.AtTU(30)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	want := map[string]struct{ served, rejected bool }{
		"ok":    {true, false},
		"tight": {false, true},
		"big":   {false, true},
		"later": {true, false},
	}
	for _, rec := range srv.Records() {
		w := want[rec.Handler]
		if rec.Served != w.served || rec.Rejected != w.rejected {
			t.Errorf("%s: served=%v rejected=%v, want %+v (predicted %v)",
				rec.Handler, rec.Served, rec.Rejected, w, rec.Predicted.TUs())
		}
	}
	// "later" reuses the slot the cancelled "tight" released; its
	// prediction must still be exact.
	for _, rec := range srv.Records() {
		if rec.Handler == "later" && rec.Predicted != rec.Response() {
			t.Errorf("later: predicted %v, measured %v", rec.Predicted.TUs(), rec.Response().TUs())
		}
	}
}

func TestAdmissionCancelReleasesTailSlot(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	relA := mkRelease(2)
	q.Register(0, relA)
	relB := mkRelease(2)
	q.Register(0, relB)
	q.Cancel(relB)
	// The slot is free again: a new cost-2 event packs into list 0.
	relC := mkRelease(2)
	if got := q.Register(0, relC); got != tu(4) {
		t.Fatalf("prediction after cancel = %v, want 4 (slot reused)", got.TUs())
	}
	if q.Depth() != 1 {
		t.Fatalf("depth = %d", q.Depth())
	}
}

func TestAdmissionCancelMidListIsConservative(t *testing.T) {
	q := NewAdmissionQueue(tu(4), tu(6))
	relA := mkRelease(2)
	q.Register(0, relA)
	relB := mkRelease(2)
	q.Register(0, relB)
	q.Cancel(relA) // not the tail: claim kept
	relC := mkRelease(2)
	if got := q.Register(0, relC); got != tu(6)+tu(2) {
		// New list at instance 1: 6 + 2.
		t.Fatalf("prediction = %v, want 8 (claim kept)", got.TUs())
	}
}

// The admission-queue server still behaves like a polling server on the
// paper's scenario 1.
func TestAdmissionQueueScenario1(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(3), tu(6))).
		UseAdmissionQueue()
	for i, fire := range []float64{0, 6} {
		h := NewServableAsyncEventHandler(srv, []string{"h1", "h2"}[i], tu(2))
		e := NewServableAsyncEvent(vm, h.Name())
		e.AddServableHandler(h)
		vm.NewOneShotTimer(rtime.AtTU(fire), e, h.Name()).Start()
	}
	if err := vm.Run(rtime.AtTU(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	for _, rec := range srv.Records() {
		if !rec.Served || rec.Response() != tu(2) || rec.Predicted != tu(2) {
			t.Errorf("%s: %+v", rec.Handler, rec)
		}
	}
}
