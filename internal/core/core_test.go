package core

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/trace"
)

func tu(v float64) rtime.Duration { return rtime.TUs(v) }
func at(v float64) rtime.Time     { return rtime.AtTU(v) }

// scenario builds the Table 1 system on the RTSJ emulation: a server at
// priority 10, tau1 (C=2, T=6) at 2, tau2 (C=1, T=6) at 1, and handlers
// h1 (cost 2) and h2 bound to events e1 and e2 fired by one-shot timers.
type scenario struct {
	vm  *rtsjvm.VM
	srv TaskServer
	h1  *ServableAsyncEventHandler
	h2  *ServableAsyncEventHandler
}

func buildScenario(deferrable bool, oh rtsjvm.Overheads, h2Declared, h2Actual, fire1, fire2 float64) *scenario {
	vm := rtsjvm.NewVM(nil, oh)
	params := NewTaskServerParameters(0, tu(3), tu(6))
	var srv TaskServer
	if deferrable {
		srv = NewDeferrableTaskServer(vm, "DS", 10, params)
	} else {
		srv = NewPollingTaskServer(vm, "PS", 10, params)
	}
	periodic := func(name string, prio int, cost float64) {
		pp := &rtsjvm.PeriodicParameters{Period: tu(6), Cost: tu(cost)}
		vm.NewRealtimeThread(name, prio, pp, func(r *rtsjvm.RTC) {
			for {
				r.Consume(tu(cost))
				r.WaitForNextPeriod()
			}
		})
	}
	periodic("tau1", 2, 2)
	periodic("tau2", 1, 1)

	s := &scenario{vm: vm, srv: srv}
	s.h1 = NewServableAsyncEventHandler(srv, "h1", tu(2))
	s.h2 = NewServableAsyncEventHandler(srv, "h2", tu(h2Declared)).SetActualCost(tu(h2Actual))
	e1 := NewServableAsyncEvent(vm, "e1")
	e1.AddServableHandler(s.h1)
	e2 := NewServableAsyncEvent(vm, "e2")
	e2.AddServableHandler(s.h2)
	vm.NewOneShotTimer(at(fire1), e1, "e1").Start()
	vm.NewOneShotTimer(at(fire2), e2, "e2").Start()
	return s
}

func (s *scenario) run(t *testing.T, horizon float64) *trace.Trace {
	t.Helper()
	if err := s.vm.Run(at(horizon)); err != nil {
		t.Fatal(err)
	}
	s.vm.Shutdown()
	if err := s.vm.Trace().CheckSingleCPU(); err != nil {
		t.Fatal(err)
	}
	return s.vm.Trace()
}

type seg struct {
	start, end float64
	label      string
}

func checkSegments(t *testing.T, tr *trace.Trace, entity string, want []seg) {
	t.Helper()
	got := tr.SegmentsOf(entity)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d segments %v, want %d\n%s", entity, len(got), got, len(want),
			tr.Gantt(trace.GanttOptions{}))
	}
	for i, w := range want {
		g := got[i]
		if g.Start != at(w.start) || g.End != at(w.end) || g.Label != w.label {
			t.Errorf("%s segment %d: got [%v,%v)%q, want [%v,%v)%q", entity, i,
				g.Start.TUs(), g.End.TUs(), g.Label, w.start, w.end, w.label)
		}
	}
}

// Figure 2 on the real framework: events fired at 0 and 6 are served
// immediately with full capacity.
func TestFrameworkScenario1(t *testing.T) {
	s := buildScenario(false, rtsjvm.Overheads{}, 2, 2, 0, 6)
	tr := s.run(t, 12)
	checkSegments(t, tr, "PS", []seg{{0, 2, "h1"}, {6, 8, "h2"}})
	checkSegments(t, tr, "tau1", []seg{{2, 4, ""}, {8, 10, ""}})
	checkSegments(t, tr, "tau2", []seg{{4, 5, ""}, {10, 11, ""}})
	for _, r := range s.srv.Records() {
		if !r.Served || r.Response() != tu(2) {
			t.Errorf("%s: served=%v response=%v", r.Handler, r.Served, r.Response())
		}
	}
}

// Figure 3: fired at 2 and 4; at time 8 the remaining capacity (1) is below
// h2's cost (2), so h2 waits for the next activation and runs [12,14).
func TestFrameworkScenario2(t *testing.T) {
	s := buildScenario(false, rtsjvm.Overheads{}, 2, 2, 2, 4)
	tr := s.run(t, 18)
	checkSegments(t, tr, "PS", []seg{{6, 8, "h1"}, {12, 14, "h2"}})
	checkSegments(t, tr, "tau1", []seg{{0, 2, ""}, {8, 10, ""}, {14, 16, ""}})
	checkSegments(t, tr, "tau2", []seg{{2, 3, ""}, {10, 11, ""}, {16, 17, ""}})
	recs := s.srv.Records()
	if got := recs[0].Response(); got != tu(6) {
		t.Errorf("h1 response = %v, want 6tu", got)
	}
	if got := recs[1].Response(); got != tu(10) {
		t.Errorf("h2 response = %v, want 10tu", got)
	}
}

// Figure 4: h2 declared with cost 1 but an actual demand of 2. It starts at
// 8 (the remaining capacity is 1) and is interrupted at 9 when the server
// has consumed all its capacity; Java cannot resume it at 12.
func TestFrameworkScenario3(t *testing.T) {
	s := buildScenario(false, rtsjvm.Overheads{}, 1, 2, 2, 4)
	tr := s.run(t, 18)
	checkSegments(t, tr, "PS", []seg{{6, 8, "h1"}, {8, 9, "h2"}})
	recs := s.srv.Records()
	h2 := recs[1]
	if !h2.Interrupted || h2.Served {
		t.Fatalf("h2 record: %+v", h2)
	}
	if h2.Finished != at(9) {
		t.Errorf("h2 interrupted at %v, want 9", h2.Finished.TUs())
	}
	for _, sg := range tr.SegmentsOf("PS") {
		if sg.Start >= at(9) {
			t.Errorf("PS must not serve h2 again: %+v", sg)
		}
	}
}

// The same workload as scenario 2 under the Deferrable Server: h1 is served
// immediately at its release (time 2). h2 (cost 2) does not fit the
// remaining capacity 1 at time 4 (and 4+2 does not cross the boundary at
// 6), so it waits for the replenishment and runs [6,8).
func TestFrameworkScenario2Deferrable(t *testing.T) {
	s := buildScenario(true, rtsjvm.Overheads{}, 2, 2, 2, 4)
	tr := s.run(t, 12)
	checkSegments(t, tr, "DS", []seg{{2, 4, "h1"}, {6, 8, "h2"}})
	recs := s.srv.Records()
	if got := recs[0].Response(); got != tu(2) {
		t.Errorf("h1 response = %v, want 2tu", got)
	}
	if got := recs[1].Response(); got != tu(4) {
		t.Errorf("h2 response = %v, want 4tu", got)
	}
}

// The DS budget-extension rule: remaining capacity 1 at time 5, cost 2,
// 5+2 > 6 (the next replenishment), so the granted budget is 1+3 and the
// event is served [5,7) across the boundary.
func TestDeferrableBudgetExtension(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewDeferrableTaskServer(vm, "DS", 10, NewTaskServerParameters(0, tu(3), tu(6)))
	a := NewServableAsyncEventHandler(srv, "a", tu(2))
	b := NewServableAsyncEventHandler(srv, "b", tu(2))
	ea := NewServableAsyncEvent(vm, "ea")
	ea.AddServableHandler(a)
	eb := NewServableAsyncEvent(vm, "eb")
	eb.AddServableHandler(b)
	vm.NewOneShotTimer(at(0), ea, "ea").Start()
	vm.NewOneShotTimer(at(5), eb, "eb").Start()
	if err := vm.Run(at(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	checkSegments(t, vm.Trace(), "DS", []seg{{0, 2, "a"}, {5, 7, "b"}})
	for _, r := range srv.Records() {
		if !r.Served {
			t.Errorf("%s unserved", r.Handler)
		}
	}
}

// A handler whose declared cost exceeds the full capacity can never be
// served by the limited polling server; it must not wedge the queue.
func TestOversizedHandlerSkipped(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(3), tu(6)))
	big := NewServableAsyncEventHandler(srv, "big", tu(5))
	small := NewServableAsyncEventHandler(srv, "small", tu(1))
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(big)
	e.AddServableHandler(small)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	if err := vm.Run(at(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	recs := srv.Records()
	if recs[0].Served || recs[0].Interrupted {
		t.Error("big handler must stay pending forever")
	}
	if !recs[1].Served || recs[1].Response() != tu(1) {
		t.Errorf("small handler: %+v", recs[1])
	}
}

// The out-of-order service the paper describes: with two pending handlers,
// if the first does not fit the remaining capacity and the second does, the
// event released last is served first.
func TestFIFOFirstFitReordering(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(6)))
	first := NewServableAsyncEventHandler(srv, "first", tu(3))
	second := NewServableAsyncEventHandler(srv, "second", tu(1))
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(first)
	e2 := NewServableAsyncEvent(vm, "e2")
	e2.AddServableHandler(second)
	// first arrives at 1 and is served [1,4) leaving capacity 1... then
	// second (cost 1) fits; but make first arrive behind a consumed
	// capacity: serve a filler of cost 3 at 0, then fire both.
	filler := NewServableAsyncEventHandler(srv, "filler", tu(3))
	ef := NewServableAsyncEvent(vm, "ef")
	ef.AddServableHandler(filler)
	vm.NewOneShotTimer(at(0), ef, "ef").Start()
	vm.NewOneShotTimer(at(1), e, "e").Start()
	vm.NewOneShotTimer(at(2), e2, "e2").Start()
	if err := vm.Run(at(20)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	// At 3 the filler is done, capacity 1: "first" (3) does not fit,
	// "second" (1) does -> served [3,4) before "first" ([6,9)).
	checkSegments(t, vm.Trace(), "PS", []seg{{0, 3, "filler"}, {3, 4, "second"}, {6, 9, "first"}})
}

// Overheads shift the schedule: the timer daemon preempts at the highest
// priority and event release costs are charged to the firing context.
func TestOverheadsDelayService(t *testing.T) {
	oh := rtsjvm.Overheads{TimerFire: tu(0.25), EventRelease: tu(0.25)}
	vm := rtsjvm.NewVM(nil, oh)
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(3), tu(6)))
	h := NewServableAsyncEventHandler(srv, "h", tu(2))
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	if err := vm.Run(at(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	segs := vm.Trace().SegmentsOf("PS")
	if len(segs) != 1 || segs[0].Start != at(0.5) {
		t.Fatalf("PS segments = %+v (timer 0.25 + release 0.25 first)", segs)
	}
	rec := srv.Records()[0]
	// Release recorded after the timer-fire overhead, at 0.25.
	if rec.Released != at(0.25) {
		t.Errorf("released at %v, want 0.25", rec.Released.TUs())
	}
	if !rec.Served {
		t.Error("h should be served")
	}
}

// With a tight capacity and a timer firing inside the service window, the
// wall-clock budget is eaten by the preemption and the handler is
// interrupted — the exact mechanism behind Table 3's interrupted ratios.
func TestOverheadInducedInterruption(t *testing.T) {
	oh := rtsjvm.Overheads{TimerFire: tu(0.5)}
	vm := rtsjvm.NewVM(nil, oh)
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(8)))
	h := NewServableAsyncEventHandler(srv, "h", tu(4)) // exactly the capacity
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	// A second, unrelated event fires mid-service and costs daemon time.
	noise := vm.NewAsyncEvent("noise")
	vm.NewOneShotTimer(at(2), noise, "noise").Start()
	if err := vm.Run(at(16)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	rec := srv.Records()[0]
	if !rec.Interrupted {
		t.Fatalf("handler should be interrupted (budget eaten by timer daemon): %+v", rec)
	}
}

// Without any perturbation, a handler whose cost equals the capacity
// completes exactly at the budget boundary.
func TestExactCapacityCompletes(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(8)))
	h := NewServableAsyncEventHandler(srv, "h", tu(4))
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(h)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	if err := vm.Run(at(16)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	rec := srv.Records()[0]
	if !rec.Served || rec.Response() != tu(4) {
		t.Fatalf("record: %+v", rec)
	}
}

// Both servers implement Schedulable and the Section 3 interference hook;
// feasibility analysis accounts for the DS double hit.
func TestServersInFeasibilityAnalysis(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	ps := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(2), tu(5)))
	low := vm.NewRealtimeThread("low", 1, &rtsjvm.PeriodicParameters{Period: tu(10), Cost: tu(2)},
		func(r *rtsjvm.RTC) {})
	s := vm.Scheduler()
	s.AddToFeasibility(ps)
	s.AddToFeasibility(low)
	for _, r := range s.ResponseTimes() {
		if r.Name == "low" && r.R != tu(4) {
			t.Errorf("low under PS R = %v, want 4tu", r.R)
		}
		if r.Name == "PS" && (!r.Analyzable || !r.Feasible) {
			t.Errorf("PS should be analyzable/feasible: %+v", r)
		}
	}
	vm.Shutdown()

	vm2 := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	ds := NewDeferrableTaskServer(vm2, "DS", 10, NewTaskServerParameters(0, tu(2), tu(5)))
	low2 := vm2.NewRealtimeThread("low", 1, &rtsjvm.PeriodicParameters{Period: tu(10), Cost: tu(2)},
		func(r *rtsjvm.RTC) {})
	s2 := vm2.Scheduler()
	s2.AddToFeasibility(ds)
	s2.AddToFeasibility(low2)
	for _, r := range s2.ResponseTimes() {
		if r.Name == "low" && r.R != tu(6) {
			t.Errorf("low under DS R = %v, want 6tu (double hit)", r.R)
		}
	}
	vm2.Shutdown()
}

// One handler bound to several events, and several handlers on one event.
func TestHandlerEventFanInFanOut(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(6)))
	shared := NewServableAsyncEventHandler(srv, "shared", tu(1))
	e1 := NewServableAsyncEvent(vm, "e1")
	e1.AddServableHandler(shared)
	e2 := NewServableAsyncEvent(vm, "e2")
	e2.AddServableHandler(shared)
	other := NewServableAsyncEventHandler(srv, "other", tu(1))
	e1.AddServableHandler(other)
	vm.NewOneShotTimer(at(0), e1, "e1").Start()
	vm.NewOneShotTimer(at(1), e2, "e2").Start()
	if err := vm.Run(at(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	recs := srv.Records()
	if len(recs) != 3 { // shared+other from e1, shared from e2
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for _, r := range recs {
		if !r.Served {
			t.Errorf("%s unserved", r.Handler)
		}
	}
}

// A servable event also releases its standard (inherited) handlers.
func TestServableEventStandardHandlers(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(4), tu(6)))
	servable := NewServableAsyncEventHandler(srv, "servable", tu(1))
	standardRan := false
	standard := vm.NewAsyncEventHandler("standard", 5, nil, func(tc *exec.TC) {
		tc.Consume(tu(1))
		standardRan = true
	})
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(servable)
	e.AddHandler(standard)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	if err := vm.Run(at(12)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	if !standardRan {
		t.Error("standard handler did not run")
	}
	if !srv.Records()[0].Served {
		t.Error("servable handler not served")
	}
}

// Failure injection: a panicking handler body surfaces as a VM error and
// does not corrupt the rest of the run.
func TestHandlerPanicSurfaces(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(3), tu(6)))
	bad := NewServableAsyncEventHandler(srv, "bad", tu(1)).SetLogic(func(tc *exec.TC) {
		tc.Consume(tu(0.5))
		panic("handler bug")
	})
	e := NewServableAsyncEvent(vm, "e")
	e.AddServableHandler(bad)
	vm.NewOneShotTimer(at(0), e, "e").Start()
	err := vm.Run(at(12))
	vm.Shutdown()
	if err == nil {
		t.Fatal("handler panic should surface as a run error")
	}
}

// Failure injection: events fired while the system is saturated stay
// pending and are reported unserved, never lost or double-counted.
func TestSaturationAccounting(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewPollingTaskServer(vm, "PS", 10, NewTaskServerParameters(0, tu(1), tu(10)))
	const n = 8
	for i := 0; i < n; i++ {
		h := NewServableAsyncEventHandler(srv, "h"+string(rune('0'+i)), tu(1))
		e := NewServableAsyncEvent(vm, "e")
		e.AddServableHandler(h)
		vm.NewOneShotTimer(at(float64(i)*0.1), e, "e").Start()
	}
	if err := vm.Run(at(35)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	recs := srv.Records()
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
	served := 0
	for _, r := range recs {
		if r.Served {
			served++
		}
		if r.Served && r.Interrupted {
			t.Errorf("%s both served and interrupted", r.Handler)
		}
	}
	// Capacity 1 per 10tu over 35tu: activations at 0,10,20,30 serve one
	// event each.
	if served != 4 {
		t.Fatalf("served = %d, want 4", served)
	}
}

func TestTaskServerParametersValidation(t *testing.T) {
	for _, bad := range []struct{ c, p float64 }{{0, 6}, {3, 0}, {7, 6}, {-1, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity=%v period=%v: expected panic", bad.c, bad.p)
				}
			}()
			NewTaskServerParameters(0, tu(bad.c), tu(bad.p))
		}()
	}
	p := NewTaskServerParameters(0, tu(3), tu(6))
	if p.Capacity() != tu(3) || p.ReleasePeriod() != tu(6) {
		t.Error("parameter accessors wrong")
	}
}
