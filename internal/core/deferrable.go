package core

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
)

// DeferrableTaskServer implements the Deferrable Server policy of
// Section 4.2.
//
// Unlike the polling server, the DS serves an aperiodic event as soon as it
// occurs, provided it has capacity, so its run method cannot be delegated
// to a periodic realtime thread. Instead it is delegated to an
// AsyncEventHandler bound to a dedicated wakeUp event: each arrival fires
// wakeUp if the server is not already running, and a periodic timer also
// fires wakeUp (if not running) so deferred work resumes after each
// capacity replenishment.
//
// The paper's budget-extension rule applies: when the service of the chosen
// event would cross the next replenishment, the granted budget is the
// remaining capacity plus a full fresh capacity.
type DeferrableTaskServer struct {
	serverCore
	wakeUp    *rtsjvm.AsyncEvent
	aeh       *rtsjvm.AsyncEventHandler
	replTimer *rtsjvm.PeriodicTimer

	running  bool
	nextRepl rtime.Time
}

// NewDeferrableTaskServer creates and starts a deferrable server. As for
// the polling server, the paper requires the highest priority.
func NewDeferrableTaskServer(vm *rtsjvm.VM, name string, prio int, params *TaskServerParameters) *DeferrableTaskServer {
	s := &DeferrableTaskServer{serverCore: newServerCore(vm, name, prio, params)}
	s.capacity = params.Capacity() // the DS starts with full capacity
	s.nextRepl = params.Start.Add(params.Period)
	s.wakeUp = vm.NewAsyncEvent(name + ".wakeUp")
	s.aeh = vm.NewAsyncEventHandler(name, prio, &params.PeriodicParameters, s.runOnce)
	s.wakeUp.AddHandler(s.aeh)
	// The periodic timer fires wakeUp at every replenishment boundary if
	// the server is not already running.
	s.replTimer = vm.NewPeriodicTimer(params.Start.Add(params.Period), params.Period,
		rtsjvm.FirableFunc(func(tc *exec.TC) {
			if !s.running {
				s.wakeUp.Fire(tc)
			}
		}), name+".repl")
	s.replTimer.Start()
	return s
}

// ServableEventReleased implements TaskServer: register the handler and
// wake the server if it is idle. A shed release (register returned nil)
// never wakes the server.
func (s *DeferrableTaskServer) ServableEventReleased(tc *exec.TC, h *ServableAsyncEventHandler) {
	if s.register(tc, h) == nil {
		return
	}
	if !s.running {
		s.wakeUp.Fire(tc)
	}
}

// recoverCapacity applies the replenishment boundaries crossed up to now.
// The DS "recovers its capacity every period", but the recovery is executed
// by the server's own wakeUp processing: boundaries passed while the server
// was busy (or asleep) take effect at the next wakeUp, never mid-service.
func (s *DeferrableTaskServer) recoverCapacity(now rtime.Time) {
	for s.nextRepl <= now {
		s.capacity = s.params.Capacity()
		s.nextRepl = s.nextRepl.Add(s.params.Period)
	}
}

// grantedBudget applies the Section 4.2 admission rule for one candidate:
// the plain remaining capacity, or — when the service would cross the next
// replenishment — the remaining capacity plus one full fresh capacity.
func (s *DeferrableTaskServer) grantedBudget(now rtime.Time, h *ServableAsyncEventHandler) rtime.Duration {
	if h.cost <= s.capacity {
		return s.capacity
	}
	if now.Add(h.cost) > s.nextRepl {
		return s.capacity + s.params.Capacity()
	}
	return s.capacity
}

// runOnce is the server's logic, released once per wakeUp fire: it drains
// every admissible pending event, then returns (the handler thread waits
// for the next fire).
func (s *DeferrableTaskServer) runOnce(tc *exec.TC) {
	s.running = true
	defer func() { s.running = false }()
	for {
		s.recoverCapacity(tc.Now())
		if oh := s.vm.Overheads().Dispatch; oh > 0 {
			tc.Consume(oh)
		}
		now := tc.Now()
		rel := s.firstFitting(func(h *ServableAsyncEventHandler) rtime.Duration {
			return s.grantedBudget(now, h)
		})
		if rel == nil {
			return
		}
		budget := s.grantedBudget(now, rel.h)
		if budget > s.capacity {
			// Budget extension: borrow the refill at the boundary the
			// service will cross, so it is not granted a second time.
			s.capacity += s.params.Capacity()
			s.nextRepl = s.nextRepl.Add(s.params.Period)
		}
		elapsed := s.serve(tc, rel, budget)
		// Plain wall-clock accounting, as the Java implementation's
		// "measure the time passed in the run method and decrease the
		// remaining capacity accordingly". May go negative on an
		// interrupted extended service; the next recovery resets it —
		// unless clamping is enabled (SetClampCapacity), which pins the
		// post-charge capacity at zero (the floor excursion stays visible
		// through CapacityFloor).
		s.chargeCapacity(elapsed)
	}
}

// Interference implements the Section 3 proposal with the Deferrable
// Server's modified analysis (Strosnider et al.): the server behaves like a
// periodic task with release jitter Ts - Cs, allowing two back-to-back
// capacities in a window — exactly what the centralized RTSJ feasibility
// design cannot express.
func (s *DeferrableTaskServer) Interference(w rtime.Duration) rtime.Duration {
	j := s.params.Period - s.params.Capacity()
	return rtime.Duration(rtime.DivCeil(w+j, s.params.Period)) * s.params.Capacity()
}
