package core

import (
	"testing"

	"rtsj/internal/rtsjvm"
)

func buildSS(t *testing.T, capTU, periodTU float64) (*rtsjvm.VM, *SporadicTaskServer, func(name string, cost, fire float64)) {
	t.Helper()
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewSporadicTaskServer(vm, "SS", 10,
		NewTaskServerParameters(0, tu(capTU), tu(periodTU)))
	fire := func(name string, cost, fire float64) {
		h := NewServableAsyncEventHandler(srv, name, tu(cost))
		e := NewServableAsyncEvent(vm, name)
		e.AddServableHandler(h)
		vm.NewOneShotTimer(at(fire), e, name).Start()
	}
	return vm, srv, fire
}

// The defining SS behaviour: consumed capacity returns one period after
// the serving burst began — not at fixed period boundaries.
func TestSporadicServerReplenishment(t *testing.T) {
	vm, srv, fire := buildSS(t, 2, 5)
	fire("a1", 2, 1)
	fire("a2", 2, 4)
	if err := vm.Run(at(20)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	// a1 consumes the full capacity [1,3); replenishment of 2 at 1+5=6;
	// a2 (arrived at 4) waits and is served [6,8).
	checkSegments(t, vm.Trace(), "SS", []seg{{1, 3, "a1"}, {6, 8, "a2"}})
	for _, rec := range srv.Records() {
		if !rec.Served {
			t.Errorf("%s unserved", rec.Handler)
		}
	}
}

// Partial bursts replenish exactly what they consumed.
func TestSporadicServerPartialReplenishment(t *testing.T) {
	vm, srv, fire := buildSS(t, 2, 5)
	fire("a1", 1, 1) // burst [1,2): replenish 1 at 6
	fire("a2", 2, 3) // cost 2 > remaining 1: waits for the replenishment
	if err := vm.Run(at(20)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	checkSegments(t, vm.Trace(), "SS", []seg{{1, 2, "a1"}, {6, 8, "a2"}})
	_ = srv
}

// Immediate service while capacity lasts: the SS reacts like a DS on
// arrival (no polling delay).
func TestSporadicServerImmediateService(t *testing.T) {
	vm, srv, fire := buildSS(t, 3, 10)
	fire("a1", 1, 2.5)
	fire("a2", 1, 4)
	if err := vm.Run(at(20)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	checkSegments(t, vm.Trace(), "SS", []seg{{2.5, 3.5, "a1"}, {4, 5, "a2"}})
	recs := srv.Records()
	if recs[0].Response() != tu(1) || recs[1].Response() != tu(1) {
		t.Errorf("responses: %v %v", recs[0].Response(), recs[1].Response())
	}
}

// Two separate bursts create two separate replenishments.
func TestSporadicServerTwoBursts(t *testing.T) {
	vm, _, fire := buildSS(t, 2, 6)
	fire("a1", 1, 0) // burst at 0: repl 1 at 6
	fire("a2", 1, 2) // burst at 2: repl 1 at 8
	fire("a3", 2, 3) // capacity exhausted: needs both replenishments
	if err := vm.Run(at(30)); err != nil {
		t.Fatal(err)
	}
	vm.Shutdown()
	// a3 needs 2 units; capacity is 1 at t=6 and 2 at t=8: served [8,10).
	checkSegments(t, vm.Trace(), "SS", []seg{{0, 1, "a1"}, {2, 3, "a2"}, {8, 10, "a3"}})
}

// The SS analyzes like a plain periodic task: its interference matches the
// polling server's, not the DS double hit.
func TestSporadicServerInterference(t *testing.T) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	srv := NewSporadicTaskServer(vm, "SS", 10, NewTaskServerParameters(0, tu(2), tu(5)))
	if got := srv.Interference(tu(10)); got != tu(4) {
		t.Errorf("interference over 10tu = %v, want 4tu", got)
	}
	low := vm.NewRealtimeThread("low", 1, &rtsjvm.PeriodicParameters{Period: tu(10), Cost: tu(2)},
		func(r *rtsjvm.RTC) {})
	s := vm.Scheduler()
	s.AddToFeasibility(srv)
	s.AddToFeasibility(low)
	for _, r := range s.ResponseTimes() {
		if r.Name == "low" && r.R != tu(4) {
			t.Errorf("low under SS R = %v, want 4tu (periodic-equivalent)", r.R)
		}
	}
	vm.Shutdown()
}
