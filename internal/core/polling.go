package core

import (
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
)

// PollingTaskServer implements the Polling Server policy of Section 4.1.
//
// It encapsulates a RealtimeThread with PeriodicParameters. At each
// periodic activation the server recovers its full capacity and serves
// pending handlers: chooseNextEvent returns the first handler in the FIFO
// list whose declared cost fits the remaining capacity; the handler runs
// under a Timed budget equal to the remaining capacity and the measured
// elapsed time is subtracted from the capacity. When no pending handler
// fits, the server waits for its next period — losing its remaining
// capacity, as a polling server must.
//
// Implementation constraints carried over from the paper: handlers are not
// resumable, so an event is only started if its declared cost fits the
// budget, and an interrupted handler is discarded.
type PollingTaskServer struct {
	serverCore
	rt *rtsjvm.RealtimeThread
	// admission is the optional Section 7 list-of-lists queue providing
	// O(1) on-line response-time prediction.
	admission *AdmissionQueue
}

// NewPollingTaskServer creates and starts a polling server. The paper
// requires the server to be the highest-priority task in the system
// (below only the VM's timer daemon).
func NewPollingTaskServer(vm *rtsjvm.VM, name string, prio int, params *TaskServerParameters) *PollingTaskServer {
	s := &PollingTaskServer{serverCore: newServerCore(vm, name, prio, params)}
	s.rt = vm.NewRealtimeThread(name, prio, &params.PeriodicParameters, s.run)
	return s
}

// UseAdmissionQueue switches the pending structure to the Section 7
// list-of-lists queue, enabling constant-time response-time prediction at
// registration (recorded in each EventRecord's Predicted field). Call
// before the system runs.
func (s *PollingTaskServer) UseAdmissionQueue() *PollingTaskServer {
	s.admission = NewAdmissionQueue(s.params.Capacity(), s.params.Period)
	s.admission.start = s.params.Start
	return s
}

// ServableEventReleased implements TaskServer: it is called (in the firing
// context) for each servable handler of a fired event. With the admission
// queue enabled, the predicted response time is recorded — and if the
// handler carries a deadline the prediction cannot meet, the event is
// cancelled on the spot (Section 7: "...and possibly to cancel its
// execution").
func (s *PollingTaskServer) ServableEventReleased(tc *exec.TC, h *ServableAsyncEventHandler) {
	rel := s.register(tc, h)
	if rel == nil {
		return // shed at registration (SetMaxPending)
	}
	if s.admission == nil {
		return
	}
	rel.rec.Predicted = s.admission.Register(tc.Now(), rel)
	if h.deadline > 0 && (rel.rec.Predicted == Unservable || rel.rec.Predicted > h.deadline) {
		s.admission.Cancel(rel)
		s.removePending(rel)
		rel.rec.Rejected = true
	}
}

// run is the periodic server loop, delegated to the encapsulated realtime
// thread.
func (s *PollingTaskServer) run(r *rtsjvm.RTC) {
	for {
		s.capacity = s.params.Capacity()
		if s.admission != nil {
			s.admission.SyncInstance(instanceIndex(r.CurrentRelease(), s.params))
		}
		for {
			if oh := s.vm.Overheads().Dispatch; oh > 0 {
				r.Consume(oh)
			}
			rel := s.chooseNextEvent()
			if rel == nil {
				break
			}
			elapsed := s.serve(r.TC, rel, s.capacity)
			if s.admission != nil {
				s.admission.Remove(rel)
			}
			s.capacity -= elapsed
			s.noteCapacity()
			if s.capacity < 0 {
				s.capacity = 0
			}
		}
		if s.admission != nil {
			s.admission.Closed()
		}
		r.WaitForNextPeriod()
	}
}

// chooseNextEvent returns the next handler to serve, or nil if no pending
// handler fits the remaining capacity.
func (s *PollingTaskServer) chooseNextEvent() *release {
	if s.capacity <= 0 {
		return nil
	}
	if s.admission != nil {
		return s.admission.Head(s.capacity)
	}
	return s.firstFitting(func(*ServableAsyncEventHandler) rtime.Duration { return s.capacity })
}

// Interference implements the Section 3 proposal: a polling server
// interferes with lower-priority tasks exactly like a periodic task.
func (s *PollingTaskServer) Interference(w rtime.Duration) rtime.Duration {
	return rtime.Duration(rtime.DivCeil(w, s.params.Period)) * s.params.Capacity()
}

// instanceIndex returns the activation number of a release instant.
func instanceIndex(release rtime.Time, params *TaskServerParameters) int64 {
	return rtime.DivFloor(release.Sub(params.Start), params.Period)
}
