package experiments

import (
	"runtime"
	"testing"

	"rtsj/internal/exec"
)

// TestStressLargeNBoundedGoroutines is the acceptance test of the pooled
// executive's headroom: a >=10k-thread scenario completes with the pool
// goroutine count bounded by MaxGoroutines, never approaching one
// goroutine per thread.
func TestStressLargeNBoundedGoroutines(t *testing.T) {
	p := DefaultStressParams()
	if testing.Short() {
		p.Jobs = 2000
	}
	before := runtime.NumGoroutine()
	res, err := RunStress(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != p.Jobs {
		t.Fatalf("completed %d of %d jobs", res.Completed, p.Jobs)
	}
	if res.PeakWorkers == 0 || res.PeakWorkers > p.MaxGoroutines {
		t.Errorf("pool peaked at %d workers, want 1..%d", res.PeakWorkers, p.MaxGoroutines)
	}
	if after := runtime.NumGoroutine(); after > before+p.MaxGoroutines+8 {
		t.Errorf("goroutines after run: before=%d after=%d (not bounded by the pool)", before, after)
	}
	if res.BackgroundRun == 0 {
		t.Error("background load never ran")
	}
}

// TestStressSchedulesIdenticalAcrossConfigs differential-tests the stress
// scenario itself over the full executive matrix: the completion-order
// fingerprint, total accounting and final instant must be identical in
// per-thread and pooled mode, on both kernels.
func TestStressSchedulesIdenticalAcrossConfigs(t *testing.T) {
	p := DefaultStressParams()
	p.Jobs = 1500 // keep the channel-kernel runs fast
	if testing.Short() {
		p.Jobs = 300
	}
	p.Kernel = exec.ChannelKernel
	p.MaxGoroutines = 0
	ref, err := RunStress(p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Completed != p.Jobs {
		t.Fatalf("reference completed %d of %d jobs", ref.Completed, p.Jobs)
	}
	for _, cfg := range []struct {
		name          string
		kernel        exec.Kernel
		maxGoroutines int
		activation    bool
	}{
		{"direct", exec.DirectKernel, 0, false},
		{"channel-pooled", exec.ChannelKernel, 8, false},
		{"direct-pooled", exec.DirectKernel, 8, false},
		{"channel-activation", exec.ChannelKernel, 8, true},
		{"direct-activation", exec.DirectKernel, 8, true},
	} {
		q := p
		q.Kernel = cfg.kernel
		q.MaxGoroutines = cfg.maxGoroutines
		q.PeriodicActivation = cfg.activation
		got, err := RunStress(q)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if got.Fingerprint != ref.Fingerprint || got.Completed != ref.Completed ||
			got.TotalConsumed != ref.TotalConsumed || got.FinalTime != ref.FinalTime {
			t.Errorf("%s diverged from reference: fingerprint %x vs %x, completed %d vs %d, consumed %v vs %v, final %v vs %v",
				cfg.name, got.Fingerprint, ref.Fingerprint, got.Completed, ref.Completed,
				got.TotalConsumed, ref.TotalConsumed, got.FinalTime.TUs(), ref.FinalTime.TUs())
		}
	}
}
