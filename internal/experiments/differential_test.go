package experiments

import (
	"math/rand"
	"testing"

	"rtsj/internal/gen"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// The central differential test: with a cost-free execution model, the Task
// Server Framework running on the virtual-time executive must reproduce the
// discrete-event simulation of the *limited* server policies exactly —
// same server busy intervals, same per-event outcomes, same response times.
// The two implementations share no code beyond the time and trace types.
func TestExecutionMatchesLimitedSimulation(t *testing.T) {
	for _, policy := range []sim.ServerPolicy{sim.LimitedPollingServer, sim.LimitedDeferrableServer} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 40; trial++ {
				sys := randomServedSystem(rng, policy)
				horizon := rtime.AtTU(60)

				simRes, err := RunSimulation(sys, horizon)
				if err != nil {
					t.Fatal(err)
				}
				execRes, err := RunExecution(sys, ZeroExecModel(), horizon)
				if err != nil {
					t.Fatal(err)
				}

				compareServerSegments(t, trial, sys, simRes.Trace, execRes.Trace)
				compareOutcomes(t, trial, sys, simRes, execRes)
				if t.Failed() {
					t.Logf("system: %+v", sys.Aperiodics)
					t.Logf("sim:\n%s", simRes.Trace.Gantt(trace.GanttOptions{}))
					t.Logf("exec:\n%s", execRes.Trace.Gantt(trace.GanttOptions{}))
					t.FailNow()
				}
			}
		})
	}
}

func randomServedSystem(rng *rand.Rand, policy sim.ServerPolicy) sim.System {
	var sys sim.System
	// Optional periodic background (distinct priorities below the server).
	if rng.Intn(2) == 1 {
		sys.Periodics = append(sys.Periodics, sim.PeriodicTask{
			Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(1 + rng.Float64()), Priority: 2,
		})
	}
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		cost := 0.5 + rng.Float64()*4.5 // may exceed the capacity
		sys.Aperiodics = append(sys.Aperiodics, sim.AperiodicJob{
			Name:    "J" + string(rune('1'+i)),
			Release: rtime.AtTU(rng.Float64() * 50),
			Cost:    rtime.TUs(cost),
		})
	}
	sys.Server = &sim.ServerSpec{
		Policy:   policy,
		Capacity: rtime.TUs(2 + rng.Float64()*2),
		Period:   rtime.TUs(5 + rng.Float64()*3),
		Priority: 100,
	}
	return sys
}

func compareServerSegments(t *testing.T, trial int, sys sim.System, simTr, execTr *trace.Trace) {
	t.Helper()
	name := sys.Server.Policy.String()
	if sys.Server.Name != "" {
		name = sys.Server.Name
	}
	// The framework names map PS-lim -> PS, DS-lim -> DS.
	var execName string
	switch sys.Server.Policy {
	case sim.LimitedPollingServer:
		execName = "PS"
	case sim.LimitedDeferrableServer:
		execName = "DS"
	}
	a := simTr.SegmentsOf(name)
	b := execTr.SegmentsOf(execName)
	if len(a) != len(b) {
		t.Errorf("trial %d: server segments differ: sim %d vs exec %d", trial, len(a), len(b))
		return
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End || a[i].Label != b[i].Label {
			t.Errorf("trial %d: segment %d: sim [%v,%v)%q vs exec [%v,%v)%q", trial, i,
				a[i].Start.TUs(), a[i].End.TUs(), a[i].Label,
				b[i].Start.TUs(), b[i].End.TUs(), b[i].Label)
		}
	}
}

func compareOutcomes(t *testing.T, trial int, sys sim.System, simRes *sim.Result, execRes *ExecOutcome) {
	t.Helper()
	simJobs := simRes.Aperiodics()
	if len(simJobs) != len(execRes.Records) {
		t.Errorf("trial %d: event counts differ: %d vs %d", trial, len(simJobs), len(execRes.Records))
		return
	}
	byName := map[string]*sim.Job{}
	for _, j := range simJobs {
		byName[j.Name()] = j
	}
	for _, rec := range execRes.Records {
		j, ok := byName[rec.Handler]
		if !ok {
			t.Errorf("trial %d: exec record %s has no sim job", trial, rec.Handler)
			continue
		}
		if j.Finished != rec.Served || j.Aborted != rec.Interrupted {
			t.Errorf("trial %d: %s: sim served=%v aborted=%v vs exec served=%v interrupted=%v",
				trial, rec.Handler, j.Finished, j.Aborted, rec.Served, rec.Interrupted)
			continue
		}
		if j.Finished && j.Finish != rec.Finished {
			t.Errorf("trial %d: %s: finish sim %v vs exec %v",
				trial, rec.Handler, j.Finish.TUs(), rec.Finished.TUs())
		}
	}
}

// Periodic-only workloads must produce byte-identical schedules on both
// engines: the discrete-event simulator and the executive implement fixed-
// priority preemptive scheduling independently.
//
// The property holds for schedules without deadline misses. Under overload
// the two models legitimately diverge: the simulator queues every periodic
// release (job semantics) while a RealtimeThread's waitForNextPeriod skips
// activations it overran (RTSJ semantics) — so overloaded trials are
// discarded.
func TestPeriodicScheduleMatchesAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		var sys sim.System
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			period := 3 + rng.Intn(12)
			sys.Periodics = append(sys.Periodics, sim.PeriodicTask{
				Name:     "p" + string(rune('1'+i)),
				Period:   rtime.TUs(float64(period)),
				Cost:     rtime.TUs(0.5 + rng.Float64()*float64(period)/3),
				Offset:   rtime.AtTU(rng.Float64() * 5),
				Priority: 1 + rng.Intn(5),
			})
		}
		// A server must exist for RunExecution; give it nothing to serve.
		sys.Server = &sim.ServerSpec{Policy: sim.LimitedPollingServer,
			Capacity: rtime.TUs(1), Period: rtime.TUs(50), Priority: 100}
		horizon := rtime.AtTU(40)

		simRes, err := RunSimulation(sys, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if simRes.PeriodicMisses > 0 {
			continue
		}
		checked++
		execRes, err := RunExecution(sys, ZeroExecModel(), horizon)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range sys.Periodics {
			a := simRes.Trace.SegmentsOf(p.Name)
			b := execRes.Trace.SegmentsOf(p.Name)
			if len(a) != len(b) {
				t.Fatalf("trial %d %s: %d vs %d segments\nsim:\n%s\nexec:\n%s",
					trial, p.Name, len(a), len(b),
					simRes.Trace.Gantt(trace.GanttOptions{}),
					execRes.Trace.Gantt(trace.GanttOptions{}))
			}
			for i := range a {
				if a[i].Start != b[i].Start || a[i].End != b[i].End {
					t.Fatalf("trial %d %s segment %d: sim [%v,%v) vs exec [%v,%v)",
						trial, p.Name, i, a[i].Start.TUs(), a[i].End.TUs(),
						b[i].Start.TUs(), b[i].End.TUs())
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d feasible trials checked; loosen the generator", checked)
	}
}

// The generated sets themselves must be platform-deterministic.
func TestGenerationDeterminism(t *testing.T) {
	p := GenParams("(2, 2)")
	a := gen.Generate(p)
	b := gen.Generate(p)
	if len(a) != len(b) {
		t.Fatal("set sizes differ")
	}
	for i := range a {
		if len(a[i].Aperiodics) != len(b[i].Aperiodics) {
			t.Fatalf("system %d sizes differ", i)
		}
		for k := range a[i].Aperiodics {
			if a[i].Aperiodics[k] != b[i].Aperiodics[k] {
				t.Fatalf("system %d job %d differs", i, k)
			}
		}
	}
}

func TestGenerationRespectsParameters(t *testing.T) {
	p := GenParams("(3, 2)")
	systems := gen.Generate(p)
	if len(systems) != 10 {
		t.Fatalf("nbGeneration: got %d systems", len(systems))
	}
	total := 0
	for _, s := range systems {
		total += len(s.Aperiodics)
		for _, j := range s.Aperiodics {
			if j.Cost < rtime.TUs(gen.MinCost) {
				t.Errorf("cost %v below the 0.1tu clamp", j.Cost)
			}
			if j.Release < 0 || j.Release >= p.Horizon() {
				t.Errorf("release %v outside horizon", j.Release)
			}
		}
		for i := 1; i < len(s.Aperiodics); i++ {
			if s.Aperiodics[i].Release < s.Aperiodics[i-1].Release {
				t.Error("arrivals not sorted")
			}
		}
	}
	// Expected about density*periods*systems = 3*10*10 = 300 events.
	if total < 200 || total > 400 {
		t.Errorf("total events = %d, want around 300", total)
	}
}

func TestGenerationSeedSensitivity(t *testing.T) {
	p := GenParams("(1, 0)")
	a := gen.Generate(p)
	p.Seed = 1984
	b := gen.Generate(p)
	same := len(a) == len(b)
	if same {
		diff := false
		for i := range a {
			if len(a[i].Aperiodics) != len(b[i].Aperiodics) {
				diff = true
				break
			}
			for k := range a[i].Aperiodics {
				if a[i].Aperiodics[k] != b[i].Aperiodics[k] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Error("different seeds produced identical sets")
		}
	}
}
