package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/obs"
)

// ShardProtocolVersion is the campaign shard wire-protocol version. Both
// sides echo it in every message; a mismatch is rejected, never guessed
// around.
const ShardProtocolVersion = 1

// ShardRequest is one line of the shard protocol: newline-delimited JSON
// from coordinator to worker, asking for the partial metrics of systems
// [Lo, Hi) of one sweep point. The spec travels in full with every request,
// so workers are stateless and any worker can serve any range.
type ShardRequest struct {
	// V is the protocol version (ShardProtocolVersion).
	V int `json:"v"`
	// Spec is the campaign being computed.
	Spec CampaignSpec `json:"spec"`
	// Point indexes Spec.Points.
	Point int `json:"point"`
	// Lo and Hi bound the half-open system-index range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"` // exclusive upper bound of the range
}

// ShardResponse is the worker's answer line: the request's coordinates
// echoed back with the computed partial, or an error. The echo lets the
// coordinator verify it merges exactly the ranges it asked for.
type ShardResponse struct {
	// V is the protocol version (ShardProtocolVersion).
	V int `json:"v"`
	// Point, Lo and Hi echo the request's coordinates.
	Point int `json:"point"`
	Lo    int `json:"lo"` // echoed range start
	Hi    int `json:"hi"` // echoed range end, exclusive
	// Partial is the computed range metrics; nil when Error is set.
	Partial *metrics.Partial `json:"partial,omitempty"`
	// Error carries the worker-side failure, empty on success.
	Error string `json:"error,omitempty"`
}

// ServeShard runs one shard-worker session: it decodes range requests from
// r line by line, computes each through the streaming reducer
// (RunCampaignRange) and encodes one response line per request to w, until
// EOF. A malformed or version-mismatched request, or a failing range, is
// answered with an error response (when the stream still permits one) and
// terminates the session with a non-nil error — a confused coordinator
// must not be half-served.
//
// cmd/shard wires this to stdin/stdout or to accepted TCP connections.
func ServeShard(r io.Reader, w io.Writer) error {
	return ServeShardStats(r, w, nil)
}

// ShardStats is the worker-side instrument set of the shard protocol:
// request/system/error counters, the in-flight gauge, and the wall-clock
// request-latency histogram. All fields may be nil; a nil *ShardStats
// disables observation entirely.
type ShardStats struct {
	// Requests counts range requests served (including failing ones).
	Requests *obs.Counter
	// Systems counts systems simulated across all served ranges.
	Systems *obs.Counter
	// Errors counts requests answered with an error response.
	Errors *obs.Counter
	// InFlight is the number of requests currently being computed (0 or 1
	// per session; sessions served concurrently stack).
	InFlight *obs.Gauge
	// Latency is the wall-clock milliseconds each range took to compute.
	Latency *obs.Histogram
}

// NewShardStats builds a ShardStats wired to registry r under
// "shard."-prefixed metric names. A nil registry yields nil instruments.
func NewShardStats(r *obs.Registry) *ShardStats {
	return &ShardStats{
		Requests: r.Counter("shard.requests"),
		Systems:  r.Counter("shard.systems"),
		Errors:   r.Counter("shard.errors"),
		InFlight: r.Gauge("shard.inflight"),
		Latency:  r.Histogram("shard.request_ms", obs.DefaultLatencyBuckets),
	}
}

// ServeShardStats is ServeShard with worker-side observability: st's
// instruments (nil disables them) count every request, its systems, its
// wall-clock latency and its outcome. The response stream is byte-
// identical to ServeShard's — stats never leak into the protocol.
func ServeShardStats(r io.Reader, w io.Writer, st *ShardStats) error {
	if st == nil {
		st = &ShardStats{}
	}
	dec := json.NewDecoder(bufio.NewReader(r))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	respond := func(resp ShardResponse) error {
		resp.V = ShardProtocolVersion
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("shard: write response: %w", err)
		}
		return bw.Flush()
	}
	for {
		var req ShardRequest
		switch err := dec.Decode(&req); {
		case err == io.EOF:
			return nil
		case err != nil:
			werr := fmt.Errorf("shard: malformed request: %w", err)
			_ = respond(ShardResponse{Error: werr.Error()})
			return werr
		}
		if req.V != ShardProtocolVersion {
			werr := fmt.Errorf("shard: protocol version %d, want %d", req.V, ShardProtocolVersion)
			st.Requests.Inc()
			st.Errors.Inc()
			_ = respond(ShardResponse{Point: req.Point, Lo: req.Lo, Hi: req.Hi, Error: werr.Error()})
			return werr
		}
		st.Requests.Inc()
		st.InFlight.Add(1)
		began := time.Now()
		part, err := RunCampaignRange(req.Spec, req.Point, req.Lo, req.Hi)
		st.Latency.Observe(time.Since(began).Milliseconds())
		st.InFlight.Add(-1)
		if err != nil {
			st.Errors.Inc()
			_ = respond(ShardResponse{Point: req.Point, Lo: req.Lo, Hi: req.Hi, Error: err.Error()})
			return fmt.Errorf("shard: range [%d, %d) of point %d: %w", req.Lo, req.Hi, req.Point, err)
		}
		st.Systems.Add(int64(req.Hi - req.Lo))
		if err := respond(ShardResponse{Point: req.Point, Lo: req.Lo, Hi: req.Hi, Partial: &part}); err != nil {
			return err
		}
	}
}

// ShardConn is one connected shard worker from the coordinator's side: a
// subprocess's stdin/stdout pipes, a TCP connection, or an in-memory pipe
// in tests. Name labels the worker in error messages.
type ShardConn struct {
	// Name labels the worker in error messages ("shard 2", an address).
	Name string
	// R carries the worker's response lines.
	R io.Reader
	// W carries the coordinator's request lines.
	W io.Writer
}

// shardHealth renders the per-shard status fragment of a progress line:
// one "name:served(ok|FAILED|+k inflight)"-style cell per shard.
func shardHealth(sessions []*shardSession) string {
	out := ""
	for i, ss := range sessions {
		if i > 0 {
			out += " "
		}
		state := "ok"
		if ss.failed.Load() {
			state = "FAILED"
		}
		out += fmt.Sprintf("%s:%d(%s)", ss.name, ss.served.Load(), state)
	}
	return out
}

// shardChunk is one (point, range) work unit of a sharded campaign.
type shardChunk struct {
	point, lo, hi int
}

// rangedPartial is one validated shard answer: the chunk it covers plus
// the computed partial.
type rangedPartial struct {
	shardChunk
	part metrics.Partial
}

// shardSession is the coordinator's end of one worker connection. The
// encoder/decoder pair persists across passes, so a retry on a surviving
// shard continues the same byte stream instead of losing buffered
// read-ahead to a fresh decoder.
type shardSession struct {
	name string
	enc  *json.Encoder
	dec  *json.Decoder

	// Coordinator-side observability (all optional): request/latency
	// instruments, the shared in-flight gauge, the progress tracker, and
	// the session's own health tallies for the progress health line.
	requests *obs.Counter
	latency  *obs.Histogram
	inflight *obs.Gauge
	prog     *progressTracker
	served   atomic.Int64
	failed   atomic.Bool
}

// run drives the session through work synchronously: write a request,
// read the response, validate the echo. It returns the validated partials
// of the chunks that completed; on failure, the completed prefix rides
// along with the error so the coordinator can retry only the remainder
// elsewhere.
func (ss *shardSession) run(s CampaignSpec, work []shardChunk) ([]rangedPartial, error) {
	out := make([]rangedPartial, 0, len(work))
	for _, ch := range work {
		req := ShardRequest{V: ShardProtocolVersion, Spec: s, Point: ch.point, Lo: ch.lo, Hi: ch.hi}
		ss.requests.Inc()
		ss.inflight.Add(1)
		began := time.Now()
		if err := ss.enc.Encode(req); err != nil {
			ss.inflight.Add(-1)
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: write request: %w", ss.name, err)
		}
		var resp ShardResponse
		err := ss.dec.Decode(&resp)
		ss.latency.Observe(time.Since(began).Milliseconds())
		ss.inflight.Add(-1)
		if err != nil {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: read response for point %d range [%d, %d): %w",
				ss.name, ch.point, ch.lo, ch.hi, err)
		}
		if resp.Error != "" {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: %s", ss.name, resp.Error)
		}
		if resp.V != ShardProtocolVersion {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: protocol version %d, want %d", ss.name, resp.V, ShardProtocolVersion)
		}
		if resp.Point != ch.point || resp.Lo != ch.lo || resp.Hi != ch.hi {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: response for point %d range [%d, %d), want point %d range [%d, %d)",
				ss.name, resp.Point, resp.Lo, resp.Hi, ch.point, ch.lo, ch.hi)
		}
		if resp.Partial == nil {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: response for point %d range [%d, %d) carries no partial",
				ss.name, ch.point, ch.lo, ch.hi)
		}
		if resp.Partial.Systems != ch.hi-ch.lo {
			ss.failed.Store(true)
			return out, fmt.Errorf("campaign: %s: partial for point %d range [%d, %d) covers %d systems, want %d",
				ss.name, ch.point, ch.lo, ch.hi, resp.Partial.Systems, ch.hi-ch.lo)
		}
		out = append(out, rangedPartial{shardChunk: ch, part: *resp.Partial})
		ss.served.Add(1)
		ss.prog.add(int64(ch.hi - ch.lo))
	}
	return out, nil
}

// RunCampaignSharded runs the campaign across the connected shard workers
// and merges their partials into the curve. Each sweep point's index space
// is split into chunks of batch systems (batch <= 0 picks a default that
// keeps every shard several chunks deep); chunks are dealt round-robin and
// each worker processes its chunks in order over its connection.
//
// A failing shard does not abort the campaign outright: the shard is
// dropped, and every range it had not answered (including the one that
// failed) is dealt round-robin over the surviving shards and retried
// once. The campaign fails only when a retried range fails again or no
// shard survived the first pass. Retries cannot perturb the result: a
// range's partial is the same exact integer tally whichever worker
// computes it, and the merge orders by system index, not by provenance.
//
// The merge is deterministic by construction: responses are validated
// against the exact ranges requested (coordinates echoed, one response per
// chunk, partial system counts matching the range width), sorted by
// (point, range start) and merged in that index order. Because partials
// are exact integer tallies, the resulting curve is bit-identical to
// RunCampaign's, for any shard count and any batch size — the fabric's
// differential invariant.
func RunCampaignSharded(s CampaignSpec, shards []ShardConn, batch int) (*Curve, error) {
	return RunCampaignShardedOpts(s, shards, batch, CampaignOptions{})
}

// RunCampaignShardedOpts is RunCampaignSharded with observability
// options. Progress lines carry per-shard health (served ranges, ok or
// FAILED, in-flight requests); the stats registry gains coordinator
// counters ("campaign.requests", "campaign.retries", "campaign.inflight")
// and one request-latency histogram per shard
// ("campaign.shard<i>.request_ms"). The curve stays bit-identical to
// RunCampaignSharded's — observation only.
func RunCampaignShardedOpts(s CampaignSpec, shards []ShardConn, batch int, opts CampaignOptions) (*Curve, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: no shard connections")
	}
	if batch <= 0 {
		// Several chunks per shard and point: enough slack to absorb uneven
		// chunk costs without making protocol round-trips dominate.
		batch = (s.Systems + 4*len(shards) - 1) / (4 * len(shards))
		if batch < 1 {
			batch = 1
		}
	}
	var chunks []shardChunk
	for point := range s.Points {
		for lo := 0; lo < s.Systems; lo += batch {
			hi := lo + batch
			if hi > s.Systems {
				hi = s.Systems
			}
			chunks = append(chunks, shardChunk{point: point, lo: lo, hi: hi})
		}
	}

	sessions := make([]*shardSession, len(shards))
	requests := opts.Stats.Counter("campaign.requests")
	retriesC := opts.Stats.Counter("campaign.retries")
	inflight := opts.Stats.Gauge("campaign.inflight")
	for si, conn := range shards {
		name := conn.Name
		if name == "" {
			name = fmt.Sprintf("shard %d", si)
		}
		sessions[si] = &shardSession{
			name:     name,
			enc:      json.NewEncoder(conn.W),
			dec:      json.NewDecoder(bufio.NewReader(conn.R)),
			requests: requests,
			inflight: inflight,
		}
		if opts.Stats != nil {
			sessions[si].latency = opts.Stats.Histogram(
				fmt.Sprintf("campaign.shard%d.request_ms", si), obs.DefaultLatencyBuckets)
		}
	}
	prog := newProgress(opts.Progress, "campaign", int64(len(s.Points)*s.Systems), opts.ProgressInterval,
		func() string { return shardHealth(sessions) })
	defer prog.close()
	for _, ss := range sessions {
		ss.prog = prog
	}

	// First pass: one goroutine per shard connection drives that shard's
	// chunk queue. Shards run concurrently; determinism comes from the
	// exact merge below, not from any ordering here. A shard's failure is
	// captured, not propagated: its unanswered chunks feed the retry pass.
	type shardResult struct {
		done     []rangedPartial
		leftover []shardChunk
		err      error
	}
	firstPass, _ := harness.MapN(len(shards), len(shards), func(si int) (shardResult, error) {
		var work []shardChunk
		for ci := si; ci < len(chunks); ci += len(shards) {
			work = append(work, chunks[ci])
		}
		done, err := sessions[si].run(s, work)
		return shardResult{done: done, leftover: work[len(done):], err: err}, nil
	})

	var all []rangedPartial
	var leftover []shardChunk
	var survivors []*shardSession
	var firstErr error
	for si, r := range firstPass {
		all = append(all, r.done...)
		if r.err != nil {
			leftover = append(leftover, r.leftover...)
			if firstErr == nil {
				firstErr = r.err
			}
		} else {
			survivors = append(survivors, sessions[si])
		}
	}

	// Retry pass: each leftover range is retried once, dealt round-robin
	// over the shards that completed their first pass cleanly.
	if firstErr != nil {
		if len(survivors) == 0 {
			return nil, firstErr
		}
		retriesC.Add(int64(len(leftover)))
		retries, _ := harness.MapN(len(survivors), len(survivors), func(k int) (shardResult, error) {
			var work []shardChunk
			for ci := k; ci < len(leftover); ci += len(survivors) {
				work = append(work, leftover[ci])
			}
			done, err := survivors[k].run(s, work)
			return shardResult{done: done, err: err}, nil
		})
		for _, r := range retries {
			if r.err != nil {
				return nil, fmt.Errorf("campaign: retry after failure (%v) failed too: %w", firstErr, r.err)
			}
			all = append(all, r.done...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].point != all[j].point {
			return all[i].point < all[j].point
		}
		return all[i].lo < all[j].lo
	})
	if len(all) != len(chunks) {
		return nil, fmt.Errorf("campaign: merged %d ranges, want %d", len(all), len(chunks))
	}
	c := &Curve{Spec: s, Points: make([]CurvePoint, 0, len(s.Points))}
	for point, d := range s.Points {
		var part metrics.Partial
		for _, r := range all {
			if r.point == point {
				part.Merge(r.part)
			}
		}
		if part.Systems != s.Systems {
			return nil, fmt.Errorf("campaign: point %d merged %d systems, want %d", point, part.Systems, s.Systems)
		}
		c.Points = append(c.Points, CurvePoint{Density: d, Load: s.Load(d), Partial: part})
	}
	return c, nil
}
