package experiments

import (
	"bytes"
	"io"
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/harness"
	"rtsj/internal/obs"
	"rtsj/internal/sim"
)

// The observational-only contract, pinned end to end: enabling every
// stats layer (exec kernel counters, harness pool gauges, campaign
// instruments, progress reporting) must leave each result surface
// byte-identical to a run with observation off.

// An execution-mode table set — the costliest surface, crossing the VM,
// the executive and the harness — yields the same summary with exec and
// harness stats enabled.
func TestObsStatsDoNotChangeTableResults(t *testing.T) {
	base, err := RunSet(SetKeys[0], sim.LimitedDeferrableServer, Execution, DefaultExecModel())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	harness.SetStats(harness.NewStats(reg))
	defer harness.SetStats(nil)
	model := DefaultExecModel()
	model.Stats = exec.NewStats(reg)
	withStats, err := RunSet(SetKeys[0], sim.LimitedDeferrableServer, Execution, model)
	if err != nil {
		t.Fatal(err)
	}

	if base != withStats {
		t.Errorf("set summary changed with stats on:\nbase %+v\nwith %+v", base, withStats)
	}
	if reg.Map()["exec.context_switches"] <= 0 {
		t.Errorf("exec.context_switches = %d, want > 0 — stats were not actually wired", reg.Map()["exec.context_switches"])
	}
}

// A campaign with a live progress stream and a stats registry renders the
// exact bytes of the plain run, and the progress lines all go to their
// own writer.
func TestObsProgressDoesNotChangeCampaignOutput(t *testing.T) {
	s := DefaultCampaignSpec()
	s.Points = []float64{1, 2}
	s.Systems = 30
	s.HorizonPeriods = 4

	base, err := RunCampaign(s)
	if err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	reg := obs.NewRegistry()
	withObs, err := RunCampaignOpts(s, CampaignOptions{Progress: &progress, Stats: reg})
	if err != nil {
		t.Fatal(err)
	}

	if base.Format() != withObs.Format() {
		t.Errorf("curve changed with observation on:\nbase:\n%s\nwith:\n%s", base.Format(), withObs.Format())
	}
	if progress.Len() == 0 {
		t.Error("no progress output on the progress writer")
	}
	if got := reg.Map()["campaign.systems"]; got != int64(len(s.Points)*s.Systems) {
		t.Errorf("campaign.systems = %d, want %d", got, len(s.Points)*s.Systems)
	}
}

// A sharded campaign with observability on merges the identical curve and
// registers coordinator request metrics.
func TestObsShardedCampaignWithStats(t *testing.T) {
	s := DefaultCampaignSpec()
	s.Points = []float64{1, 2}
	s.Systems = 30
	s.HorizonPeriods = 4

	base, err := RunCampaign(s)
	if err != nil {
		t.Fatal(err)
	}

	workerReg := obs.NewRegistry()
	shards := make([]ShardConn, 2)
	for i := range shards {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		st := NewShardStats(workerReg)
		go func() { _ = ServeShardStats(reqR, respW, st) }()
		shards[i] = ShardConn{R: respR, W: reqW}
	}

	var progress bytes.Buffer
	coordReg := obs.NewRegistry()
	got, err := RunCampaignShardedOpts(s, shards, 7, CampaignOptions{Progress: &progress, Stats: coordReg})
	if err != nil {
		t.Fatal(err)
	}
	if base.Format() != got.Format() {
		t.Errorf("sharded curve differs with observation on:\nbase:\n%s\ngot:\n%s", base.Format(), got.Format())
	}
	cm := coordReg.Map()
	if cm["campaign.requests"] <= 0 {
		t.Errorf("campaign.requests = %d, want > 0", cm["campaign.requests"])
	}
	if cm["campaign.shard0.request_ms.count"]+cm["campaign.shard1.request_ms.count"] != cm["campaign.requests"] {
		t.Errorf("per-shard latency counts do not add up to requests: %v", cm)
	}
	wm := workerReg.Map()
	if wm["shard.requests"] != cm["campaign.requests"] {
		t.Errorf("worker served %d requests, coordinator sent %d", wm["shard.requests"], cm["campaign.requests"])
	}
	if wm["shard.systems"] != int64(len(s.Points)*s.Systems) {
		t.Errorf("shard.systems = %d, want %d", wm["shard.systems"], len(s.Points)*s.Systems)
	}
	if progress.Len() == 0 {
		t.Error("no progress output on the progress writer")
	}
}
