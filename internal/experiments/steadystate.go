package experiments

import (
	"fmt"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Periodic steady-state scenario: the workload the activation-driven
// executive (exec.SpawnPeriodic) opens up. Thousands to tens of thousands
// of long-running periodic entities — the shape of the paper's periodic
// background load and its polling/deferrable/sporadic servers — run
// forever at a modest total utilization. In looping mode every entity pins
// a goroutine (or pool worker) for the whole run, so the pooled
// executive's goroutine bound degrades back to one per entity; in
// activation mode an entity owns no goroutine between releases and the
// whole system runs on a pool-sized worker set.

// SteadyStateParams configures the scenario generator. Everything derives
// deterministically from Seed, so two runs on any executive configuration
// schedule identically.
type SteadyStateParams struct {
	// Entities is the number of periodic entities.
	Entities int
	// HorizonTU is the run horizon in time units; entity periods span
	// 50-225 tu, so a few hundred tu gives every entity several releases.
	HorizonTU float64
	// Utilization is the total CPU demand of all entities (0 < u < 1);
	// each entity gets an equal share spread over its period.
	Utilization float64
	// Seed drives period classes and offsets.
	Seed uint64
	// Kernel and MaxGoroutines configure the executive (MaxGoroutines 0 =
	// goroutine-per-thread).
	Kernel        exec.Kernel
	MaxGoroutines int // pooled-worker cap; 0 runs a goroutine per thread
	// Activation selects the activation dispatch path (SpawnPeriodic); the
	// default false runs classic parked loops for comparison.
	Activation bool
	// Sink optionally records the run's schedule (nil keeps the
	// metrics-only fast path); cmd/stress -perfetto uses it.
	Sink trace.Sink
	// Stats optionally wires the executive's kernel counters
	// (exec.Options.Stats). Observational only.
	Stats *exec.Stats
}

// DefaultSteadyStateParams is the 10k-entity configuration used by
// BenchmarkExecPeriodicSteadyState and cmd/stress -scenario steady.
func DefaultSteadyStateParams() SteadyStateParams {
	return SteadyStateParams{
		Entities:      10_000,
		HorizonTU:     500,
		Utilization:   0.75,
		Seed:          2007,
		Kernel:        exec.DirectKernel,
		MaxGoroutines: 64,
		Activation:    true,
	}
}

// SteadyStateResult summarizes one steady-state run.
type SteadyStateResult struct {
	// Entities is the configured entity count; Activations counts
	// completed releases across all of them.
	Entities    int
	Activations int // completed releases across all entities
	// Missed counts releases skipped because a body overran (zero at the
	// default utilization).
	Missed int
	// TotalConsumed is the virtual CPU consumed by all entities.
	TotalConsumed rtime.Duration
	// Horizon and FinalTime delimit the run.
	Horizon   rtime.Time
	FinalTime rtime.Time // virtual clock when the run stopped
	// PeakWorkers is the pool goroutine high-water mark (0 in
	// goroutine-per-thread mode).
	PeakWorkers int
	// Fingerprint hashes every activation completion (entity, instant) in
	// schedule order: two runs are schedule-identical iff it matches.
	Fingerprint uint64
}

// RunPeriodicSteadyState builds and runs the scenario.
func RunPeriodicSteadyState(p SteadyStateParams) (*SteadyStateResult, error) {
	if p.Entities <= 0 {
		return nil, fmt.Errorf("steadystate: need at least one entity (got %d)", p.Entities)
	}
	if p.Utilization <= 0 || p.Utilization >= 1 {
		return nil, fmt.Errorf("steadystate: utilization must be in (0,1) (got %g)", p.Utilization)
	}
	if p.HorizonTU <= 0 {
		return nil, fmt.Errorf("steadystate: horizon must be positive (got %g)", p.HorizonTU)
	}
	rng := &stressRand{s: p.Seed ^ 0xa076_1d64_78bd_642f}
	ex := exec.NewWithOptions(p.Sink, exec.Options{Kernel: p.Kernel, MaxGoroutines: p.MaxGoroutines, Stats: p.Stats})
	res := &SteadyStateResult{Entities: p.Entities, Fingerprint: 14695981039346656037}
	res.Horizon = rtime.AtTU(p.HorizonTU)

	loopMissed := 0
	var periodic []*exec.Thread
	for i := 0; i < p.Entities; i++ {
		i := i
		// Eight period classes, 50..225 tu; shorter periods run at higher
		// priority (rate-monotonic), deterministic offsets within the
		// first period.
		class := rng.next() % 8
		period := rtime.Duration(50+25*class) * rtime.TU
		offset := rtime.Time(rng.next() % uint64(period))
		cost := rtime.Duration(float64(period) * p.Utilization / float64(p.Entities))
		if cost <= 0 {
			cost = 1
		}
		prio := 2 + int(7-class)
		name := fmt.Sprintf("ss%d", i)
		work := func(tc *exec.TC) {
			tc.Consume(cost)
			res.Activations++
			res.Fingerprint = (res.Fingerprint ^ uint64(i)) * 1099511628211
			res.Fingerprint = (res.Fingerprint ^ uint64(tc.Now())) * 1099511628211
		}
		if p.Activation {
			th := ex.SpawnPeriodic(name, prio, exec.ActivationSpec{Start: offset, Period: period}, work)
			periodic = append(periodic, th)
		} else {
			ex.Spawn(name, prio, offset, func(tc *exec.TC) {
				next := offset
				for {
					work(tc)
					next = next.Add(period)
					for next < tc.Now() {
						next = next.Add(period)
						loopMissed++
					}
					tc.SleepUntil(next)
				}
			})
		}
	}

	err := ex.Run(res.Horizon)
	res.FinalTime = ex.Now()
	res.PeakWorkers = ex.PoolPeak()
	for _, th := range ex.Threads() {
		res.TotalConsumed += th.Consumed()
	}
	res.Missed = loopMissed
	for _, th := range periodic {
		res.Missed += th.MissedActivations()
	}
	ex.Shutdown()
	if err != nil {
		return nil, err
	}
	return res, nil
}
