package experiments

import (
	"fmt"
	"strings"

	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/sim"
)

// Cell is one (AART, AIR, ASR) triple of a table.
type Cell struct {
	AART float64 // average aperiodic response time, in time units
	AIR  float64 // aperiodic interruption ratio
	ASR  float64 // aperiodic service ratio
}

// SetKeys are the six generated sets, keyed "(density, stddev)" as in the
// paper's table headers.
var SetKeys = []string{"(1, 0)", "(2, 0)", "(3, 0)", "(1, 2)", "(2, 2)", "(3, 2)"}

// setTuple maps a key to its generation parameters.
var setTuples = map[string]struct{ density, sd float64 }{
	"(1, 0)": {1, 0}, "(2, 0)": {2, 0}, "(3, 0)": {3, 0},
	"(1, 2)": {1, 2}, "(2, 2)": {2, 2}, "(3, 2)": {3, 2},
}

// GenParams returns the generation parameters of one set: the paper's tuple
// (density, 3, sd, 4, 6, 10, 1983) observed for ten server periods.
func GenParams(key string) gen.Params {
	t, ok := setTuples[key]
	if !ok {
		panic("experiments: unknown set key " + key)
	}
	return gen.Params{
		TaskDensity:    t.density,
		AverageCost:    3,
		StdDeviation:   t.sd,
		ServerCapacity: 4,
		ServerPeriod:   6,
		NbGeneration:   10,
		Seed:           1983,
		HorizonPeriods: 10,
	}
}

// Paper reference values, straight from Tables 2-5.
var (
	PaperTable2 = map[string]Cell{
		"(1, 0)": {8.86, 0.00, 0.89}, "(2, 0)": {17.52, 0.00, 0.63}, "(3, 0)": {23.76, 0.00, 0.43},
		"(1, 2)": {10.24, 0.00, 0.85}, "(2, 2)": {20.58, 0.00, 0.50}, "(3, 2)": {25.50, 0.00, 0.35},
	}
	PaperTable3 = map[string]Cell{
		"(1, 0)": {12.24, 0.01, 0.75}, "(2, 0)": {20.80, 0.01, 0.44}, "(3, 0)": {25.05, 0.00, 0.30},
		"(1, 2)": {6.55, 0.17, 0.48}, "(2, 2)": {7.15, 0.24, 0.34}, "(3, 2)": {12.54, 0.29, 0.30},
	}
	PaperTable4 = map[string]Cell{
		"(1, 0)": {5.30, 0.00, 0.94}, "(2, 0)": {13.44, 0.00, 0.67}, "(3, 0)": {19.83, 0.00, 0.46},
		"(1, 2)": {6.36, 0.00, 0.94}, "(2, 2)": {17.40, 0.00, 0.56}, "(3, 2)": {21.71, 0.00, 0.38},
	}
	PaperTable5 = map[string]Cell{
		"(1, 0)": {6.90, 0.00, 0.84}, "(2, 0)": {14.55, 0.00, 0.56}, "(3, 0)": {20.58, 0.00, 0.39},
		"(1, 2)": {8.02, 0.14, 0.66}, "(2, 2)": {13.47, 0.26, 0.43}, "(3, 2)": {16.91, 0.27, 0.30},
	}
)

// Table is one regenerated measurement table.
type Table struct {
	ID       string          // paper table number ("2"-"5")
	Title    string          // paper caption
	Measured map[string]Cell // regenerated cells, keyed by SetKeys
	Paper    map[string]Cell // the paper's published values
}

// Mode selects simulation (ideal policy on RTSS) or execution (framework on
// the RTSJ emulation).
type Mode int

// Experiment modes.
const (
	Simulation Mode = iota
	Execution
)

// RunSet measures one generated set under a policy and mode, returning the
// per-set averages. The generated systems are independent work units: they
// are fanned across the harness worker pool, and the order-preserving
// aggregation keeps the result bit-identical to a serial run for any worker
// count.
func RunSet(key string, policy sim.ServerPolicy, mode Mode, model ExecModel) (metrics.SetSummary, error) {
	p := GenParams(key)
	systems := gen.Generate(p)
	horizon := p.Horizon()
	summaries, err := harness.Map(0, systems, func(i int, base sim.System) (metrics.Summary, error) {
		sys := gen.WithServer(base, p, policy, 100)
		var evs []metrics.Event
		switch mode {
		case Simulation:
			r, err := RunSimulationMetrics(sys, horizon)
			if err != nil {
				return metrics.Summary{}, err
			}
			evs = SimEvents(r)
			r.Recycle() // events copy everything the summary needs
		case Execution:
			m := model
			m.SysIndex = i
			o, err := RunExecutionMetrics(sys, m, horizon)
			if err != nil {
				return metrics.Summary{}, err
			}
			evs = ExecEvents(o)
		}
		return metrics.Summarize(evs), nil
	})
	if err != nil {
		return metrics.SetSummary{}, err
	}
	return metrics.Aggregate(summaries), nil
}

// tableSpec wires each table number to its policy, mode and references.
var tableSpecs = map[string]struct {
	title  string
	policy sim.ServerPolicy
	mode   Mode
	paper  map[string]Cell
}{
	"2": {"Measures on Polling Server simulations", sim.PollingServer, Simulation, PaperTable2},
	"3": {"Measures on Polling Server executions", sim.LimitedPollingServer, Execution, PaperTable3},
	"4": {"Measures on Deferrable Server simulations", sim.DeferrableServer, Simulation, PaperTable4},
	"5": {"Measures on Deferrable Server executions", sim.LimitedDeferrableServer, Execution, PaperTable5},
}

// RunTable regenerates one of the paper's Tables 2-5, fanning the six set
// cells across the harness worker pool.
func RunTable(id string) (*Table, error) {
	spec, ok := tableSpecs[id]
	if !ok {
		return nil, fmt.Errorf("experiments: no table %q (have 2-5)", id)
	}
	t := &Table{ID: id, Title: spec.title, Paper: spec.paper, Measured: make(map[string]Cell)}
	model := DefaultExecModel()
	cells, err := harness.Map(0, SetKeys, func(_ int, key string) (Cell, error) {
		s, err := RunSet(key, spec.policy, spec.mode, model)
		if err != nil {
			return Cell{}, fmt.Errorf("table %s, set %s: %v", id, key, err)
		}
		return Cell{AART: s.AART, AIR: s.AIR, ASR: s.ASR}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, key := range SetKeys {
		t.Measured[key] = cells[i]
	}
	return t, nil
}

// TableIDs lists the paper's measurement tables.
var TableIDs = []string{"2", "3", "4", "5"}

// RunTables regenerates several tables concurrently (the full evaluation
// when ids is TableIDs), preserving the requested order.
func RunTables(ids []string) ([]*Table, error) {
	return harness.Map(0, ids, func(_ int, id string) (*Table, error) {
		return RunTable(id)
	})
}

// Format renders the table with measured-vs-paper rows.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-10s %18s %18s %18s\n", "set", "AART (ours/paper)", "AIR (ours/paper)", "ASR (ours/paper)")
	for _, key := range SetKeys {
		m := t.Measured[key]
		p := t.Paper[key]
		fmt.Fprintf(&b, "%-10s %8.2f /%8.2f %8.2f /%8.2f %8.2f /%8.2f\n",
			key, m.AART, p.AART, m.AIR, p.AIR, m.ASR, p.ASR)
	}
	return b.String()
}
