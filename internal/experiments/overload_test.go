package experiments

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/faults"
)

// overloadConfigs is the full executive configuration matrix the overload
// fingerprints are pinned across: {channel, direct} kernels x
// {goroutine-per-thread, pooled, pooled+activation} dispatch modes.
var overloadConfigs = []struct {
	name       string
	kernel     exec.Kernel
	goroutines int
	activation bool
}{
	{"direct/thread", exec.DirectKernel, 0, false},
	{"direct/pooled", exec.DirectKernel, 8, false},
	{"direct/activation", exec.DirectKernel, 8, true},
	{"channel/thread", exec.ChannelKernel, 0, false},
	{"channel/pooled", exec.ChannelKernel, 8, false},
	{"channel/activation", exec.ChannelKernel, 8, true},
}

// Pinned fingerprints of the canonical scenario configurations
// (DefaultOverloadParams). A change here means the overload schedules
// changed — intentional changes must update all three together.
var overloadFingerprints = map[string]uint64{
	OverloadMissStorm:  0x1d0f49be3ec6e242,
	OverloadTransient:  0x1796b53e68a38488,
	OverloadSaturation: 0x4c411b6700b2d2fc,
}

// TestOverloadMatrix runs every scenario on every executive configuration
// and requires the pinned fingerprint, a clean invariant net, and the
// scenario-specific degradation properties on each.
func TestOverloadMatrix(t *testing.T) {
	for _, sc := range OverloadScenarios() {
		for _, cfg := range overloadConfigs {
			t.Run(sc+"/"+cfg.name, func(t *testing.T) {
				p := DefaultOverloadParams(sc)
				p.Kernel = cfg.kernel
				p.MaxGoroutines = cfg.goroutines
				p.PeriodicActivation = cfg.activation
				r, err := RunOverload(p)
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Violations) != 0 {
					t.Errorf("invariant violations: %v", r.Violations)
				}
				if r.Fingerprint != overloadFingerprints[sc] {
					t.Errorf("fingerprint %#x, pinned %#x", r.Fingerprint, overloadFingerprints[sc])
				}
				if r.PeriodicMisses != 0 {
					t.Errorf("hard periodics missed %d deadlines", r.PeriodicMisses)
				}
				if r.PeriodicReleases == 0 {
					t.Error("no periodic releases completed")
				}
				switch sc {
				case OverloadMissStorm:
					if r.Shed == 0 {
						t.Error("miss-storm shed nothing: not an overload")
					}
				case OverloadTransient:
					if r.Pending != 0 {
						t.Errorf("transient backlog did not drain: %d pending", r.Pending)
					}
					if r.Shed == 0 {
						t.Error("transient pulse shed nothing: not an overload")
					}
				case OverloadSaturation:
					if r.Served >= r.Released {
						t.Error("saturation sweep served everything: not saturated")
					}
				}
			})
		}
	}
}

// TestOverloadMissPolicies pins that each miss policy yields one behavior
// across the configurations that support it: the policy changes the
// schedule, the executive configuration must not.
func TestOverloadMissPolicies(t *testing.T) {
	for _, tc := range []struct {
		name       string
		miss       exec.MissPolicy
		activation bool // MissAbort requires activation mode
	}{
		{"continue-late", exec.MissContinueLate, false},
		{"abort", exec.MissAbort, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want uint64
			for i, cfg := range overloadConfigs {
				if tc.activation && !cfg.activation {
					continue
				}
				p := DefaultOverloadParams(OverloadMissStorm)
				p.Events = 120
				p.PeriodicMiss = tc.miss
				p.Kernel = cfg.kernel
				p.MaxGoroutines = cfg.goroutines
				p.PeriodicActivation = cfg.activation
				r, err := RunOverload(p)
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Violations) != 0 {
					t.Errorf("%s: invariant violations: %v", cfg.name, r.Violations)
				}
				if i == 0 || want == 0 {
					want = r.Fingerprint
					continue
				}
				if r.Fingerprint != want {
					t.Errorf("%s: fingerprint %#x, want %#x", cfg.name, r.Fingerprint, want)
				}
			}
		})
	}
}

// TestOverloadMissAbortNeedsActivation pins the configuration error.
func TestOverloadMissAbortNeedsActivation(t *testing.T) {
	p := DefaultOverloadParams(OverloadMissStorm)
	p.PeriodicMiss = exec.MissAbort
	if _, err := RunOverload(p); err == nil {
		t.Fatal("MissAbort without PeriodicActivation should be rejected")
	}
}

// TestOverloadFaultPlanFuzz layers seeded fault plans (drops, jitter,
// cost overruns) on the transient scenario and requires, for every seed:
// a clean invariant net, and a fingerprint independent of the executive
// configuration (the two extremes of the matrix are compared).
func TestOverloadFaultPlanFuzz(t *testing.T) {
	jitterMax, err := faults.Parse("seed=1 jitter=0.3:2.5 overrun=0.4:1.5 drop=0.1")
	if err != nil {
		t.Fatal(err)
	}
	sawInterrupted := false
	for seed := int64(1); seed <= 8; seed++ {
		plan := *jitterMax
		plan.Seed = seed
		run := func(cfg int) *OverloadResult {
			p := DefaultOverloadParams(OverloadTransient)
			p.Events = 120
			p.Faults = &plan
			p.Kernel = overloadConfigs[cfg].kernel
			p.MaxGoroutines = overloadConfigs[cfg].goroutines
			p.PeriodicActivation = overloadConfigs[cfg].activation
			r, err := RunOverload(p)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(r.Violations) != 0 {
				t.Errorf("seed %d: invariant violations: %v", seed, r.Violations)
			}
			return r
		}
		a, b := run(0), run(len(overloadConfigs)-1)
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("seed %d: fault schedule differs across configs: %#x vs %#x",
				seed, a.Fingerprint, b.Fingerprint)
		}
		if a.Interrupted > 0 {
			sawInterrupted = true
		}
	}
	if !sawInterrupted {
		t.Error("no seed produced an interrupted service: overruns not reaching the server")
	}
}
