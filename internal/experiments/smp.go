package experiments

import (
	"fmt"
	"sort"

	"rtsj/internal/exec"
	"rtsj/internal/rtime"
)

// SMP scenario family: the multiprocessor experiments the paper never
// touched, opened up by the executive's M-CPU generalization (exec smp.go).
// Each run schedules a deterministic synthetic periodic task set on M
// virtual CPUs under a migration policy (global / partitioned / clustered)
// and a scheduler (fixed-priority rate-monotonic, or EDF via the
// job-level dynamic-priority hook) and measures deadline misses, skipped
// releases and cross-CPU migrations. Everything is a pure function of the
// parameters, so fingerprints are pinned across the whole
// {kernel} x {dispatch mode} matrix by the SMP tests.

// SMP scenario names.
const (
	// SMPMissCurve sweeps per-CPU utilization and records the deadline
	// miss curve of the configured policy/scheduler — the global-vs-
	// partitioned EDF/FP comparison.
	SMPMissCurve = "miss-curve"
	// SMPMigration fixes the workload and sweeps the per-migration cache
	// penalty (exec.Options.MigrationCost) under the Global policy,
	// recording how misses grow as migrations get more expensive.
	SMPMigration = "migration-sweep"
)

// SMPScenarios lists the scenario family in canonical order.
func SMPScenarios() []string { return []string{SMPMissCurve, SMPMigration} }

// SMPParams configures one SMP run. Everything is derived
// deterministically from Seed, so two runs on any executive configuration
// schedule identically.
type SMPParams struct {
	// Scenario is one of the SMP* names.
	Scenario string
	// CPUs is the virtual CPU count (default 4).
	CPUs int
	// Policy selects the migration policy. The migration sweep requires a
	// policy that can migrate (it rejects Partitioned).
	Policy exec.MigrationPolicy
	// Sched selects the scheduler: "fp" (rate-monotonic fixed priorities)
	// or "edf" (job-level dynamic priorities by absolute deadline).
	Sched string
	// Tasks is the periodic task count (default 12).
	Tasks int
	// Seed drives periods, utilization shares and the affinity packing.
	Seed uint64
	// HorizonTU is the observation window in time units (default 400).
	HorizonTU float64
	// MigrationCost is the per-migration penalty charged to a mid-consume
	// thread resuming on a new CPU (the migration sweep overrides it per
	// point).
	MigrationCost rtime.Duration
	// Kernel, MaxGoroutines and PeriodicActivation configure the
	// executive, exactly as in ExecModel. PeriodicActivation runs the
	// tasks as activation entities (exec.SpawnPeriodicOn); otherwise they
	// are looping threads replicating the same kernel-call sequence.
	Kernel             exec.Kernel
	MaxGoroutines      int  // pooled-worker cap; 0 runs a goroutine per thread
	PeriodicActivation bool // activation-driven periodic dispatch
}

// DefaultSMPParams returns the canonical configuration of a scenario (the
// one whose fingerprint the SMP tests pin across the executive matrix).
func DefaultSMPParams(scenario string) SMPParams {
	return SMPParams{
		Scenario:  scenario,
		CPUs:      4,
		Tasks:     12,
		Seed:      2007,
		HorizonTU: 400,
	}
}

// SMPPoint is one point of a sweep: the swept parameter (per-CPU
// utilization for the miss curve, migration cost in time units for the
// migration sweep) and the counters measured there.
type SMPPoint struct {
	Param      float64 // utilization per CPU, or migration cost in tu
	Releases   int     // completed releases
	Misses     int     // completions past their implicit deadline
	Skips      int     // releases skipped by overruns
	Migrations int     // cross-CPU thread migrations
}

// SMPResult summarizes one SMP run (the whole sweep).
type SMPResult struct {
	Scenario string               // scenario name the run came from
	CPUs     int                  // virtual CPU count
	Policy   exec.MigrationPolicy // migration policy
	Sched    string               // "fp" or "edf"
	Points   []SMPPoint           // the sweep, in parameter order
	// Releases totals the sweep's completed releases.
	Releases int
	// Misses totals the sweep's deadline misses.
	Misses int
	// Skips totals the releases skipped by overruns.
	Skips int
	// Migrations totals the cross-CPU thread migrations.
	Migrations int
	// PeakWorkers is the pool high-water mark across the sweep (0 in
	// per-thread mode).
	PeakWorkers int
	// FinalTime is the virtual clock of the last point's run.
	FinalTime rtime.Time
	// Fingerprint hashes every completion (task, instant) in schedule
	// order plus the per-point counters: runs are schedule-identical iff
	// it matches.
	Fingerprint uint64
	// Violations lists executive invariant violations (empty on a healthy
	// run).
	Violations []string
}

// smpTask is one generated periodic task.
type smpTask struct {
	period rtime.Duration
	cost   rtime.Duration
	util   float64
	prio   int // rate-monotonic priority (fp); initial priority (edf)
	cpu    int // static affinity, -1 under Global
}

// smpPeriods is the period palette, in time units.
var smpPeriods = []float64{8, 10, 12, 16, 20, 24, 32, 40}

// genSMPTasks derives the task set for one sweep point: periods from the
// palette, utilization shares normalized to util*CPUs, rate-monotonic
// priorities, and (for the pinning policies) a worst-fit-decreasing
// affinity packing by utilization.
func genSMPTasks(p SMPParams, point int, util float64) []smpTask {
	rng := &stressRand{s: p.Seed ^ (uint64(point)+1)*0x9e3779b97f4a7c15}
	tasks := make([]smpTask, p.Tasks)
	totalW := 0.0
	weights := make([]float64, p.Tasks)
	for i := range tasks {
		tasks[i].period = rtime.TUs(smpPeriods[rng.next()%uint64(len(smpPeriods))])
		weights[i] = float64(1 + rng.next()%9)
		totalW += weights[i]
	}
	totalU := util * float64(p.CPUs)
	for i := range tasks {
		tasks[i].util = totalU * weights[i] / totalW
		cost := rtime.Duration(tasks[i].util * float64(tasks[i].period))
		if cost < rtime.TU/100 {
			cost = rtime.TU / 100
		}
		if cost > tasks[i].period {
			cost = tasks[i].period // a task can at most saturate its own CPU share
		}
		tasks[i].cost = cost
	}
	// Rate-monotonic: shorter period ranks higher; ties by index.
	order := make([]int, p.Tasks)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tasks[order[a]].period < tasks[order[b]].period })
	for rank, i := range order {
		tasks[i].prio = 2 + p.Tasks - rank
	}
	// Static affinity: worst-fit decreasing by utilization, deterministic.
	for i := range tasks {
		tasks[i].cpu = -1
	}
	if p.Policy != exec.Global {
		byUtil := make([]int, p.Tasks)
		for i := range byUtil {
			byUtil[i] = i
		}
		sort.SliceStable(byUtil, func(a, b int) bool { return tasks[byUtil[a]].util > tasks[byUtil[b]].util })
		load := make([]float64, p.CPUs)
		for _, i := range byUtil {
			best := 0
			for c := 1; c < p.CPUs; c++ {
				if load[c] < load[best] {
					best = c
				}
			}
			tasks[i].cpu = best
			load[best] += tasks[i].util
		}
	}
	return tasks
}

// RunSMP builds and runs the scenario sweep. The executive invariants are
// checked after every point; violations are collected, not fatal.
func RunSMP(p SMPParams) (*SMPResult, error) {
	if p.CPUs <= 0 {
		p.CPUs = 4
	}
	if p.Tasks <= 0 {
		p.Tasks = 12
	}
	if p.HorizonTU <= 0 {
		p.HorizonTU = 400
	}
	if p.Sched == "" {
		p.Sched = "fp"
	}
	if p.Sched != "fp" && p.Sched != "edf" {
		return nil, fmt.Errorf("smp: unknown scheduler %q (want fp or edf)", p.Sched)
	}
	res := &SMPResult{
		Scenario:    p.Scenario,
		CPUs:        p.CPUs,
		Policy:      p.Policy,
		Sched:       p.Sched,
		Fingerprint: 14695981039346656037,
	}
	var sweep []float64
	var costs []rtime.Duration
	switch p.Scenario {
	case SMPMissCurve:
		sweep = []float64{0.55, 0.70, 0.85, 1.00}
		for range sweep {
			costs = append(costs, p.MigrationCost)
		}
	case SMPMigration:
		if p.Policy == exec.Partitioned {
			return nil, fmt.Errorf("smp: the migration sweep needs a policy that can migrate (got partitioned)")
		}
		for _, tu := range []float64{0, 0.1, 0.25, 0.5, 1.0} {
			sweep = append(sweep, tu)
			costs = append(costs, rtime.TUs(tu))
		}
	default:
		return nil, fmt.Errorf("smp: unknown scenario %q (want %v)", p.Scenario, SMPScenarios())
	}
	for i, param := range sweep {
		util := param
		if p.Scenario == SMPMigration {
			util = 0.75
		}
		pt, err := runSMPOnce(p, res, i, util, costs[i])
		if err != nil {
			return nil, err
		}
		pt.Param = param
		res.Points = append(res.Points, pt)
		res.Releases += pt.Releases
		res.Misses += pt.Misses
		res.Skips += pt.Skips
		res.Migrations += pt.Migrations
	}
	for _, pt := range res.Points {
		res.Fingerprint = (res.Fingerprint ^ uint64(pt.Releases)) * 1099511628211
		res.Fingerprint = (res.Fingerprint ^ uint64(pt.Misses)) * 1099511628211
		res.Fingerprint = (res.Fingerprint ^ uint64(pt.Skips)) * 1099511628211
		res.Fingerprint = (res.Fingerprint ^ uint64(pt.Migrations)) * 1099511628211
	}
	if res.Releases == 0 {
		res.Violations = append(res.Violations, "no releases completed")
	}
	return res, nil
}

// runSMPOnce runs one sweep point on a fresh executive and folds its
// completions into the result fingerprint.
func runSMPOnce(p SMPParams, res *SMPResult, point int, util float64, cost rtime.Duration) (SMPPoint, error) {
	var pt SMPPoint
	tasks := genSMPTasks(p, point, util)
	ex := exec.NewWithOptions(nil, exec.Options{
		Kernel:        p.Kernel,
		MaxGoroutines: p.MaxGoroutines,
		CPUs:          p.CPUs,
		Migration:     p.Policy,
		MigrationCost: cost,
	})
	horizon := rtime.AtTU(p.HorizonTU)
	var ths []*exec.Thread
	for i, t := range tasks {
		i, t := i, t
		deadline := t.period // implicit deadline
		edfPrio := func(rel rtime.Time) int { return -int(int64(rel.Add(deadline))) }
		complete := func(tc *exec.TC, rel rtime.Time) {
			now := tc.Now()
			pt.Releases++
			if now > rel.Add(deadline) {
				pt.Misses++
			}
			res.Fingerprint = (res.Fingerprint ^ uint64(i)) * 1099511628211
			res.Fingerprint = (res.Fingerprint ^ uint64(now)) * 1099511628211
		}
		name := fmt.Sprintf("tau%d", i)
		if p.PeriodicActivation {
			spec := exec.ActivationSpec{Period: t.period}
			if p.Sched == "edf" {
				spec.Priority = edfPrio
			}
			th := ex.SpawnPeriodicOn(name, t.prio, t.cpu, spec, func(tc *exec.TC) {
				tc.Consume(t.cost)
				complete(tc, tc.Thread().CurrentRelease())
			})
			ths = append(ths, th)
			continue
		}
		prio := t.prio
		if p.Sched == "edf" {
			prio = edfPrio(0)
		}
		ex.SpawnOn(name, prio, 0, t.cpu, func(tc *exec.TC) {
			next := rtime.Time(0)
			for {
				tc.Consume(t.cost)
				complete(tc, next)
				// Advance the release exactly as the activation rearm
				// would: skip (and count) overrun releases, rebase the EDF
				// priority, then sleep — same kernel-call sequence, so the
				// two dispatch modes schedule identically.
				next = next.Add(t.period)
				for next < tc.Now() {
					next = next.Add(t.period)
					pt.Skips++
				}
				if p.Sched == "edf" {
					tc.SetPriority(edfPrio(next))
				}
				tc.SleepUntil(next)
			}
		})
	}
	err := ex.Run(horizon)
	if err == nil {
		if ierr := ex.CheckInvariants(); ierr != nil {
			res.Violations = append(res.Violations, ierr.Error())
		}
	}
	for _, th := range ths {
		pt.Skips += th.MissedActivations()
	}
	pt.Migrations = ex.Migrations()
	if pw := ex.PoolPeak(); pw > res.PeakWorkers {
		res.PeakWorkers = pw
	}
	res.FinalTime = ex.Now()
	ex.Shutdown()
	if err != nil {
		return pt, err
	}
	return pt, nil
}
