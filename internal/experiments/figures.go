package experiments

import (
	"fmt"

	"rtsj/internal/harness"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// ScenarioSpec is one of the paper's three worked examples (Table 1 task
// set; Figures 2-4).
type ScenarioSpec struct {
	Number     int     // scenario number (1-3); the figure is Number+1
	Fire1      float64 // e1 fire instant (tu)
	Fire2      float64 // e2 fire instant (tu)
	H2Declared float64 // h2's declared cost (scenario 3 declares 1)
	H2Actual   float64 // h2's actual cost (tu)
	HorizonTU  float64 // diagram window (tu)
	Caption    string  // one-line description, as printed by cmd/scenarios
}

// Scenarios are the paper's three scenarios.
var Scenarios = []ScenarioSpec{
	{1, 0, 6, 2, 2, 12, "e1 and e2 fired at 0 and 6: both handlers served immediately with full capacity"},
	{2, 2, 4, 2, 2, 18, "e1 and e2 fired at 2 and 4: h2 does not start at 8 (remaining capacity 1 < cost 2)"},
	{3, 2, 4, 1, 2, 18, "h2 declared with cost 1: starts at 8, interrupted at 9 when the capacity is consumed"},
}

// System builds the Table 1 workload for a scenario under the given server
// policy.
func (s ScenarioSpec) System(policy sim.ServerPolicy) sim.System {
	return sim.System{
		Periodics: []sim.PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(2), Priority: 2},
			{Name: "tau2", Period: rtime.TUs(6), Cost: rtime.TUs(1), Priority: 1},
		},
		Aperiodics: []sim.AperiodicJob{
			{Name: "h1", Release: rtime.AtTU(s.Fire1), Cost: rtime.TUs(2)},
			{Name: "h2", Release: rtime.AtTU(s.Fire2),
				Cost: rtime.TUs(s.H2Actual), Declared: rtime.TUs(s.H2Declared)},
		},
		Server: &sim.ServerSpec{Name: "PS", Policy: policy,
			Capacity: rtime.TUs(3), Period: rtime.TUs(6), Priority: 10},
	}
}

// Figure is one regenerated temporal diagram.
type Figure struct {
	Scenario ScenarioSpec // the scenario the figure renders
	// ExecGantt is the framework execution (what the paper's figure
	// shows); IdealGantt is the literature-policy simulation the paper
	// contrasts it with in the text.
	ExecGantt  string
	IdealGantt string   // the ideal literature-policy schedule
	Events     []string // per-event outcome lines
}

// RunFigures regenerates several figures concurrently, in the given order
// (RunFigures(1, 2, 3) is the paper's full set).
func RunFigures(ns ...int) ([]*Figure, error) {
	return harness.Map(0, ns, func(_ int, n int) (*Figure, error) {
		return RunFigure(n)
	})
}

// RunFigure regenerates the figure for scenario n (1-3). The framework
// execution and the ideal-policy simulation it is contrasted with are
// independent, so they run concurrently.
func RunFigure(n int) (*Figure, error) {
	if n < 1 || n > len(Scenarios) {
		return nil, fmt.Errorf("experiments: no scenario %d", n)
	}
	spec := Scenarios[n-1]
	horizon := rtime.AtTU(spec.HorizonTU)
	opts := trace.GanttOptions{Until: horizon}

	var (
		o      *ExecOutcome
		rIdeal *sim.Result
	)
	if _, err := harness.MapN(0, 2, func(i int) (struct{}, error) {
		var err error
		if i == 0 {
			o, err = RunExecution(spec.System(sim.LimitedPollingServer), ZeroExecModel(), horizon)
		} else {
			rIdeal, err = RunSimulation(spec.System(sim.PollingServer), horizon)
		}
		return struct{}{}, err
	}); err != nil {
		return nil, err
	}

	fig := &Figure{
		Scenario:   spec,
		ExecGantt:  o.Trace.Gantt(opts),
		IdealGantt: rIdeal.Trace.Gantt(opts),
	}
	for _, rec := range o.Records {
		switch {
		case rec.Served:
			fig.Events = append(fig.Events, fmt.Sprintf(
				"%s: released %v, served [%v, %v), response %v",
				rec.Handler, rec.Released.TUs(), rec.Started.TUs(), rec.Finished.TUs(),
				rec.Response()))
		case rec.Interrupted:
			fig.Events = append(fig.Events, fmt.Sprintf(
				"%s: released %v, started %v, INTERRUPTED at %v",
				rec.Handler, rec.Released.TUs(), rec.Started.TUs(), rec.Finished.TUs()))
		default:
			fig.Events = append(fig.Events, fmt.Sprintf(
				"%s: released %v, never served", rec.Handler, rec.Released.TUs()))
		}
	}
	return fig, nil
}
