package experiments

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/gen"
	"rtsj/internal/sim"
)

// smpKey identifies one pinned SMP configuration.
type smpKey struct {
	scenario string
	cpus     int
	policy   exec.MigrationPolicy
	sched    string
}

// smpFingerprints pins every canonical SMP sweep at M in {2, 4} across the
// whole executive matrix (overloadConfigs: {channel, direct} x
// {per-thread, pooled, pooled+activation}). A change here means the
// multiprocessor schedules changed — intentional changes must update the
// whole table together. Note clustered at M=2 equals global at M=2: one
// cluster of two CPUs is a single global domain.
var smpFingerprints = map[smpKey]uint64{
	{SMPMissCurve, 2, exec.Global, "fp"}:       0x1db12f35969e0720,
	{SMPMissCurve, 4, exec.Global, "fp"}:       0xb8f6d2f346271747,
	{SMPMissCurve, 2, exec.Global, "edf"}:      0x7a91006a7b19c3e6,
	{SMPMissCurve, 4, exec.Global, "edf"}:      0x14777958cb55be22,
	{SMPMissCurve, 2, exec.Partitioned, "fp"}:  0x67b4c9f46c03e472,
	{SMPMissCurve, 4, exec.Partitioned, "fp"}:  0xbfa5b0dfcdd92d30,
	{SMPMissCurve, 2, exec.Partitioned, "edf"}: 0xc316a4ff14ca4362,
	{SMPMissCurve, 4, exec.Partitioned, "edf"}: 0x87831818423084d6,
	{SMPMissCurve, 2, exec.Clustered, "fp"}:    0x1db12f35969e0720,
	{SMPMissCurve, 4, exec.Clustered, "fp"}:    0x44eec1d24ea3c017,
	{SMPMissCurve, 2, exec.Clustered, "edf"}:   0x7a91006a7b19c3e6,
	{SMPMissCurve, 4, exec.Clustered, "edf"}:   0x67556544a0571c36,
	{SMPMigration, 2, exec.Global, "fp"}:       0x7593d8b4d0168413,
	{SMPMigration, 4, exec.Global, "fp"}:       0x64d0d1e66c0b884a,
	{SMPMigration, 2, exec.Global, "edf"}:      0x2e3f9a0829fdfee8,
	{SMPMigration, 4, exec.Global, "edf"}:      0xdde28ae195211123,
	{SMPMigration, 2, exec.Clustered, "fp"}:    0x7593d8b4d0168413,
	{SMPMigration, 4, exec.Clustered, "fp"}:    0xc7ccf42faffd48,
	{SMPMigration, 2, exec.Clustered, "edf"}:   0x2e3f9a0829fdfee8,
	{SMPMigration, 4, exec.Clustered, "edf"}:   0x82131a557f29831,
}

// TestSMPMatrix runs every pinned SMP configuration on every executive
// configuration and requires the pinned fingerprint plus a clean invariant
// net on each — the fingerprint is a pure function of the parameters, not
// of the kernel, dispatch mode or worker count.
func TestSMPMatrix(t *testing.T) {
	for key, want := range smpFingerprints {
		for _, cfg := range overloadConfigs {
			key, want := key, want
			t.Run(testName(key, cfg.name), func(t *testing.T) {
				t.Parallel()
				p := DefaultSMPParams(key.scenario)
				p.CPUs = key.cpus
				p.Policy = key.policy
				p.Sched = key.sched
				p.Kernel = cfg.kernel
				p.MaxGoroutines = cfg.goroutines
				p.PeriodicActivation = cfg.activation
				r, err := RunSMP(p)
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Violations) != 0 {
					t.Errorf("invariant violations: %v", r.Violations)
				}
				if r.Fingerprint != want {
					t.Errorf("fingerprint %#x, pinned %#x", r.Fingerprint, want)
				}
				if r.Releases == 0 {
					t.Error("no releases completed")
				}
				if key.policy == exec.Partitioned && r.Migrations != 0 {
					t.Errorf("partitioned run migrated %d times", r.Migrations)
				}
			})
		}
	}
}

func testName(key smpKey, cfg string) string {
	return key.scenario + "/" + key.policy.String() + "/" + key.sched + "/m" +
		string(rune('0'+key.cpus)) + "/" + cfg
}

// TestSMPSchedulingProperties pins the qualitative scheduling results on
// the canonical miss-curve workload: EDF dominates fixed priorities under
// global scheduling, global EDF dominates partitioned EDF (the classic
// migration dividend), and higher utilization never lowers the miss count
// within a sweep.
func TestSMPSchedulingProperties(t *testing.T) {
	run := func(pol exec.MigrationPolicy, sched string) *SMPResult {
		p := DefaultSMPParams(SMPMissCurve)
		p.Policy = pol
		p.Sched = sched
		r, err := RunSMP(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	gfp, gedf, pedf := run(exec.Global, "fp"), run(exec.Global, "edf"), run(exec.Partitioned, "edf")
	if gedf.Misses >= gfp.Misses {
		t.Errorf("global EDF (%d misses) should beat global FP (%d)", gedf.Misses, gfp.Misses)
	}
	if gedf.Misses >= pedf.Misses {
		t.Errorf("global EDF (%d misses) should beat partitioned EDF (%d)", gedf.Misses, pedf.Misses)
	}
	for _, r := range []*SMPResult{gfp, gedf, pedf} {
		last := -1
		for _, pt := range r.Points {
			if pt.Misses < last {
				t.Errorf("%v/%s: miss curve not monotone: %v", r.Policy, r.Sched, r.Points)
			}
			last = pt.Misses
		}
	}
}

// TestSMPMigrationCostHurts pins that the migration sweep is not vacuous:
// charging more per migration strictly increases total demand, so the
// most expensive point must consume at least as much virtual time — and
// migrate no more — than the free one.
func TestSMPMigrationCostHurts(t *testing.T) {
	r, err := RunSMP(DefaultSMPParams(SMPMigration))
	if err != nil {
		t.Fatal(err)
	}
	free, costly := r.Points[0], r.Points[len(r.Points)-1]
	if free.Param != 0 {
		t.Fatalf("first sweep point should be free migration, got %v", free.Param)
	}
	if free.Migrations == 0 {
		t.Fatal("no migrations under global scheduling: sweep is vacuous")
	}
	if costly.Misses < free.Misses {
		t.Errorf("costly migration (%d misses) beat free migration (%d)", costly.Misses, free.Misses)
	}
}

// TestSMPParamValidation pins the configuration errors.
func TestSMPParamValidation(t *testing.T) {
	p := DefaultSMPParams(SMPMigration)
	p.Policy = exec.Partitioned
	if _, err := RunSMP(p); err == nil {
		t.Error("partitioned migration sweep should be rejected")
	}
	p = DefaultSMPParams(SMPMissCurve)
	p.Sched = "rr"
	if _, err := RunSMP(p); err == nil {
		t.Error("unknown scheduler should be rejected")
	}
	p = DefaultSMPParams("warp")
	if _, err := RunSMP(p); err == nil {
		t.Error("unknown scenario should be rejected")
	}
}

// TestExecutionTablesSMPM1 pins the tables' M=1 reduction: the calibrated
// execution platform run with an explicit CPUs=1 and a non-trivial
// migration policy produces byte-identical event records and trace
// segments to the plain uniprocessor model, so the paper's cmd/tables
// output cannot change under the SMP executive.
func TestExecutionTablesSMPM1(t *testing.T) {
	p := GenParams("(2, 2)")
	systems := gen.Generate(p)[:2]
	for i, base := range systems {
		sys := gen.WithServer(base, p, sim.LimitedPollingServer, 100)
		model := DefaultExecModel()
		model.SysIndex = i
		ref, err := RunExecution(sys, model, p.Horizon())
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []exec.MigrationPolicy{exec.Global, exec.Partitioned, exec.Clustered} {
			m1 := model
			m1.CPUs = 1
			m1.Migration = pol
			got, err := RunExecution(sys, m1, p.Horizon())
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Records) != len(ref.Records) {
				t.Fatalf("system %d/%v: record counts differ: %d vs %d",
					i, pol, len(got.Records), len(ref.Records))
			}
			for k := range got.Records {
				if *got.Records[k] != *ref.Records[k] {
					t.Fatalf("system %d/%v record %d differs:\nm1: %+v\nuni: %+v",
						i, pol, k, *got.Records[k], *ref.Records[k])
				}
			}
			if len(got.Trace.Segments) != len(ref.Trace.Segments) {
				t.Fatalf("system %d/%v: segment counts differ", i, pol)
			}
			for k := range got.Trace.Segments {
				if got.Trace.Segments[k] != ref.Trace.Segments[k] {
					t.Fatalf("system %d/%v segment %d differs", i, pol, k)
				}
			}
		}
	}
}

// TestStressSMPM1 pins the stress scenario's M=1 reduction and the
// multi-CPU smoke: CPUs=1 matches the uniprocessor fingerprint exactly,
// and CPUs=4 completes every job deterministically across kernels.
func TestStressSMPM1(t *testing.T) {
	p := DefaultStressParams()
	p.Jobs = 2000
	uni, err := RunStress(p)
	if err != nil {
		t.Fatal(err)
	}
	p.CPUs = 1
	m1, err := RunStress(p)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint != uni.Fingerprint {
		t.Fatalf("CPUs=1 stress fingerprint %#x differs from uniprocessor %#x",
			m1.Fingerprint, uni.Fingerprint)
	}
	p.CPUs = 4
	var last uint64
	for _, kernel := range []exec.Kernel{exec.DirectKernel, exec.ChannelKernel} {
		p.Kernel = kernel
		smp, err := RunStress(p)
		if err != nil {
			t.Fatal(err)
		}
		if smp.Completed != smp.Jobs {
			t.Fatalf("%v: 4-CPU stress completed %d of %d jobs", kernel, smp.Completed, smp.Jobs)
		}
		if last != 0 && smp.Fingerprint != last {
			t.Fatalf("4-CPU stress fingerprints differ across kernels: %#x vs %#x",
				smp.Fingerprint, last)
		}
		last = smp.Fingerprint
	}
	if last == uni.Fingerprint {
		t.Fatal("4-CPU stress schedule identical to uniprocessor: CPUs not taking effect")
	}
}
