package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rtsj/internal/obs"
)

// CampaignOptions is the observability configuration of a campaign run:
// an optional live progress stream and an optional stats registry. The
// zero value disables both, and every campaign entry point that takes
// options delegates from its plain variant with the zero value — results
// are bit-identical either way (progress goes to its own writer, stats
// are observational only).
type CampaignOptions struct {
	// Progress, when non-nil, receives live progress lines (systems done,
	// throughput, ETA, and — sharded — per-shard health) on every
	// ProgressInterval. cmd front-ends pass os.Stderr so progress never
	// mixes into result output.
	Progress io.Writer
	// ProgressInterval is the reporting period (default 1s).
	ProgressInterval time.Duration
	// Stats, when non-nil, is the registry campaign counters register
	// into: coordinator request/retry/in-flight instruments and per-shard
	// request-latency histograms (RunCampaignShardedOpts).
	Stats *obs.Registry
}

// progressTracker emits campaign progress lines on an interval from its
// own goroutine. All methods are nil-receiver-safe, so callers without a
// progress writer carry a nil tracker at zero cost.
type progressTracker struct {
	w        io.Writer
	label    string
	total    int64
	done     atomic.Int64
	health   func() string // optional extra status, e.g. shard health
	start    time.Time
	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// newProgress starts a tracker writing to w every interval, or returns
// nil (a valid no-op tracker) when w is nil. total is the work size in
// systems; label names the unit stream in each line.
func newProgress(w io.Writer, label string, total int64, interval time.Duration, health func() string) *progressTracker {
	if w == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	p := &progressTracker{
		w: w, label: label, total: total, health: health,
		start: time.Now(), stop: make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.report(false)
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// add counts n finished systems.
func (p *progressTracker) add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// report writes one progress line. final marks the closing summary line.
func (p *progressTracker) report(final bool) {
	done := p.done.Load()
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	line := fmt.Sprintf("%s: %d/%d systems (%.1f%%), %.0f systems/s",
		p.label, done, p.total, 100*float64(done)/float64(p.total), rate)
	if final {
		line += fmt.Sprintf(", done in %.1fs", elapsed)
	} else if rate > 0 && done < p.total {
		line += fmt.Sprintf(", ETA %.0fs", float64(p.total-done)/rate)
	}
	if p.health != nil {
		if h := p.health(); h != "" {
			line += ", " + h
		}
	}
	fmt.Fprintln(p.w, line)
}

// close stops the reporting goroutine and writes the final summary line.
// Idempotent and nil-safe.
func (p *progressTracker) close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.report(true)
	})
}
