package experiments

import (
	"runtime"
	"testing"

	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/sim"
)

// TestRunTableWorkerDeterminism requires bit-identical table cells for
// worker pools of 1, 4 and GOMAXPROCS: the harness must preserve the
// serial aggregation order no matter how work is interleaved.
func TestRunTableWorkerDeterminism(t *testing.T) {
	defer harness.SetWorkers(0)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, id := range TableIDs {
		var ref *Table
		for _, w := range workerCounts {
			harness.SetWorkers(w)
			got, err := RunTable(id)
			if err != nil {
				t.Fatalf("table %s workers=%d: %v", id, w, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			for _, key := range SetKeys {
				if got.Measured[key] != ref.Measured[key] {
					t.Errorf("table %s set %s: workers=%d cell %+v != workers=%d cell %+v",
						id, key, w, got.Measured[key], workerCounts[0], ref.Measured[key])
				}
			}
		}
	}
}

// TestPolicyMatrixWorkerDeterminism is the same guarantee for the flattened
// policy x set grid of the extension experiment.
func TestPolicyMatrixWorkerDeterminism(t *testing.T) {
	defer harness.SetWorkers(0)
	var ref *PolicyMatrix
	refWorkers := 0
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		harness.SetWorkers(w)
		got, err := RunPolicyMatrix()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref, refWorkers = got, w
			continue
		}
		for _, pol := range MatrixPolicies {
			for _, key := range SetKeys {
				if got.Cells[pol][key] != ref.Cells[pol][key] {
					t.Errorf("%v %s: workers=%d cell %+v != workers=%d cell %+v",
						pol, key, w, got.Cells[pol][key], refWorkers, ref.Cells[pol][key])
				}
			}
		}
	}
}

// TestRunSetMetricsFastPath checks the metrics-only simulation path against
// the trace-recording one: disabling the trace sink must not change any
// measured outcome.
func TestRunSetMetricsFastPath(t *testing.T) {
	p := GenParams("(2, 2)")
	horizon := p.Horizon()
	for i, base := range gen.Generate(p) {
		sys := gen.WithServer(base, p, sim.PollingServer, 100)
		rFast, err := RunSimulationMetrics(sys, horizon)
		if err != nil {
			t.Fatal(err)
		}
		rFull, err := RunSimulation(sys, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if rFast.Trace != nil {
			t.Fatal("metrics-only run recorded a trace")
		}
		fast := metrics.Summarize(SimEvents(rFast))
		full := metrics.Summarize(SimEvents(rFull))
		if fast != full {
			t.Fatalf("system %d: metrics-only %+v != traced %+v", i, fast, full)
		}
	}
}
