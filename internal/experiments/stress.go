package experiments

import (
	"fmt"

	"rtsj/internal/exec"
	"rtsj/internal/faults"
	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Large-N stress scenario: the workload the pooled executive
// (exec.Options.MaxGoroutines) opens up. Thousands to tens of thousands of
// one-shot sporadic job threads — each released once, consuming a short
// burst of CPU to completion — arrive on top of a small set of periodic
// background threads. In goroutine-per-thread mode such a system costs one
// OS-level goroutine per job; pooled, the goroutine count is bounded by the
// preemption depth (roughly the number of priority bands) because each
// worker is recycled as soon as its job completes.

// StressParams configures the scenario generator. Everything is derived
// deterministically from Seed, so two runs (on any executive
// configuration) schedule identically.
type StressParams struct {
	// Jobs is the number of one-shot sporadic job threads.
	Jobs int
	// Background is the number of periodic background threads. Each one
	// loops forever and therefore pins a pool worker; keep it small.
	Background int
	// PriorityBands spreads the sporadic jobs over this many priority
	// levels above the background load.
	PriorityBands int
	// Seed drives release times, costs and priorities.
	Seed uint64
	// Kernel and MaxGoroutines configure the executive (MaxGoroutines 0 =
	// goroutine-per-thread).
	Kernel        exec.Kernel
	MaxGoroutines int // pooled-worker cap; 0 runs a goroutine per thread
	// PeriodicActivation runs the background threads on the activation
	// dispatch path (exec.SpawnPeriodic) instead of parked loops: same
	// schedule, no pinned worker per background thread.
	PeriodicActivation bool
	// Faults optionally perturbs the sporadic jobs with a deterministic
	// fault plan: dropped jobs are never spawned, jittered jobs release
	// late, overrunning jobs consume more than their generated cost. The
	// fault schedule is a pure function of (plan seed, job index), so it
	// is identical on every executive configuration.
	Faults *faults.Plan
	// CPUs sets the executive's virtual CPU count (exec.Options.CPUs; 0
	// means 1) under the Global migration policy — the multi-CPU stress
	// smoke of cmd/stress -cpus.
	CPUs int
	// Sink optionally records the run's schedule (nil keeps the
	// metrics-only fast path). cmd/stress -perfetto passes a *trace.Trace
	// here to export the schedule.
	Sink trace.Sink
	// Stats optionally wires the executive's kernel counters
	// (exec.Options.Stats). Observational only — the fingerprint and all
	// result fields are identical with or without it.
	Stats *exec.Stats
}

// DefaultStressParams is the 10k-job configuration used by
// BenchmarkExecLargeN and cmd/stress.
func DefaultStressParams() StressParams {
	return StressParams{
		Jobs:          10_000,
		Background:    4,
		PriorityBands: 6,
		Seed:          2007,
		Kernel:        exec.DirectKernel,
		MaxGoroutines: 64,
	}
}

// StressResult summarizes one stress run.
type StressResult struct {
	Jobs          int            // sporadic jobs configured
	Completed     int            // sporadic jobs run to completion
	Dropped       int            // jobs removed by the fault plan (never spawned)
	BackgroundRun int            // background activations completed
	TotalConsumed rtime.Duration // virtual time consumed by sporadic jobs
	Horizon       rtime.Time     // configured stop instant
	FinalTime     rtime.Time     // virtual clock when the run stopped
	PeakWorkers   int            // pool goroutine high-water mark (0 in per-thread mode)
	Migrations    int            // cross-CPU migrations (0 unless CPUs > 1)
	// Fingerprint hashes every job completion (index, instant) in
	// schedule order: two runs are schedule-identical iff it matches.
	Fingerprint uint64
}

// stressRand is the same splitmix-style deterministic generator the
// executive tests use; the stress scenario must not depend on math/rand's
// version-dependent stream.
type stressRand struct{ s uint64 }

func (r *stressRand) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

// RunStress builds and runs the scenario. The horizon is sized so the
// generated demand fits (utilization ~0.8), and the run extends past the
// last release until the system quiesces.
func RunStress(p StressParams) (*StressResult, error) {
	if p.Jobs <= 0 {
		return nil, fmt.Errorf("stress: need at least one job (got %d)", p.Jobs)
	}
	if p.PriorityBands <= 0 {
		p.PriorityBands = 1
	}
	rng := &stressRand{s: p.Seed ^ 0x9e3779b97f4a7c15}
	ex := exec.NewWithOptions(p.Sink, exec.Options{Kernel: p.Kernel, MaxGoroutines: p.MaxGoroutines, CPUs: p.CPUs, Stats: p.Stats})
	res := &StressResult{Jobs: p.Jobs, Fingerprint: 14695981039346656037}

	// Release window: jobs at ~0.5tu average cost, spread to ~55% load,
	// leaving room for the background threads (~25%).
	window := rtime.Time(rtime.Duration(p.Jobs) * rtime.TU)
	res.Horizon = window + rtime.Time(rtime.TUs(float64(100)))

	for i := 0; i < p.Background; i++ {
		period := rtime.Duration(8+2*i) * rtime.TU
		cost := rtime.Duration(4+i) * rtime.TU / 8
		if p.PeriodicActivation {
			ex.SpawnPeriodic(fmt.Sprintf("bg%d", i), 1,
				exec.ActivationSpec{Period: period}, func(tc *exec.TC) {
					tc.Consume(cost)
					res.BackgroundRun++
				})
			continue
		}
		ex.Spawn(fmt.Sprintf("bg%d", i), 1, 0, func(tc *exec.TC) {
			next := rtime.Time(0)
			for {
				tc.Consume(cost)
				res.BackgroundRun++
				// Skip releases the slice overran past, mirroring the
				// activation path's (and WaitForNextPeriod's) overrun
				// semantics so both modes schedule identically.
				next = next.Add(period)
				for next < tc.Now() {
					next = next.Add(period)
				}
				tc.SleepUntil(next)
			}
		})
	}

	for i := 0; i < p.Jobs; i++ {
		i := i
		release := rtime.Time(rng.next() % uint64(window))
		cost := rtime.Duration(1+rng.next()%10) * rtime.TU / 10 // 0.1..1.0 tu
		prio := 2 + int(rng.next()%uint64(p.PriorityBands))
		// The fault draw happens after the generator draws, so a plan
		// never shifts the unfaulted jobs' parameters.
		f := p.Faults.JobFault(0, i)
		if f.Dropped {
			res.Dropped++
			continue
		}
		release = release.Add(f.Jitter)
		cost = f.Apply(cost)
		ex.Spawn(fmt.Sprintf("job%d", i), prio, release, func(tc *exec.TC) {
			tc.Consume(cost)
			res.Completed++
			res.Fingerprint = (res.Fingerprint ^ uint64(i)) * 1099511628211
			res.Fingerprint = (res.Fingerprint ^ uint64(tc.Now())) * 1099511628211
		})
	}

	err := ex.Run(res.Horizon)
	if err == nil {
		err = ex.CheckInvariants()
	}
	res.FinalTime = ex.Now()
	res.PeakWorkers = ex.PoolPeak()
	res.Migrations = ex.Migrations()
	for _, th := range ex.Threads() {
		res.TotalConsumed += th.Consumed()
	}
	ex.Shutdown()
	if err != nil {
		return nil, err
	}
	return res, nil
}
