// Package experiments regenerates every table and figure of the paper's
// evaluation: the three hand-built scenarios (Figures 2-4) and the four
// measurement tables (Tables 2-5) over the six generated system sets.
//
// It bridges the two engines: RunSimulation executes a workload on RTSS
// (internal/sim) under the *ideal* literature policies — the paper's
// "simulation" columns — and RunExecution realizes the same workload on the
// Task Server Framework over the RTSJ emulation — the paper's "execution"
// columns, including overheads and WCET noise.
package experiments

import (
	"fmt"

	"rtsj/internal/core"
	"rtsj/internal/exec"
	"rtsj/internal/faults"
	"rtsj/internal/gen"
	"rtsj/internal/metrics"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// ExecModel configures the execution platform: VM overheads and the WCET
// noise of handler bodies. On the paper's platform (the RTSJ reference
// implementation on a P4) both exist but are implicit; here they are
// explicit so the executions are reproducible.
type ExecModel struct {
	Overheads rtsjvm.Overheads // VM costs charged by the emulation
	// CostNoise inflates each handler's actual demand over its declared
	// cost: actual = declared * (1 + u*CostNoise), u uniform per event.
	// This models execution-time jitter (JIT, cache, GC pauses) and is
	// the main source of interruptions for heterogeneous workloads.
	CostNoise float64
	// NoiseSeed and SysIndex derive the deterministic per-event u.
	NoiseSeed int64
	SysIndex  int // system index within its set, for noise derivation
	// Kernel selects the executive implementation the VM runs on. The zero
	// value is exec.DirectKernel (the fast channel-free executive); the
	// kernel differential tests set exec.ChannelKernel to re-run Tables 3/5
	// workloads on the reference implementation.
	Kernel exec.Kernel
	// MaxGoroutines > 0 multiplexes executive thread bodies over a bounded
	// worker pool (exec.Options.MaxGoroutines) instead of one goroutine
	// per thread. Zero keeps the default goroutine-per-thread mode.
	MaxGoroutines int
	// PeriodicActivation lowers the workload's periodic threads onto the
	// executive's activation-driven dispatch path
	// (rtsjvm.VM.NewActivationThread): one body dispatch per release, no
	// goroutine between releases. Schedules are identical to the default
	// looping mode (pinned by TestExecutionTablesKernelIndependent); the
	// difference is goroutine footprint on periodic-heavy workloads.
	PeriodicActivation bool
	// Faults is the optional deterministic fault-injection plan. Aperiodic
	// faults (drops, jitter, cost overruns) are applied to the workload
	// itself before either engine would see it, so they are identical
	// across every kernel/pool/activation configuration; periodic
	// per-release overruns are drawn order-independently inside each body
	// (Plan.ActivationFault). Nil injects nothing and leaves every code
	// path byte-identical to a fault-free run.
	Faults *faults.Plan
	// PeriodicMiss selects the overrun policy of the workload's periodic
	// threads (exec.MissSkip default). exec.MissAbort requires
	// PeriodicActivation.
	PeriodicMiss exec.MissPolicy
	// ServerMaxPending bounds the server's pending queue: releases beyond
	// it are shed at registration (graceful degradation under overload).
	// Zero keeps the unbounded queue.
	ServerMaxPending int
	// ClampServerCapacity pins the server capacity at zero after an
	// over-budget service instead of letting it go transiently negative
	// (core.TaskServer.SetClampCapacity); the excursion stays observable
	// through CapacityFloor.
	ClampServerCapacity bool
	// CPUs sets the executive's virtual CPU count (exec.Options.CPUs; 0
	// means 1). The paper's experiments are uniprocessor; M=1 runs the same
	// code path byte-identically (TestExecutionTablesSMPM1), and M>1 opens
	// the SMP scenario family (RunSMP).
	CPUs int
	// Migration selects the migration policy when CPUs > 1
	// (exec.Options.Migration).
	Migration exec.MigrationPolicy
	// Stats optionally wires the executive's kernel counters
	// (exec.Options.Stats). Observational only: table and matrix outputs
	// are byte-identical with or without it (pinned by the obs
	// differential test).
	Stats *exec.Stats
}

// execOptions maps the model onto the executive configuration.
func (m ExecModel) execOptions() exec.Options {
	return exec.Options{Kernel: m.Kernel, MaxGoroutines: m.MaxGoroutines, CPUs: m.CPUs, Migration: m.Migration, Stats: m.Stats}
}

// DefaultExecModel is the calibrated execution platform used for Tables 3
// and 5 (see EXPERIMENTS.md for the calibration rationale).
func DefaultExecModel() ExecModel {
	return ExecModel{
		Overheads: rtsjvm.Overheads{
			TimerFire:    rtime.TUs(0.15),
			EventRelease: rtime.TUs(0.05),
			Dispatch:     rtime.TUs(0.01),
			Interrupt:    rtime.TUs(0.05),
		},
		CostNoise: 0.12,
		NoiseSeed: 2007,
	}
}

// ZeroExecModel is a cost-free execution platform: with it, the framework
// must reproduce the limited-policy simulation exactly (differential
// testing).
func ZeroExecModel() ExecModel { return ExecModel{} }

// ExecOutcome is the result of one framework execution. Trace is nil for
// metrics-only executions (RunExecutionMetrics).
type ExecOutcome struct {
	Trace   *trace.Trace        // recorded schedule; nil for metrics-only runs
	Records []*core.EventRecord // per-event service records, release order
	Server  core.TaskServer     // the server instance that ran the handlers
}

// RunSimulation simulates sys on RTSS under its configured server policy,
// recording a full trace (for the figures and Gantt comparisons).
func RunSimulation(sys sim.System, horizon rtime.Time) (*sim.Result, error) {
	tr := trace.New()
	return sim.Run(sys, sim.NewFP(sys, tr), horizon, tr)
}

// RunSimulationMetrics simulates sys without recording a trace: the fast
// path for table and matrix cells, which only consume job outcomes. The
// engine skips all trace bookkeeping and label formatting.
func RunSimulationMetrics(sys sim.System, horizon rtime.Time) (*sim.Result, error) {
	return sim.Run(sys, sim.NewFP(sys, nil), horizon, nil)
}

// RunExecution realizes sys on the Task Server Framework and runs it on
// the RTSJ emulation until the horizon, recording a full trace. The
// system's server policy selects the framework server: polling policies map
// to PollingTaskServer, deferrable ones to DeferrableTaskServer (executions
// are inherently "limited": that is the point of the paper).
func RunExecution(sys sim.System, m ExecModel, horizon rtime.Time) (*ExecOutcome, error) {
	return runExecutionSink(sys, m, horizon, trace.New())
}

// RunExecutionMetrics executes sys without recording a trace: the fast path
// for table and matrix cells, which only consume the servers' event
// records. The executive then skips all trace bookkeeping — no per-slice
// segment appends, no entity registration — mirroring RunSimulationMetrics
// on the simulation side.
func RunExecutionMetrics(sys sim.System, m ExecModel, horizon rtime.Time) (*ExecOutcome, error) {
	return runExecutionSink(sys, m, horizon, trace.Nop{})
}

func runExecutionSink(sys sim.System, m ExecModel, horizon rtime.Time, sink trace.Sink) (*ExecOutcome, error) {
	if sys.Server == nil {
		return nil, fmt.Errorf("experiments: execution needs a task server")
	}
	if m.PeriodicMiss == exec.MissAbort && !m.PeriodicActivation {
		return nil, fmt.Errorf("experiments: the abort miss policy requires PeriodicActivation")
	}
	// Workload-level faults rewrite the system up front, independent of the
	// executive configuration: the same plan yields the same faulted
	// workload on every kernel/pool/activation combination.
	sys = m.Faults.ApplySystem(sys, m.SysIndex)
	vm := rtsjvm.NewVMSink(sink, m.Overheads, m.execOptions())
	spec := *sys.Server
	name := spec.Name
	params := core.NewTaskServerParameters(0, spec.Capacity, spec.Period)
	var srv core.TaskServer
	switch spec.Policy {
	case sim.PollingServer, sim.LimitedPollingServer:
		if name == "" {
			name = "PS"
		}
		srv = core.NewPollingTaskServer(vm, name, spec.Priority, params)
	case sim.DeferrableServer, sim.LimitedDeferrableServer:
		if name == "" {
			name = "DS"
		}
		srv = core.NewDeferrableTaskServer(vm, name, spec.Priority, params)
	case sim.SporadicServer:
		if name == "" {
			name = "SS"
		}
		srv = core.NewSporadicTaskServer(vm, name, spec.Priority, params)
	default:
		return nil, fmt.Errorf("experiments: policy %v has no framework implementation", spec.Policy)
	}
	if m.ServerMaxPending > 0 {
		srv.SetMaxPending(m.ServerMaxPending)
	}
	if m.ClampServerCapacity {
		srv.SetClampCapacity(true)
	}

	for i := range sys.Periodics {
		taskIdx := i
		pt := sys.Periodics[i]
		pp := &rtsjvm.PeriodicParameters{Start: pt.Offset, Period: pt.Period, Cost: pt.Cost, Deadline: pt.Deadline, Miss: m.PeriodicMiss}
		// periodicCost draws the per-release demand: the declared cost,
		// inflated by the fault plan's order-independent per-release overrun
		// when one is active. CurrentRelease identifies the release in both
		// emulation modes, so the same plan produces the same demand
		// sequence everywhere.
		periodicCost := func(r *rtsjvm.RTC) rtime.Duration {
			if !m.Faults.Enabled() {
				return pt.Cost
			}
			rel := int(rtime.DivFloor(r.CurrentRelease().Sub(pt.Offset), pt.Period))
			f := m.Faults.ActivationFault(m.SysIndex, taskIdx, rel)
			return f.Apply(pt.Cost)
		}
		if m.PeriodicActivation {
			vm.NewActivationThread(pt.Name, pt.Priority, pp, func(r *rtsjvm.RTC) {
				r.Consume(periodicCost(r))
			})
		} else {
			vm.NewRealtimeThread(pt.Name, pt.Priority, pp, func(r *rtsjvm.RTC) {
				for {
					r.Consume(periodicCost(r))
					r.WaitForNextPeriod()
				}
			})
		}
	}

	for i := range sys.Aperiodics {
		a := sys.Aperiodics[i]
		jn := a.Name
		if jn == "" {
			jn = sim.AperiodicName(i) // must match the sim engine's naming
		}
		actual := a.Cost
		if m.CostNoise > 0 {
			u := gen.Noise(m.NoiseSeed, m.SysIndex, i)
			actual = rtime.Duration(float64(actual) * (1 + u*m.CostNoise))
		}
		h := core.NewServableAsyncEventHandler(srv, jn, a.DeclaredCost()).SetActualCost(actual)
		e := core.NewServableAsyncEvent(vm, jn)
		e.AddServableHandler(h)
		vm.NewOneShotTimer(a.Release, e, jn).Start()
	}

	err := vm.Run(horizon)
	if err == nil {
		// The scheduler invariant net runs after every execution: one
		// O(threads) pass, so the whole experiment corpus doubles as its
		// test bed.
		if ierr := vm.Exec().CheckInvariants(); ierr != nil {
			err = fmt.Errorf("experiments: post-run invariants: %w", ierr)
		}
	}
	vm.Shutdown()
	if err != nil {
		return nil, err
	}
	return &ExecOutcome{Trace: vm.Trace(), Records: srv.Records(), Server: srv}, nil
}

// SimEvents extracts the metric events of a simulation.
func SimEvents(r *sim.Result) []metrics.Event { return metrics.FromSimResult(r) }

// ExecEvents extracts the metric events of an execution.
func ExecEvents(o *ExecOutcome) []metrics.Event { return metrics.FromRecords(o.Records) }
