package experiments

import (
	"math/rand"
	"testing"

	"rtsj/internal/analysis"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// Response-time analysis must upper-bound what the simulator measures: for
// random synchronous task sets that RTA declares feasible, the simulated
// schedule has no deadline misses and every job's measured response time
// stays at or below the analytical bound (which is tight at the critical
// instant, t=0 for synchronous sets).
func TestRTABoundsSimulatedResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	validated := 0
	for trial := 0; trial < 200 && validated < 60; trial++ {
		n := 2 + rng.Intn(4)
		var tasks []analysis.Task
		for i := 0; i < n; i++ {
			period := 4 + rng.Intn(30)
			tasks = append(tasks, analysis.Task{
				Name: "p" + string(rune('1'+i)),
				C:    rtime.TUs(0.5 + rng.Float64()*float64(period)/4),
				T:    rtime.TUs(float64(period)),
			})
		}
		// Strict rate-monotonic priorities (ties broken by index): the
		// tightness assertion below needs distinct priorities, because the
		// RTA treats equal-priority tasks as mutual interference — a safe
		// over-approximation that the FIFO tie-breaking simulator does not
		// fully realize.
		for i := range tasks {
			prio := 0
			for k, o := range tasks {
				if o.T > tasks[i].T || (o.T == tasks[i].T && k > i) {
					prio++
				}
			}
			tasks[i].Prio = prio
		}
		rs := analysis.ResponseTimes(tasks)
		feasible := true
		bounds := map[string]rtime.Duration{}
		for _, r := range rs {
			feasible = feasible && r.Feasible
			bounds[r.Task.Name] = r.R
		}
		if !feasible {
			continue
		}
		validated++

		var sys sim.System
		for _, task := range tasks {
			sys.Periodics = append(sys.Periodics, sim.PeriodicTask{
				Name: task.Name, Period: task.T, Cost: task.C, Priority: task.Prio,
			})
		}
		hp, ok := analysis.Hyperperiod(tasks)
		horizon := rtime.Time(hp)
		if !ok || horizon > rtime.AtTU(2000) {
			horizon = rtime.AtTU(2000)
		}
		tr := trace.New()
		r, err := sim.Run(sys, sim.NewFP(sys, tr), horizon, tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.PeriodicMisses != 0 {
			t.Fatalf("trial %d: RTA-feasible set missed %d deadlines", trial, r.PeriodicMisses)
		}
		for _, j := range r.Periodics() {
			if !j.Finished {
				continue
			}
			if got := j.ResponseTime(); got > bounds[j.Entity] {
				t.Fatalf("trial %d: %s measured response %v above RTA bound %v",
					trial, j.Name(), got, bounds[j.Entity])
			}
		}
		// Tightness at the critical instant: the first job of the
		// lowest-priority task attains exactly its RTA bound.
		lowest := sys.Periodics[0]
		for _, p := range sys.Periodics {
			if p.Priority < lowest.Priority {
				lowest = p
			}
		}
		for _, j := range r.Periodics() {
			if j.Entity == lowest.Name && j.Release == 0 && j.Finished {
				if got := j.ResponseTime(); got != bounds[lowest.Name] {
					t.Fatalf("trial %d: %s first response %v != RTA bound %v (should be tight)",
						trial, lowest.Name, got, bounds[lowest.Name])
				}
			}
		}
	}
	if validated < 20 {
		t.Fatalf("only %d feasible sets validated", validated)
	}
}
