package experiments

import (
	"strings"
	"testing"

	"rtsj/internal/metrics"
	"rtsj/internal/sim"
)

// runAllSets computes the four table cells for every set, once, shared by
// the shape assertions below.
type allResults struct {
	psSim, psExec, dsSim, dsExec map[string]metrics.SetSummary
}

var cached *allResults

func allSets(t *testing.T) *allResults {
	t.Helper()
	if cached != nil {
		return cached
	}
	model := DefaultExecModel()
	r := &allResults{
		psSim:  map[string]metrics.SetSummary{},
		psExec: map[string]metrics.SetSummary{},
		dsSim:  map[string]metrics.SetSummary{},
		dsExec: map[string]metrics.SetSummary{},
	}
	for _, key := range SetKeys {
		var err error
		if r.psSim[key], err = RunSet(key, sim.PollingServer, Simulation, model); err != nil {
			t.Fatal(err)
		}
		if r.psExec[key], err = RunSet(key, sim.LimitedPollingServer, Execution, model); err != nil {
			t.Fatal(err)
		}
		if r.dsSim[key], err = RunSet(key, sim.DeferrableServer, Simulation, model); err != nil {
			t.Fatal(err)
		}
		if r.dsExec[key], err = RunSet(key, sim.LimitedDeferrableServer, Execution, model); err != nil {
			t.Fatal(err)
		}
	}
	cached = r
	return r
}

// Paper shape: the Deferrable Server "offers better average response times
// than the PS" in every simulation and in the homogeneous executions. For
// heterogeneous executions the paper's own tables show the opposite (Table
// 3 vs Table 5: 6.55 < 8.02, 7.15 < 13.47, 12.54 < 16.91): the PS interrupts
// and drops more large events, leaving only cheap, fast ones in its served
// average. Both directions must be reproduced.
func TestShapeDSBeatsPSOnResponseTime(t *testing.T) {
	r := allSets(t)
	for _, key := range SetKeys {
		if r.dsSim[key].AART >= r.psSim[key].AART {
			t.Errorf("sim %s: DS AART %.2f >= PS AART %.2f", key, r.dsSim[key].AART, r.psSim[key].AART)
		}
	}
	for _, key := range []string{"(1, 0)", "(2, 0)", "(3, 0)"} {
		if r.dsExec[key].AART >= r.psExec[key].AART {
			t.Errorf("homogeneous exec %s: DS AART %.2f >= PS AART %.2f",
				key, r.dsExec[key].AART, r.psExec[key].AART)
		}
	}
	for _, key := range []string{"(1, 2)", "(2, 2)", "(3, 2)"} {
		if r.psExec[key].AART > r.dsExec[key].AART {
			t.Errorf("heterogeneous exec %s: PS AART %.2f > DS AART %.2f (paper's crossover lost)",
				key, r.psExec[key].AART, r.dsExec[key].AART)
		}
	}
}

// Paper shape: the DS serves at least as large a fraction as the PS (its
// ability to serve an event as soon as it is released).
func TestShapeDSServesMore(t *testing.T) {
	r := allSets(t)
	for _, key := range SetKeys {
		if r.dsSim[key].ASR < r.psSim[key].ASR-1e-9 {
			t.Errorf("sim %s: DS ASR %.2f < PS ASR %.2f", key, r.dsSim[key].ASR, r.psSim[key].ASR)
		}
	}
}

// Paper shape: execution served ratios are below the simulation ones (the
// non-resumable-thread limitation plus interruptions), for both policies.
func TestShapeExecutionServesLessThanSimulation(t *testing.T) {
	r := allSets(t)
	for _, key := range SetKeys {
		if r.psExec[key].ASR > r.psSim[key].ASR+0.02 {
			t.Errorf("PS %s: exec ASR %.2f > sim ASR %.2f", key, r.psExec[key].ASR, r.psSim[key].ASR)
		}
		if r.dsExec[key].ASR > r.dsSim[key].ASR+0.02 {
			t.Errorf("DS %s: exec ASR %.2f > sim ASR %.2f", key, r.dsExec[key].ASR, r.dsSim[key].ASR)
		}
	}
}

// Paper shape: simulations never interrupt (ideal policies, no overhead);
// executions of homogeneous sets have near-zero interrupted ratios (the
// capacity 4 vs cost 3 slack absorbs the overhead) while heterogeneous sets
// show substantial ones.
func TestShapeInterruptedRatios(t *testing.T) {
	r := allSets(t)
	for _, key := range SetKeys {
		if r.psSim[key].AIR != 0 || r.dsSim[key].AIR != 0 {
			t.Errorf("%s: simulations must not interrupt", key)
		}
	}
	for _, key := range []string{"(1, 0)", "(2, 0)", "(3, 0)"} {
		if r.psExec[key].AIR > 0.03 {
			t.Errorf("homogeneous %s: PS exec AIR %.3f, want ~0", key, r.psExec[key].AIR)
		}
		if r.dsExec[key].AIR > 0.05 {
			t.Errorf("homogeneous %s: DS exec AIR %.3f, want ~0", key, r.dsExec[key].AIR)
		}
	}
	for _, key := range []string{"(2, 2)", "(3, 2)"} {
		if r.psExec[key].AIR < 0.04 {
			t.Errorf("heterogeneous %s: PS exec AIR %.3f, want substantial", key, r.psExec[key].AIR)
		}
		if r.dsExec[key].AIR < 0.04 {
			t.Errorf("heterogeneous %s: DS exec AIR %.3f, want substantial", key, r.dsExec[key].AIR)
		}
	}
}

// Paper shape: on loaded heterogeneous sets the execution response times
// are *better* than the simulation ones — large events are interrupted or
// never started while cheap events are served early, and only served events
// enter the average. ("These two facts lead to a far better average
// response time of served events in the execution than in the simulation.")
// At density 1 the paper's own DS numbers go the other way (Table 5 vs 4:
// 8.02 > 6.36), so the assertion covers the loaded sets.
func TestShapeHeterogeneousExecutionAARTBelowSimulation(t *testing.T) {
	r := allSets(t)
	for _, key := range []string{"(1, 2)", "(2, 2)", "(3, 2)"} {
		if r.psExec[key].AART >= r.psSim[key].AART {
			t.Errorf("PS %s: exec AART %.2f >= sim AART %.2f", key, r.psExec[key].AART, r.psSim[key].AART)
		}
	}
	for _, key := range []string{"(2, 2)", "(3, 2)"} {
		if r.dsExec[key].AART >= r.dsSim[key].AART {
			t.Errorf("DS %s: exec AART %.2f >= sim AART %.2f", key, r.dsExec[key].AART, r.dsSim[key].AART)
		}
	}
}

// Paper shape: response times grow and served ratios shrink with the load
// (density 1 -> 2 -> 3), in every configuration.
func TestShapeMonotoneInDensity(t *testing.T) {
	r := allSets(t)
	chains := [][]string{
		{"(1, 0)", "(2, 0)", "(3, 0)"},
		{"(1, 2)", "(2, 2)", "(3, 2)"},
	}
	for name, m := range map[string]map[string]metrics.SetSummary{
		"psSim": r.psSim, "dsSim": r.dsSim, "psExec": r.psExec, "dsExec": r.dsExec,
	} {
		for _, chain := range chains {
			for i := 1; i < len(chain); i++ {
				if m[chain[i]].AART < m[chain[i-1]].AART-1.0 {
					t.Errorf("%s: AART not growing along %v: %.2f then %.2f",
						name, chain, m[chain[i-1]].AART, m[chain[i]].AART)
				}
				if m[chain[i]].ASR > m[chain[i-1]].ASR+0.02 {
					t.Errorf("%s: ASR not shrinking along %v: %.2f then %.2f",
						name, chain, m[chain[i-1]].ASR, m[chain[i]].ASR)
				}
			}
		}
	}
}

// The simulated served ratios must land near the paper's values: they
// depend only on the ideal policies and the workload statistics, not on any
// platform model.
func TestSimulationASRNearPaper(t *testing.T) {
	r := allSets(t)
	for _, key := range SetKeys {
		if d := r.psSim[key].ASR - PaperTable2[key].ASR; d > 0.12 || d < -0.12 {
			t.Errorf("PS sim %s: ASR %.2f vs paper %.2f", key, r.psSim[key].ASR, PaperTable2[key].ASR)
		}
		if d := r.dsSim[key].ASR - PaperTable4[key].ASR; d > 0.15 || d < -0.15 {
			t.Errorf("DS sim %s: ASR %.2f vs paper %.2f", key, r.dsSim[key].ASR, PaperTable4[key].ASR)
		}
	}
}

func TestRunTableFormats(t *testing.T) {
	tab, err := RunTable("2")
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	for _, key := range SetKeys {
		if !strings.Contains(out, key) {
			t.Errorf("formatted table missing %s:\n%s", key, out)
		}
	}
	if _, err := RunTable("9"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestRunFigureScenarios(t *testing.T) {
	for n := 1; n <= 3; n++ {
		fig, err := RunFigure(n)
		if err != nil {
			t.Fatal(err)
		}
		if fig.ExecGantt == "" || fig.IdealGantt == "" || len(fig.Events) != 2 {
			t.Errorf("figure %d incomplete", n)
		}
	}
	if _, err := RunFigure(7); err == nil {
		t.Error("unknown scenario accepted")
	}
	// Scenario 3 must report the interruption at t=9.
	fig, _ := RunFigure(3)
	joined := strings.Join(fig.Events, "\n")
	if !strings.Contains(joined, "INTERRUPTED at 9") {
		t.Errorf("scenario 3 events missing interruption:\n%s", joined)
	}
}
