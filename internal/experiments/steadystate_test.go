package experiments

import (
	"runtime"
	"testing"

	"rtsj/internal/exec"
)

// TestSteadyStateBoundedGoroutines is the acceptance test of the
// activation-driven executive: a 10k-periodic-entity steady-state workload
// runs with the goroutine count bounded by the pool size, never
// approaching one goroutine per entity (which is exactly what looping mode
// would cost).
func TestSteadyStateBoundedGoroutines(t *testing.T) {
	p := DefaultSteadyStateParams()
	if testing.Short() {
		p.Entities = 2000
	}
	before := runtime.NumGoroutine()
	res, err := RunPeriodicSteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Activations < p.Entities {
		t.Fatalf("only %d activations for %d entities (each should release at least once)",
			res.Activations, p.Entities)
	}
	if res.PeakWorkers == 0 || res.PeakWorkers > p.MaxGoroutines {
		t.Errorf("pool peaked at %d workers, want 1..%d (O(pool size), not O(entities))",
			res.PeakWorkers, p.MaxGoroutines)
	}
	if after := runtime.NumGoroutine(); after > before+p.MaxGoroutines+16 {
		t.Errorf("goroutines after run: before=%d after=%d (not bounded by the pool)", before, after)
	}
	if res.Missed != 0 {
		t.Errorf("%d releases missed at utilization %g; scenario is oversubscribed", res.Missed, p.Utilization)
	}
	if res.FinalTime != res.Horizon {
		t.Errorf("steady-state run ended at %v, want the %v horizon", res.FinalTime.TUs(), res.Horizon.TUs())
	}
}

// TestSteadyStateSchedulesIdenticalAcrossConfigs differential-tests the
// steady-state scenario over the full executive matrix: loop and
// activation formulations, both kernels, per-thread and pooled — the
// activation fingerprint must match the looping reference exactly.
func TestSteadyStateSchedulesIdenticalAcrossConfigs(t *testing.T) {
	p := DefaultSteadyStateParams()
	p.Entities = 400 // keep the per-thread and channel runs fast
	p.HorizonTU = 300
	if testing.Short() {
		p.Entities = 120
	}
	ref := p
	ref.Kernel = exec.ChannelKernel
	ref.MaxGoroutines = 0
	ref.Activation = false
	want, err := RunPeriodicSteadyState(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want.Activations == 0 {
		t.Fatal("reference run scheduled no activations")
	}
	for _, cfg := range []struct {
		name          string
		kernel        exec.Kernel
		maxGoroutines int
		activation    bool
	}{
		{"direct-loop", exec.DirectKernel, 0, false},
		{"direct-loop-pooled", exec.DirectKernel, 8, false},
		{"channel-activation", exec.ChannelKernel, 8, true},
		{"direct-activation", exec.DirectKernel, 8, true},
		{"direct-activation-perthread", exec.DirectKernel, 0, true},
	} {
		q := p
		q.Kernel = cfg.kernel
		q.MaxGoroutines = cfg.maxGoroutines
		q.Activation = cfg.activation
		got, err := RunPeriodicSteadyState(q)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if got.Fingerprint != want.Fingerprint || got.Activations != want.Activations ||
			got.TotalConsumed != want.TotalConsumed || got.Missed != want.Missed {
			t.Errorf("%s diverged from loop reference: fingerprint %x vs %x, activations %d vs %d, consumed %v vs %v, missed %d vs %d",
				cfg.name, got.Fingerprint, want.Fingerprint, got.Activations, want.Activations,
				got.TotalConsumed, want.TotalConsumed, got.Missed, want.Missed)
		}
	}
}

func TestSteadyStateParamValidation(t *testing.T) {
	for _, p := range []SteadyStateParams{
		{Entities: 0, HorizonTU: 10, Utilization: 0.5},
		{Entities: 1, HorizonTU: 10, Utilization: 0},
		{Entities: 1, HorizonTU: 10, Utilization: 1.5},
		{Entities: 1, HorizonTU: 0, Utilization: 0.5},
	} {
		if _, err := RunPeriodicSteadyState(p); err == nil {
			t.Errorf("params %+v: expected an error", p)
		}
	}
}
