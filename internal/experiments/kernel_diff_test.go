package experiments

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/gen"
	"rtsj/internal/sim"
)

// The execution tables (3 and 5) must not depend on which executive kernel
// realizes the framework: the direct (channel-free) kernel and the channel
// reference kernel must produce identical per-event records — and therefore
// byte-identical table output — over the paper's generated system sets.
func TestExecutionTablesKernelIndependent(t *testing.T) {
	for _, cfg := range []struct {
		key    string
		policy sim.ServerPolicy
	}{
		{"(2, 2)", sim.LimitedPollingServer},
		{"(1, 0)", sim.LimitedDeferrableServer},
	} {
		cfg := cfg
		t.Run(cfg.key+"/"+cfg.policy.String(), func(t *testing.T) {
			p := GenParams(cfg.key)
			systems := gen.Generate(p)
			if len(systems) > 3 {
				systems = systems[:3] // three systems per set keep the test fast
			}
			model := DefaultExecModel()
			for i, base := range systems {
				sys := gen.WithServer(base, p, cfg.policy, 100)
				model.SysIndex = i

				direct := model
				direct.Kernel = exec.DirectKernel
				channel := model
				channel.Kernel = exec.ChannelKernel

				do, err := RunExecution(sys, direct, p.Horizon())
				if err != nil {
					t.Fatal(err)
				}
				co, err := RunExecution(sys, channel, p.Horizon())
				if err != nil {
					t.Fatal(err)
				}
				if len(do.Records) == 0 {
					t.Fatalf("system %d: no event records; workload is empty", i)
				}
				if len(do.Records) != len(co.Records) {
					t.Fatalf("system %d: record counts differ: direct=%d channel=%d",
						i, len(do.Records), len(co.Records))
				}
				for k := range do.Records {
					d, c := do.Records[k], co.Records[k]
					if *d != *c {
						t.Fatalf("system %d record %d differs:\ndirect:  %+v\nchannel: %+v", i, k, *d, *c)
					}
				}
				a, b := co.Trace, do.Trace
				if len(a.Segments) != len(b.Segments) {
					t.Fatalf("system %d: segment counts differ: channel=%d direct=%d",
						i, len(a.Segments), len(b.Segments))
				}
				for k := range a.Segments {
					if a.Segments[k] != b.Segments[k] {
						t.Fatalf("system %d segment %d differs: channel=%+v direct=%+v",
							i, k, a.Segments[k], b.Segments[k])
					}
				}
			}
		})
	}
}
