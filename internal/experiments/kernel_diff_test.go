package experiments

import (
	"testing"

	"rtsj/internal/exec"
	"rtsj/internal/gen"
	"rtsj/internal/sim"
)

// The execution tables (3 and 5) must not depend on which executive kernel
// realizes the framework: the direct (channel-free) kernel and the channel
// reference kernel must produce identical per-event records — and therefore
// byte-identical table output — over the paper's generated system sets.
func TestExecutionTablesKernelIndependent(t *testing.T) {
	for _, cfg := range []struct {
		key    string
		policy sim.ServerPolicy
	}{
		{"(2, 2)", sim.LimitedPollingServer},
		{"(1, 0)", sim.LimitedDeferrableServer},
	} {
		cfg := cfg
		t.Run(cfg.key+"/"+cfg.policy.String(), func(t *testing.T) {
			p := GenParams(cfg.key)
			systems := gen.Generate(p)
			if len(systems) > 3 {
				systems = systems[:3] // three systems per set keep the test fast
			}
			model := DefaultExecModel()
			// The full executive configuration matrix: both kernels, each
			// in goroutine-per-thread, pooled and activation mode (the
			// latter lowering periodic threads onto the activation dispatch
			// path). channel/per-thread is the reference.
			variants := []struct {
				name          string
				kernel        exec.Kernel
				maxGoroutines int
				activation    bool
			}{
				{"channel", exec.ChannelKernel, 0, false},
				{"direct", exec.DirectKernel, 0, false},
				{"channel-pooled", exec.ChannelKernel, 4, false},
				{"direct-pooled", exec.DirectKernel, 4, false},
				{"channel-activation", exec.ChannelKernel, 4, true},
				{"direct-activation", exec.DirectKernel, 4, true},
				{"direct-activation-perthread", exec.DirectKernel, 0, true},
			}
			for i, base := range systems {
				sys := gen.WithServer(base, p, cfg.policy, 100)
				model.SysIndex = i

				ref := model
				ref.Kernel = variants[0].kernel
				co, err := RunExecution(sys, ref, p.Horizon())
				if err != nil {
					t.Fatal(err)
				}
				if len(co.Records) == 0 {
					t.Fatalf("system %d: no event records; workload is empty", i)
				}
				for _, v := range variants[1:] {
					m := model
					m.Kernel = v.kernel
					m.MaxGoroutines = v.maxGoroutines
					m.PeriodicActivation = v.activation
					do, err := RunExecution(sys, m, p.Horizon())
					if err != nil {
						t.Fatal(err)
					}
					if len(do.Records) != len(co.Records) {
						t.Fatalf("system %d: record counts differ: %s=%d channel=%d",
							i, v.name, len(do.Records), len(co.Records))
					}
					for k := range do.Records {
						d, c := do.Records[k], co.Records[k]
						if *d != *c {
							t.Fatalf("system %d record %d differs:\n%s: %+v\nchannel: %+v", i, k, v.name, *d, *c)
						}
					}
					a, b := co.Trace, do.Trace
					if len(a.Segments) != len(b.Segments) {
						t.Fatalf("system %d: segment counts differ: channel=%d %s=%d",
							i, len(a.Segments), v.name, len(b.Segments))
					}
					for k := range a.Segments {
						if a.Segments[k] != b.Segments[k] {
							t.Fatalf("system %d segment %d differs: channel=%+v %s=%+v",
								i, k, a.Segments[k], v.name, b.Segments[k])
						}
					}
				}

				// The metrics-only fast path (trace.Nop through the whole
				// executive) must not perturb the schedule: identical event
				// records, no trace.
				mo, err := RunExecutionMetrics(sys, model, p.Horizon())
				if err != nil {
					t.Fatal(err)
				}
				if mo.Trace != nil {
					t.Fatalf("system %d: metrics-only execution carries a trace", i)
				}
				if len(mo.Records) != len(co.Records) {
					t.Fatalf("system %d: metrics-only record count differs: %d vs %d",
						i, len(mo.Records), len(co.Records))
				}
				for k := range mo.Records {
					if *mo.Records[k] != *co.Records[k] {
						t.Fatalf("system %d record %d differs on the metrics-only path:\nnop:   %+v\ntrace: %+v",
							i, k, *mo.Records[k], *co.Records[k])
					}
				}
			}
		})
	}
}
