package experiments

import (
	"strings"
	"testing"

	"rtsj/internal/sim"
)

func TestPolicyMatrixOrdering(t *testing.T) {
	m, err := RunPolicyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range SetKeys {
		bg := m.Cells[sim.NoServer][key]
		slack := m.Cells[sim.SlackStealer][key]
		ps := m.Cells[sim.PollingServer][key]
		ds := m.Cells[sim.DeferrableServer][key]
		pe := m.Cells[sim.PriorityExchange][key]

		// The paper's sets carry no periodic tasks, so background and
		// slack stealing both serve with the whole processor: identical.
		if bg.AART != slack.AART || bg.ASR != slack.ASR {
			t.Errorf("%s: BG %v vs SLACK %v should coincide without periodics", key, bg, slack)
		}
		// Bandwidth-limited policies: DS reacts immediately, PE preserves
		// capacity between polls, PS discards it — so AART orders
		// DS <= PE <= PS.
		if !(ds.AART <= pe.AART+1e-9 && pe.AART <= ps.AART+1e-9) {
			t.Errorf("%s: want DS<=PE<=PS, got DS=%.2f PE=%.2f PS=%.2f",
				key, ds.AART, pe.AART, ps.AART)
		}
		// Nothing serves more than the unconstrained baseline.
		for _, pol := range MatrixPolicies {
			if m.Cells[pol][key].ASR > bg.ASR+1e-9 {
				t.Errorf("%s: %v ASR %.2f above the BG baseline %.2f",
					key, pol, m.Cells[pol][key].ASR, bg.ASR)
			}
		}
	}
	out := m.Format()
	for _, pol := range MatrixPolicies {
		if !strings.Contains(out, pol.String()) {
			t.Errorf("format missing %v:\n%s", pol, out)
		}
	}
}
