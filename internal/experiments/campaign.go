package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/sim"
)

// CampaignSpec describes a utilization-sweep schedulability campaign: the
// paper's table methodology scaled to populations the tables never reach.
// Each sweep point is a task density; at every point, Systems systems are
// generated index-addressably (gen.SystemAt), simulated metrics-only under
// Policy, and folded into one mergeable metrics.Partial through the
// streaming reducer — no per-system record outlives its fold, so campaign
// memory is O(worker pool), not O(Systems).
//
// The spec is the wire unit of the shard protocol (it travels inside every
// ShardRequest), so all fields are plain serializable values.
type CampaignSpec struct {
	// Points are the swept task densities (average aperiodic events per
	// server period), in sweep order.
	Points []float64 `json:"points"`
	// Systems is the number of generated systems per sweep point.
	Systems int `json:"systems"`
	// Seed roots every per-index generation stream (gen.SystemAt).
	Seed int64 `json:"seed"`
	// AverageCost and StdDeviation parameterize event costs, in time units.
	AverageCost  float64 `json:"average_cost"`
	StdDeviation float64 `json:"std_deviation"` // cost standard deviation, in time units
	// ServerCapacity and ServerPeriod define the task server, in time units.
	ServerCapacity float64 `json:"server_capacity"`
	ServerPeriod   float64 `json:"server_period"` // server replenishment period, in time units
	// HorizonPeriods is the observation window in server periods.
	HorizonPeriods int `json:"horizon_periods"`
	// Policy is the simulated server policy (campaigns run on the RTSS
	// simulation engine; executions are two orders of magnitude costlier
	// and stay with the tables).
	Policy sim.ServerPolicy `json:"policy"`
}

// DefaultCampaignSpec is the stock utilization sweep: eight density points
// carrying the aperiodic load from 25% to 200% of a DS(4, 6) server's
// bandwidth, crossing saturation mid-sweep.
func DefaultCampaignSpec() CampaignSpec {
	return CampaignSpec{
		Points:         []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4},
		Systems:        1000,
		Seed:           1983,
		AverageCost:    3,
		StdDeviation:   2,
		ServerCapacity: 4,
		ServerPeriod:   6,
		HorizonPeriods: 10,
		Policy:         sim.DeferrableServer,
	}
}

// Validate reports structural problems in the spec, including values that
// arrived over the shard protocol from an untrusted coordinator.
func (s CampaignSpec) Validate() error {
	if len(s.Points) == 0 {
		return fmt.Errorf("campaign: no sweep points")
	}
	for i, d := range s.Points {
		if d <= 0 {
			return fmt.Errorf("campaign: point %d: density %v must be positive", i, d)
		}
	}
	if s.Systems <= 0 {
		return fmt.Errorf("campaign: systems per point must be positive (got %d)", s.Systems)
	}
	if s.ServerCapacity <= 0 || s.ServerPeriod <= 0 {
		return fmt.Errorf("campaign: server capacity and period must be positive")
	}
	if s.HorizonPeriods <= 0 {
		return fmt.Errorf("campaign: horizon must be positive (got %d periods)", s.HorizonPeriods)
	}
	if s.Policy < sim.NoServer || s.Policy > sim.SlackStealer {
		return fmt.Errorf("campaign: unknown server policy %d", int(s.Policy))
	}
	return nil
}

// pointParams maps one sweep point onto generation parameters. The seed is
// offset by the point index so every sweep point draws an independent
// population: without it, point k and point k' would reuse the same
// per-index streams and correlate their arrival noise.
func (s CampaignSpec) pointParams(point int) gen.Params {
	return gen.Params{
		TaskDensity:    s.Points[point],
		AverageCost:    s.AverageCost,
		StdDeviation:   s.StdDeviation,
		ServerCapacity: s.ServerCapacity,
		ServerPeriod:   s.ServerPeriod,
		Seed:           s.Seed + int64(point)*0x1000003,
		HorizonPeriods: s.HorizonPeriods,
	}
}

// Load returns the aperiodic load a density point offers, as a fraction of
// the processor (density x average cost / server period).
func (s CampaignSpec) Load(density float64) float64 {
	return density * s.AverageCost / s.ServerPeriod
}

// RunCampaignRange computes the partial metrics of systems [lo, hi) of one
// sweep point: the shard work unit. Systems stream through the harness
// reducer — generated from their index, simulated metrics-only, folded
// into the partial in index order, and recycled — so the range's memory
// footprint is independent of hi-lo.
func RunCampaignRange(s CampaignSpec, point, lo, hi int) (metrics.Partial, error) {
	return runCampaignRange(s, point, lo, hi, nil)
}

// runCampaignRange is RunCampaignRange with an optional per-system tick,
// called from the fold (serialized, in index order) as each system's
// partial merges — the progress reporter's feed. A nil tick costs one
// branch per fold.
func runCampaignRange(s CampaignSpec, point, lo, hi int, tick func()) (metrics.Partial, error) {
	if err := s.Validate(); err != nil {
		return metrics.Partial{}, err
	}
	if point < 0 || point >= len(s.Points) {
		return metrics.Partial{}, fmt.Errorf("campaign: point %d out of range [0, %d)", point, len(s.Points))
	}
	if lo < 0 || hi > s.Systems || lo > hi {
		return metrics.Partial{}, fmt.Errorf("campaign: range [%d, %d) outside [0, %d)", lo, hi, s.Systems)
	}
	p := s.pointParams(point)
	horizon := p.Horizon()
	return harness.ReduceN(0, hi-lo, metrics.Partial{},
		func(k int) (metrics.Partial, error) {
			sys := gen.WithServer(gen.SystemAt(p, lo+k), p, s.Policy, 100)
			r, err := RunSimulationMetrics(sys, horizon)
			if err != nil {
				return metrics.Partial{}, err
			}
			var one metrics.Partial
			one.AddSystem(SimEvents(r))
			r.Recycle()
			return one, nil
		},
		func(acc metrics.Partial, _ int, one metrics.Partial) metrics.Partial {
			acc.Merge(one)
			if tick != nil {
				tick()
			}
			return acc
		})
}

// CurvePoint is one measured point of a schedulability curve.
type CurvePoint struct {
	// Density is the swept task density of this point.
	Density float64 `json:"density"`
	// Load is the offered aperiodic load fraction (CampaignSpec.Load).
	Load float64 `json:"load"`
	// Partial holds the point's merged metrics.
	Partial metrics.Partial `json:"partial"`
}

// Curve is a completed campaign: the schedulability curve over the sweep.
type Curve struct {
	// Spec is the campaign that produced the curve.
	Spec CampaignSpec `json:"spec"`
	// Points are the measured sweep points, in spec order.
	Points []CurvePoint `json:"points"`
}

// RunCampaign runs the whole campaign in-process through the streaming
// reducer. The resulting curve is bit-identical to any sharded run of the
// same spec (see RunCampaignSharded): partials are integer tallies with an
// exact merge, and each point's fold order is fixed by system index.
func RunCampaign(s CampaignSpec) (*Curve, error) {
	return RunCampaignOpts(s, CampaignOptions{})
}

// RunCampaignOpts is RunCampaign with observability options: a live
// progress stream and/or a stats registry (campaign.systems counts folded
// systems). The curve is bit-identical to RunCampaign's — options only
// add observation, never behavior.
func RunCampaignOpts(s CampaignSpec, opts CampaignOptions) (*Curve, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	systems := opts.Stats.Counter("campaign.systems")
	prog := newProgress(opts.Progress, "campaign", int64(len(s.Points)*s.Systems), opts.ProgressInterval, nil)
	defer prog.close()
	tick := func() {
		prog.add(1)
		systems.Inc()
	}
	c := &Curve{Spec: s, Points: make([]CurvePoint, 0, len(s.Points))}
	for i, d := range s.Points {
		part, err := runCampaignRange(s, i, 0, s.Systems, tick)
		if err != nil {
			return nil, fmt.Errorf("campaign point %d (density %v): %w", i, d, err)
		}
		c.Points = append(c.Points, CurvePoint{Density: d, Load: s.Load(d), Partial: part})
	}
	return c, nil
}

// FormatCSV renders the curve as a machine-readable CSV table for
// plotting: a header row, then one row per sweep point. Ratios and
// response times are derived views of the integer partials, printed with
// enough digits to round-trip; the raw tallies ride along so downstream
// tools can re-derive or re-merge.
func (c *Curve) FormatCSV() string {
	var b strings.Builder
	b.WriteString("density,load,schedulable,served,mean_resp_tu,max_resp_tu,systems,events,served_events,interrupted,shed,resp_ticks\n")
	for _, pt := range c.Points {
		p := pt.Partial
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d\n",
			pt.Density, pt.Load, p.ScheduleRatio(), p.ServedRatio(),
			p.MeanResponseTU(), p.MaxResponseTU(),
			p.Systems, p.Events, p.Served, p.Interrupted, p.Shed, p.RespTicks)
	}
	return b.String()
}

// FormatJSON renders the curve as indented JSON: the full spec and the
// per-point integer partials, the lossless machine-readable form (the
// derived ratios are recomputable from the tallies).
func (c *Curve) FormatJSON() (string, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", fmt.Errorf("campaign: encode curve: %w", err)
	}
	return string(data) + "\n", nil
}

// Format renders the curve as the campaign's canonical text table. The
// differential tests and the CI smoke compare this output byte for byte
// across in-process, 1-shard and N-shard runs, so it must stay a pure
// function of the curve.
func (c *Curve) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign: policy %v, %d systems/point, seed %d, server (%g, %g), horizon %d periods\n",
		c.Spec.Policy, c.Spec.Systems, c.Spec.Seed,
		c.Spec.ServerCapacity, c.Spec.ServerPeriod, c.Spec.HorizonPeriods)
	fmt.Fprintf(&b, "%-8s %-6s %-12s %-8s %-13s %-12s %s\n",
		"density", "load", "schedulable", "served", "mean-resp-tu", "max-resp-tu", "events")
	for _, pt := range c.Points {
		p := pt.Partial
		fmt.Fprintf(&b, "%-8.2f %-6.2f %-12.4f %-8.4f %-13.4f %-12.4f %d\n",
			pt.Density, pt.Load, p.ScheduleRatio(), p.ServedRatio(),
			p.MeanResponseTU(), p.MaxResponseTU(), p.Events)
	}
	return b.String()
}
