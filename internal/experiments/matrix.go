package experiments

import (
	"fmt"
	"strings"

	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/sim"
)

// PolicyMatrix is an extension experiment beyond the paper's Tables 2-5:
// the same six generated sets, simulated under every aperiodic servicing
// policy RTSS implements — the two the paper evaluates (PS, DS), the three
// families it cites (SS, PE, slack stealing) and the background baseline.
type PolicyMatrix struct {
	Policies []sim.ServerPolicy // row order of the matrix
	// Cells[policy][set] holds the per-set summary.
	Cells map[sim.ServerPolicy]map[string]metrics.SetSummary
}

// MatrixPolicies is the default policy list of the extension experiment.
var MatrixPolicies = []sim.ServerPolicy{
	sim.NoServer, sim.PollingServer, sim.DeferrableServer,
	sim.SporadicServer, sim.PriorityExchange, sim.SlackStealer,
}

// RunPolicyMatrix simulates every set under every policy. The generated
// systems carry no periodic tasks (the paper's sets), so the slack stealer
// sees unbounded slack and acts as an immediate-service upper baseline
// while background acts as a FIFO baseline.
//
// The policy x set grid is flattened into independent cells and fanned
// across the harness worker pool; each cell additionally parallelizes its
// ten generated systems. Cell placement is by index, so the resulting
// matrix is bit-identical for any worker count.
func RunPolicyMatrix() (*PolicyMatrix, error) {
	m := &PolicyMatrix{
		Policies: MatrixPolicies,
		Cells:    make(map[sim.ServerPolicy]map[string]metrics.SetSummary),
	}
	nSets := len(SetKeys)
	cells, err := harness.MapN(0, len(m.Policies)*nSets, func(i int) (metrics.SetSummary, error) {
		pol, key := m.Policies[i/nSets], SetKeys[i%nSets]
		p := GenParams(key)
		systems := gen.Generate(p)
		horizon := p.Horizon()
		summaries, err := harness.Map(0, systems, func(_ int, base sim.System) (metrics.Summary, error) {
			sys := gen.WithServer(base, p, pol, 100)
			r, err := RunSimulationMetrics(sys, horizon)
			if err != nil {
				return metrics.Summary{}, fmt.Errorf("matrix %v %s: %v", pol, key, err)
			}
			return metrics.Summarize(SimEvents(r)), nil
		})
		if err != nil {
			return metrics.SetSummary{}, err
		}
		return metrics.Aggregate(summaries), nil
	})
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		pol, key := m.Policies[i/nSets], SetKeys[i%nSets]
		if m.Cells[pol] == nil {
			m.Cells[pol] = make(map[string]metrics.SetSummary)
		}
		m.Cells[pol][key] = cell
	}
	return m, nil
}

// Format renders the matrix (AART and ASR per cell).
func (m *PolicyMatrix) Format() string {
	var b strings.Builder
	b.WriteString("Extension experiment: every servicing policy on the paper's six sets\n")
	b.WriteString("cell = AART (tu) / ASR\n\n")
	fmt.Fprintf(&b, "%-7s", "policy")
	for _, key := range SetKeys {
		fmt.Fprintf(&b, " %13s", key)
	}
	b.WriteByte('\n')
	for _, pol := range m.Policies {
		fmt.Fprintf(&b, "%-7s", pol)
		for _, key := range SetKeys {
			c := m.Cells[pol][key]
			fmt.Fprintf(&b, " %7.2f/%5.2f", c.AART, c.ASR)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
