package experiments

import (
	"fmt"

	"rtsj/internal/core"
	"rtsj/internal/exec"
	"rtsj/internal/faults"
	"rtsj/internal/gen"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// Overload scenario family: deterministic workloads that drive a task
// server past its capacity and observe the graceful-degradation machinery
// — load shedding (core.TaskServer.SetMaxPending), capacity clamping, and
// the hard periodic set that must keep every deadline while the server
// sheds. Each run threads a faults.Checker through the execution
// (conservation of released vs. completed vs. shed work, monotone
// counters, non-negative capacity) and checks the executive's scheduler
// invariants afterwards; the per-run fingerprint is pinned across the full
// kernel/pool/activation configuration matrix by the overload tests.

// Overload scenario names.
const (
	// OverloadMissStorm floods a deferrable server with MMPP arrival
	// bursts far beyond its capacity: the server sheds, the hard periodic
	// set keeps every deadline.
	OverloadMissStorm = "miss-storm"
	// OverloadTransient applies a short, strong overload pulse and then
	// lets the system recover: the pending backlog must drain to zero
	// inside the drain margin.
	OverloadTransient = "transient"
	// OverloadSaturation sweeps a polling server's capacity under a fixed
	// Poisson load, folding the whole sweep into one fingerprint.
	OverloadSaturation = "saturation"
)

// OverloadScenarios lists the scenario family in canonical order.
func OverloadScenarios() []string {
	return []string{OverloadMissStorm, OverloadTransient, OverloadSaturation}
}

// OverloadParams configures one overload run. Everything is derived
// deterministically from Seed, so two runs on any executive configuration
// schedule identically.
type OverloadParams struct {
	// Scenario is one of the Overload* names.
	Scenario string
	// Events is the approximate number of aperiodic events (scales the
	// horizon); 0 uses the scenario default.
	Events int
	// Seed drives arrivals and costs; 0 uses the scenario default.
	Seed int64
	// Faults optionally injects workload-level faults (drops, jitter,
	// cost overruns) on top of the scenario's own overload.
	Faults *faults.Plan
	// MaxPending bounds the server's pending queue; 0 uses the scenario
	// default. Releases beyond the bound are shed.
	MaxPending int
	// PeriodicMiss selects the hard periodics' overrun policy
	// (exec.MissSkip default; exec.MissAbort needs PeriodicActivation).
	PeriodicMiss exec.MissPolicy
	// Kernel, MaxGoroutines and PeriodicActivation configure the
	// executive, exactly as in ExecModel.
	Kernel             exec.Kernel
	MaxGoroutines      int  // pooled-worker cap; 0 runs a goroutine per thread
	PeriodicActivation bool // activation-driven periodic dispatch
}

// DefaultOverloadParams returns the canonical configuration of a scenario
// (the one whose fingerprint the tests pin).
func DefaultOverloadParams(scenario string) OverloadParams {
	p := OverloadParams{Scenario: scenario, Seed: 2007}
	switch scenario {
	case OverloadTransient:
		p.Events = 200
		p.MaxPending = 32
	case OverloadSaturation:
		p.Events = 150
		p.MaxPending = 16
	default: // miss-storm
		p.Events = 400
		p.MaxPending = 64
	}
	return p
}

// OverloadResult summarizes one overload run (for the saturation sweep,
// the whole sweep).
type OverloadResult struct {
	Scenario string // scenario name the run came from
	// Events is the number of generated aperiodic events; Released counts
	// the ones that actually reached a server before the horizon.
	Events   int
	Released int // events that reached a server before the horizon
	// Served/Interrupted/Rejected/Shed/Pending partition the released
	// events (the conservation invariant).
	Served      int
	Interrupted int // interrupted mid-service at capacity exhaustion
	Rejected    int // refused admission on declared cost
	Shed        int // dropped at release by the bounded pending queue
	Pending     int // still queued when the horizon closed
	// PeriodicReleases and PeriodicMisses cover the hard periodic set;
	// the miss-storm scenario requires PeriodicMisses == 0.
	PeriodicReleases int
	PeriodicMisses   int // hard periodic deadline misses
	// CapacityFloor is the deepest pre-clamp capacity excursion observed.
	CapacityFloor rtime.Duration
	// PeakWorkers is the pool high-water mark (0 in per-thread mode).
	PeakWorkers int
	// FinalTime is the virtual clock when the run stopped.
	FinalTime rtime.Time
	// Fingerprint hashes periodic completions and per-event outcomes in
	// schedule order: runs are behavior-identical iff it matches.
	Fingerprint uint64
	// Violations lists every invariant violation the checker caught
	// (empty on a healthy run).
	Violations []string
}

// overloadSystem is one concrete workload: a generated aperiodic storm
// plus the fixed hard periodic set, under one server configuration.
type overloadSystem struct {
	jobs      []sim.AperiodicJob
	policy    sim.ServerPolicy
	capacity  rtime.Duration
	period    rtime.Duration
	horizon   rtime.Time
	periodics []sim.PeriodicTask
}

// hardPeriodics is the fixed hard real-time set every scenario carries:
// utilization ~0.25, schedulable under worst-case server interference for
// every scenario configuration (response-time analysis: R1=9<=12,
// R2=16<=18, R3=33<=36 with a DS 4tu/6tu including back-to-back hits).
func hardPeriodics() []sim.PeriodicTask {
	return []sim.PeriodicTask{
		{Name: "tau1", Period: 12 * rtime.TU, Cost: 1 * rtime.TU, Priority: 50},
		{Name: "tau2", Period: 18 * rtime.TU, Cost: 2 * rtime.TU, Priority: 40},
		{Name: "tau3", Period: 36 * rtime.TU, Cost: 2 * rtime.TU, Priority: 30},
	}
}

// serverPrio is the server priority: above every periodic, as the paper
// requires.
const serverPrio = 100

// buildOverloadSystem derives the scenario workload from the parameters.
func buildOverloadSystem(p OverloadParams) (*overloadSystem, error) {
	const serverPeriod = 6.0
	sys := &overloadSystem{
		policy:    sim.DeferrableServer,
		capacity:  rtime.TUs(4),
		period:    rtime.TUs(serverPeriod),
		periodics: hardPeriodics(),
	}
	g := gen.Params{
		AverageCost:    0.5,
		StdDeviation:   0.2,
		ServerCapacity: 4,
		ServerPeriod:   serverPeriod,
		NbGeneration:   1,
		Seed:           p.Seed,
	}
	switch p.Scenario {
	case OverloadMissStorm:
		// MMPP bursts at 12x the calm density: ~96 arrivals (~48tu of
		// demand) per server period inside a burst against 4tu of
		// capacity — a storm the server can only shed.
		g.Arrivals = gen.MMPPArrivals
		g.TaskDensity = 8
		g.BurstFactor = 12
		g.HorizonPeriods = maxInt(4, p.Events/30) // avg ~30 events/period
	case OverloadTransient:
		// Calmer base load (~47% of the server) with strong but short
		// pulses: the backlog must drain inside the 10-period margin
		// appended after the generation horizon.
		g.Arrivals = gen.MMPPArrivals
		g.TaskDensity = 3
		g.BurstFactor = 14
		g.BurstMeanPeriods = 1
		g.CalmMeanPeriods = 4
		g.HorizonPeriods = maxInt(4, p.Events*5/54) // avg ~10.8 events/period
	case OverloadSaturation:
		// Poisson load on a polling server; the capacity sweep happens in
		// RunOverload.
		g.Arrivals = gen.PoissonArrivals
		g.TaskDensity = 2.5
		g.HorizonPeriods = maxInt(4, p.Events*2/5)
		sys.policy = sim.PollingServer
	default:
		return nil, fmt.Errorf("overload: unknown scenario %q", p.Scenario)
	}
	generated := gen.Generate(g)[0]
	sys.jobs = generated.Aperiodics
	sys.horizon = g.Horizon()
	if p.Scenario == OverloadTransient {
		sys.horizon = sys.horizon.Add(10 * sys.period)
	}
	// Workload-level faults apply before any engine sees the jobs, so the
	// faulted workload is identical across every configuration.
	if p.Faults.Enabled() {
		faulted := p.Faults.ApplySystem(sim.System{Aperiodics: sys.jobs}, 0)
		sys.jobs = faulted.Aperiodics
	}
	return sys, nil
}

// RunOverload builds and runs one overload scenario. The saturation
// scenario runs its whole capacity sweep (1..4tu) and folds the sub-runs
// into one result; the other scenarios are single runs.
func RunOverload(p OverloadParams) (*OverloadResult, error) {
	def := DefaultOverloadParams(p.Scenario)
	if p.Events <= 0 {
		p.Events = def.Events
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.MaxPending <= 0 {
		p.MaxPending = def.MaxPending
	}
	if p.PeriodicMiss == exec.MissAbort && !p.PeriodicActivation {
		return nil, fmt.Errorf("overload: the abort miss policy requires PeriodicActivation")
	}
	sys, err := buildOverloadSystem(p)
	if err != nil {
		return nil, err
	}
	res := &OverloadResult{Scenario: p.Scenario, Events: len(sys.jobs), Fingerprint: 14695981039346656037}
	caps := []rtime.Duration{sys.capacity}
	if p.Scenario == OverloadSaturation {
		caps = []rtime.Duration{rtime.TUs(1), rtime.TUs(2), rtime.TUs(3), rtime.TUs(4)}
	}
	for _, capa := range caps {
		sub := *sys
		sub.capacity = capa
		if err := runOverloadOnce(p, &sub, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runOverloadOnce executes one workload on one server configuration,
// folding counters, fingerprint and invariant violations into res.
func runOverloadOnce(p OverloadParams, sys *overloadSystem, res *OverloadResult) error {
	vm := rtsjvm.NewVMSink(trace.Nop{}, rtsjvm.Overheads{}, exec.Options{
		Kernel: p.Kernel, MaxGoroutines: p.MaxGoroutines,
	})
	params := core.NewTaskServerParameters(0, sys.capacity, sys.period)
	var srv core.TaskServer
	if sys.policy == sim.PollingServer {
		srv = core.NewPollingTaskServer(vm, "PS", serverPrio, params)
	} else {
		srv = core.NewDeferrableTaskServer(vm, "DS", serverPrio, params)
	}
	srv.SetMaxPending(p.MaxPending)
	srv.SetClampCapacity(true)

	check := &faults.Checker{}
	fp := res.Fingerprint
	periodicReleases, periodicMisses := 0, 0
	for ti := range sys.periodics {
		pt := sys.periodics[ti]
		taskIdx := uint64(ti)
		pp := &rtsjvm.PeriodicParameters{Period: pt.Period, Cost: pt.Cost, Miss: p.PeriodicMiss}
		// work is one hard periodic release: exact declared cost, deadline
		// checked at completion, completion folded into the fingerprint in
		// schedule order.
		work := func(r *rtsjvm.RTC) {
			rel := r.CurrentRelease()
			r.Consume(pt.Cost)
			periodicReleases++
			if r.Now() > rel.Add(pt.Period) {
				periodicMisses++
			}
			fp = (fp ^ taskIdx) * 1099511628211
			fp = (fp ^ uint64(r.Now())) * 1099511628211
		}
		if p.PeriodicActivation {
			vm.NewActivationThread(pt.Name, pt.Priority, pp, work)
		} else {
			vm.NewRealtimeThread(pt.Name, pt.Priority, pp, func(r *rtsjvm.RTC) {
				for {
					work(r)
					r.WaitForNextPeriod()
				}
			})
		}
	}

	released := 0
	for i := range sys.jobs {
		a := sys.jobs[i]
		if a.Release >= sys.horizon {
			continue // never fired inside the observation window
		}
		jn := a.Name
		h := core.NewServableAsyncEventHandler(srv, jn, a.DeclaredCost()).SetActualCost(a.Cost)
		e := core.NewServableAsyncEvent(vm, jn)
		e.AddServableHandler(h)
		vm.NewOneShotTimer(a.Release, e, jn).Start()
		released++
	}

	// Mid-run invariant sampling: one probe per server period, registered
	// upfront (identically in every configuration, so the sampling itself
	// never perturbs the schedule comparison).
	ex := vm.Exec()
	for t := rtime.Time(sys.period); t < sys.horizon; t = t.Add(sys.period) {
		ex.At(t, func() {
			check.Monotone("shed", srv.ShedCount())
			check.Monotone("periodic-misses", periodicMisses)
			check.Monotone("periodic-releases", periodicReleases)
			check.Checkf(srv.PendingCount() >= 0, "pending count negative: %d", srv.PendingCount())
			if c, ok := srv.(interface{ Capacity() rtime.Duration }); ok {
				check.NonNegative("clamped capacity", c.Capacity())
			}
		})
	}

	err := vm.Run(sys.horizon)
	res.PeakWorkers = maxInt(res.PeakWorkers, ex.PoolPeak())
	res.FinalTime = ex.Now()
	if ierr := ex.CheckInvariants(); ierr != nil {
		check.Checkf(false, "executive invariants: %v", ierr)
	}
	vm.Shutdown()
	if err != nil {
		return err
	}

	// Conservation: every release that reached the server has exactly one
	// outcome, and the buckets sum back to the release count.
	ct := faults.Counts{Released: len(srv.Records())}
	for _, rec := range srv.Records() {
		outcomes := 0
		if rec.Served {
			ct.Served++
			outcomes++
		}
		if rec.Interrupted {
			ct.Interrupted++
			outcomes++
		}
		if rec.Rejected {
			ct.Rejected++
			outcomes++
		}
		if rec.Shed {
			ct.Shed++
			outcomes++
		}
		if outcomes == 0 {
			ct.Pending++
		}
		check.Checkf(outcomes <= 1, "event %s has %d outcomes", rec.Handler, outcomes)
	}
	check.Conservation(ct)
	check.Checkf(ct.Released == released,
		"released %d records for %d fired events", ct.Released, released)
	check.Checkf(ct.Shed == srv.ShedCount(),
		"shed records %d != server shed count %d", ct.Shed, srv.ShedCount())
	if p.Scenario == OverloadTransient {
		check.Checkf(ct.Pending == 0,
			"transient overload did not drain: %d events still pending", ct.Pending)
	}

	// Fold the per-event outcomes (registration order = schedule order).
	for i, rec := range srv.Records() {
		code := uint64(0)
		switch {
		case rec.Served:
			code = 1
		case rec.Interrupted:
			code = 2
		case rec.Rejected:
			code = 3
		case rec.Shed:
			code = 4
		}
		fp = (fp ^ uint64(i)) * 1099511628211
		fp = (fp ^ code) * 1099511628211
		fp = (fp ^ uint64(rec.Released)) * 1099511628211
		fp = (fp ^ uint64(rec.Finished)) * 1099511628211
	}

	res.Released += ct.Released
	res.Served += ct.Served
	res.Interrupted += ct.Interrupted
	res.Rejected += ct.Rejected
	res.Shed += ct.Shed
	res.Pending += ct.Pending
	res.PeriodicReleases += periodicReleases
	res.PeriodicMisses += periodicMisses
	if floor := srv.CapacityFloor(); floor < res.CapacityFloor {
		res.CapacityFloor = floor
	}
	res.Fingerprint = fp
	res.Violations = append(res.Violations, check.Violations()...)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
