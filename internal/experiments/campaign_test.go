package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
)

func testCampaignSpec() CampaignSpec {
	s := DefaultCampaignSpec()
	s.Points = []float64{0.5, 2, 3.5}
	s.Systems = 120
	return s
}

// TestCampaignStreamingMatchesRetained pins the streaming reducer against
// the obvious retained implementation: a serial loop that generates every
// system, keeps its events and folds at the end. The curves must be
// bit-identical — the reducer changes memory behaviour, never results.
func TestCampaignStreamingMatchesRetained(t *testing.T) {
	s := testCampaignSpec()
	for point := range s.Points {
		var want metrics.Partial
		p := s.pointParams(point)
		horizon := p.Horizon()
		for i := 0; i < s.Systems; i++ {
			sys := gen.WithServer(gen.SystemAt(p, i), p, s.Policy, 100)
			r, err := RunSimulationMetrics(sys, horizon)
			if err != nil {
				t.Fatal(err)
			}
			want.AddSystem(SimEvents(r))
		}
		got, err := RunCampaignRange(s, point, 0, s.Systems)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("point %d: streaming partial %+v, retained %+v", point, got, want)
		}
	}
}

// TestCampaignWorkerCountInvariance checks the whole curve is identical for
// any worker count, byte for byte through Format.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	s := testCampaignSpec()
	defer harness.SetWorkers(0)
	var want string
	for _, workers := range []int{1, 2, 4, 0} {
		harness.SetWorkers(workers)
		c, err := RunCampaign(s)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == "" {
			want = c.Format()
			continue
		}
		if got := c.Format(); got != want {
			t.Fatalf("workers=%d: curve differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// pipeShards starts n in-memory ServeShard workers and returns their
// connections. Closing a connection's W ends that worker's session.
func pipeShards(t *testing.T, n int) []ShardConn {
	t.Helper()
	conns := make([]ShardConn, n)
	for i := range conns {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		go func() {
			err := ServeShard(reqR, respW)
			respW.CloseWithError(err)
		}()
		conns[i] = ShardConn{R: respR, W: reqW}
	}
	return conns
}

func closeShards(conns []ShardConn) {
	for _, c := range conns {
		c.W.(io.Closer).Close()
	}
}

// TestCampaignShardDifferential is the fabric's core differential: the same
// spec run in-process, over 1 shard and over 4 shards (with a deliberately
// odd batch size) must format to identical bytes.
func TestCampaignShardDifferential(t *testing.T) {
	s := testCampaignSpec()
	inproc, err := RunCampaign(s)
	if err != nil {
		t.Fatal(err)
	}
	want := inproc.Format()
	for _, tc := range []struct {
		shards, batch int
	}{
		{1, 0},
		{4, 0},
		{4, 7}, // ragged ranges: last chunk of each point is short
	} {
		conns := pipeShards(t, tc.shards)
		c, err := RunCampaignSharded(s, conns, tc.batch)
		closeShards(conns)
		if err != nil {
			t.Fatalf("%d shards (batch %d): %v", tc.shards, tc.batch, err)
		}
		if got := c.Format(); got != want {
			t.Fatalf("%d shards (batch %d): curve differs from in-process:\n%s\nvs\n%s",
				tc.shards, tc.batch, got, want)
		}
	}
}

// TestServeShardMalformedRequest checks a worker rejects garbage input with
// an error response and a non-nil session error.
func TestServeShardMalformedRequest(t *testing.T) {
	var out bytes.Buffer
	err := ServeShard(strings.NewReader("{not json\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "malformed request") {
		t.Fatalf("err = %v, want malformed request", err)
	}
	var resp ShardResponse
	if derr := json.NewDecoder(&out).Decode(&resp); derr != nil {
		t.Fatalf("no error response emitted: %v", derr)
	}
	if resp.Error == "" {
		t.Fatal("error response carries no error")
	}
}

// TestServeShardVersionMismatch checks an unknown protocol version is
// refused rather than guessed around.
func TestServeShardVersionMismatch(t *testing.T) {
	req, _ := json.Marshal(ShardRequest{V: ShardProtocolVersion + 1, Spec: testCampaignSpec(), Hi: 1})
	var out bytes.Buffer
	err := ServeShard(bytes.NewReader(append(req, '\n')), &out)
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("err = %v, want protocol version mismatch", err)
	}
}

// TestServeShardInvalidSpec checks an invalid spec arriving over the wire
// fails the range with a clear error instead of computing nonsense.
func TestServeShardInvalidSpec(t *testing.T) {
	s := testCampaignSpec()
	s.Systems = -5
	req, _ := json.Marshal(ShardRequest{V: ShardProtocolVersion, Spec: s})
	var out bytes.Buffer
	err := ServeShard(bytes.NewReader(append(req, '\n')), &out)
	if err == nil || !strings.Contains(err.Error(), "systems per point must be positive") {
		t.Fatalf("err = %v, want spec validation error", err)
	}
}

// fakeShard scripts a coordinator-side failure: it answers every request
// with a fixed mutation of the honest response.
func fakeShard(t *testing.T, mutate func(*ShardResponse)) ShardConn {
	t.Helper()
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	go func() {
		dec := json.NewDecoder(reqR)
		enc := json.NewEncoder(respW)
		for {
			var req ShardRequest
			if err := dec.Decode(&req); err != nil {
				respW.CloseWithError(err)
				return
			}
			part, err := RunCampaignRange(req.Spec, req.Point, req.Lo, req.Hi)
			if err != nil {
				respW.CloseWithError(err)
				return
			}
			resp := ShardResponse{V: ShardProtocolVersion, Point: req.Point, Lo: req.Lo, Hi: req.Hi, Partial: &part}
			mutate(&resp)
			if err := enc.Encode(resp); err != nil {
				respW.CloseWithError(err)
				return
			}
		}
	}()
	return ShardConn{Name: "fake", R: respR, W: reqW}
}

// TestShardedRejectsBadResponses checks the coordinator validates every
// response before merging: wrong coordinates, missing partials, partial
// coverage and truncated sessions all fail with clear errors instead of
// corrupting the curve.
func TestShardedRejectsBadResponses(t *testing.T) {
	s := testCampaignSpec()
	s.Points = s.Points[:1]
	s.Systems = 40
	cases := []struct {
		name   string
		mutate func(*ShardResponse)
		want   string
	}{
		{"wrong range", func(r *ShardResponse) { r.Lo++ }, "want point"},
		{"missing partial", func(r *ShardResponse) { r.Partial = nil }, "carries no partial"},
		{"short coverage", func(r *ShardResponse) { r.Partial.Systems-- }, "covers"},
		{"worker error", func(r *ShardResponse) { r.Partial, r.Error = nil, "disk on fire" }, "disk on fire"},
		{"stale version", func(r *ShardResponse) { r.V = 99 }, "protocol version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := fakeShard(t, tc.mutate)
			_, err := RunCampaignSharded(s, []ShardConn{conn}, 0)
			conn.W.(io.Closer).Close()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestShardedTruncatedSession checks a shard dying mid-campaign surfaces as
// a read error, not a hang or a short merge.
func TestShardedTruncatedSession(t *testing.T) {
	s := testCampaignSpec()
	s.Points = s.Points[:1]
	s.Systems = 40
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	go func() {
		// Swallow one request, then die without answering.
		dec := json.NewDecoder(reqR)
		var req ShardRequest
		_ = dec.Decode(&req)
		respW.Close()
		io.Copy(io.Discard, reqR)
	}()
	_, err := RunCampaignSharded(s, []ShardConn{{Name: "dying", R: respR, W: reqW}}, 0)
	reqW.Close()
	if err == nil || !strings.Contains(err.Error(), "read response") {
		t.Fatalf("err = %v, want read response failure", err)
	}
}

// TestCurveFormats pins the machine-readable renderings: CSV has the
// stable header and one row per sweep point, and JSON round-trips the
// curve losslessly (the partials are integer tallies, so equality is
// exact).
func TestCurveFormats(t *testing.T) {
	s := testCampaignSpec()
	c, err := RunCampaign(s)
	if err != nil {
		t.Fatal(err)
	}

	csv := c.FormatCSV()
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	const header = "density,load,schedulable,served,mean_resp_tu,max_resp_tu,systems,events,served_events,interrupted,shed,resp_ticks"
	if lines[0] != header {
		t.Errorf("CSV header = %q, want %q", lines[0], header)
	}
	if len(lines) != 1+len(c.Points) {
		t.Fatalf("CSV has %d data rows, want %d:\n%s", len(lines)-1, len(c.Points), csv)
	}
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 12 {
			t.Errorf("CSV row %d has %d columns, want 12: %q", i, len(cols), line)
		}
		if !strings.HasPrefix(line, fmt.Sprintf("%g,", c.Points[i].Density)) {
			t.Errorf("CSV row %d does not lead with density %g: %q", i, c.Points[i].Density, line)
		}
	}

	js, err := c.FormatJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if fmt.Sprintf("%+v", back.Spec) != fmt.Sprintf("%+v", s) {
		t.Errorf("JSON round-trip changed the spec: %+v vs %+v", back.Spec, s)
	}
	if len(back.Points) != len(c.Points) {
		t.Fatalf("JSON round-trip has %d points, want %d", len(back.Points), len(c.Points))
	}
	for i := range c.Points {
		if back.Points[i] != c.Points[i] {
			t.Errorf("point %d changed through JSON: %+v vs %+v", i, back.Points[i], c.Points[i])
		}
	}
}

// TestShardedRetryOnSurvivor injects a bad first response on one of two
// shards: the coordinator must drop the faulty shard, replay its ranges
// on the survivor, and still produce the in-process curve byte for byte.
func TestShardedRetryOnSurvivor(t *testing.T) {
	s := testCampaignSpec()
	inproc, err := RunCampaign(s)
	if err != nil {
		t.Fatal(err)
	}
	want := inproc.Format()

	responses := 0
	bad := fakeShard(t, func(r *ShardResponse) {
		if responses == 0 {
			r.Partial, r.Error = nil, "injected fault"
		}
		responses++
	})
	good := pipeShards(t, 1)[0]
	c, err := RunCampaignSharded(s, []ShardConn{bad, good}, 7)
	bad.W.(io.Closer).Close()
	closeShards([]ShardConn{good})
	if err != nil {
		t.Fatalf("campaign failed despite a surviving shard: %v", err)
	}
	if got := c.Format(); got != want {
		t.Fatalf("retried curve differs from in-process:\n%s\nvs\n%s", got, want)
	}
}

// TestShardedRetryFailsToo pins the single-retry contract: when a range
// fails on its second shard as well, the campaign fails with both errors.
func TestShardedRetryFailsToo(t *testing.T) {
	s := testCampaignSpec()
	s.Points = s.Points[:1]
	s.Systems = 40
	// With batch 10 the point splits into 4 chunks: shard 0 is dealt
	// lo 0 and 20, shard 1 lo 10 and 30. Shard 0 dies immediately; shard 1
	// answers its own two chunks, then fails every retried range.
	bad := fakeShard(t, func(r *ShardResponse) { r.Partial, r.Error = nil, "dead on arrival" })
	served := 0
	flaky := fakeShard(t, func(r *ShardResponse) {
		if served >= 2 {
			r.Partial, r.Error = nil, "retry refused"
		}
		served++
	})
	_, err := RunCampaignSharded(s, []ShardConn{bad, flaky}, 10)
	bad.W.(io.Closer).Close()
	flaky.W.(io.Closer).Close()
	if err == nil || !strings.Contains(err.Error(), "retry refused") || !strings.Contains(err.Error(), "dead on arrival") {
		t.Fatalf("err = %v, want both the first failure and the retry failure", err)
	}
}

// TestShardedAllShardsFail checks there is no retry pass without a
// survivor: the first pass's own error surfaces unchanged.
func TestShardedAllShardsFail(t *testing.T) {
	s := testCampaignSpec()
	s.Points = s.Points[:1]
	s.Systems = 40
	conns := []ShardConn{
		fakeShard(t, func(r *ShardResponse) { r.Partial, r.Error = nil, "disk on fire" }),
		fakeShard(t, func(r *ShardResponse) { r.Partial, r.Error = nil, "disk on fire" }),
	}
	_, err := RunCampaignSharded(s, conns, 10)
	for _, c := range conns {
		c.W.(io.Closer).Close()
	}
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v, want the shard failure", err)
	}
	if strings.Contains(err.Error(), "retry") {
		t.Fatalf("err = %v, must not claim a retry happened", err)
	}
}

// TestCampaignSpecValidate spot-checks the guard rails on wire-supplied
// specs.
func TestCampaignSpecValidate(t *testing.T) {
	good := testCampaignSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*CampaignSpec){
		func(s *CampaignSpec) { s.Points = nil },
		func(s *CampaignSpec) { s.Points = []float64{1, -2} },
		func(s *CampaignSpec) { s.Systems = 0 },
		func(s *CampaignSpec) { s.ServerPeriod = 0 },
		func(s *CampaignSpec) { s.HorizonPeriods = -1 },
		func(s *CampaignSpec) { s.Policy = 99 },
	}
	for i, mutate := range bad {
		s := testCampaignSpec()
		mutate(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: invalid spec passed validation", i)
		}
	}
}
