package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtsj/internal/rtime"
)

func tu(v float64) rtime.Duration { return rtime.TUs(v) }

func TestResponseTimesClassicExample(t *testing.T) {
	tasks := []Task{
		{Name: "t1", C: tu(1), T: tu(4), Prio: 3},
		{Name: "t2", C: tu(2), T: tu(6), Prio: 2},
		{Name: "t3", C: tu(3), T: tu(12), Prio: 1},
	}
	rs := ResponseTimes(tasks)
	want := []float64{1, 3, 10}
	for i, r := range rs {
		if !r.Feasible {
			t.Errorf("%s infeasible", r.Task.Name)
		}
		if got := r.R.TUs(); got != want[i] {
			t.Errorf("%s R = %v, want %v", r.Task.Name, got, want[i])
		}
	}
}

func TestResponseTimesInfeasible(t *testing.T) {
	tasks := []Task{
		{Name: "t1", C: tu(3), T: tu(4), Prio: 2},
		{Name: "t2", C: tu(2), T: tu(6), Prio: 1},
	}
	rs := ResponseTimes(tasks)
	if !rs[0].Feasible {
		t.Error("t1 should be feasible")
	}
	if rs[1].Feasible {
		t.Error("t2 should be infeasible (U > 1)")
	}
}

func TestResponseTimesWithBlocking(t *testing.T) {
	tasks := []Task{{Name: "t1", C: tu(2), T: tu(10), Prio: 1, B: tu(3)}}
	rs := ResponseTimes(tasks)
	if got := rs[0].R; got != tu(5) {
		t.Errorf("R = %v, want 5tu", got)
	}
}

func TestDSJitterAnalysis(t *testing.T) {
	// DS Cs=2 Ts=5 at the highest priority; one periodic task C=2 T=10.
	// Worst case: back-to-back server hits -> w = 2 + 2*2 = 6.
	tasks := WithDeferrableServer(
		[]Task{{Name: "t1", C: tu(2), T: tu(10), Prio: 1}},
		tu(2), tu(5), 10)
	rs := ResponseTimes(tasks)
	var t1 Response
	for _, r := range rs {
		if r.Task.Name == "t1" {
			t1 = r
		}
	}
	if got := t1.R.TUs(); got != 6 {
		t.Errorf("t1 R = %v, want 6 (double hit)", got)
	}

	// The same server treated as a plain periodic task (PS) interferes
	// strictly less.
	ps := WithPollingServer(
		[]Task{{Name: "t1", C: tu(2), T: tu(10), Prio: 1}},
		tu(2), tu(5), 10)
	rsPS := ResponseTimes(ps)
	for _, r := range rsPS {
		if r.Task.Name == "t1" && r.R.TUs() != 4 {
			t.Errorf("t1 under PS R = %v, want 4", r.R.TUs())
		}
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("bound(1) = %v", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284) > 1e-3 {
		t.Errorf("bound(2) = %v", got)
	}
	if got := LiuLaylandBound(100); math.Abs(got-math.Ln2) > 0.01 {
		t.Errorf("bound(100) = %v, want ~ln2", got)
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("bound(0) should be 0")
	}
}

func TestDSUtilizationBound(t *testing.T) {
	// With us = 0 the bound reduces to the Liu & Layland bound.
	for n := 1; n <= 5; n++ {
		if got, want := DSUtilizationBound(n, 0), LiuLaylandBound(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: DS bound(us=0) = %v, want %v", n, got, want)
		}
	}
	// The bound decreases as the server utilization grows.
	prev := math.Inf(1)
	for _, us := range []float64{0, 0.1, 0.2, 0.4, 0.8} {
		b := DSUtilizationBound(3, us)
		if b >= prev {
			t.Errorf("DS bound not decreasing at us=%v: %v >= %v", us, b, prev)
		}
		prev = b
	}
}

func TestHyperbolicDominatesLiuLayland(t *testing.T) {
	// Any set accepted by Liu & Layland is accepted by the hyperbolic
	// bound (Bini's result).
	f := func(c1, c2, c3 uint8) bool {
		tasks := []Task{
			{C: tu(float64(c1%50)/100 + 0.01), T: tu(1), Prio: 3},
			{C: tu(float64(c2%50)/100 + 0.01), T: tu(2), Prio: 2},
			{C: tu(float64(c3%50)/100 + 0.01), T: tu(4), Prio: 1},
		}
		if FeasibleLiuLayland(tasks) && !FeasibleHyperbolic(tasks) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBoundImpliesRTAFeasible(t *testing.T) {
	// Sufficiency: sets under the Liu & Layland bound pass exact RTA
	// (rate-monotonic priorities, implicit deadlines).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(4)
		tasks := make([]Task, n)
		for i := range tasks {
			period := 2 + rng.Intn(50)
			tasks[i] = Task{
				Name: "t" + string(rune('0'+i)),
				C:    tu(0.05 + rng.Float64()*float64(period)/4),
				T:    tu(float64(period)),
			}
		}
		// Rate-monotonic priorities.
		for i := range tasks {
			prio := 0
			for _, o := range tasks {
				if o.T > tasks[i].T {
					prio++
				}
			}
			tasks[i].Prio = prio
		}
		if FeasibleLiuLayland(tasks) && !Feasible(tasks) {
			t.Fatalf("trial %d: LL-accepted set fails RTA: %+v", trial, tasks)
		}
	}
}

func TestEDFFeasible(t *testing.T) {
	feasible := []Task{
		{C: tu(1), T: tu(4)},
		{C: tu(2), T: tu(6)},
		{C: tu(3), T: tu(12)},
	}
	if !EDFFeasible(feasible) {
		t.Error("U=0.833 implicit-deadline set must be EDF-feasible")
	}
	over := []Task{{C: tu(3), T: tu(4)}, {C: tu(2), T: tu(6)}}
	if EDFFeasible(over) {
		t.Error("U>1 set cannot be feasible")
	}
	// Constrained deadline that fails demand analysis despite U<1.
	tight := []Task{
		{C: tu(2), T: tu(10), D: tu(2)},
		{C: tu(1), T: tu(10), D: tu(2)},
	}
	if EDFFeasible(tight) {
		t.Error("3 units of demand by t=2 cannot be met")
	}
	if !EDFFeasible(nil) {
		t.Error("empty set is feasible")
	}
}

func TestDemandBound(t *testing.T) {
	tasks := []Task{{C: tu(2), T: tu(5), D: tu(4)}}
	cases := []struct{ t, want float64 }{
		{0, 0}, {3.9, 0}, {4, 2}, {8.9, 2}, {9, 4}, {14, 6},
	}
	for _, c := range cases {
		if got := DemandBound(tasks, tu(c.t)); got != tu(c.want) {
			t.Errorf("h(%v) = %v, want %v", c.t, got.TUs(), c.want)
		}
	}
}

func TestOnlinePSResponseCurrentInstance(t *testing.T) {
	// Server Cs=4 Ts=6 with full capacity at t=0; backlog 3 fits: R = 3.
	st := PSServerState{Cs: tu(4), Ts: tu(6), Rem: tu(4), Now: 0}
	if got := OnlinePSResponse(st, tu(3), 0); got != tu(3) {
		t.Errorf("R = %v, want 3tu", got)
	}
	// Released earlier (ra=0, now=2): response includes the wait.
	st.Now = rtime.AtTU(2)
	if got := OnlinePSResponse(st, tu(3), 0); got != tu(5) {
		t.Errorf("R = %v, want 5tu", got)
	}
}

func TestOnlinePSResponseFutureInstances(t *testing.T) {
	// Cs=4 Ts=6, at t=0 with cs(t)=4, backlog 9: 4 now, 4 at the
	// activation at 6, last unit at the activation at 12 -> finish 13.
	st := PSServerState{Cs: tu(4), Ts: tu(6), Rem: tu(4), Now: 0}
	if got := OnlinePSResponse(st, tu(9), 0); got != tu(13) {
		t.Errorf("R = %v, want 13tu", got)
	}
	// Exhausted capacity: everything shifts to future instances.
	st.Rem = 0
	if got := OnlinePSResponse(st, tu(4), 0); got != tu(10) {
		t.Errorf("R = %v, want 10tu (activation at 6 + 4)", got)
	}
	// Exact multiple: backlog 8 with cs=0 -> two full instances, finish
	// 6+4 for the first, 12+4 for the second.
	if got := OnlinePSResponse(st, tu(8), 0); got != tu(16) {
		t.Errorf("R = %v, want 16tu", got)
	}
}

func TestOnlinePSResponseZeroBacklog(t *testing.T) {
	st := PSServerState{Cs: tu(4), Ts: tu(6), Rem: tu(4), Now: 0}
	if got := OnlinePSResponse(st, 0, 0); got != 0 {
		t.Errorf("R = %v, want 0", got)
	}
}

func TestLimitedPSResponse(t *testing.T) {
	// Instance 2 (activation at 12), 1tu of earlier handlers, cost 2,
	// released at 4: R = 12 + 1 + 2 - 4 = 11.
	if got := LimitedPSResponse(tu(6), 2, tu(1), tu(2), rtime.AtTU(4)); got != tu(11) {
		t.Errorf("R = %v, want 11tu", got)
	}
}

// Property: over *reachable* server states (a highest-priority PS consumes
// its capacity greedily from each activation, so at offset o into a period
// the remaining capacity is at most Cs - o), OnlinePSResponse is monotone
// in the backlog and never below the time needed to serve the work itself.
func TestOnlinePSResponseProperties(t *testing.T) {
	f := func(rem8, cape8, k8, off8 uint8) bool {
		const csTU, tsTU = 4, 6
		remTU := int(rem8 % (csTU + 1)) // 0..4
		// Reachable states of a busy highest-priority PS: the server has
		// consumed exactly its offset into the period (rem = Cs - off), or
		// its capacity is gone (rem = 0, any offset).
		var off int
		if remTU > 0 {
			off = csTU - remTU
		} else {
			off = int(off8) % tsTU
		}
		now := rtime.AtTU(float64(int(k8%5)*tsTU + off))
		st := PSServerState{Cs: tu(csTU), Ts: tu(tsTU), Rem: tu(float64(remTU)), Now: now}
		cape := rtime.Duration(cape8%20+1) * rtime.TU
		r1 := OnlinePSResponse(st, cape, 0)
		r2 := OnlinePSResponse(st, cape+rtime.TU, 0)
		if r2 < r1 {
			return false
		}
		minimum := cape + rtime.Duration(now) // waited since release 0
		return r1 >= minimum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBusyPeriod(t *testing.T) {
	tasks := []Task{
		{C: tu(1), T: tu(4)},
		{C: tu(2), T: tu(6)},
	}
	// L = 1+2 = 3; ceil(3/4)*1+ceil(3/6)*2 = 3; fixpoint 3.
	l, ok := BusyPeriod(tasks)
	if !ok || l != tu(3) {
		t.Errorf("busy period = %v ok=%v, want 3", l, ok)
	}
	// Denser set: t1 1/2, t2 2/5: L=3: ceil(3/2)+ceil(3/5)*2 = 2+2=4;
	// L=4: 2+2=4... ceil(4/2)=2*1 + ceil(4/5)=1*2 = 4 ✓.
	l2, ok2 := BusyPeriod([]Task{{C: tu(1), T: tu(2)}, {C: tu(2), T: tu(5)}})
	if !ok2 || l2 != tu(4) {
		t.Errorf("busy period = %v, want 4", l2)
	}
	if l, ok := BusyPeriod(nil); l != 0 || !ok {
		t.Error("empty set")
	}
}

func TestHyperperiod(t *testing.T) {
	tasks := []Task{{T: tu(4)}, {T: tu(6)}, {T: tu(10)}}
	h, ok := Hyperperiod(tasks)
	if !ok || h != tu(60) {
		t.Errorf("hyperperiod = %v, want 60", h)
	}
	if h, ok := Hyperperiod(nil); h != 0 || !ok {
		t.Error("empty set")
	}
	// Overflow detection.
	big := []Task{{T: rtime.Duration(1)<<62 - 1}, {T: rtime.Duration(1)<<61 - 1}}
	if _, ok := Hyperperiod(big); ok {
		t.Error("expected overflow")
	}
}

func TestResponseString(t *testing.T) {
	r := Response{Task: Task{Name: "t1", C: tu(1), T: tu(4)}, R: tu(1), Feasible: true}
	if s := r.String(); s == "" {
		t.Error("empty string")
	}
	r.Feasible = false
	if s := r.String(); s == "" {
		t.Error("empty string")
	}
}
