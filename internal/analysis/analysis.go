// Package analysis implements the feasibility theory the paper relies on:
// fixed-priority response-time analysis (with release jitter, which is how a
// Deferrable Server is accounted for), utilization bounds, EDF
// processor-demand analysis, and the paper's Section 7 on-line response-time
// equations for aperiodic events served by a Polling Server.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"rtsj/internal/rtime"
)

// Task is a periodic task for off-line analysis.
type Task struct {
	Name string         // task name, for reports
	C    rtime.Duration // worst-case execution time
	T    rtime.Duration // period
	D    rtime.Duration // relative deadline; 0 means D = T
	Prio int            // fixed priority; larger is higher
	J    rtime.Duration // release jitter (0 for plain periodic tasks)
	B    rtime.Duration // blocking from lower-priority tasks (0 if none)
}

// Deadline returns the task's effective relative deadline.
func (t Task) Deadline() rtime.Duration {
	if t.D > 0 {
		return t.D
	}
	return t.T
}

// Utilization returns the processor utilization of the task set.
func Utilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += float64(t.C) / float64(t.T)
	}
	return u
}

// Response is the outcome of response-time analysis for one task.
type Response struct {
	Task Task // the analysed task
	// R is the worst-case response time measured from the periodic
	// reference (it includes the task's own release jitter).
	R        rtime.Duration
	Feasible bool // R fits within the task's deadline
	// Converged is false when the recurrence diverged past the deadline
	// (the response time is then a lower bound, reported as-is).
	Converged bool
}

// ResponseTimes runs the classical fixed-priority response-time recurrence
//
//	w = C + B + sum_{j in hp} ceil((w + Jj)/Tj) * Cj
//
// for every task, with R = w + J. A task is feasible when R <= D. Tasks
// with equal priority are treated as mutually interfering (each appears in
// the other's interference set), a safe over-approximation.
func ResponseTimes(tasks []Task) []Response {
	out := make([]Response, len(tasks))
	for i, t := range tasks {
		var hp []Task
		for k, o := range tasks {
			if k == i {
				continue
			}
			if o.Prio >= t.Prio {
				hp = append(hp, o)
			}
		}
		w := t.C + t.B
		converged := false
		limit := t.Deadline() + t.J
		for iter := 0; iter < 10_000; iter++ {
			next := t.C + t.B
			for _, o := range hp {
				next += rtime.Duration(rtime.DivCeil(w+o.J, o.T)) * o.C
			}
			if next == w {
				converged = true
				break
			}
			w = next
			if w+t.J > limit && limit > 0 {
				// Diverged past the deadline: infeasible regardless.
				break
			}
		}
		r := w + t.J
		out[i] = Response{Task: t, R: r, Feasible: converged && r <= t.Deadline(), Converged: converged}
	}
	return out
}

// Feasible reports whether every task passes response-time analysis.
func Feasible(tasks []Task) bool {
	for _, r := range ResponseTimes(tasks) {
		if !r.Feasible {
			return false
		}
	}
	return true
}

// LiuLaylandBound returns the rate-monotonic utilization bound
// n(2^(1/n) - 1).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// FeasibleLiuLayland reports whether the set passes the Liu & Layland
// utilization test (sufficient, not necessary; implicit deadlines assumed).
func FeasibleLiuLayland(tasks []Task) bool {
	return Utilization(tasks) <= LiuLaylandBound(len(tasks))+1e-12
}

// FeasibleHyperbolic reports whether the set passes Bini's hyperbolic bound
// prod(Ui + 1) <= 2 (sufficient; tighter than Liu & Layland).
func FeasibleHyperbolic(tasks []Task) bool {
	p := 1.0
	for _, t := range tasks {
		p *= float64(t.C)/float64(t.T) + 1
	}
	return p <= 2+1e-12
}

// DSUtilizationBound returns the rate-monotonic utilization bound for n
// periodic tasks running below a Deferrable Server with utilization us
// (Lehoczky, Sha & Strosnider):
//
//	Up <= n * [ ((us + 2) / (2*us + 1))^(1/n) - 1 ]
func DSUtilizationBound(n int, us float64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow((us+2)/(2*us+1), 1/float64(n)) - 1)
}

// WithPollingServer returns tasks plus the Polling Server modeled as a
// plain periodic task — the paper: "its most significant advantage is that
// it can be included in the feasibility analysis like any periodic task".
func WithPollingServer(tasks []Task, cs, ts rtime.Duration, prio int) []Task {
	out := append([]Task(nil), tasks...)
	return append(out, Task{Name: "PS", C: cs, T: ts, Prio: prio})
}

// WithDeferrableServer returns tasks plus the Deferrable Server modeled as
// a periodic task with release jitter Ts - Cs: because the DS may defer its
// capacity to the end of one period and spend a fresh capacity at the start
// of the next, lower-priority tasks can suffer two back-to-back hits. This
// is the modified analysis of Strosnider, Lehoczky & Sha the paper refers
// to in Section 2.2.
func WithDeferrableServer(tasks []Task, cs, ts rtime.Duration, prio int) []Task {
	out := append([]Task(nil), tasks...)
	return append(out, Task{Name: "DS", C: cs, T: ts, Prio: prio, J: ts - cs})
}

// DemandBound returns the EDF processor demand h(t) of the task set in
// [0, t]: sum over tasks of max(0, floor((t - Di)/Ti) + 1) * Ci.
func DemandBound(tasks []Task, t rtime.Duration) rtime.Duration {
	var h rtime.Duration
	for _, task := range tasks {
		d := task.Deadline()
		if t < d {
			continue
		}
		n := rtime.DivFloor(t-d, task.T) + 1
		h += rtime.Duration(n) * task.C
	}
	return h
}

// EDFFeasible runs processor-demand analysis for EDF with arbitrary
// relative deadlines: U <= 1 and h(t) <= t at every absolute deadline up to
// the synchronous busy period.
func EDFFeasible(tasks []Task) bool {
	if len(tasks) == 0 {
		return true
	}
	if Utilization(tasks) > 1+1e-12 {
		return false
	}
	// Busy-period bound: fixpoint of L = sum ceil(L/Ti) Ci.
	var l rtime.Duration
	for _, t := range tasks {
		l += t.C
	}
	for iter := 0; iter < 10_000; iter++ {
		var next rtime.Duration
		for _, t := range tasks {
			next += rtime.Duration(rtime.DivCeil(l, t.T)) * t.C
		}
		if next == l {
			break
		}
		l = next
	}
	// Check h(t) <= t at each deadline in (0, L].
	points := deadlinePoints(tasks, l)
	for _, p := range points {
		if DemandBound(tasks, p) > p {
			return false
		}
	}
	return true
}

// deadlinePoints enumerates the absolute deadlines of all task instances up
// to limit, deduplicated and sorted.
func deadlinePoints(tasks []Task, limit rtime.Duration) []rtime.Duration {
	seen := make(map[rtime.Duration]bool)
	var out []rtime.Duration
	for _, t := range tasks {
		for k := int64(0); ; k++ {
			d := rtime.Duration(k)*t.T + t.Deadline()
			if d > limit {
				break
			}
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BusyPeriod returns the length of the synchronous processor busy period of
// the task set (the fixpoint of L = sum ceil(L/Ti) Ci), or 0 for an empty
// set. It diverges for U > 1; the iteration is capped and the second return
// value reports convergence.
func BusyPeriod(tasks []Task) (rtime.Duration, bool) {
	if len(tasks) == 0 {
		return 0, true
	}
	var l rtime.Duration
	for _, t := range tasks {
		l += t.C
	}
	for iter := 0; iter < 10_000; iter++ {
		var next rtime.Duration
		for _, t := range tasks {
			next += rtime.Duration(rtime.DivCeil(l, t.T)) * t.C
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return l, false
}

// Hyperperiod returns the least common multiple of the task periods — the
// schedule repetition length for synchronous task sets. The second return
// value is false on overflow.
func Hyperperiod(tasks []Task) (rtime.Duration, bool) {
	if len(tasks) == 0 {
		return 0, true
	}
	l := tasks[0].T
	for _, t := range tasks[1:] {
		g := gcd(l, t.T)
		x := int64(l / g)
		if t.T != 0 && x > math.MaxInt64/int64(t.T) {
			return 0, false
		}
		l = rtime.Duration(x * int64(t.T))
	}
	return l, true
}

func gcd(a, b rtime.Duration) rtime.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PSServerState is the server state observed at the arrival of an aperiodic
// event, for the on-line response-time computation of Section 7.
type PSServerState struct {
	Cs  rtime.Duration // full capacity
	Ts  rtime.Duration // period
	Rem rtime.Duration // cs(t): remaining capacity at time Now
	Now rtime.Time     // t: current time (the event's arrival instant)
}

// OnlinePSResponse computes the response time of an aperiodic event served
// by an ideal Polling Server running at the highest priority, following the
// paper's equations (1)-(4): cape is Cape(t, dk), the total backlog to serve
// up to and including the event (pending work ahead of it plus its own
// cost); release is the event's release instant (ra <= Now).
//
// The equations in the paper contain an instance-indexing typo; this
// implementation derives the same quantities (Fk full extra instances, Rk
// remainder) and composes them so that the k-th future server activation
// occurs at k*Ts, which the paper's examples require.
func OnlinePSResponse(st PSServerState, cape rtime.Duration, release rtime.Time) rtime.Duration {
	if cape <= 0 {
		return 0
	}
	if st.Cs <= 0 || st.Ts <= 0 {
		panic("analysis: server needs positive capacity and period")
	}
	if cape <= st.Rem {
		// Equation (1), first case: served within the current instance.
		return st.Now.Add(cape).Sub(release)
	}
	// Work left after the current instance's remaining capacity.
	e := cape - st.Rem
	full := rtime.DivCeil(e, st.Cs) // server instances still needed
	rk := e - rtime.Duration(full-1)*st.Cs
	// First future activation strictly after Now.
	n0 := rtime.DivFloor(rtime.Duration(st.Now), st.Ts) + 1
	finish := rtime.Time(rtime.Duration(n0+full-1) * st.Ts).Add(rk)
	return finish.Sub(release)
}

// LimitedPSResponse is the paper's equation (5) for the implementation-
// limited Polling Server: the event's handler runs in server instance ia
// (an absolute instance index, activation at ia*Ts), after cumulated cost
// cpa of the handlers scheduled before it in the same instance.
func LimitedPSResponse(ts rtime.Duration, ia int64, cpa, ca rtime.Duration, release rtime.Time) rtime.Duration {
	finish := rtime.Time(rtime.Duration(ia) * ts).Add(cpa + ca)
	return finish.Sub(release)
}

// String renders a response table, convenient for the feasibility example.
func (r Response) String() string {
	status := "OK"
	if !r.Feasible {
		status = "MISS"
	}
	return fmt.Sprintf("%-8s C=%-6v T=%-6v D=%-6v J=%-6v R=%-6v %s",
		r.Task.Name, r.Task.C, r.Task.T, r.Task.Deadline(), r.Task.J, r.R, status)
}
