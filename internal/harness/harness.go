// Package harness runs independent experiment work units — per-system runs
// inside a set, per-set cells inside a table, per-cell entries of the policy
// matrix, per-config sweeps — across a bounded worker pool.
//
// The paper's evaluation is embarrassingly parallel (6 policies x 6 sets x
// 10 generated systems, every unit seeded deterministically), so the only
// requirement beyond a pool is that aggregation stays deterministic: Map
// preserves item order in its result slice regardless of completion order,
// which makes every downstream reduction (metrics.Aggregate, table cells)
// bit-identical for any worker count.
//
// Map retains every result until the whole batch completes — fine for a
// table's ten systems, prohibitive for a million-system campaign. Reduce
// and ReduceN keep the same bounded pool and the same deterministic,
// index-ordered aggregation contract, but fold each result into an
// accumulator as soon as its turn comes and let the result be recycled:
// steady-state memory is O(workers + reorder window), independent of the
// item count.
package harness

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted for the default worker
// count when no explicit override is set.
const EnvWorkers = "RTSJ_WORKERS"

var override atomic.Int64

// SetWorkers overrides the default worker count process-wide (0 restores
// the environment/GOMAXPROCS default). The cmd front-ends wire their
// -workers flag here; tests use it to pin determinism runs.
func SetWorkers(n int) { override.Store(int64(n)) }

var envWarnOnce sync.Once

// Workers returns the worker count used when Map is called with workers<=0.
// Precedence: the SetWorkers override (the cmd front-ends' -workers flag),
// else $RTSJ_WORKERS, else GOMAXPROCS. An invalid $RTSJ_WORKERS value
// (non-numeric, zero, or negative) is ignored with a single warning on
// stderr — silently falling back used to hide typos like RTSJ_WORKERS=four
// or RTSJ_WORKERS=-2.
func Workers() int {
	if n := int(override.Load()); n > 0 {
		return n
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
		envWarnOnce.Do(func() {
			fmt.Fprintf(os.Stderr,
				"harness: ignoring invalid %s=%q (want a positive integer); using GOMAXPROCS=%d\n",
				EnvWorkers, s, runtime.GOMAXPROCS(0))
		})
	}
	return runtime.GOMAXPROCS(0)
}

// extraWorkers counts the helper goroutines live across every Map in the
// process. Map calls nest (tables -> sets -> systems); the process-wide
// budget keeps total concurrency bounded by Workers() no matter how deep.
var extraWorkers atomic.Int64

func acquireWorker(limit int64) bool {
	for {
		n := extraWorkers.Load()
		if n >= limit {
			return false
		}
		if extraWorkers.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Map applies fn to every item concurrently and returns the results in
// item order. fn receives the item index and the item; it must be safe to
// call concurrently. If any call fails, Map waits for in-flight work and
// returns the error of the lowest-indexed failure — deterministic no
// matter which worker hit it first.
//
// The calling goroutine always processes items itself; up to workers-1
// helper goroutines (workers<=0 selects Workers()) join it, gated by a
// process-wide budget of Workers()-1 helpers. Nested Map calls therefore
// share one bounded pool: when the budget is exhausted an inner Map simply
// runs inline in its caller, which also makes nesting deadlock-free.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}

	var (
		next   atomic.Int64
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	run := func() {
		for {
			// Check for failure before claiming, and always run a claimed
			// index: indices are claimed in increasing order, so every item
			// below a failing index has been claimed and will report its
			// own error — which keeps the lowest-index guarantee exact.
			mu.Lock()
			abort := errIdx != -1
			mu.Unlock()
			if abort {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(items) {
				return
			}
			counted := unitStart()
			r, err := fn(i, items[i])
			if counted {
				unitEnd()
			}
			if err != nil {
				mu.Lock()
				if errIdx == -1 || i < errIdx {
					errIdx, first = i, err
				}
				mu.Unlock()
				return
			}
			out[i] = r
		}
	}
	budget := int64(Workers() - 1)
	for w := 1; w < workers && acquireWorker(budget); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer extraWorkers.Add(-1)
			run()
		}()
	}
	run()
	wg.Wait()
	if errIdx != -1 {
		return nil, first
	}
	return out, nil
}

// MapN is Map over the index range [0, n): for work units that are cheaper
// to describe by index (table cells, sweep points) than to materialize as a
// slice.
func MapN[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return Map(workers, idx, func(i, _ int) (R, error) { return fn(i) })
}

// Reduce applies fn to every item concurrently and folds each result into
// the accumulator strictly in item order: the fold sequence is identical to
// a serial loop, so any accumulator — even one built on float arithmetic —
// is bit-identical for every worker count. Unlike Map, nothing is retained:
// a result is folded (and can be recycled by the fold) as soon as all lower
// indices have been folded, and at most a bounded reorder window of results
// is ever held, so steady-state memory is O(workers), not O(len(items)).
//
// fold runs serialized (never concurrently with itself) and must be cheap;
// it must not call back into the harness. On error, Reduce waits for
// in-flight work, discards the partial accumulator and returns the zero A
// with the error of the lowest-indexed failure, like Map.
func Reduce[T, R, A any](workers int, items []T, acc A, fn func(i int, item T) (R, error), fold func(acc A, i int, r R) A) (A, error) {
	return ReduceN(workers, len(items), acc, func(i int) (R, error) { return fn(i, items[i]) }, fold)
}

// ReduceN is Reduce over the index range [0, n), without materializing an
// item slice: the streaming unit of the campaign fabric, where systems are
// generated on demand from their index (gen.SystemAt) and folded into
// mergeable partial metrics as they complete.
func ReduceN[R, A any](workers, n int, acc A, fn func(i int) (R, error), fold func(acc A, i int, r R) A) (A, error) {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return acc, nil
	}
	// The reorder window bounds how far claims may run ahead of the fold
	// cursor: completed-but-unfoldable results are held (at most window of
	// them) until their turn. A few slots per worker absorb uneven unit
	// costs without letting a slow low index pile up the whole campaign.
	window := 4 * workers
	if window < 16 {
		window = 16
	}
	st := &reduceState[R, A]{
		pending: make(map[int]R, window),
		window:  window,
		errIdx:  -1,
		acc:     acc,
	}
	st.cond = sync.NewCond(&st.mu)
	var wg sync.WaitGroup
	budget := int64(Workers() - 1)
	for w := 1; w < workers && acquireWorker(budget); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer extraWorkers.Add(-1)
			st.run(n, fn, fold)
		}()
	}
	st.run(n, fn, fold)
	wg.Wait()
	if st.errIdx != -1 {
		var zero A
		return zero, st.err
	}
	return st.acc, nil
}

// reduceState is the shared claim/fold machine of one ReduceN call.
type reduceState[R, A any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	claim   int // next index to hand to a worker
	done    int // next index to fold (all below are folded)
	pending map[int]R
	window  int
	errIdx  int
	err     error
	acc     A
}

func (st *reduceState[R, A]) run(n int, fn func(i int) (R, error), fold func(acc A, i int, r R) A) {
	for {
		st.mu.Lock()
		// Claims are issued in increasing order (the lowest-index error
		// guarantee relies on it) and gated by the reorder window. Blocking
		// cannot deadlock: if every worker waits here, every claimed index
		// is in pending, so the fold loop below has already advanced done.
		for st.errIdx == -1 && st.claim < n && st.claim-st.done >= st.window {
			st.cond.Wait()
		}
		if st.errIdx != -1 || st.claim >= n {
			st.mu.Unlock()
			return
		}
		i := st.claim
		st.claim++
		st.mu.Unlock()

		counted := unitStart()
		r, err := fn(i)
		if counted {
			unitEnd()
		}

		st.mu.Lock()
		if err != nil {
			if st.errIdx == -1 || i < st.errIdx {
				st.errIdx, st.err = i, err
			}
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		st.pending[i] = r
		noteWindow(len(st.pending))
		for {
			next, ok := st.pending[st.done]
			if !ok {
				break
			}
			delete(st.pending, st.done)
			st.acc = fold(st.acc, st.done, next)
			st.done++
		}
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}
