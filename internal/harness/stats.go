package harness

import (
	"sync/atomic"

	"rtsj/internal/obs"
)

// Stats is the harness's observability hook set: high-water marks of how
// busy the shared worker pool actually gets and how deep ReduceN's
// reorder window runs. Process-wide (like the pool itself), installed
// with SetStats. Fields may be nil; a nil *Stats disables the layer.
type Stats struct {
	// BusyMax is the high-water mark of work units executing at once
	// across every concurrent Map/Reduce in the process.
	BusyMax *obs.Gauge
	// WindowMax is the high-water mark of ReduceN's reorder window —
	// completed results parked waiting for a slow lower index.
	WindowMax *obs.Gauge
}

// NewStats builds a Stats wired to registry r under "harness."-prefixed
// metric names. A nil registry yields nil instruments.
func NewStats(r *obs.Registry) *Stats {
	return &Stats{
		BusyMax:   r.Gauge("harness.workers_busy_max"),
		WindowMax: r.Gauge("harness.reorder_window_max"),
	}
}

// stats is the installed hook set (nil when observation is off) and
// busyUnits the live count of in-flight work units feeding BusyMax.
var (
	stats     atomic.Pointer[Stats]
	busyUnits atomic.Int64
)

// SetStats installs (or, with nil, removes) the process-wide harness
// stats. Safe to call at any time; the cmd front-ends wire it once at
// startup. Counting costs two atomic ops per work unit when installed
// and one pointer load when not.
func SetStats(s *Stats) { stats.Store(s) }

// unitStart counts a work unit entering execution; returns whether a
// matching unitEnd is owed (avoids the extra atomics when stats are off).
func unitStart() bool {
	s := stats.Load()
	if s == nil {
		return false
	}
	s.BusyMax.Max(busyUnits.Add(1))
	return true
}

// unitEnd counts a work unit leaving execution.
func unitEnd() { busyUnits.Add(-1) }

// noteWindow records the reorder-window occupancy after a result parked.
func noteWindow(n int) {
	if s := stats.Load(); s != nil {
		s.WindowMax.Max(int64(n))
	}
}
