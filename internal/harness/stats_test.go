package harness

import (
	"testing"

	"rtsj/internal/obs"
)

// Installed stats observe busy workers and reorder-window depth without
// changing results; removing them stops the counting.
func TestHarnessStats(t *testing.T) {
	reg := obs.NewRegistry()
	SetStats(NewStats(reg))
	defer SetStats(nil)

	got, err := ReduceN(4, 100, 0, func(i int) (int, error) { return i, nil },
		func(acc, _ int, r int) int { return acc + r })
	if err != nil {
		t.Fatal(err)
	}
	if got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	m := reg.Map()
	if m["harness.workers_busy_max"] <= 0 {
		t.Errorf("workers_busy_max = %d, want > 0", m["harness.workers_busy_max"])
	}
	if m["harness.reorder_window_max"] <= 0 {
		t.Errorf("reorder_window_max = %d, want > 0", m["harness.reorder_window_max"])
	}

	SetStats(nil)
	before := reg.Map()["harness.workers_busy_max"]
	if _, err := MapN(4, 50, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if after := reg.Map()["harness.workers_busy_max"]; after != before {
		t.Errorf("stats kept counting after SetStats(nil): %d -> %d", before, after)
	}
}
