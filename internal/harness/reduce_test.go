package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestReduceMatchesMap pins the streaming contract: for every worker count,
// Reduce folds exactly the values Map would retain, in exactly item order.
func TestReduceMatchesMap(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i, item int) (int, error) { return item*item + i, nil }
	want, err := Map(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := Reduce(workers, items, []int(nil),
			fn,
			func(acc []int, i int, r int) []int {
				if i != len(acc) {
					t.Errorf("workers=%d: folded index %d at fold position %d", workers, i, len(acc))
				}
				return append(acc, r)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: folded %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestReduceNEmpty checks the n=0 fast path returns the seed accumulator.
func TestReduceNEmpty(t *testing.T) {
	acc, err := ReduceN(4, 0, 42, func(i int) (int, error) { return 0, nil },
		func(acc, i, r int) int { return acc + r })
	if err != nil || acc != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", acc, err)
	}
}

// TestReduceLowestIndexError checks the error contract matches Map: the
// lowest-indexed failure wins regardless of which worker hits one first.
func TestReduceLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("unit %d failed", i) }
	for _, workers := range []int{1, 4, 8} {
		_, err := ReduceN(workers, 300, 0,
			func(i int) (int, error) {
				if i%7 == 3 {
					return 0, boom(i)
				}
				return i, nil
			},
			func(acc, i, r int) int { return acc + r })
		if err == nil || err.Error() != "unit 3 failed" {
			t.Fatalf("workers=%d: err = %v, want unit 3 failed", workers, err)
		}
	}
}

// TestReduceWindowBound checks that claims never run more than the reorder
// window ahead of the fold cursor, so at most O(window) results are ever
// held — the bounded-memory half of the streaming contract.
func TestReduceWindowBound(t *testing.T) {
	const workers = 4
	window := int64(4 * workers)
	if window < 16 {
		window = 16
	}
	var folded atomic.Int64
	var started atomic.Int64
	var maxAhead atomic.Int64
	_, err := ReduceN(workers, 5000, 0,
		func(i int) (int, error) {
			ahead := started.Add(1) - folded.Load()
			for {
				m := maxAhead.Load()
				if ahead <= m || maxAhead.CompareAndSwap(m, ahead) {
					break
				}
			}
			return i, nil
		},
		func(acc, i, r int) int {
			folded.Add(1)
			return acc + r
		})
	if err != nil {
		t.Fatal(err)
	}
	// started <= claim and folded lags the fold cursor read, so the
	// observed run-ahead can exceed the window only by the workers still
	// in flight.
	if got := maxAhead.Load(); got > window+workers {
		t.Fatalf("claims ran %d ahead of the fold cursor, want <= %d", got, window+workers)
	}
}

// TestReduceErrorDiscardsAccumulator checks a failing reduce returns the
// zero accumulator, not a partial fold.
func TestReduceErrorDiscardsAccumulator(t *testing.T) {
	sentinel := errors.New("stop")
	acc, err := ReduceN(2, 100, 7,
		func(i int) (int, error) {
			if i == 50 {
				return 0, sentinel
			}
			return 1, nil
		},
		func(acc, i, r int) int { return acc + r })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if acc != 0 {
		t.Fatalf("acc = %d, want zero value on error", acc)
	}
}
