package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4, 16, 200} {
		got, err := Map(workers, items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(3, items, func(i, item int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestNestedMapBoundsConcurrency(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	enter := func() {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	outer := make([]int, 6)
	_, err := Map(0, outer, func(int, int) (int, error) {
		inner := make([]int, 6)
		_, err := Map(0, inner, func(int, int) (int, error) {
			enter()
			runtime.Gosched()
			cur.Add(-1)
			return 0, nil
		})
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf work across both nesting levels shares one process-wide pool:
	// the caller chain plus at most Workers()-1 helpers.
	if p := peak.Load(); p > 3 {
		t.Fatalf("nested peak concurrency %d exceeds Workers()=3", p)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	items := make([]int, 50)
	for trial := 0; trial < 10; trial++ {
		_, err := Map(8, items, func(i, item int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("unit %d failed", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "unit 7 failed" {
			t.Fatalf("trial %d: err = %v, want unit 7 failed", trial, err)
		}
	}
}

func TestMapSingleError(t *testing.T) {
	want := errors.New("boom")
	_, err := Map(1, []int{0, 1, 2}, func(i, item int) (int, error) {
		if i == 1 {
			return 0, want
		}
		return 0, nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapN(t *testing.T) {
	got, err := MapN(4, 10, func(i int) (string, error) {
		return fmt.Sprintf("u%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != fmt.Sprintf("u%d", i) {
			t.Fatalf("got[%d] = %q", i, v)
		}
	}
}

func TestWorkersPrecedence(t *testing.T) {
	SetWorkers(0)
	t.Cleanup(func() { SetWorkers(0) })

	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	t.Setenv(EnvWorkers, "3")
	if got := Workers(); got != 3 {
		t.Fatalf("env Workers() = %d, want 3", got)
	}
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("override Workers() = %d, want 5", got)
	}
	// Invalid env values — non-numeric, zero, negative — all fall back to
	// GOMAXPROCS (with a once-per-process warning on stderr).
	SetWorkers(0)
	for _, bad := range []string{"junk", "0", "-2", "3.5"} {
		t.Setenv(EnvWorkers, bad)
		if got := Workers(); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("%s=%q: Workers() = %d, want GOMAXPROCS", EnvWorkers, bad, got)
		}
	}
}
