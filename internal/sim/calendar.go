package sim

import "rtsj/internal/rtime"

// release is one pending release in the calendar: either the next release
// of periodic task idx, or (ap=true) the aperiodic cursor standing at
// position idx of the release-sorted aperiodic order.
type release struct {
	at  rtime.Time
	ap  bool
	idx int
}

// before orders releases by (instant, periodic-before-aperiodic, index).
// This is exactly the delivery order of the original linear-scan engine:
// at any instant, periodic releases in task order first, then aperiodic
// arrivals in release order.
func (r release) before(o release) bool {
	if r.at != o.at {
		return r.at < o.at
	}
	if r.ap != o.ap {
		return !r.ap
	}
	return r.idx < o.idx
}

// calendar tracks pending release instants. The engine pops due releases
// one at a time and pushes each successor (the task's next period, or the
// advanced aperiodic cursor) back.
type calendar interface {
	// next returns the earliest pending release instant (rtime.Never when
	// the calendar is exhausted).
	next() rtime.Time
	// popDue removes and returns the earliest release at or before now.
	popDue(now rtime.Time) (release, bool)
	// push schedules a release.
	push(r release)
}

// heapCalendar is a binary min-heap of releases: next() is O(1) and each
// delivery is O(log n) instead of the linear scan over every periodic task
// the seed engine performed at every decision instant.
type heapCalendar struct{ a []release }

func (h *heapCalendar) next() rtime.Time {
	if len(h.a) == 0 {
		return rtime.Never
	}
	return h.a[0].at
}

func (h *heapCalendar) popDue(now rtime.Time) (release, bool) {
	if len(h.a) == 0 || h.a[0].at > now {
		return release{}, false
	}
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.a[l].before(h.a[m]) {
			m = l
		}
		if r < n && h.a[r].before(h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top, true
}

func (h *heapCalendar) push(r release) {
	h.a = append(h.a, r)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.a[i].before(h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// linearCalendar reproduces the seed engine's linear scans verbatim: one
// slot per periodic task plus the aperiodic cursor, scanned in task order
// at every call. It is kept as the reference implementation for the
// differential test against heapCalendar (and as a debugging fallback).
type linearCalendar struct {
	periodic []rtime.Time // next release per periodic task; Never when unset
	apAt     rtime.Time   // aperiodic cursor instant; Never when exhausted
	apPos    int          // aperiodic cursor position (sorted order)
}

func newLinearCalendar(nPeriodic int) *linearCalendar {
	c := &linearCalendar{periodic: make([]rtime.Time, nPeriodic), apAt: rtime.Never}
	for i := range c.periodic {
		c.periodic[i] = rtime.Never
	}
	return c
}

func (c *linearCalendar) next() rtime.Time {
	t := rtime.Never
	for _, r := range c.periodic {
		t = rtime.Min(t, r)
	}
	return rtime.Min(t, c.apAt)
}

func (c *linearCalendar) popDue(now rtime.Time) (release, bool) {
	for i, r := range c.periodic {
		if r <= now {
			c.periodic[i] = rtime.Never
			return release{at: r, idx: i}, true
		}
	}
	if c.apAt <= now {
		r := release{at: c.apAt, ap: true, idx: c.apPos}
		c.apAt = rtime.Never
		return r, true
	}
	return release{}, false
}

func (c *linearCalendar) push(r release) {
	if r.ap {
		c.apAt, c.apPos = r.at, r.idx
		return
	}
	c.periodic[r.idx] = r.at
}
