package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		sys  System
		ok   bool
	}{
		{"empty", System{}, true},
		{"good periodic", System{Periodics: []PeriodicTask{{Name: "a", Period: rtime.TUs(5), Cost: rtime.TUs(1)}}}, true},
		{"zero period", System{Periodics: []PeriodicTask{{Name: "a", Cost: rtime.TUs(1)}}}, false},
		{"cost > period", System{Periodics: []PeriodicTask{{Name: "a", Period: rtime.TUs(1), Cost: rtime.TUs(2)}}}, false},
		{"negative deadline", System{Periodics: []PeriodicTask{{Name: "a", Period: rtime.TUs(5), Cost: rtime.TUs(1), Deadline: -1}}}, false},
		{"zero cost aperiodic", System{Aperiodics: []AperiodicJob{{Name: "j"}}}, false},
		{"negative release", System{Aperiodics: []AperiodicJob{{Name: "j", Cost: 1, Release: -1}}}, false},
		{"bad server", System{Server: &ServerSpec{Policy: PollingServer}}, false},
		{"background server ok", System{Server: &ServerSpec{Policy: NoServer}}, true},
	}
	for _, c := range cases {
		err := c.sys.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestUtilization(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "a", Period: rtime.TUs(4), Cost: rtime.TUs(1)},
			{Name: "b", Period: rtime.TUs(8), Cost: rtime.TUs(2)},
		},
		Server: &ServerSpec{Policy: PollingServer, Capacity: rtime.TUs(1), Period: rtime.TUs(4)},
	}
	if got, want := sys.Utilization(), 0.25+0.25+0.25; got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[ServerPolicy]string{
		NoServer: "BG", PollingServer: "PS", DeferrableServer: "DS",
		LimitedPollingServer: "PS-lim", LimitedDeferrableServer: "DS-lim",
		SporadicServer: "SS",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestJobHeapOrdering(t *testing.T) {
	var h jobHeap
	mk := func(prio int, seq int64) *Job { return &Job{Priority: prio, seq: seq} }
	jobs := []*Job{mk(1, 0), mk(3, 1), mk(2, 2), mk(3, 3), mk(5, 4)}
	for _, j := range jobs {
		h.push(j)
	}
	wantSeq := []int64{4, 1, 3, 2, 0} // prio 5, 3(seq1), 3(seq3), 2, 1
	for i, want := range wantSeq {
		j := h.pop()
		if j == nil || j.seq != want {
			t.Fatalf("pop %d: got %+v, want seq %d", i, j, want)
		}
	}
	if h.pop() != nil {
		t.Fatal("pop from empty heap should be nil")
	}
}

func TestJobHeapRemove(t *testing.T) {
	var h jobHeap
	jobs := make([]*Job, 10)
	for i := range jobs {
		jobs[i] = &Job{Priority: i % 3, seq: int64(i)}
		h.push(jobs[i])
	}
	if !h.remove(jobs[4]) {
		t.Fatal("remove failed")
	}
	if h.remove(jobs[4]) {
		t.Fatal("double remove succeeded")
	}
	if h.len() != 9 {
		t.Fatalf("len = %d", h.len())
	}
	// Remaining pops must still be correctly ordered.
	var prev *Job
	for j := h.pop(); j != nil; j = h.pop() {
		if prev != nil && (j.Priority > prev.Priority ||
			(j.Priority == prev.Priority && j.seq < prev.seq)) {
			t.Fatalf("heap order violated: %+v after %+v", j, prev)
		}
		prev = j
	}
}

func TestDLHeapOrdering(t *testing.T) {
	var h dlHeap
	mk := func(dl float64, seq int64) *Job { return &Job{AbsDL: rtime.AtTU(dl), seq: seq} }
	jobs := []*Job{mk(10, 0), mk(5, 1), mk(7, 2), mk(5, 3)}
	for _, j := range jobs {
		h.push(j)
	}
	wantSeq := []int64{1, 3, 2, 0}
	for i, want := range wantSeq {
		j := h.peek()
		if j.seq != want {
			t.Fatalf("peek %d: got seq %d, want %d", i, j.seq, want)
		}
		h.remove(j)
	}
}

func TestFIFOFirstFitting(t *testing.T) {
	var q fifoQueue
	a := &Job{name: "a", Declared: rtime.TUs(3)}
	b := &Job{name: "b", Declared: rtime.TUs(1)}
	q.push(a)
	q.push(b)
	// Budget 2: a (cost 3) does not fit, b (cost 1, released later) does —
	// the paper points out this out-of-order service explicitly.
	got := q.firstFitting(func(*Job) rtime.Duration { return rtime.TUs(2) })
	if got != b {
		t.Fatalf("firstFitting = %v, want b", got)
	}
	got = q.firstFitting(func(*Job) rtime.Duration { return rtime.TUs(3) })
	if got != a {
		t.Fatalf("firstFitting = %v, want a", got)
	}
	if q.firstFitting(func(*Job) rtime.Duration { return 0 }) != nil {
		t.Fatal("zero budget should fit nothing")
	}
}

func TestPeriodicOnlyFPSchedule(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "hi", Period: rtime.TUs(4), Cost: rtime.TUs(1), Priority: 2},
			{Name: "lo", Period: rtime.TUs(8), Cost: rtime.TUs(3), Priority: 1},
		},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 8)
	checkSegments(t, r.Trace, "hi", []seg{{0, 1, ""}, {4, 5, ""}})
	checkSegments(t, r.Trace, "lo", []seg{{1, 4, ""}})
	if r.PeriodicMisses != 0 {
		t.Errorf("misses = %d", r.PeriodicMisses)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// Two tasks with combined demand 3 in a 2tu period at the same priority
	// level cannot both make it.
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "a", Period: rtime.TUs(2), Cost: rtime.TUs(1), Priority: 2},
			{Name: "b", Period: rtime.TUs(2), Cost: rtime.TUs(2), Priority: 1},
		},
	}
	tr := trace.New()
	r, err := Run(sys, NewFP(sys, tr), rtime.AtTU(8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeriodicMisses == 0 {
		t.Fatal("expected deadline misses in an overloaded system")
	}
}

func TestBackgroundServicing(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "p", Period: rtime.TUs(4), Cost: rtime.TUs(2), Priority: 1},
		},
		Aperiodics: []AperiodicJob{
			{Name: "j1", Release: rtime.AtTU(0), Cost: rtime.TUs(3)},
		},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 12)
	// Background job only runs in the idle slots [2,4), [6,7).
	checkSegments(t, r.Trace, "j1", []seg{{2, 4, ""}, {6, 7, ""}})
	j := r.Aperiodics()[0]
	if !j.Finished || j.ResponseTime() != rtime.TUs(7) {
		t.Fatalf("background response = %v, want 7tu", j.ResponseTime())
	}
}

func TestSporadicServerReplenishment(t *testing.T) {
	sys := System{
		Aperiodics: []AperiodicJob{
			{Name: "a1", Release: rtime.AtTU(1), Cost: rtime.TUs(2)},
			{Name: "a2", Release: rtime.AtTU(4), Cost: rtime.TUs(2)},
		},
		Server: &ServerSpec{Name: "SS", Policy: SporadicServer,
			Capacity: rtime.TUs(2), Period: rtime.TUs(5), Priority: 10},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 20)
	// a1 consumes the full capacity [1,3); replenishment of 2 at 1+5=6;
	// a2 (arrived at 4) waits until 6 and is served [6,8).
	checkSegments(t, r.Trace, "SS", []seg{{1, 3, "a1"}, {6, 8, "a2"}})
}

func TestEDFSchedulesByDeadline(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "long", Period: rtime.TUs(10), Cost: rtime.TUs(3)},
			{Name: "short", Period: rtime.TUs(4), Cost: rtime.TUs(1)},
		},
	}
	tr := trace.New()
	r, err := Run(sys, NewEDF(), rtime.AtTU(10), tr)
	if err != nil {
		t.Fatal(err)
	}
	// short (deadline 4) runs before long (deadline 10).
	checkSegments(t, tr, "short", []seg{{0, 1, ""}, {4, 5, ""}, {8, 9, ""}})
	checkSegments(t, tr, "long", []seg{{1, 4, ""}})
	if r.PeriodicMisses != 0 {
		t.Errorf("misses = %d", r.PeriodicMisses)
	}
}

func TestEDFNoMissesWhenUnderUnity(t *testing.T) {
	// Classical result: EDF meets all deadlines iff U <= 1 (implicit
	// deadlines). Exercise with random sets kept under U = 1.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		var sys System
		u := 0.0
		for i := 0; i < n; i++ {
			period := 2 + rng.Intn(20)
			maxC := float64(period) * (0.95 - u) // leave headroom
			if maxC < 0.1 {
				break
			}
			c := 0.1 + rng.Float64()*(maxC-0.1)
			u += c / float64(period)
			sys.Periodics = append(sys.Periodics, PeriodicTask{
				Name:   string(rune('a' + i)),
				Period: rtime.TUs(float64(period)),
				Cost:   rtime.TUs(c),
			})
		}
		tr := trace.New()
		r, err := Run(sys, NewEDF(), rtime.AtTU(200), tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.PeriodicMisses != 0 {
			t.Fatalf("trial %d: EDF missed %d deadlines at U=%.3f", trial, r.PeriodicMisses, u)
		}
		if err := tr.CheckSingleCPU(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: under every dispatcher, the trace is a valid uniprocessor
// schedule and every finished aperiodic job received exactly its cost.
func TestEnginePropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng)
		for _, mk := range []func(*trace.Trace) Dispatcher{
			func(tr *trace.Trace) Dispatcher { return NewFP(sys, tr) },
			func(*trace.Trace) Dispatcher { return NewEDF() },
			func(tr *trace.Trace) Dispatcher { return NewDOver(sys, tr) },
		} {
			tr := trace.New()
			r, err := Run(sys, mk(tr), rtime.AtTU(60), tr)
			if err != nil {
				t.Logf("run error: %v", err)
				return false
			}
			if err := tr.CheckSingleCPU(); err != nil {
				t.Logf("overlap: %v", err)
				return false
			}
			for _, j := range r.Jobs {
				if j.Finished && j.Remaining != 0 {
					t.Logf("finished job %s with remaining %v", j.Name(), j.Remaining)
					return false
				}
				if j.Finished && j.Aborted {
					t.Logf("job %s both finished and aborted", j.Name())
					return false
				}
				got := servedTime(tr, j)
				if j.Finished && got != j.Cost {
					t.Logf("job %s traced %v, cost %v", j.Name(), got, j.Cost)
					return false
				}
				if !j.Finished && got > j.Cost {
					t.Logf("unfinished job %s overserved: %v > %v", j.Name(), got, j.Cost)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// servedTime sums the trace segments attributed to job j.
func servedTime(tr *trace.Trace, j *Job) rtime.Duration {
	var total rtime.Duration
	for _, s := range tr.Segments {
		if j.Periodic {
			continue // periodic rows aggregate all instances; skip
		}
		if s.Entity == j.Entity && s.Label == j.Label && j.Label != "" {
			total += s.Dur()
		}
		if s.Entity == j.Name() && s.Label == "" && j.Label == "" {
			total += s.Dur()
		}
	}
	if j.Periodic {
		return j.Cost - j.Remaining
	}
	return total
}

// randomSystem builds a small random workload with a random server policy.
func randomSystem(rng *rand.Rand) System {
	var sys System
	n := rng.Intn(3)
	for i := 0; i < n; i++ {
		period := 3 + rng.Intn(10)
		cost := 1 + rng.Float64()*float64(period-1)/2
		sys.Periodics = append(sys.Periodics, PeriodicTask{
			Name:     "p" + string(rune('0'+i)),
			Period:   rtime.TUs(float64(period)),
			Cost:     rtime.TUs(cost),
			Priority: 1 + i,
		})
	}
	m := 1 + rng.Intn(6)
	for i := 0; i < m; i++ {
		sys.Aperiodics = append(sys.Aperiodics, AperiodicJob{
			Name:     "j" + string(rune('0'+i)),
			Release:  rtime.AtTU(rng.Float64() * 40),
			Cost:     rtime.TUs(0.1 + rng.Float64()*5),
			Deadline: rtime.TUs(5 + rng.Float64()*20),
		})
	}
	policies := []ServerPolicy{NoServer, PollingServer, DeferrableServer,
		LimitedPollingServer, LimitedDeferrableServer, SporadicServer}
	p := policies[rng.Intn(len(policies))]
	if p != NoServer {
		sys.Server = &ServerSpec{
			Policy:   p,
			Capacity: rtime.TUs(1 + rng.Float64()*3),
			Period:   rtime.TUs(4 + rng.Float64()*6),
			Priority: 100,
		}
	}
	return sys
}

func TestResultPartitions(t *testing.T) {
	sys := table1System(PollingServer, 0, 0, 6)
	r := mustRun(t, sys, fpDispatcher(sys), 12)
	if len(r.Aperiodics()) != 2 {
		t.Errorf("aperiodics = %d", len(r.Aperiodics()))
	}
	if len(r.Periodics()) != 4 { // 2 tasks x 2 instances
		t.Errorf("periodics = %d", len(r.Periodics()))
	}
}
