package sim

import (
	"fmt"
	"math"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// jobHeap is a binary max-heap of periodic jobs ordered by (priority desc,
// seq asc). The running job stays at the top until it completes.
type jobHeap struct{ a []*Job }

func (h *jobHeap) less(i, j int) bool {
	if h.a[i].Priority != h.a[j].Priority {
		return h.a[i].Priority > h.a[j].Priority
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *jobHeap) swap(i, j int) { h.a[i], h.a[j] = h.a[j], h.a[i] }

func (h *jobHeap) push(j *Job) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *jobHeap) peek() *Job {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *jobHeap) pop() *Job {
	n := len(h.a)
	if n == 0 {
		return nil
	}
	top := h.a[0]
	h.a[0] = h.a[n-1]
	h.a = h.a[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		h.swap(i, m)
		i = m
	}
	return top
}

func (h *jobHeap) remove(j *Job) bool {
	for i, x := range h.a {
		if x == j {
			// Replace with last, then restore heap order by rebuilding
			// the affected path. Simplest correct approach: rebuild.
			h.a[i] = h.a[len(h.a)-1]
			h.a = h.a[:len(h.a)-1]
			old := h.a
			h.a = nil
			for _, y := range old {
				h.push(y)
			}
			return true
		}
	}
	return false
}

func (h *jobHeap) len() int { return len(h.a) }

// server is the interface between the FP dispatcher and an aperiodic
// servicing policy.
type server interface {
	name() string
	priority() int
	// arrive enqueues an aperiodic job. The server may reattribute the
	// job's trace row (Entity/Label).
	arrive(now rtime.Time, j *Job)
	// tick processes internal events (replenishments, activations) due at
	// or before now.
	tick(now rtime.Time, tr *trace.Trace)
	// pick returns the job the server wants to run now and a bound on how
	// long it may run before the server needs control again (0 = no bound).
	pick(now rtime.Time) (*Job, rtime.Duration)
	// nextEvent returns the next internal event instant (rtime.Never if none).
	nextEvent(now rtime.Time) rtime.Time
	// consumed charges delta of service; it may abort the job.
	consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace)
	// completed removes a finished job.
	completed(now rtime.Time, j *Job)
}

// FP is the preemptive fixed-priority dispatcher, optionally extended with
// an aperiodic task server, as in the paper's RTSS.
type FP struct {
	ready jobHeap
	srv   server
	tr    *trace.Trace
}

// NewFP builds a fixed-priority dispatcher for sys. Aperiodic jobs are
// routed to the configured server; without a server they are executed in the
// background (lowest priority), the baseline discussed in Section 2 of the
// paper.
func NewFP(sys System, tr *trace.Trace) *FP {
	d := &FP{tr: tr}
	spec := sys.Server
	if spec == nil {
		spec = &ServerSpec{Policy: NoServer}
	}
	switch spec.Policy {
	case NoServer:
		d.srv = newBackground(spec.name())
	case PollingServer:
		d.srv = newPSIdeal(*spec)
	case DeferrableServer:
		d.srv = newDSIdeal(*spec)
	case LimitedPollingServer:
		d.srv = newPSLimited(*spec)
	case LimitedDeferrableServer:
		d.srv = newDSLimited(*spec)
	case SporadicServer:
		d.srv = newSS(*spec)
	case PriorityExchange:
		d.srv = newPE(*spec)
	case SlackStealer:
		st := newSlackStealer(*spec, sys)
		st.fp = d
		d.srv = st
	default:
		panic(fmt.Sprintf("sim: unknown server policy %v", spec.Policy))
	}
	if tr != nil && spec.Policy != NoServer {
		tr.DeclareEntity(spec.name())
	}
	return d
}

// Name implements Dispatcher.
func (d *FP) Name() string { return "FP+" + d.srv.name() }

// Release implements Dispatcher.
func (d *FP) Release(now rtime.Time, j *Job) {
	if j.Periodic {
		d.ready.push(j)
		return
	}
	d.srv.arrive(now, j)
}

// Tick implements Dispatcher.
func (d *FP) Tick(now rtime.Time) { d.srv.tick(now, d.tr) }

// Pick implements Dispatcher.
func (d *FP) Pick(now rtime.Time) (*Job, rtime.Duration) {
	pj := d.ready.peek()
	sj, slice := d.srv.pick(now)
	if sj != nil && (pj == nil || d.srv.priority() >= pj.Priority) {
		return sj, slice
	}
	if pj != nil {
		return pj, 0
	}
	return sj, slice
}

// NextEvent implements Dispatcher.
func (d *FP) NextEvent(now rtime.Time) rtime.Time { return d.srv.nextEvent(now) }

// Consumed implements Dispatcher.
func (d *FP) Consumed(now rtime.Time, j *Job, delta rtime.Duration) {
	if !j.Periodic {
		d.srv.consumed(now, j, delta, d.tr)
		return
	}
	if obs, ok := d.srv.(exchangeObserver); ok {
		obs.observeRun(now, j.Priority, delta)
	}
}

// Idle implements IdleObserver: idle processor time is reported to servers
// that exchange capacity (PE loses preserved capacity to idleness).
func (d *FP) Idle(now rtime.Time, delta rtime.Duration) {
	if obs, ok := d.srv.(exchangeObserver); ok {
		obs.observeIdle(now, delta)
	}
}

// Completed implements Dispatcher.
func (d *FP) Completed(now rtime.Time, j *Job) {
	if j.Periodic {
		if !d.ready.remove(j) {
			panic(fmt.Sprintf("sim: completed periodic job %s not in ready heap", j.Name()))
		}
		return
	}
	d.srv.completed(now, j)
}

// background serves aperiodics FIFO at the lowest possible priority.
type background struct {
	nm    string
	queue []*Job
}

func newBackground(name string) *background {
	if name == "" || name == "BG" {
		name = "BG"
	}
	return &background{nm: name}
}

func (b *background) name() string  { return "BG" }
func (b *background) priority() int { return math.MinInt }

func (b *background) arrive(now rtime.Time, j *Job) { b.queue = append(b.queue, j) }

func (b *background) tick(rtime.Time, *trace.Trace) {}

func (b *background) pick(rtime.Time) (*Job, rtime.Duration) {
	if len(b.queue) == 0 {
		return nil, 0
	}
	return b.queue[0], 0
}

func (b *background) nextEvent(rtime.Time) rtime.Time { return rtime.Never }

func (b *background) consumed(rtime.Time, *Job, rtime.Duration, *trace.Trace) {}

func (b *background) completed(now rtime.Time, j *Job) {
	if len(b.queue) == 0 || b.queue[0] != j {
		panic("sim: background completed job is not queue head")
	}
	b.queue = b.queue[1:]
}
