package sim

import (
	"sort"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// slackStealer implements dynamic slack stealing (Lehoczky & Ramos-Thuel),
// the last of the server families the paper cites: aperiodic work runs at
// the *highest* priority for as long as doing so cannot make any periodic
// task miss a deadline.
//
// The available slack at time t is computed by lookahead: the largest delta
// such that inserting delta units of top-priority service at t leaves the
// simulated periodic-only schedule free of deadline misses. The lookahead
// window extends past the insertion-affected busy period; binary search
// over delta converges to 1us granularity. This is a conservative
// approximation of the exact (table-driven) slack-stealing algorithm —
// optimal slack stealing needs per-task slack functions, but the
// observable behaviour (immediate service while slack lasts, throttling
// near deadlines) is preserved.
type slackStealer struct {
	nm    string
	sys   System
	fp    *FP
	queue fifoQueue
}

func newSlackStealer(spec ServerSpec, sys System) *slackStealer {
	return &slackStealer{nm: spec.name(), sys: sys}
}

func (s *slackStealer) name() string  { return "SLACK" }
func (s *slackStealer) priority() int { return int(^uint(0) >> 1) } // always top

func (s *slackStealer) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *slackStealer) tick(rtime.Time, *trace.Trace) {}

func (s *slackStealer) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.queue.empty() {
		return nil, 0
	}
	slack := s.availableSlack(now)
	if slack <= 0 {
		return nil, 0
	}
	return s.queue.head(), slack
}

func (s *slackStealer) nextEvent(rtime.Time) rtime.Time { return rtime.Never }

func (s *slackStealer) consumed(rtime.Time, *Job, rtime.Duration, *trace.Trace) {}

func (s *slackStealer) completed(now rtime.Time, j *Job) {
	if !s.queue.remove(j) {
		panic("sim: slack stealer completed job not queued")
	}
}

// laJob is a lookahead copy of a periodic job.
type laJob struct {
	rel  rtime.Time
	dl   rtime.Time
	rem  rtime.Duration
	prio int
	seq  int64
}

// availableSlack binary-searches the largest top-priority insertion at now
// that keeps every periodic deadline in the lookahead window.
func (s *slackStealer) availableSlack(now rtime.Time) rtime.Duration {
	maxT := rtime.Duration(0)
	for _, t := range s.sys.Periodics {
		maxT = rtime.MaxDur(maxT, t.Period)
		maxT = rtime.MaxDur(maxT, t.RelDeadline())
	}
	if maxT == 0 {
		return rtime.Duration(1) << 40 // no periodic tasks: infinite slack
	}
	// Upper bound on useful slack: the head's remaining plus queued work.
	var want rtime.Duration
	for _, j := range s.queue.q {
		want += j.Remaining
	}
	lo, hi := rtime.Duration(0), want
	if !s.feasibleWith(now, hi, maxT) {
		for lo+rtime.Microsecond < hi {
			mid := (lo + hi) / 2
			if s.feasibleWith(now, mid, maxT) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	return hi
}

// feasibleWith simulates the periodic-only FP schedule from the current
// state with delta units of top-priority stealing inserted at now, and
// reports whether every deadline inside the window holds.
func (s *slackStealer) feasibleWith(now rtime.Time, delta rtime.Duration, maxT rtime.Duration) bool {
	bound := now.Add(delta + 4*maxT)
	var jobs []laJob
	// Currently ready periodic jobs (the stealer never touches their state).
	for _, j := range s.fp.ready.a {
		jobs = append(jobs, laJob{rel: j.Release, dl: j.AbsDL, rem: j.Remaining, prio: j.Priority, seq: j.seq})
	}
	// Future releases within the window.
	seq := int64(1 << 40)
	for _, t := range s.sys.Periodics {
		rel := t.Offset
		if rel < now {
			k := rtime.DivCeil(now.Sub(t.Offset), t.Period)
			rel = t.Offset.Add(rtime.Duration(k) * t.Period)
			if rel == now {
				// A release exactly at now is already in the ready set.
				rel = rel.Add(t.Period)
			}
		}
		for ; rel < bound; rel = rel.Add(t.Period) {
			jobs = append(jobs, laJob{
				rel: rel, dl: rel.Add(t.RelDeadline()), rem: t.Cost, prio: t.Priority, seq: seq,
			})
			seq++
		}
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].rel != jobs[b].rel {
			return jobs[a].rel < jobs[b].rel
		}
		return jobs[a].seq < jobs[b].seq
	})

	// Event-driven FP forward simulation with the steal first.
	t := now
	steal := delta
	next := 0
	var ready []*laJob
	for {
		for next < len(jobs) && jobs[next].rel <= t {
			ready = append(ready, &jobs[next])
			next = next + 1
		}
		// Highest-priority pending work; the steal outranks everything.
		if steal > 0 {
			adv := steal
			if next < len(jobs) && jobs[next].rel.Sub(t) < adv {
				adv = jobs[next].rel.Sub(t)
			}
			t = t.Add(adv)
			steal -= adv
			continue
		}
		var run *laJob
		for _, j := range ready {
			if j.rem == 0 {
				continue
			}
			if run == nil || j.prio > run.prio || (j.prio == run.prio && j.seq < run.seq) {
				run = j
			}
		}
		if run == nil {
			if next >= len(jobs) {
				return true // drained: every checked deadline held
			}
			t = jobs[next].rel
			continue
		}
		adv := run.rem
		if next < len(jobs) && jobs[next].rel.Sub(t) < adv {
			adv = jobs[next].rel.Sub(t)
		}
		t = t.Add(adv)
		run.rem -= adv
		if run.rem == 0 && t > run.dl {
			return false
		}
		if t >= bound {
			return true
		}
	}
}
