package sim

import (
	"fmt"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// fifoQueue is the pending-events list shared by all server policies.
type fifoQueue struct{ q []*Job }

func (f *fifoQueue) push(j *Job) { f.q = append(f.q, j) }
func (f *fifoQueue) empty() bool { return len(f.q) == 0 }
func (f *fifoQueue) head() *Job  { return f.q[0] }
func (f *fifoQueue) remove(j *Job) bool {
	for i, x := range f.q {
		if x == j {
			f.q = append(f.q[:i], f.q[i+1:]...)
			return true
		}
	}
	return false
}

// firstFitting returns the first queued job whose declared cost fits the
// given budget function, in FIFO order. This is the paper's
// chooseNextEvent: "the first handler in the list which has a cost lower
// than the remaining capacity", which can serve a later-released event
// before an earlier, larger one.
func (f *fifoQueue) firstFitting(budget func(*Job) rtime.Duration) *Job {
	for _, j := range f.q {
		if j.Declared <= budget(j) {
			return j
		}
	}
	return nil
}

func (f *fifoQueue) attribute(srvName string, j *Job) {
	j.Entity = srvName
	j.Label = j.Name()
}

// ---------------------------------------------------------------------------
// Ideal Polling Server (literature behaviour, resumable service).

type psIdeal struct {
	nm       string
	prio     int
	cs       rtime.Duration
	ts       rtime.Duration
	rem      rtime.Duration
	nextRepl rtime.Time
	queue    fifoQueue
}

func newPSIdeal(spec ServerSpec) *psIdeal {
	return &psIdeal{nm: spec.name(), prio: spec.Priority, cs: spec.Capacity, ts: spec.Period}
}

func (s *psIdeal) name() string  { return s.nm }
func (s *psIdeal) priority() int { return s.prio }

func (s *psIdeal) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *psIdeal) tick(now rtime.Time, tr *trace.Trace) {
	for now >= s.nextRepl {
		s.rem = s.cs
		if tr != nil {
			tr.Mark(s.nm, s.nextRepl, trace.Replenish, "")
		}
		s.nextRepl = s.nextRepl.Add(s.ts)
	}
	// A polling server discards its capacity as soon as it has nothing to
	// poll: at activation with an empty queue, or when the queue drains.
	if s.rem > 0 && s.queue.empty() {
		s.rem = 0
		if tr != nil {
			tr.Mark(s.nm, now, trace.CapacityLost, "")
		}
	}
}

func (s *psIdeal) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.rem <= 0 || s.queue.empty() {
		return nil, 0
	}
	return s.queue.head(), s.rem
}

func (s *psIdeal) nextEvent(now rtime.Time) rtime.Time { return s.nextRepl }

func (s *psIdeal) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	s.rem -= delta
	if s.rem < 0 {
		panic("sim: polling server capacity went negative")
	}
}

func (s *psIdeal) completed(now rtime.Time, j *Job) {
	if !s.queue.remove(j) {
		panic(fmt.Sprintf("sim: PS completed job %s not queued", j.Name()))
	}
}

// ---------------------------------------------------------------------------
// Ideal Deferrable Server (literature behaviour, resumable service).

type dsIdeal struct {
	nm       string
	prio     int
	cs       rtime.Duration
	ts       rtime.Duration
	rem      rtime.Duration
	nextRepl rtime.Time
	queue    fifoQueue
}

func newDSIdeal(spec ServerSpec) *dsIdeal {
	return &dsIdeal{nm: spec.name(), prio: spec.Priority, cs: spec.Capacity, ts: spec.Period}
}

func (s *dsIdeal) name() string  { return s.nm }
func (s *dsIdeal) priority() int { return s.prio }

func (s *dsIdeal) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *dsIdeal) tick(now rtime.Time, tr *trace.Trace) {
	for now >= s.nextRepl {
		s.rem = s.cs
		if tr != nil {
			tr.Mark(s.nm, s.nextRepl, trace.Replenish, "")
		}
		s.nextRepl = s.nextRepl.Add(s.ts)
	}
}

func (s *dsIdeal) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.rem <= 0 || s.queue.empty() {
		return nil, 0
	}
	return s.queue.head(), s.rem
}

func (s *dsIdeal) nextEvent(now rtime.Time) rtime.Time { return s.nextRepl }

func (s *dsIdeal) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	s.rem -= delta
	if s.rem < 0 {
		panic("sim: deferrable server capacity went negative")
	}
}

func (s *dsIdeal) completed(now rtime.Time, j *Job) {
	if !s.queue.remove(j) {
		panic(fmt.Sprintf("sim: DS completed job %s not queued", j.Name()))
	}
}

// ---------------------------------------------------------------------------
// Limited Polling Server: the paper's Java implementation semantics.
//
// A handler is admitted only if its *declared* cost fits the remaining
// capacity (handlers are not resumable in Java), and is then executed under
// a Timed budget equal to the remaining capacity: if its actual demand
// exceeds the budget it is asynchronously interrupted and discarded. If the
// serving burst overruns a period boundary, that activation is skipped
// (waitForNextPeriod returns at the following boundary), exactly as a
// periodic RealtimeThread would behave.

type psLimited struct {
	nm       string
	prio     int
	cs       rtime.Duration
	ts       rtime.Duration
	rem      rtime.Duration
	nextAct  rtime.Time
	sleeping bool
	cur      *Job
	budget   rtime.Duration
	queue    fifoQueue
}

func newPSLimited(spec ServerSpec) *psLimited {
	return &psLimited{
		nm:       spec.name(),
		prio:     spec.Priority,
		cs:       spec.Capacity,
		ts:       spec.Period,
		sleeping: true,
		nextAct:  0,
	}
}

func (s *psLimited) name() string  { return s.nm }
func (s *psLimited) priority() int { return s.prio }

func (s *psLimited) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *psLimited) tick(now rtime.Time, tr *trace.Trace) {
	if s.sleeping && now >= s.nextAct {
		// Periodic activation: recover full capacity.
		s.rem = s.cs
		s.sleeping = false
		if tr != nil {
			tr.Mark(s.nm, now, trace.Replenish, "")
		}
		for s.nextAct <= now {
			s.nextAct = s.nextAct.Add(s.ts)
		}
	}
	if !s.sleeping && s.cur == nil {
		s.cur = s.queue.firstFitting(func(*Job) rtime.Duration { return s.rem })
		if s.cur != nil {
			s.budget = s.rem
		} else {
			// chooseNextEvent returned null: lose the remaining capacity
			// and wait for the next period.
			if s.rem > 0 && tr != nil {
				tr.Mark(s.nm, now, trace.CapacityLost, "")
			}
			s.rem = 0
			s.sleeping = true
			for s.nextAct <= now {
				s.nextAct = s.nextAct.Add(s.ts)
			}
		}
	}
}

func (s *psLimited) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.sleeping || s.cur == nil {
		return nil, 0
	}
	return s.cur, s.budget
}

func (s *psLimited) nextEvent(now rtime.Time) rtime.Time {
	if s.sleeping {
		return s.nextAct
	}
	return rtime.Never
}

func (s *psLimited) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	if j != s.cur {
		panic("sim: PS-lim consumed for a job it is not serving")
	}
	s.budget -= delta
	s.rem -= delta
	if s.budget == 0 && j.Remaining > 0 {
		// Timed fired: the handler overran the capacity granted to it.
		j.Aborted = true
		j.AbortAt = now
		s.queue.remove(j)
		s.cur = nil
	}
}

func (s *psLimited) completed(now rtime.Time, j *Job) {
	if j != s.cur {
		panic("sim: PS-lim completed a job it is not serving")
	}
	if !s.queue.remove(j) {
		panic("sim: PS-lim completed job not queued")
	}
	s.cur = nil
}

// ---------------------------------------------------------------------------
// Limited Deferrable Server: the paper's Java implementation semantics.
//
// The server's run method is delegated to a handler bound to a wakeUp
// event: it only re-evaluates its queue when woken — by an arrival, by the
// periodic replenishment timer, or after finishing (or interrupting) a
// service. Handlers are admitted on declared cost; the paper's
// budget-extension rule applies: if the service would cross the next
// replenishment, the granted budget is the remaining capacity plus a full
// fresh capacity. Capacity is recovered in full at every period boundary.
//
// The wake-driven evaluation matters: a budget-extension window that opens
// between wakeups (because time passed, not because anything fired) is
// missed, exactly as in the paper's implementation.

type dsLimited struct {
	nm       string
	prio     int
	cs       rtime.Duration
	ts       rtime.Duration
	rem      rtime.Duration
	nextRepl rtime.Time
	cur      *Job
	budget   rtime.Duration
	queue    fifoQueue
	woken    bool
}

func newDSLimited(spec ServerSpec) *dsLimited {
	return &dsLimited{nm: spec.name(), prio: spec.Priority, cs: spec.Capacity, ts: spec.Period}
}

func (s *dsLimited) name() string  { return s.nm }
func (s *dsLimited) priority() int { return s.prio }

func (s *dsLimited) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
	s.woken = true // the arrival fires wakeUp
}

// grantedBudget applies the Section 4.2 admission: a handler fits the
// plain remaining capacity, or — when its service would cross the next
// replenishment — the remaining capacity plus one full capacity (the
// upcoming refill is borrowed).
func (s *dsLimited) grantedBudget(now rtime.Time, j *Job) rtime.Duration {
	if j.Declared <= s.rem {
		return s.rem
	}
	if now.Add(j.Declared) > s.nextRepl {
		// Paper, Section 4.2: "the time budget associated with the event
		// is equal to the remaining capacity plus the total capacity".
		return s.rem + s.cs
	}
	return s.rem
}

func (s *dsLimited) tick(now rtime.Time, tr *trace.Trace) {
	// The periodic timer fires wakeUp only when the server is not running.
	if s.cur == nil && now >= s.nextRepl {
		s.woken = true
	}
	if s.cur == nil && s.woken {
		// The server loop recovers its capacity as part of processing the
		// wakeUp: boundaries crossed while it was busy are applied now,
		// never mid-service.
		for now >= s.nextRepl {
			s.rem = s.cs
			if tr != nil {
				tr.Mark(s.nm, now, trace.Replenish, "")
			}
			s.nextRepl = s.nextRepl.Add(s.ts)
		}
		j := s.queue.firstFitting(func(j *Job) rtime.Duration { return s.grantedBudget(now, j) })
		if j != nil {
			s.cur = j
			s.budget = s.grantedBudget(now, j)
			if s.budget > s.rem {
				// Budget extension: borrow the refill at the crossed
				// boundary so it is not granted a second time.
				s.rem += s.cs
				s.nextRepl = s.nextRepl.Add(s.ts)
			}
		} else {
			s.woken = false // back to sleep until the next wakeUp
		}
	}
}

func (s *dsLimited) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.cur == nil {
		return nil, 0
	}
	return s.cur, s.budget
}

func (s *dsLimited) nextEvent(now rtime.Time) rtime.Time {
	if s.cur != nil {
		// No capacity recovery happens while serving; the next internal
		// event is the service end, already bounded by the budget slice.
		return rtime.Never
	}
	return s.nextRepl
}

func (s *dsLimited) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	if j != s.cur {
		panic("sim: DS-lim consumed for a job it is not serving")
	}
	s.budget -= delta
	s.rem -= delta
	if s.budget == 0 && j.Remaining > 0 {
		j.Aborted = true
		j.AbortAt = now
		s.queue.remove(j)
		s.cur = nil
		s.woken = true // the server loop re-evaluates after an interruption
	}
}

func (s *dsLimited) completed(now rtime.Time, j *Job) {
	if j != s.cur {
		panic("sim: DS-lim completed a job it is not serving")
	}
	if !s.queue.remove(j) {
		panic("sim: DS-lim completed job not queued")
	}
	s.cur = nil
	s.woken = true // the server loop re-evaluates after a completion
}

// ---------------------------------------------------------------------------
// Sporadic Server (Sprunt, Sha, Lehoczky 1989), simplified for a
// highest-priority server: the capacity consumed during a serving burst is
// replenished one server period after the burst started. Service is
// resumable (this is an ideal policy, used as an extension baseline).

type ssRepl struct {
	at     rtime.Time
	amount rtime.Duration
}

type ss struct {
	nm        string
	prio      int
	cs        rtime.Duration
	ts        rtime.Duration
	rem       rtime.Duration
	queue     fifoQueue
	repls     []ssRepl
	inBurst   bool
	burstAt   rtime.Time
	burstUsed rtime.Duration
}

func newSS(spec ServerSpec) *ss {
	return &ss{nm: spec.name(), prio: spec.Priority, cs: spec.Capacity, ts: spec.Period, rem: spec.Capacity}
}

func (s *ss) name() string  { return s.nm }
func (s *ss) priority() int { return s.prio }

func (s *ss) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *ss) tick(now rtime.Time, tr *trace.Trace) {
	for len(s.repls) > 0 && now >= s.repls[0].at {
		s.rem += s.repls[0].amount
		if s.rem > s.cs {
			s.rem = s.cs
		}
		if tr != nil {
			tr.Mark(s.nm, s.repls[0].at, trace.Replenish, "")
		}
		s.repls = s.repls[1:]
	}
}

func (s *ss) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.rem <= 0 || s.queue.empty() {
		return nil, 0
	}
	return s.queue.head(), s.rem
}

func (s *ss) nextEvent(now rtime.Time) rtime.Time {
	if len(s.repls) == 0 {
		return rtime.Never
	}
	return s.repls[0].at
}

func (s *ss) closeBurst() {
	if s.inBurst && s.burstUsed > 0 {
		s.repls = append(s.repls, ssRepl{at: s.burstAt.Add(s.ts), amount: s.burstUsed})
	}
	s.inBurst = false
	s.burstUsed = 0
}

func (s *ss) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	if !s.inBurst {
		s.inBurst = true
		s.burstAt = now.Add(-delta)
		s.burstUsed = 0
	}
	s.burstUsed += delta
	s.rem -= delta
	if s.rem < 0 {
		panic("sim: sporadic server capacity went negative")
	}
	if s.rem == 0 {
		s.closeBurst()
	}
}

func (s *ss) completed(now rtime.Time, j *Job) {
	if !s.queue.remove(j) {
		panic("sim: SS completed job not queued")
	}
	if s.queue.empty() {
		s.closeBurst()
	}
}
