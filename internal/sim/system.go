// Package sim is RTSS: a discrete-event real-time system simulator.
//
// It reproduces the simulator described in Section 5 of the paper: it
// simulates the execution of a real-time system under Preemptive Fixed
// Priority, EDF or D-OVER scheduling and records a temporal diagram of the
// simulated execution. As in the paper, the fixed-priority dispatcher is
// extended with aperiodic task servers. The server policies simulated here
// come in two flavours:
//
//   - the *ideal* policies described in the literature (resumable service,
//     no overhead) — what the paper's simulation columns report, and
//   - the *limited* policies mirroring the paper's Java implementation
//     (non-resumable handlers, admission on declared cost) — used for
//     differential testing against the virtual-time executive.
//
// The simulator charges no overheads; the paper notes that its simulations
// "do not take into account the servers overhead, nor the execution
// overhead".
package sim

import (
	"fmt"
	"math"
	"strconv"

	"rtsj/internal/rtime"
)

// PeriodicTask describes a hard periodic task.
type PeriodicTask struct {
	Name     string         // trace row and job-name prefix
	Offset   rtime.Time     // first release
	Period   rtime.Duration // > 0
	Cost     rtime.Duration // worst-case execution time
	Deadline rtime.Duration // relative; 0 means Deadline = Period
	Priority int            // fixed priority; larger is higher (FP only)
}

// RelDeadline returns the task's relative deadline (defaulting to Period).
func (t PeriodicTask) RelDeadline() rtime.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// AperiodicJob describes one aperiodic (or sporadic) arrival.
type AperiodicJob struct {
	Name    string         // display name; "" defaults to AperiodicName(index)
	Release rtime.Time     // arrival instant
	Cost    rtime.Duration // actual execution demand
	// Declared is the cost announced to the server (the handler's cost
	// parameter in the paper). 0 means Declared = Cost. Scenario 3 of the
	// paper declares a cost below the actual one.
	Declared rtime.Duration
	// Deadline is the relative deadline, used by EDF and D-OVER.
	// 0 means no deadline (soft aperiodic).
	Deadline rtime.Duration
	// Value is the reward for completing the job by its deadline (D-OVER).
	// 0 means Value = Cost in time units.
	Value float64
}

// DeclaredCost returns the cost announced to the server.
func (a AperiodicJob) DeclaredCost() rtime.Duration {
	if a.Declared > 0 {
		return a.Declared
	}
	return a.Cost
}

// value returns the D-OVER reward, defaulting to the cost in time units.
func (a AperiodicJob) value() float64 {
	if a.Value > 0 {
		return a.Value
	}
	return a.Cost.TUs()
}

// ServerPolicy selects an aperiodic servicing policy for the FP dispatcher.
type ServerPolicy int

// Supported server policies.
const (
	// NoServer schedules aperiodics in the background (lowest priority).
	// This is the trivial baseline of Section 2 of the paper.
	NoServer ServerPolicy = iota
	// PollingServer is the ideal PS of the literature (resumable).
	PollingServer
	// DeferrableServer is the ideal DS of the literature (resumable).
	DeferrableServer
	// LimitedPollingServer mirrors the paper's Java PS implementation:
	// non-resumable handlers, admission on declared cost, service budget
	// equal to the remaining capacity.
	LimitedPollingServer
	// LimitedDeferrableServer mirrors the paper's Java DS implementation,
	// including the budget-extension rule across a replenishment boundary.
	LimitedDeferrableServer
	// SporadicServer is a high-priority sporadic server (Sprunt et al.):
	// capacity consumed is replenished one server period after the start
	// of the serving burst.
	SporadicServer
	// PriorityExchange is the PE server (Lehoczky et al.): unused capacity
	// is preserved by exchanging it with lower-priority periodic
	// execution instead of being discarded.
	PriorityExchange
	// SlackStealer serves aperiodics at the top priority whenever doing so
	// cannot make a periodic task miss (Lehoczky & Ramos-Thuel). It has no
	// capacity or period; the ServerSpec fields are ignored.
	SlackStealer
)

// String returns the conventional abbreviation for the policy.
func (p ServerPolicy) String() string {
	switch p {
	case NoServer:
		return "BG"
	case PollingServer:
		return "PS"
	case DeferrableServer:
		return "DS"
	case LimitedPollingServer:
		return "PS-lim"
	case LimitedDeferrableServer:
		return "DS-lim"
	case SporadicServer:
		return "SS"
	case PriorityExchange:
		return "PE"
	case SlackStealer:
		return "SLACK"
	default:
		return fmt.Sprintf("ServerPolicy(%d)", int(p))
	}
}

// ServerSpec configures the aperiodic task server of a system.
type ServerSpec struct {
	Name     string         // trace row name; defaults to the policy abbreviation
	Policy   ServerPolicy   // servicing policy
	Capacity rtime.Duration // service budget per period
	Period   rtime.Duration // replenishment period
	Priority int            // the paper requires the server at the highest priority
}

func (s ServerSpec) name() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Policy.String()
}

// System is a complete workload: periodic tasks, aperiodic arrivals and an
// optional task server.
type System struct {
	Periodics  []PeriodicTask // hard periodic task set
	Aperiodics []AperiodicJob // aperiodic arrivals, any order
	Server     *ServerSpec    // aperiodic task server; nil means background
}

// Validate reports structural problems in the system description.
func (s System) Validate() error {
	for i, t := range s.Periodics {
		if t.Period <= 0 {
			return fmt.Errorf("sim: periodic task %d (%s): period must be positive", i, t.Name)
		}
		if t.Cost < 0 {
			return fmt.Errorf("sim: periodic task %d (%s): negative cost", i, t.Name)
		}
		if t.Cost > t.Period {
			return fmt.Errorf("sim: periodic task %d (%s): cost exceeds period", i, t.Name)
		}
		if t.Deadline < 0 {
			return fmt.Errorf("sim: periodic task %d (%s): negative deadline", i, t.Name)
		}
	}
	for i, a := range s.Aperiodics {
		if a.Cost <= 0 {
			return fmt.Errorf("sim: aperiodic job %d (%s): cost must be positive", i, a.Name)
		}
		if a.Release < 0 {
			return fmt.Errorf("sim: aperiodic job %d (%s): negative release", i, a.Name)
		}
	}
	if s.Server != nil && s.Server.Policy != NoServer && s.Server.Policy != SlackStealer {
		if s.Server.Capacity <= 0 || s.Server.Period <= 0 {
			return fmt.Errorf("sim: server: capacity and period must be positive")
		}
	}
	return nil
}

// Utilization returns the total periodic utilization, including the server
// treated as a periodic task if present.
func (s System) Utilization() float64 {
	u := 0.0
	for _, t := range s.Periodics {
		u += float64(t.Cost) / float64(t.Period)
	}
	if s.Server != nil && s.Server.Policy != NoServer {
		u += float64(s.Server.Capacity) / float64(s.Server.Period)
	}
	return u
}

// Job is a runtime instance of a periodic task release or an aperiodic
// arrival.
type Job struct {
	Periodic bool           // periodic release, not an aperiodic arrival
	Release  rtime.Time     // release instant
	AbsDL    rtime.Time     // absolute deadline; rtime.Forever when none
	Cost     rtime.Duration // actual execution demand
	Declared rtime.Duration // cost announced to the server
	Value    float64        // D-OVER completion reward
	Priority int            // fixed priority (FP only)

	Remaining rtime.Duration // demand not yet executed
	Started   bool           // the job has run at least one slice
	Finished  bool           // the job completed its demand
	Finish    rtime.Time     // completion instant, when Finished
	// Aborted is set when a server interrupted the job (limited policies)
	// or D-OVER abandoned it.
	Aborted bool
	AbortAt rtime.Time // abort instant, when Aborted

	// Entity and ServedBy control trace attribution: periodic jobs run on
	// their own row; aperiodics served by a server appear on the server's
	// row with the job name as label.
	Entity string // trace row the job's slices are drawn on
	Label  string // slice label on the server row; "" uses Name

	// name is the display name, formatted lazily for periodic releases so
	// the engine's release loop stays free of string formatting; instance
	// is the 1-based periodic release number it encodes.
	name     string
	instance int64
	seq      int64
	taskIdx  int // index into System.Periodics, or -1
	apIdx    int // index into System.Aperiodics, or -1
}

// Name returns the job's display name ("tau1#3" for the third release of
// tau1; the aperiodic's configured or generated name). Periodic instance
// names are formatted on first access and cached: like Result and
// trace.Trace, a Job is not safe for concurrent use — share Results
// across harness workers only after the run, one reader at a time.
func (j *Job) Name() string {
	if j.name == "" && j.Periodic {
		j.name = j.Entity + "#" + strconv.FormatInt(j.instance, 10)
	}
	return j.name
}

// AperiodicName names an unnamed aperiodic arrival after its zero-based
// index ("J1", "J2", ...), without fmt. Both engines (sim and the Task
// Server Framework bridge) use it, so cross-engine differential tests can
// match jobs to handler records by name.
func AperiodicName(idx int) string { return "J" + strconv.Itoa(idx+1) }

// ResponseTime returns finish - release for finished jobs.
func (j *Job) ResponseTime() rtime.Duration {
	if !j.Finished {
		return -1
	}
	return j.Finish.Sub(j.Release)
}

// lateness helpers for D-OVER.
func (j *Job) slack(now rtime.Time) rtime.Duration {
	if j.AbsDL == rtime.Forever {
		return rtime.Duration(math.MaxInt64)
	}
	return j.AbsDL.Sub(now) - j.Remaining
}
