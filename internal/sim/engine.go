package sim

import (
	"fmt"
	"sort"
	"sync"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Dispatcher is a scheduling policy plugged into the engine. The engine owns
// time and job generation; the dispatcher owns the ready state and decides
// who runs.
//
// Protocol, at every decision instant `now`:
//  1. the engine delivers all releases due at now via Release;
//  2. the engine calls Tick(now) so the dispatcher processes its internal
//     events (replenishments, latest-start-time expiries, ...);
//  3. the engine calls Pick(now) and runs the returned job for at most
//     maxSlice, bounded also by the next release, the next internal event
//     (NextEvent) and the horizon;
//  4. consumed time is reported via Consumed; completion via Completed.
//
// After Tick(now) returns, NextEvent must be strictly after now.
type Dispatcher interface {
	Name() string
	Release(now rtime.Time, j *Job)
	Tick(now rtime.Time)
	Pick(now rtime.Time) (j *Job, maxSlice rtime.Duration)
	NextEvent(now rtime.Time) rtime.Time
	Consumed(now rtime.Time, j *Job, delta rtime.Duration)
	Completed(now rtime.Time, j *Job)
}

// IdleObserver is an optional Dispatcher extension: the engine reports
// intervals during which the processor idled. The Priority Exchange server
// needs it (idle time consumes preserved capacity).
type IdleObserver interface {
	Idle(now rtime.Time, delta rtime.Duration)
}

// Result collects everything measured during a run. Like trace.Trace it is
// not safe for concurrent use: Aperiodics/Periodics (and Job.Name) cache
// lazily on first call.
type Result struct {
	// Trace is the recorded schedule, nil for metrics-only runs.
	Trace *trace.Trace
	// Jobs holds every job instance created during the run, in release
	// order (ties: periodic before aperiodic, then creation order).
	Jobs []*Job
	// PeriodicMisses counts periodic job deadline misses.
	PeriodicMisses int
	// Horizon is the simulated window the run covered.
	Horizon rtime.Time

	// The periodic/aperiodic partition is computed once on first use and
	// cached: metrics code calls Aperiodics repeatedly.
	split      bool
	aperiodics []*Job
	periodics  []*Job
}

func (r *Result) partition() {
	nAp := 0
	for _, j := range r.Jobs {
		if !j.Periodic {
			nAp++
		}
	}
	r.aperiodics = make([]*Job, 0, nAp)
	r.periodics = make([]*Job, 0, len(r.Jobs)-nAp)
	for _, j := range r.Jobs {
		if j.Periodic {
			r.periodics = append(r.periodics, j)
		} else {
			r.aperiodics = append(r.aperiodics, j)
		}
	}
	r.split = true
}

// jobPool recycles Job records across runs: the engine allocates every job
// from it (fully overwriting the record on reuse), and Result.Recycle
// returns a run's jobs to it. A campaign that recycles each result as soon
// as its metrics are folded keeps a bounded working set of Job records no
// matter how many systems it simulates.
var jobPool = sync.Pool{New: func() any { return new(Job) }}

// jobsSlicePool recycles the Result.Jobs backing arrays alongside the jobs.
var jobsSlicePool = sync.Pool{New: func() any { return new([]*Job) }}

// Recycle returns the result's Job records and their backing slice to the
// engine's allocation pools. Call it only once, and only when nothing will
// touch the result again — including the slices returned by Aperiodics and
// Periodics and the *Job pointers inside them (names and other values
// copied out of jobs stay valid). Recycling is optional: results that are
// never recycled are simply garbage collected.
func (r *Result) Recycle() {
	for _, j := range r.Jobs {
		jobPool.Put(j)
	}
	jobs := r.Jobs[:0]
	jobsSlicePool.Put(&jobs)
	r.Jobs, r.aperiodics, r.periodics, r.split = nil, nil, nil, false
}

// Aperiodics returns the aperiodic job records, in release order.
func (r *Result) Aperiodics() []*Job {
	if !r.split {
		r.partition()
	}
	return r.aperiodics
}

// Periodics returns the periodic job records, in release order.
func (r *Result) Periodics() []*Job {
	if !r.split {
		r.partition()
	}
	return r.periodics
}

// Run simulates sys under the dispatcher until the horizon and returns the
// result. With a nil trace the run records nothing (Result.Trace is nil):
// the metrics-only fast path used by the table and matrix experiments.
func Run(sys System, d Dispatcher, horizon rtime.Time, tr *trace.Trace) (*Result, error) {
	return RunWithSink(sys, d, horizon, tr)
}

// RunWithSink simulates sys, streaming schedule recordings into sink. A nil
// sink (or trace.Nop) disables recording entirely — the engine then also
// skips job-name formatting for every trace label. When sink is a
// *trace.Trace it is returned in Result.Trace.
func RunWithSink(sys System, d Dispatcher, horizon rtime.Time, sink trace.Sink) (*Result, error) {
	return runWithCalendar(sys, d, horizon, sink, &heapCalendar{})
}

func runWithCalendar(sys System, d Dispatcher, horizon rtime.Time, sink trace.Sink, cal calendar) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if t, ok := sink.(*trace.Trace); ok && t == nil {
		sink = nil // typed-nil *Trace means "no recording", like untyped nil
	}
	rec := true
	if sink == nil {
		sink, rec = trace.Nop{}, false
	} else if _, nop := sink.(trace.Nop); nop {
		rec = false
	}
	e := &engine{
		sys:     sys,
		d:       d,
		horizon: horizon,
		sink:    sink,
		rec:     rec,
		cal:     cal,
	}
	e.init()
	if err := e.run(); err != nil {
		return nil, err
	}
	res := &Result{Jobs: e.jobs, PeriodicMisses: e.misses, Horizon: horizon}
	if tr, ok := sink.(*trace.Trace); ok {
		res.Trace = tr
	}
	return res, nil
}

type engine struct {
	sys     System
	d       Dispatcher
	horizon rtime.Time
	sink    trace.Sink
	rec     bool // false: skip recording and trace-label formatting

	now    rtime.Time
	cal    calendar
	apSort []int // aperiodic indices sorted by release
	jobs   []*Job
	misses int
	seq    int64
}

func (e *engine) init() {
	e.jobs = *jobsSlicePool.Get().(*[]*Job)
	for i, t := range e.sys.Periodics {
		e.cal.push(release{at: t.Offset, idx: i})
		if e.rec {
			e.sink.DeclareEntity(t.Name)
		}
	}
	e.apSort = make([]int, len(e.sys.Aperiodics))
	for i := range e.apSort {
		e.apSort[i] = i
	}
	sort.SliceStable(e.apSort, func(a, b int) bool {
		return e.sys.Aperiodics[e.apSort[a]].Release < e.sys.Aperiodics[e.apSort[b]].Release
	})
	if len(e.apSort) > 0 {
		e.cal.push(release{at: e.sys.Aperiodics[e.apSort[0]].Release, ap: true, idx: 0})
	}
}

// deliverReleases creates and delivers all jobs released at or before now,
// popping the calendar until the next release is in the future. Delivery
// order matches the seed engine: at equal instants, periodic releases in
// task order before aperiodic arrivals in release order.
func (e *engine) deliverReleases() {
	for {
		r, ok := e.cal.popDue(e.now)
		if !ok {
			return
		}
		if !r.ap {
			e.releasePeriodic(r)
		} else {
			e.releaseAperiodic(r)
		}
	}
}

func (e *engine) releasePeriodic(r release) {
	t := &e.sys.Periodics[r.idx]
	rel := r.at
	j := jobPool.Get().(*Job)
	// The whole-record composite assignment clears every stale field of a
	// recycled job.
	*j = Job{
		Periodic:  true,
		Release:   rel,
		AbsDL:     rel.Add(t.RelDeadline()),
		Cost:      t.Cost,
		Remaining: t.Cost,
		Priority:  t.Priority,
		Entity:    t.Name,
		instance:  int64(rel/rtime.Time(t.Period)) + 1,
		seq:       e.seq,
		taskIdx:   r.idx,
		apIdx:     -1,
	}
	e.seq++
	e.cal.push(release{at: rel.Add(t.Period), idx: r.idx})
	e.jobs = append(e.jobs, j)
	if e.rec {
		e.sink.Mark(t.Name, rel, trace.Arrival, j.Name())
	}
	e.d.Release(rel, j)
}

func (e *engine) releaseAperiodic(r release) {
	idx := e.apSort[r.idx]
	a := &e.sys.Aperiodics[idx]
	name := a.Name
	if name == "" {
		name = AperiodicName(idx)
	}
	dl := rtime.Forever
	if a.Deadline > 0 {
		dl = a.Release.Add(a.Deadline)
	}
	j := jobPool.Get().(*Job)
	*j = Job{
		name:      name,
		Release:   a.Release,
		AbsDL:     dl,
		Cost:      a.Cost,
		Declared:  a.DeclaredCost(),
		Value:     a.value(),
		Remaining: a.Cost,
		Entity:    name, // dispatcher may reattribute to the server row
		seq:       e.seq,
		taskIdx:   -1,
		apIdx:     idx,
	}
	e.seq++
	if r.idx+1 < len(e.apSort) {
		e.cal.push(release{
			at:  e.sys.Aperiodics[e.apSort[r.idx+1]].Release,
			ap:  true,
			idx: r.idx + 1,
		})
	}
	e.jobs = append(e.jobs, j)
	e.d.Release(a.Release, j)
	if e.rec {
		e.sink.Mark(j.Entity, a.Release, trace.Arrival, name)
	}
}

func (e *engine) run() error {
	guard := 0
	for e.now < e.horizon {
		e.deliverReleases()
		e.d.Tick(e.now)

		j, maxSlice := e.d.Pick(e.now)

		tNext := rtime.Min(e.horizon, e.cal.next())
		tNext = rtime.Min(tNext, e.d.NextEvent(e.now))

		if j == nil {
			if tNext <= e.now {
				return fmt.Errorf("sim: dispatcher %s reports event at %v not after now=%v",
					e.d.Name(), tNext, e.now)
			}
			if obs, ok := e.d.(IdleObserver); ok {
				obs.Idle(tNext, tNext.Sub(e.now))
			}
			e.now = tNext
			continue
		}

		slice := rtime.MinDur(j.Remaining, tNext.Sub(e.now))
		if maxSlice > 0 {
			slice = rtime.MinDur(slice, maxSlice)
		}
		if slice <= 0 {
			guard++
			if guard > 4 {
				return fmt.Errorf("sim: no progress at %v running %s (dispatcher %s)",
					e.now, j.Name(), e.d.Name())
			}
			continue
		}
		guard = 0

		entity := j.Entity
		if e.rec {
			e.sink.Run(entity, e.now, e.now.Add(slice), j.Label)
		}
		j.Started = true
		j.Remaining -= slice
		end := e.now.Add(slice)
		e.d.Consumed(end, j, slice)
		e.now = end

		if j.Remaining == 0 && !j.Aborted {
			j.Finished = true
			j.Finish = e.now
			if e.rec {
				e.sink.Mark(entity, e.now, trace.Completion, j.Name())
			}
			if j.Periodic && j.AbsDL != rtime.Forever && e.now > j.AbsDL {
				e.misses++
				if e.rec {
					e.sink.Mark(entity, j.AbsDL, trace.DeadlineMiss, j.Name())
				}
			}
			e.d.Completed(e.now, j)
		} else if j.Aborted {
			if e.rec {
				e.sink.Mark(entity, e.now, trace.Interrupted, j.Name())
			}
		}
	}
	return nil
}
