package sim

import (
	"fmt"
	"sort"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Dispatcher is a scheduling policy plugged into the engine. The engine owns
// time and job generation; the dispatcher owns the ready state and decides
// who runs.
//
// Protocol, at every decision instant `now`:
//  1. the engine delivers all releases due at now via Release;
//  2. the engine calls Tick(now) so the dispatcher processes its internal
//     events (replenishments, latest-start-time expiries, ...);
//  3. the engine calls Pick(now) and runs the returned job for at most
//     maxSlice, bounded also by the next release, the next internal event
//     (NextEvent) and the horizon;
//  4. consumed time is reported via Consumed; completion via Completed.
//
// After Tick(now) returns, NextEvent must be strictly after now.
type Dispatcher interface {
	Name() string
	Release(now rtime.Time, j *Job)
	Tick(now rtime.Time)
	Pick(now rtime.Time) (j *Job, maxSlice rtime.Duration)
	NextEvent(now rtime.Time) rtime.Time
	Consumed(now rtime.Time, j *Job, delta rtime.Duration)
	Completed(now rtime.Time, j *Job)
}

// IdleObserver is an optional Dispatcher extension: the engine reports
// intervals during which the processor idled. The Priority Exchange server
// needs it (idle time consumes preserved capacity).
type IdleObserver interface {
	Idle(now rtime.Time, delta rtime.Duration)
}

// Result collects everything measured during a run.
type Result struct {
	Trace *trace.Trace
	// Jobs holds every job instance created during the run, in release
	// order (ties: periodic before aperiodic, then creation order).
	Jobs []*Job
	// PeriodicMisses counts periodic job deadline misses.
	PeriodicMisses int
	Horizon        rtime.Time
}

// Aperiodics returns the aperiodic job records.
func (r *Result) Aperiodics() []*Job {
	var out []*Job
	for _, j := range r.Jobs {
		if !j.Periodic {
			out = append(out, j)
		}
	}
	return out
}

// Periodics returns the periodic job records.
func (r *Result) Periodics() []*Job {
	var out []*Job
	for _, j := range r.Jobs {
		if j.Periodic {
			out = append(out, j)
		}
	}
	return out
}

// Run simulates sys under the dispatcher until the horizon and returns the
// result. The trace may be nil, in which case a fresh one is allocated.
func Run(sys System, d Dispatcher, horizon rtime.Time, tr *trace.Trace) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if tr == nil {
		tr = trace.New()
	}
	e := &engine{
		sys:     sys,
		d:       d,
		horizon: horizon,
		tr:      tr,
	}
	e.init()
	if err := e.run(); err != nil {
		return nil, err
	}
	return &Result{Trace: tr, Jobs: e.jobs, PeriodicMisses: e.misses, Horizon: horizon}, nil
}

type engine struct {
	sys     System
	d       Dispatcher
	horizon rtime.Time
	tr      *trace.Trace

	now     rtime.Time
	nextRel []rtime.Time // next release per periodic task
	apSort  []int        // aperiodic indices sorted by release
	apNext  int
	jobs    []*Job
	active  []*Job // periodic jobs released and unfinished (for miss check)
	misses  int
	seq     int64
}

func (e *engine) init() {
	e.nextRel = make([]rtime.Time, len(e.sys.Periodics))
	for i, t := range e.sys.Periodics {
		e.nextRel[i] = t.Offset
		e.tr.DeclareEntity(t.Name)
	}
	e.apSort = make([]int, len(e.sys.Aperiodics))
	for i := range e.apSort {
		e.apSort[i] = i
	}
	sort.SliceStable(e.apSort, func(a, b int) bool {
		return e.sys.Aperiodics[e.apSort[a]].Release < e.sys.Aperiodics[e.apSort[b]].Release
	})
}

// nextReleaseTime returns the earliest future release instant.
func (e *engine) nextReleaseTime() rtime.Time {
	t := rtime.Never
	for _, r := range e.nextRel {
		t = rtime.Min(t, r)
	}
	if e.apNext < len(e.apSort) {
		t = rtime.Min(t, e.sys.Aperiodics[e.apSort[e.apNext]].Release)
	}
	return t
}

// deliverReleases creates and delivers all jobs released at or before now.
func (e *engine) deliverReleases() {
	// Periodic releases first (deterministic: task order).
	for i := range e.sys.Periodics {
		for e.nextRel[i] <= e.now {
			t := &e.sys.Periodics[i]
			rel := e.nextRel[i]
			j := &Job{
				Name:      fmt.Sprintf("%s#%d", t.Name, int64(rel/rtime.Time(t.Period))+1),
				Periodic:  true,
				Release:   rel,
				AbsDL:     rel.Add(t.RelDeadline()),
				Cost:      t.Cost,
				Remaining: t.Cost,
				Priority:  t.Priority,
				Entity:    t.Name,
				seq:       e.seq,
				taskIdx:   i,
				apIdx:     -1,
			}
			e.seq++
			e.nextRel[i] = rel.Add(t.Period)
			e.jobs = append(e.jobs, j)
			e.active = append(e.active, j)
			e.tr.Mark(t.Name, rel, trace.Arrival, j.Name)
			e.d.Release(rel, j)
		}
	}
	for e.apNext < len(e.apSort) {
		idx := e.apSort[e.apNext]
		a := &e.sys.Aperiodics[idx]
		if a.Release > e.now {
			break
		}
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("J%d", idx+1)
		}
		dl := rtime.Forever
		if a.Deadline > 0 {
			dl = a.Release.Add(a.Deadline)
		}
		j := &Job{
			Name:      name,
			Release:   a.Release,
			AbsDL:     dl,
			Cost:      a.Cost,
			Declared:  a.DeclaredCost(),
			Value:     a.value(),
			Remaining: a.Cost,
			Entity:    name, // dispatcher may reattribute to the server row
			seq:       e.seq,
			taskIdx:   -1,
			apIdx:     idx,
		}
		e.seq++
		e.apNext++
		e.jobs = append(e.jobs, j)
		e.d.Release(a.Release, j)
		e.tr.Mark(j.Entity, a.Release, trace.Arrival, name)
	}
}

func (e *engine) run() error {
	guard := 0
	for e.now < e.horizon {
		e.deliverReleases()
		e.d.Tick(e.now)

		j, maxSlice := e.d.Pick(e.now)

		tNext := rtime.Min(e.horizon, e.nextReleaseTime())
		tNext = rtime.Min(tNext, e.d.NextEvent(e.now))

		if j == nil {
			if tNext <= e.now {
				return fmt.Errorf("sim: dispatcher %s reports event at %v not after now=%v",
					e.d.Name(), tNext, e.now)
			}
			if obs, ok := e.d.(IdleObserver); ok {
				obs.Idle(tNext, tNext.Sub(e.now))
			}
			e.now = tNext
			continue
		}

		slice := rtime.MinDur(j.Remaining, tNext.Sub(e.now))
		if maxSlice > 0 {
			slice = rtime.MinDur(slice, maxSlice)
		}
		if slice <= 0 {
			guard++
			if guard > 4 {
				return fmt.Errorf("sim: no progress at %v running %s (dispatcher %s)",
					e.now, j.Name, e.d.Name())
			}
			continue
		}
		guard = 0

		entity, label := j.Entity, j.Label
		e.tr.Run(entity, e.now, e.now.Add(slice), label)
		j.Started = true
		j.Remaining -= slice
		end := e.now.Add(slice)
		e.d.Consumed(end, j, slice)
		e.now = end

		if j.Remaining == 0 && !j.Aborted {
			j.Finished = true
			j.Finish = e.now
			e.tr.Mark(entity, e.now, trace.Completion, j.Name)
			if j.Periodic && j.AbsDL != rtime.Forever && e.now > j.AbsDL {
				e.misses++
				e.tr.Mark(entity, j.AbsDL, trace.DeadlineMiss, j.Name)
			}
			e.d.Completed(e.now, j)
		} else if j.Aborted {
			e.tr.Mark(entity, e.now, trace.Interrupted, j.Name)
		}
	}
	return nil
}
