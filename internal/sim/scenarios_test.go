package sim

import (
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// table1System builds the task set of Table 1 in the paper: a server at the
// highest priority (C=3, T=6), tau1 (C=2, T=6), tau2 (C=1, T=6), and two
// handlers h1, h2 of cost 2.
func table1System(policy ServerPolicy, h2Declared float64, fire1, fire2 float64) System {
	return System{
		Periodics: []PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(2), Priority: 2},
			{Name: "tau2", Period: rtime.TUs(6), Cost: rtime.TUs(1), Priority: 1},
		},
		Aperiodics: []AperiodicJob{
			{Name: "h1", Release: rtime.AtTU(fire1), Cost: rtime.TUs(2)},
			{Name: "h2", Release: rtime.AtTU(fire2), Cost: rtime.TUs(2), Declared: rtime.TUs(h2Declared)},
		},
		Server: &ServerSpec{Name: "PS", Policy: policy, Capacity: rtime.TUs(3), Period: rtime.TUs(6), Priority: 10},
	}
}

type seg struct {
	start, end float64
	label      string
}

func checkSegments(t *testing.T, tr *trace.Trace, entity string, want []seg) {
	t.Helper()
	got := tr.SegmentsOf(entity)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d segments %v, want %d\n%s", entity, len(got), got, len(want),
			tr.Gantt(trace.GanttOptions{}))
	}
	for i, w := range want {
		g := got[i]
		if g.Start != rtime.AtTU(w.start) || g.End != rtime.AtTU(w.end) || g.Label != w.label {
			t.Errorf("%s segment %d: got [%v,%v)%q, want [%v,%v)%q", entity, i,
				g.Start.TUs(), g.End.TUs(), g.Label, w.start, w.end, w.label)
		}
	}
}

func mustRun(t *testing.T, sys System, mk func(*trace.Trace) Dispatcher, horizonTU float64) *Result {
	t.Helper()
	tr := trace.New()
	r, err := Run(sys, mk(tr), rtime.AtTU(horizonTU), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckSingleCPU(); err != nil {
		t.Fatal(err)
	}
	return r
}

func fpDispatcher(sys System) func(*trace.Trace) Dispatcher {
	return func(tr *trace.Trace) Dispatcher { return NewFP(sys, tr) }
}

// Scenario 1 (Figure 2): e1 fired at 0, e2 at 6; the server has full
// capacity at both instants, so h1 and h2 are served immediately.
func TestScenario1IdealPS(t *testing.T) {
	sys := table1System(PollingServer, 0, 0, 6)
	r := mustRun(t, sys, fpDispatcher(sys), 12)

	checkSegments(t, r.Trace, "PS", []seg{{0, 2, "h1"}, {6, 8, "h2"}})
	checkSegments(t, r.Trace, "tau1", []seg{{2, 4, ""}, {8, 10, ""}})
	checkSegments(t, r.Trace, "tau2", []seg{{4, 5, ""}, {10, 11, ""}})

	for _, j := range r.Aperiodics() {
		if !j.Finished {
			t.Errorf("%s unserved", j.Name())
		}
		if got := j.ResponseTime(); got != rtime.TUs(2) {
			t.Errorf("%s response = %v, want 2tu", j.Name(), got)
		}
	}
	if r.PeriodicMisses != 0 {
		t.Errorf("periodic misses = %d", r.PeriodicMisses)
	}
}

// Scenario 1 behaves identically under the limited (implementation) PS
// since every handler fits the capacity.
func TestScenario1LimitedPS(t *testing.T) {
	sys := table1System(LimitedPollingServer, 0, 0, 6)
	r := mustRun(t, sys, fpDispatcher(sys), 12)
	checkSegments(t, r.Trace, "PS", []seg{{0, 2, "h1"}, {6, 8, "h2"}})
}

// Scenario 2 with the *real* (literature) PS policy: the paper notes that
// "with the real PS policy, h2 should begin its execution at time 8,
// suspend it at time 9 and resume it at time 12".
func TestScenario2IdealPS(t *testing.T) {
	sys := table1System(PollingServer, 0, 2, 4)
	r := mustRun(t, sys, fpDispatcher(sys), 18)

	checkSegments(t, r.Trace, "PS", []seg{{6, 8, "h1"}, {8, 9, "h2"}, {12, 13, "h2"}})
	checkSegments(t, r.Trace, "tau1", []seg{{0, 2, ""}, {9, 11, ""}, {13, 15, ""}})
	checkSegments(t, r.Trace, "tau2", []seg{{2, 3, ""}, {11, 12, ""}, {15, 16, ""}})

	jobs := r.Aperiodics()
	if got := jobs[0].ResponseTime(); got != rtime.TUs(6) {
		t.Errorf("h1 response = %v, want 6tu", got)
	}
	if got := jobs[1].ResponseTime(); got != rtime.TUs(9) {
		t.Errorf("h2 response = %v, want 9tu", got)
	}
}

// Scenario 2 (Figure 3) with the implementation PS: h2 does not begin at
// time 8 because the remaining capacity (1) is below its cost (2); it is
// served in full at the next activation.
func TestScenario2LimitedPS(t *testing.T) {
	sys := table1System(LimitedPollingServer, 0, 2, 4)
	r := mustRun(t, sys, fpDispatcher(sys), 18)

	checkSegments(t, r.Trace, "PS", []seg{{6, 8, "h1"}, {12, 14, "h2"}})
	checkSegments(t, r.Trace, "tau1", []seg{{0, 2, ""}, {8, 10, ""}, {14, 16, ""}})
	checkSegments(t, r.Trace, "tau2", []seg{{2, 3, ""}, {10, 11, ""}, {16, 17, ""}})

	jobs := r.Aperiodics()
	if got := jobs[1].ResponseTime(); got != rtime.TUs(10) {
		t.Errorf("h2 response = %v, want 10tu", got)
	}
	if jobs[0].Aborted || jobs[1].Aborted {
		t.Error("no job should be interrupted in scenario 2")
	}
}

// Scenario 3 (Figure 4): h2 is declared with cost 1 (below its actual
// demand of 2). It begins at time 8 — the remaining capacity is 1 — and is
// interrupted at time 9 when the server has consumed all its capacity.
func TestScenario3LimitedPS(t *testing.T) {
	sys := table1System(LimitedPollingServer, 1, 2, 4)
	r := mustRun(t, sys, fpDispatcher(sys), 18)

	checkSegments(t, r.Trace, "PS", []seg{{6, 8, "h1"}, {8, 9, "h2"}})

	jobs := r.Aperiodics()
	h2 := jobs[1]
	if !h2.Aborted {
		t.Fatal("h2 should have been interrupted")
	}
	if h2.AbortAt != rtime.AtTU(9) {
		t.Errorf("h2 interrupted at %v, want t=9tu", h2.AbortAt.TUs())
	}
	if h2.Finished {
		t.Error("h2 should not be recorded as served")
	}
	// The real policy would resume h2 at 12; the implementation cannot, so
	// the server must not serve h2 again.
	for _, s := range r.Trace.SegmentsOf("PS") {
		if s.Start >= rtime.AtTU(9) {
			t.Errorf("unexpected PS segment after interruption: %+v", s)
		}
	}
}

// The same workload as scenario 2 under the ideal Deferrable Server: h1 is
// served immediately upon release at time 2.
func TestScenario2IdealDS(t *testing.T) {
	sys := table1System(DeferrableServer, 0, 2, 4)
	sys.Server.Name = "DS"
	r := mustRun(t, sys, fpDispatcher(sys), 12)

	checkSegments(t, r.Trace, "DS", []seg{{2, 4, "h1"}, {4, 5, "h2"}, {6, 7, "h2"}})
	checkSegments(t, r.Trace, "tau1", []seg{{0, 2, ""}, {7, 9, ""}})

	jobs := r.Aperiodics()
	if got := jobs[0].ResponseTime(); got != rtime.TUs(2) {
		t.Errorf("h1 response = %v, want 2tu", got)
	}
	if got := jobs[1].ResponseTime(); got != rtime.TUs(3) {
		t.Errorf("h2 response = %v, want 3tu", got)
	}
}

// The limited DS budget-extension rule (Section 4.2): with remaining
// capacity 1 and a replenishment closer than the event cost, the event is
// admitted with budget remaining+capacity and served across the boundary.
func TestLimitedDSBudgetExtension(t *testing.T) {
	sys := System{
		Aperiodics: []AperiodicJob{
			{Name: "a1", Release: rtime.AtTU(0), Cost: rtime.TUs(3)},
			{Name: "a2", Release: rtime.AtTU(5), Cost: rtime.TUs(2)},
		},
		Server: &ServerSpec{Name: "DS", Policy: LimitedDeferrableServer,
			Capacity: rtime.TUs(4), Period: rtime.TUs(6), Priority: 10},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 12)
	// a1 served [0,3), remaining 1. a2 arrives at 5 with cost 2:
	// 5+2 > 6, so budget = 1 + 4 and a2 is served [5,7) across the boundary.
	checkSegments(t, r.Trace, "DS", []seg{{0, 3, "a1"}, {5, 7, "a2"}})
	for _, j := range r.Aperiodics() {
		if !j.Finished {
			t.Errorf("%s unserved", j.Name())
		}
	}
}

// Without the extension (event fits the current period), the limited DS
// must not admit an event larger than the remaining capacity.
func TestLimitedDSNoOverAdmission(t *testing.T) {
	sys := System{
		Aperiodics: []AperiodicJob{
			{Name: "a1", Release: rtime.AtTU(0), Cost: rtime.TUs(3)},
			{Name: "a2", Release: rtime.AtTU(3), Cost: rtime.TUs(2)},
		},
		Server: &ServerSpec{Name: "DS", Policy: LimitedDeferrableServer,
			Capacity: rtime.TUs(4), Period: rtime.TUs(10), Priority: 10},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 20)
	// a1 [0,3), remaining 1. a2 at 3: 3+2 = 5 <= 10, budget = 1 < 2: not
	// admitted until the replenishment at 10.
	checkSegments(t, r.Trace, "DS", []seg{{0, 3, "a1"}, {10, 12, "a2"}})
}
