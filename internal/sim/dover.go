package sim

import (
	"math"
	"sort"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// DOver implements the D-OVER policy of RTSS: a value-based variant of EDF
// for (possibly) overloaded systems, after Koren & Shasha's D^over.
//
// Behaviour:
//
//   - While no job is critical, scheduling is plain EDF — on an underloaded
//     system D-OVER and EDF produce identical schedules.
//   - When a waiting job reaches its latest start time (zero laxity), a
//     conflict is resolved by value: the critical job z wins, and displaces
//     the jobs that would necessarily miss during its execution, iff
//     value(z) > (1+sqrt(k)) * sum(value of displaced jobs), where k is the
//     importance ratio (max/min value density) of the workload. A winner
//     runs to completion ("panic mode"); a loser is abandoned.
//   - A job whose deadline passes unfinished is abandoned (zero value).
//
// This is a faithful-structure implementation of D^over's conflict rule;
// the bookkeeping of privilege classes in the original algorithm is
// simplified to the displaced-set comparison above.
type DOver struct {
	ready    []*Job
	panicJob *Job
	k        float64
	tr       *trace.Trace
}

// NewDOver builds a D-OVER dispatcher for sys; the importance ratio k is
// derived from the workload's value densities.
func NewDOver(sys System, tr *trace.Trace) *DOver {
	minD, maxD := math.Inf(1), 0.0
	density := func(value float64, cost rtime.Duration) {
		if cost <= 0 {
			return
		}
		d := value / cost.TUs()
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
	}
	for _, t := range sys.Periodics {
		density(t.Cost.TUs(), t.Cost)
	}
	for _, a := range sys.Aperiodics {
		density(a.value(), a.Cost)
	}
	k := 1.0
	if maxD > 0 && !math.IsInf(minD, 1) && minD > 0 {
		k = maxD / minD
	}
	return &DOver{k: k, tr: tr}
}

// Name implements Dispatcher.
func (d *DOver) Name() string { return "D-OVER" }

// K returns the importance ratio used in conflict resolution.
func (d *DOver) K() float64 { return d.k }

// Release implements Dispatcher.
func (d *DOver) Release(now rtime.Time, j *Job) {
	if j.Value == 0 {
		j.Value = j.Cost.TUs()
	}
	d.ready = append(d.ready, j)
}

func (d *DOver) edfTop() *Job {
	var top *Job
	for _, j := range d.ready {
		if top == nil || j.AbsDL < top.AbsDL || (j.AbsDL == top.AbsDL && j.seq < top.seq) {
			top = j
		}
	}
	return top
}

func (d *DOver) currentPick() *Job {
	if d.panicJob != nil {
		return d.panicJob
	}
	return d.edfTop()
}

func (d *DOver) abort(now rtime.Time, j *Job, why string) {
	j.Aborted = true
	j.AbortAt = now
	for i, x := range d.ready {
		if x == j {
			d.ready = append(d.ready[:i], d.ready[i+1:]...)
			break
		}
	}
	if j == d.panicJob {
		d.panicJob = nil
	}
	if d.tr != nil {
		d.tr.Mark(j.Entity, now, trace.DeadlineMiss, j.Name()+" ("+why+")")
	}
}

// Tick implements Dispatcher: abandon late jobs, then resolve latest-start-
// time conflicts by value.
func (d *DOver) Tick(now rtime.Time) {
	// Abandon jobs whose deadline has passed: they can no longer earn value.
	for changed := true; changed; {
		changed = false
		for _, j := range d.ready {
			if j.AbsDL != rtime.Forever && now >= j.AbsDL && j.Remaining > 0 {
				d.abort(now, j, "deadline passed")
				changed = true
				break
			}
		}
	}
	// Resolve zero-laxity conflicts in deterministic (deadline, seq) order.
	for {
		pick := d.currentPick()
		var z *Job
		cands := make([]*Job, 0, len(d.ready))
		for _, j := range d.ready {
			if j != pick && j.slack(now) <= 0 {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].AbsDL != cands[b].AbsDL {
				return cands[a].AbsDL < cands[b].AbsDL
			}
			return cands[a].seq < cands[b].seq
		})
		z = cands[0]
		d.resolve(now, z)
	}
}

// resolve applies the value test for critical job z.
func (d *DOver) resolve(now rtime.Time, z *Job) {
	var sum float64
	var victims []*Job
	for _, w := range d.ready {
		if w == z {
			continue
		}
		// Jobs that would necessarily miss while z runs to completion.
		if w.slack(now) < z.Remaining {
			victims = append(victims, w)
			sum += w.Value
		}
	}
	if z.Value > (1+math.Sqrt(d.k))*sum {
		why := ""
		if d.tr != nil { // reason only feeds the trace mark
			why = "displaced by " + z.Name()
		}
		for _, w := range victims {
			d.abort(now, w, why)
		}
		d.panicJob = z
		return
	}
	d.abort(now, z, "abandoned at LST")
}

// Pick implements Dispatcher.
func (d *DOver) Pick(rtime.Time) (*Job, rtime.Duration) { return d.currentPick(), 0 }

// NextEvent implements Dispatcher: the earliest upcoming latest-start-time
// or deadline among ready jobs.
func (d *DOver) NextEvent(now rtime.Time) rtime.Time {
	t := rtime.Never
	pick := d.currentPick()
	for _, j := range d.ready {
		if j.AbsDL == rtime.Forever {
			continue
		}
		t = rtime.Min(t, j.AbsDL)
		if j != pick {
			lst := j.AbsDL.Add(-j.Remaining)
			if lst > now {
				t = rtime.Min(t, lst)
			}
		}
	}
	return t
}

// Consumed implements Dispatcher.
func (d *DOver) Consumed(rtime.Time, *Job, rtime.Duration) {}

// Completed implements Dispatcher.
func (d *DOver) Completed(now rtime.Time, j *Job) {
	if j == d.panicJob {
		d.panicJob = nil
	}
	for i, x := range d.ready {
		if x == j {
			d.ready = append(d.ready[:i], d.ready[i+1:]...)
			return
		}
	}
	panic("sim: D-OVER completed unknown job")
}

// CompletedValue sums the value of finished jobs in a result — the metric
// D-OVER optimizes under overload.
func CompletedValue(r *Result) float64 {
	var v float64
	for _, j := range r.Jobs {
		if j.Finished {
			if j.Value > 0 {
				v += j.Value
			} else {
				v += j.Cost.TUs()
			}
		}
	}
	return v
}
