package sim

import (
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func TestHeapCalendarOrdering(t *testing.T) {
	h := &heapCalendar{}
	if h.next() != rtime.Never {
		t.Fatal("empty calendar should report Never")
	}
	if _, ok := h.popDue(rtime.AtTU(100)); ok {
		t.Fatal("empty calendar popped a release")
	}
	// Same instant: periodic tasks in index order, then the aperiodic cursor.
	h.push(release{at: rtime.AtTU(5), ap: true, idx: 0})
	h.push(release{at: rtime.AtTU(5), idx: 1})
	h.push(release{at: rtime.AtTU(3), idx: 2})
	h.push(release{at: rtime.AtTU(5), idx: 0})
	if got := h.next(); got != rtime.AtTU(3) {
		t.Fatalf("next = %v, want 3tu", got)
	}
	want := []release{
		{at: rtime.AtTU(3), idx: 2},
		{at: rtime.AtTU(5), idx: 0},
		{at: rtime.AtTU(5), idx: 1},
		{at: rtime.AtTU(5), ap: true, idx: 0},
	}
	for i, w := range want {
		r, ok := h.popDue(rtime.AtTU(5))
		if !ok || r != w {
			t.Fatalf("pop %d = %+v (ok=%v), want %+v", i, r, ok, w)
		}
	}
	if _, ok := h.popDue(rtime.AtTU(5)); ok {
		t.Fatal("drained calendar popped a release")
	}
}

func TestHeapCalendarFutureNotDue(t *testing.T) {
	h := &heapCalendar{}
	h.push(release{at: rtime.AtTU(7), idx: 0})
	if _, ok := h.popDue(rtime.AtTU(6)); ok {
		t.Fatal("future release reported due")
	}
	if r, ok := h.popDue(rtime.AtTU(7)); !ok || r.at != rtime.AtTU(7) {
		t.Fatalf("release at its instant: %+v ok=%v", r, ok)
	}
}

// TestRunWithSinkTypedNil pins the typed-nil hazard: a nil *trace.Trace
// passed through the Sink interface must select the no-recording fast path
// instead of dereferencing the nil receiver.
func TestRunWithSinkTypedNil(t *testing.T) {
	sys := System{
		Periodics:  []PeriodicTask{{Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(2), Priority: 1}},
		Aperiodics: []AperiodicJob{{Name: "J1", Release: 0, Cost: rtime.TUs(1)}},
	}
	var tr *trace.Trace
	r, err := RunWithSink(sys, NewFP(sys, nil), rtime.AtTU(12), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != nil {
		t.Fatal("typed-nil sink should record nothing")
	}
	if len(r.Aperiodics()) != 1 || !r.Aperiodics()[0].Finished {
		t.Fatalf("run outcome wrong: %+v", r.Aperiodics())
	}
}

// diffSystems builds deterministic pseudo-random workloads mixing periodic
// tasks and aperiodic arrivals, via a local LCG (internal/gen would be an
// import cycle here).
func diffSystems(n int, withServer ServerPolicy) []System {
	seed := uint64(12345)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	u := func(lo, hi float64) float64 {
		return lo + (hi-lo)*float64(next()%1000)/1000
	}
	out := make([]System, 0, n)
	for k := 0; k < n; k++ {
		sys := System{
			Periodics: []PeriodicTask{
				{Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(u(0.5, 2)), Priority: 2},
				{Name: "tau2", Period: rtime.TUs(8), Offset: rtime.AtTU(u(0, 3)), Cost: rtime.TUs(u(0.5, 2)), Priority: 1},
			},
		}
		nAp := 10 + int(next()%10)
		for i := 0; i < nAp; i++ {
			sys.Aperiodics = append(sys.Aperiodics, AperiodicJob{
				// Half the jobs unnamed: exercises lazy J<n> naming too.
				Name:     map[bool]string{true: "", false: "a" + string(rune('A'+i%26))}[i%2 == 0],
				Release:  rtime.AtTU(u(0, 50)),
				Cost:     rtime.TUs(u(0.2, 3)),
				Deadline: rtime.TUs(u(5, 20)),
			})
		}
		if withServer != NoServer || k%2 == 0 {
			sys.Server = &ServerSpec{
				Policy:   withServer,
				Capacity: rtime.TUs(2),
				Period:   rtime.TUs(6),
				Priority: 10,
			}
		}
		out = append(out, sys)
	}
	return out
}

// TestCalendarDifferential runs every workload twice — once with the
// heap-based release calendar, once with the seed's linear-scan calendar —
// and requires bit-identical job outcomes, release order and traces, for
// every dispatcher flavour.
func TestCalendarDifferential(t *testing.T) {
	horizon := rtime.AtTU(60)
	policies := []ServerPolicy{
		NoServer, PollingServer, DeferrableServer,
		LimitedPollingServer, LimitedDeferrableServer,
		SporadicServer, PriorityExchange, SlackStealer,
	}
	type mkDispatcher struct {
		name string
		mk   func(sys System, tr *trace.Trace) Dispatcher
	}
	for _, pol := range policies {
		for trial, sys := range diffSystems(4, pol) {
			dispatchers := []mkDispatcher{
				{"FP+" + pol.String(), func(sys System, tr *trace.Trace) Dispatcher { return NewFP(sys, tr) }},
			}
			if pol == NoServer {
				dispatchers = append(dispatchers,
					mkDispatcher{"EDF", func(sys System, tr *trace.Trace) Dispatcher { return NewEDF() }},
					mkDispatcher{"DOVER", func(sys System, tr *trace.Trace) Dispatcher { return NewDOver(sys, tr) }},
				)
			}
			for _, mk := range dispatchers {
				sys := sys
				if mk.name == "EDF" || mk.name == "DOVER" {
					sys.Server = nil // dynamic-priority dispatchers take no server
				}
				trHeap, trLin := trace.New(), trace.New()
				rHeap, errHeap := runWithCalendar(sys, mk.mk(sys, trHeap), horizon, trHeap, &heapCalendar{})
				rLin, errLin := runWithCalendar(sys, mk.mk(sys, trLin), horizon, trLin,
					newLinearCalendar(len(sys.Periodics)))
				if (errHeap == nil) != (errLin == nil) {
					t.Fatalf("%s trial %d: heap err=%v, linear err=%v", mk.name, trial, errHeap, errLin)
				}
				if errHeap != nil {
					continue
				}
				compareRuns(t, mk.name, trial, rHeap, rLin, trHeap, trLin)
			}
		}
	}
}

func compareRuns(t *testing.T, name string, trial int, a, b *Result, ta, tb *trace.Trace) {
	t.Helper()
	if a.PeriodicMisses != b.PeriodicMisses {
		t.Fatalf("%s trial %d: misses %d vs %d", name, trial, a.PeriodicMisses, b.PeriodicMisses)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("%s trial %d: %d vs %d jobs", name, trial, len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Name() != jb.Name() || ja.Release != jb.Release || ja.Periodic != jb.Periodic {
			t.Fatalf("%s trial %d: release order diverges at %d: %s@%v vs %s@%v",
				name, trial, i, ja.Name(), ja.Release, jb.Name(), jb.Release)
		}
		if ja.Finished != jb.Finished || ja.Finish != jb.Finish ||
			ja.Aborted != jb.Aborted || ja.Remaining != jb.Remaining {
			t.Fatalf("%s trial %d: job %s outcome diverges: %+v vs %+v",
				name, trial, ja.Name(), ja, jb)
		}
	}
	if len(ta.Segments) != len(tb.Segments) {
		t.Fatalf("%s trial %d: %d vs %d segments", name, trial, len(ta.Segments), len(tb.Segments))
	}
	for i := range ta.Segments {
		if ta.Segments[i] != tb.Segments[i] {
			t.Fatalf("%s trial %d: segment %d: %+v vs %+v",
				name, trial, i, ta.Segments[i], tb.Segments[i])
		}
	}
	if len(ta.Events) != len(tb.Events) {
		t.Fatalf("%s trial %d: %d vs %d events", name, trial, len(ta.Events), len(tb.Events))
	}
	for i := range ta.Events {
		if ta.Events[i] != tb.Events[i] {
			t.Fatalf("%s trial %d: event %d: %+v vs %+v",
				name, trial, i, ta.Events[i], tb.Events[i])
		}
	}
}
