package sim

import (
	"math/rand"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func apJob(name string, rel, cost, dl, value float64) AperiodicJob {
	return AperiodicJob{
		Name:     name,
		Release:  rtime.AtTU(rel),
		Cost:     rtime.TUs(cost),
		Deadline: rtime.TUs(dl),
		Value:    value,
	}
}

func runDOver(t *testing.T, sys System, horizonTU float64) *Result {
	t.Helper()
	tr := trace.New()
	r, err := Run(sys, NewDOver(sys, tr), rtime.AtTU(horizonTU), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckSingleCPU(); err != nil {
		t.Fatal(err)
	}
	return r
}

// On an underloaded system D-OVER behaves exactly like EDF.
func TestDOverEqualsEDFUnderload(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		var sys System
		rel := 0.0
		for i := 0; i < 2+rng.Intn(5); i++ {
			rel += rng.Float64() * 4
			cost := 0.5 + rng.Float64()*2
			// Generous deadlines keep the system underloaded.
			sys.Aperiodics = append(sys.Aperiodics,
				apJob("j"+string(rune('0'+i)), rel, cost, cost*4+8, 0))
			rel += cost // serialize releases enough to avoid overload
		}

		trE := trace.New()
		re, err := Run(sys, NewEDF(), rtime.AtTU(100), trE)
		if err != nil {
			t.Fatal(err)
		}
		rd := runDOver(t, sys, 100)

		ej, dj := re.Aperiodics(), rd.Aperiodics()
		for i := range ej {
			if ej[i].Finished != dj[i].Finished {
				t.Fatalf("trial %d: job %s finished mismatch", trial, ej[i].Name())
			}
			if ej[i].Finished && ej[i].Finish != dj[i].Finish {
				t.Fatalf("trial %d: job %s finish %v (EDF) vs %v (D-OVER)",
					trial, ej[i].Name(), ej[i].Finish, dj[i].Finish)
			}
		}
	}
}

// Under overload, a high-value latecomer displaces low-value work.
func TestDOverHighValueWins(t *testing.T) {
	sys := System{Aperiodics: []AperiodicJob{
		apJob("cheap", 0, 4, 5, 1),
		apJob("precious", 1, 4, 5, 100),
	}}
	r := runDOver(t, sys, 20)
	jobs := r.Aperiodics()
	cheap, precious := jobs[0], jobs[1]
	if !precious.Finished {
		t.Error("high-value job should complete")
	}
	// precious wins its LST conflict at t=2 and runs to completion at t=6,
	// exactly its absolute deadline (release 1 + relative deadline 5).
	if precious.Finished && precious.Finish > rtime.AtTU(6) {
		t.Errorf("precious finished at %v, after its deadline", precious.Finish.TUs())
	}
	if cheap.Finished {
		t.Error("cheap job cannot also complete in this overload")
	}
	if !cheap.Aborted {
		t.Error("cheap job should have been abandoned")
	}
}

// A low-value latecomer is abandoned rather than displacing running work.
func TestDOverLowValueAbandoned(t *testing.T) {
	sys := System{Aperiodics: []AperiodicJob{
		apJob("big", 0, 4, 5, 100),
		apJob("small", 1, 4, 5, 1),
	}}
	r := runDOver(t, sys, 20)
	jobs := r.Aperiodics()
	big, small := jobs[0], jobs[1]
	if !big.Finished {
		t.Error("high-value running job should complete")
	}
	if !small.Aborted || small.Finished {
		t.Error("low-value critical job should be abandoned")
	}
}

// A job whose deadline passes while waiting is abandoned and marked.
func TestDOverLateJobAbandoned(t *testing.T) {
	sys := System{Aperiodics: []AperiodicJob{
		apJob("runner", 0, 6, 20, 50),
		apJob("hopeless", 1, 2, 1.5, 1), // deadline at 2.5, LST before release+0.5
	}}
	r := runDOver(t, sys, 20)
	jobs := r.Aperiodics()
	if !jobs[1].Aborted {
		t.Error("hopeless job should be abandoned")
	}
}

// Three simultaneous conflicting jobs: D-OVER's (1+sqrt(k)) guarantee factor
// makes it keep the running job when challengers are not valuable enough,
// and switch when one clearly dominates.
func TestDOverThreeWayConflict(t *testing.T) {
	// Values too close: both challengers fail the (1+sqrt(k)) test and the
	// incumbent (first by EDF tie-break) completes.
	sys := System{Aperiodics: []AperiodicJob{
		apJob("a", 0, 2, 3, 2),
		apJob("b", 0, 2, 3, 3),
		apJob("c", 0, 2, 3, 4),
	}}
	r := runDOver(t, sys, 10)
	jobs := r.Aperiodics()
	if !jobs[0].Finished {
		t.Error("incumbent a should complete when challengers fail the value test")
	}
	if got := CompletedValue(r); got != 2 {
		t.Errorf("completed value = %v, want 2", got)
	}

	// A dominating challenger displaces the incumbent.
	sys2 := System{Aperiodics: []AperiodicJob{
		apJob("a", 0, 2, 3, 2),
		apJob("b", 0, 2, 3, 3),
		apJob("c", 0, 2, 3, 40),
	}}
	r2 := runDOver(t, sys2, 10)
	jobs2 := r2.Aperiodics()
	if !jobs2[2].Finished {
		t.Error("dominating job c should complete")
	}
	if jobs2[0].Finished || jobs2[1].Finished {
		t.Error("displaced jobs cannot complete in this overload")
	}
	busy := r2.Trace.TotalBusy()
	if busy < rtime.TUs(2) {
		t.Errorf("processor busy only %v", busy)
	}
}

func TestDOverImportanceRatio(t *testing.T) {
	sys := System{Aperiodics: []AperiodicJob{
		apJob("a", 0, 1, 5, 1), // density 1
		apJob("b", 0, 1, 5, 4), // density 4
	}}
	d := NewDOver(sys, nil)
	if got := d.K(); got != 4 {
		t.Errorf("K = %v, want 4", got)
	}
	// Uniform values: k = 1.
	sysU := System{Aperiodics: []AperiodicJob{
		apJob("a", 0, 2, 5, 0),
		apJob("b", 0, 3, 5, 0),
	}}
	if got := NewDOver(sysU, nil).K(); got != 1 {
		t.Errorf("uniform K = %v, want 1", got)
	}
}

func TestCompletedValueDefaultsToCost(t *testing.T) {
	sys := System{Aperiodics: []AperiodicJob{apJob("a", 0, 2, 10, 0)}}
	r := runDOver(t, sys, 10)
	if got := CompletedValue(r); got != 2 {
		t.Errorf("CompletedValue = %v, want 2 (cost in tu)", got)
	}
}
