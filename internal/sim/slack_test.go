package sim

import (
	"math/rand"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// Plenty of slack: the aperiodic is served immediately at top priority,
// ahead of a ready periodic task.
func TestSlackImmediateService(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(10), Cost: rtime.TUs(2), Priority: 5},
		},
		Aperiodics: []AperiodicJob{
			{Name: "J1", Release: 0, Cost: rtime.TUs(3)},
		},
		Server: &ServerSpec{Name: "SLACK", Policy: SlackStealer},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 20)
	checkSegments(t, r.Trace, "SLACK", []seg{{0, 3, "J1"}})
	checkSegments(t, r.Trace, "tau1", []seg{{3, 5, ""}, {10, 12, ""}})
	if r.PeriodicMisses != 0 {
		t.Fatalf("misses = %d", r.PeriodicMisses)
	}
}

// Tight periodic load (laxity 1 per period): the stealer throttles to one
// stolen unit per period and never causes a miss.
func TestSlackThrottlesNearDeadlines(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(10), Cost: rtime.TUs(9), Priority: 5},
		},
		Aperiodics: []AperiodicJob{
			{Name: "J1", Release: 0, Cost: rtime.TUs(3)},
		},
		Server: &ServerSpec{Name: "SLACK", Policy: SlackStealer},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 40)
	if r.PeriodicMisses != 0 {
		t.Fatalf("misses = %d\n%s", r.PeriodicMisses, r.Trace.Gantt(trace.GanttOptions{}))
	}
	j := r.Aperiodics()[0]
	if !j.Finished {
		t.Fatal("J1 unserved")
	}
	// One unit of slack per 10tu period: 3 units finish in the 3rd period.
	if j.Finish != rtime.AtTU(21) {
		t.Errorf("J1 finish = %v, want 21 (1tu stolen per period)", j.Finish.TUs())
	}
	// tau1's first job is delayed exactly to its deadline.
	segs := r.Trace.SegmentsOf("tau1")
	if segs[len(segs)-1].End.TUs() > 40 {
		t.Error("tau1 ran past the horizon")
	}
}

// With no periodic tasks at all, the stealer degenerates to immediate
// FIFO service.
func TestSlackNoPeriodics(t *testing.T) {
	sys := System{
		Aperiodics: []AperiodicJob{
			{Name: "J1", Release: 0, Cost: rtime.TUs(2)},
			{Name: "J2", Release: rtime.AtTU(1), Cost: rtime.TUs(2)},
		},
		Server: &ServerSpec{Name: "SLACK", Policy: SlackStealer},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 10)
	checkSegments(t, r.Trace, "SLACK", []seg{{0, 2, "J1"}, {2, 4, "J2"}})
}

// Property: on random feasible periodic sets with random aperiodic load,
// the slack stealer never causes a periodic deadline miss, and its
// response times are no worse than background servicing.
func TestSlackNeverCausesMissesAndBeatsBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		var periodics []PeriodicTask
		u := 0.0
		for i := 0; i < 1+rng.Intn(3); i++ {
			period := 5 + rng.Intn(15)
			c := 0.5 + rng.Float64()*float64(period)*(0.7-u)
			if c < 0.5 {
				break
			}
			u += c / float64(period)
			periodics = append(periodics, PeriodicTask{
				Name:   "p" + string(rune('1'+i)),
				Period: rtime.TUs(float64(period)),
				Cost:   rtime.TUs(c),
			})
		}
		// Rate-monotonic priorities, and skip trials whose periodic-only
		// baseline is itself infeasible (the stealer cannot be blamed for
		// pre-existing misses).
		for i := range periodics {
			prio := 0
			for _, o := range periodics {
				if o.Period > periodics[i].Period {
					prio++
				}
			}
			periodics[i].Priority = prio
		}
		baseline := System{Periodics: periodics}
		rb, err := Run(baseline, NewFP(baseline, nil), rtime.AtTU(60), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rb.PeriodicMisses > 0 {
			continue
		}
		var jobs []AperiodicJob
		for i := 0; i < 1+rng.Intn(5); i++ {
			jobs = append(jobs, AperiodicJob{
				Name:    "J" + string(rune('1'+i)),
				Release: rtime.AtTU(rng.Float64() * 40),
				Cost:    rtime.TUs(0.2 + rng.Float64()*2),
			})
		}
		mk := func(policy ServerPolicy) *Result {
			sys := System{Periodics: periodics, Aperiodics: jobs,
				Server: &ServerSpec{Policy: policy, Capacity: rtime.TUs(1), Period: rtime.TUs(10), Priority: 1000}}
			if policy == SlackStealer {
				sys.Server = &ServerSpec{Policy: SlackStealer}
			}
			tr := trace.New()
			r, err := Run(sys, NewFP(sys, tr), rtime.AtTU(60), tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckSingleCPU(); err != nil {
				t.Fatal(err)
			}
			return r
		}
		rSlack := mk(SlackStealer)
		if rSlack.PeriodicMisses != 0 {
			t.Fatalf("trial %d: slack stealer caused %d misses\n%s",
				trial, rSlack.PeriodicMisses, rSlack.Trace.Gantt(trace.GanttOptions{}))
		}
		rBG := mk(NoServer)
		slackJobs, bgJobs := rSlack.Aperiodics(), rBG.Aperiodics()
		for i := range slackJobs {
			if bgJobs[i].Finished && !slackJobs[i].Finished {
				t.Errorf("trial %d: %s served by BG but not by slack stealing",
					trial, slackJobs[i].Name())
			}
			if bgJobs[i].Finished && slackJobs[i].Finished &&
				slackJobs[i].Finish > bgJobs[i].Finish {
				t.Errorf("trial %d: %s slower under slack stealing (%v vs %v)",
					trial, slackJobs[i].Name(), slackJobs[i].Finish.TUs(), bgJobs[i].Finish.TUs())
			}
		}
	}
}

func TestSlackPolicyString(t *testing.T) {
	if SlackStealer.String() != "SLACK" {
		t.Error("string")
	}
}
