package sim

import (
	"math/rand"
	"testing"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

func peSystem(aperiodics []AperiodicJob) System {
	return System{
		Periodics: []PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(10), Cost: rtime.TUs(2), Priority: 5},
		},
		Aperiodics: aperiodics,
		Server: &ServerSpec{Name: "PE", Policy: PriorityExchange,
			Capacity: rtime.TUs(1), Period: rtime.TUs(5), Priority: 10},
	}
}

// Capacity exchanged to a lower level is preserved and serves a later
// arrival immediately — where a polling server would have discarded it.
func TestPEPreservesCapacityThroughExchange(t *testing.T) {
	sys := peSystem([]AperiodicJob{
		{Name: "J1", Release: rtime.AtTU(1.5), Cost: rtime.TUs(1)},
	})
	r := mustRun(t, sys, fpDispatcher(sys), 10)
	// tau1 runs [0,1) exchanging the top capacity down to level 5; J1
	// arrives at 1.5 and consumes the preserved capacity at once.
	checkSegments(t, r.Trace, "PE", []seg{{1.5, 2.5, "J1"}})
	checkSegments(t, r.Trace, "tau1", []seg{{0, 1.5, ""}, {2.5, 3, ""}})
	if got := r.Aperiodics()[0].ResponseTime(); got != rtime.TUs(1) {
		t.Errorf("J1 response = %v, want 1tu", got)
	}

	// The same workload under a polling server: capacity was lost at the
	// empty activation, J1 waits for the next period.
	sysPS := peSystem(sys.Aperiodics)
	sysPS.Server = &ServerSpec{Name: "PS", Policy: PollingServer,
		Capacity: rtime.TUs(1), Period: rtime.TUs(5), Priority: 10}
	rPS := mustRun(t, sysPS, fpDispatcher(sysPS), 10)
	if got := rPS.Aperiodics()[0].ResponseTime(); got != rtime.TUs(4.5) {
		t.Errorf("J1 under PS response = %v, want 4.5tu", got)
	}
}

// Idle time drains preserved capacity: an arrival after an idle gap finds
// nothing left and waits for the replenishment.
func TestPEIdleDrainsCapacity(t *testing.T) {
	sys := peSystem([]AperiodicJob{
		{Name: "J1", Release: rtime.AtTU(4), Cost: rtime.TUs(1)},
	})
	r := mustRun(t, sys, fpDispatcher(sys), 10)
	// [0,1): exchange to level 5; tau1 done at 2; idle [2,3) drains the
	// preserved unit; J1 at 4 must wait for the replenishment at 5.
	checkSegments(t, r.Trace, "PE", []seg{{5, 6, "J1"}})
	if got := r.Aperiodics()[0].ResponseTime(); got != rtime.TUs(2) {
		t.Errorf("J1 response = %v, want 2tu", got)
	}
}

// An arrival while the top-level capacity is still whole is served at the
// server's top priority, preempting the periodic task.
func TestPETopLevelService(t *testing.T) {
	sys := peSystem([]AperiodicJob{
		{Name: "J1", Release: rtime.AtTU(0), Cost: rtime.TUs(1)},
	})
	r := mustRun(t, sys, fpDispatcher(sys), 10)
	checkSegments(t, r.Trace, "PE", []seg{{0, 1, "J1"}})
	checkSegments(t, r.Trace, "tau1", []seg{{1, 3, ""}})
}

// Exchanged capacity serves at the *exchanged* priority: it does not
// preempt a periodic task of higher priority than the account level.
func TestPEExchangedPriorityRespected(t *testing.T) {
	sys := System{
		Periodics: []PeriodicTask{
			{Name: "hi", Period: rtime.TUs(10), Cost: rtime.TUs(2), Priority: 8, Offset: rtime.AtTU(1.5)},
			{Name: "lo", Period: rtime.TUs(10), Cost: rtime.TUs(2), Priority: 2},
		},
		Aperiodics: []AperiodicJob{
			{Name: "J1", Release: rtime.AtTU(2), Cost: rtime.TUs(1)},
		},
		Server: &ServerSpec{Name: "PE", Policy: PriorityExchange,
			Capacity: rtime.TUs(1), Period: rtime.TUs(20), Priority: 10},
	}
	r := mustRun(t, sys, fpDispatcher(sys), 10)
	// [0,1): lo runs, capacity exchanges to level 2. hi releases at 1.5.
	// J1 arrives at 2 but its capacity now lives at level 2 < 8: hi runs
	// first ([1.5,3.5)), then J1 consumes the level-2 capacity.
	checkSegments(t, r.Trace, "PE", []seg{{3.5, 4.5, "J1"}})
	checkSegments(t, r.Trace, "hi", []seg{{1.5, 3.5, ""}})
}

// PE average response times sit between the DS (immediate service) and the
// PS (discarding) on random workloads, and the schedule stays valid.
func TestPEBetweenPSAndDS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sumPS, sumPE, sumDS float64
	for trial := 0; trial < 30; trial++ {
		var jobs []AperiodicJob
		for i := 0; i < 5; i++ {
			jobs = append(jobs, AperiodicJob{
				Name:    "J" + string(rune('1'+i)),
				Release: rtime.AtTU(rng.Float64() * 50),
				Cost:    rtime.TUs(0.2 + rng.Float64()*0.8),
			})
		}
		avg := func(policy ServerPolicy) float64 {
			sys := System{
				Periodics: []PeriodicTask{
					{Name: "tau1", Period: rtime.TUs(7), Cost: rtime.TUs(3), Priority: 5},
				},
				Aperiodics: jobs,
				Server: &ServerSpec{Policy: policy,
					Capacity: rtime.TUs(1), Period: rtime.TUs(7), Priority: 10},
			}
			tr := trace.New()
			r, err := Run(sys, NewFP(sys, tr), rtime.AtTU(70), tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckSingleCPU(); err != nil {
				t.Fatal(err)
			}
			var sum float64
			n := 0
			for _, j := range r.Aperiodics() {
				if j.Finished {
					sum += j.ResponseTime().TUs()
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
		sumPS += avg(PollingServer)
		sumPE += avg(PriorityExchange)
		sumDS += avg(DeferrableServer)
	}
	if !(sumDS <= sumPE+1e-9 && sumPE <= sumPS+1e-9) {
		t.Errorf("expected DS <= PE <= PS on average: DS=%.2f PE=%.2f PS=%.2f",
			sumDS/30, sumPE/30, sumPS/30)
	}
}

func TestPEPolicyString(t *testing.T) {
	if PriorityExchange.String() != "PE" {
		t.Error("PE string")
	}
}
