package sim

import (
	"rtsj/internal/rtime"
)

// dlHeap is a binary min-heap of jobs ordered by (absolute deadline asc,
// seq asc).
type dlHeap struct{ a []*Job }

func (h *dlHeap) less(i, j int) bool {
	if h.a[i].AbsDL != h.a[j].AbsDL {
		return h.a[i].AbsDL < h.a[j].AbsDL
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *dlHeap) swap(i, j int) { h.a[i], h.a[j] = h.a[j], h.a[i] }

func (h *dlHeap) push(j *Job) {
	h.a = append(h.a, j)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *dlHeap) peek() *Job {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *dlHeap) remove(j *Job) bool {
	for i, x := range h.a {
		if x == j {
			h.a[i] = h.a[len(h.a)-1]
			h.a = h.a[:len(h.a)-1]
			old := h.a
			h.a = nil
			for _, y := range old {
				h.push(y)
			}
			return true
		}
	}
	return false
}

// EDF is the earliest-deadline-first dispatcher of RTSS. Aperiodic jobs
// without a deadline sort last (deadline at infinity), i.e. they are served
// in the background of the deadline-constrained load.
type EDF struct {
	ready dlHeap
}

// NewEDF builds an EDF dispatcher.
func NewEDF() *EDF { return &EDF{} }

// Name implements Dispatcher.
func (d *EDF) Name() string { return "EDF" }

// Release implements Dispatcher.
func (d *EDF) Release(now rtime.Time, j *Job) { d.ready.push(j) }

// Tick implements Dispatcher.
func (d *EDF) Tick(rtime.Time) {}

// Pick implements Dispatcher.
func (d *EDF) Pick(rtime.Time) (*Job, rtime.Duration) { return d.ready.peek(), 0 }

// NextEvent implements Dispatcher.
func (d *EDF) NextEvent(rtime.Time) rtime.Time { return rtime.Never }

// Consumed implements Dispatcher.
func (d *EDF) Consumed(rtime.Time, *Job, rtime.Duration) {}

// Completed implements Dispatcher.
func (d *EDF) Completed(now rtime.Time, j *Job) {
	if !d.ready.remove(j) {
		panic("sim: EDF completed unknown job")
	}
}
