package sim

import (
	"testing"

	"rtsj/internal/rtime"
)

func recycleTestSystem() System {
	return System{
		Periodics: []PeriodicTask{
			{Name: "tau1", Period: rtime.TUs(6), Cost: rtime.TUs(2), Priority: 50},
			{Name: "tau2", Period: rtime.TUs(8), Cost: rtime.TUs(1), Priority: 40},
		},
		Aperiodics: []AperiodicJob{
			{Name: "e1", Release: rtime.AtTU(1), Cost: rtime.TUs(2)},
			{Name: "e2", Release: rtime.AtTU(7), Cost: rtime.TUs(1)},
			{Name: "e3", Release: rtime.AtTU(13), Cost: rtime.TUs(3)},
		},
		Server: &ServerSpec{Policy: DeferrableServer, Capacity: rtime.TUs(4), Period: rtime.TUs(6), Priority: 100},
	}
}

type jobSnapshot struct {
	name     string
	periodic bool
	release  rtime.Time
	finish   rtime.Time
	finished bool
	started  bool
	remain   rtime.Duration
}

func snapshotJobs(r *Result) []jobSnapshot {
	out := make([]jobSnapshot, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		out = append(out, jobSnapshot{
			name:     j.Name(),
			periodic: j.Periodic,
			release:  j.Release,
			finish:   j.Finish,
			finished: j.Finished,
			started:  j.Started,
			remain:   j.Remaining,
		})
	}
	return out
}

// TestRecycleRerunIdentical pins the pooling contract: a run whose Job
// records come from recycled pool entries produces bit-identical outcomes
// to a fresh run, because the engine fully overwrites every record it takes
// from the pool.
func TestRecycleRerunIdentical(t *testing.T) {
	sys := recycleTestSystem()
	horizon := rtime.AtTU(24)
	run := func() (*Result, []jobSnapshot) {
		r, err := Run(sys, NewFP(sys, nil), horizon, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r, snapshotJobs(r)
	}
	r1, want := run()
	if len(want) == 0 {
		t.Fatal("run produced no jobs")
	}
	// Poison the records before recycling so a stale field that survives
	// pool reuse cannot silently match.
	for _, j := range r1.Jobs {
		j.Remaining = rtime.TUs(999)
		j.Finished = false
		j.Aborted = true
	}
	r1.Recycle()
	if r1.Jobs != nil {
		t.Fatal("Recycle left Jobs non-nil")
	}

	_, got := run()
	if len(got) != len(want) {
		t.Fatalf("rerun produced %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d after recycle = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRecycleAfterPartition checks recycling resets the cached
// periodic/aperiodic partition along with the job records.
func TestRecycleAfterPartition(t *testing.T) {
	sys := recycleTestSystem()
	r, err := Run(sys, NewFP(sys, nil), rtime.AtTU(24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Aperiodics()) == 0 || len(r.Periodics()) == 0 {
		t.Fatal("partition empty before recycle")
	}
	r.Recycle()
	if len(r.Aperiodics()) != 0 || len(r.Periodics()) != 0 {
		t.Fatal("partition not reset by Recycle")
	}
}
