package sim

import (
	"sort"

	"rtsj/internal/rtime"
	"rtsj/internal/trace"
)

// exchangeObserver is implemented by servers that need to watch the rest of
// the schedule (the Priority Exchange server trades its capacity against
// the CPU time of lower-priority periodic tasks).
type exchangeObserver interface {
	observeRun(now rtime.Time, prio int, delta rtime.Duration)
	observeIdle(now rtime.Time, delta rtime.Duration)
}

// acctLevel is one per-priority capacity account of the PE server.
type acctLevel struct {
	prio int
	cap  rtime.Duration
}

// peServer implements the Priority Exchange policy (Lehoczky, Sha &
// Strosnider 1987), the third server family the paper cites. The server is
// replenished at the highest priority every period; when no aperiodic work
// is pending, its capacity is not discarded (as a polling server's would
// be) but exchanged with the executing lower-priority periodic task:
// the capacity descends to that task's priority level and is preserved
// there. A later aperiodic arrival consumes preserved capacity at the
// highest level holding any, executing at that level's priority. Idle time
// drains the accounts (capacity cannot be preserved against idleness).
//
// The executed schedule during an exchange is unchanged — the highest-
// priority ready periodic task runs either way — so the engine only needs
// the bookkeeping hooks (observeRun / observeIdle); no job promotion is
// involved.
type peServer struct {
	nm       string
	topPrio  int
	cs       rtime.Duration
	ts       rtime.Duration
	nextRepl rtime.Time
	queue    fifoQueue
	accts    []acctLevel // sorted by prio descending; caps > 0
	serveAt  int         // account priority used by the slice being served
}

func newPE(spec ServerSpec) *peServer {
	return &peServer{nm: spec.name(), topPrio: spec.Priority, cs: spec.Capacity, ts: spec.Period}
}

func (s *peServer) name() string { return "PE" }

// priority reports the level the server would execute at now: the highest
// account with capacity (its top priority before any exchange).
func (s *peServer) priority() int {
	if len(s.accts) > 0 {
		return s.accts[0].prio
	}
	return s.topPrio
}

func (s *peServer) arrive(now rtime.Time, j *Job) {
	s.queue.attribute(s.nm, j)
	s.queue.push(j)
}

func (s *peServer) credit(prio int, amount rtime.Duration) {
	if amount <= 0 {
		return
	}
	for i := range s.accts {
		if s.accts[i].prio == prio {
			s.accts[i].cap += amount
			return
		}
	}
	s.accts = append(s.accts, acctLevel{prio: prio, cap: amount})
	sort.Slice(s.accts, func(a, b int) bool { return s.accts[a].prio > s.accts[b].prio })
}

// drainTop removes up to delta from the highest account at or above
// floorPrio (exclusive), returning how much was drained and from which
// level.
func (s *peServer) drainAbove(floorPrio int, delta rtime.Duration) (rtime.Duration, int) {
	for i := range s.accts {
		if s.accts[i].prio <= floorPrio {
			break
		}
		m := rtime.MinDur(s.accts[i].cap, delta)
		s.accts[i].cap -= m
		prio := s.accts[i].prio
		if s.accts[i].cap == 0 {
			s.accts = append(s.accts[:i], s.accts[i+1:]...)
		}
		return m, prio
	}
	return 0, 0
}

func (s *peServer) tick(now rtime.Time, tr *trace.Trace) {
	for now >= s.nextRepl {
		// Replenish at the top priority. Any capacity still sitting at the
		// top level is superseded by the fresh budget.
		s.setTop(s.cs)
		if tr != nil {
			tr.Mark(s.nm, s.nextRepl, trace.Replenish, "")
		}
		s.nextRepl = s.nextRepl.Add(s.ts)
	}
}

func (s *peServer) setTop(c rtime.Duration) {
	for i := range s.accts {
		if s.accts[i].prio == s.topPrio {
			s.accts[i].cap = c
			return
		}
	}
	s.credit(s.topPrio, c)
}

func (s *peServer) pick(now rtime.Time) (*Job, rtime.Duration) {
	if s.queue.empty() || len(s.accts) == 0 {
		return nil, 0
	}
	s.serveAt = s.accts[0].prio
	return s.queue.head(), s.accts[0].cap
}

func (s *peServer) nextEvent(now rtime.Time) rtime.Time { return s.nextRepl }

func (s *peServer) consumed(now rtime.Time, j *Job, delta rtime.Duration, tr *trace.Trace) {
	// Aperiodic service consumes the account the slice started on.
	drained, _ := s.drainAbove(s.serveAt-1, delta)
	if drained != delta {
		panic("sim: PE served beyond its account")
	}
}

func (s *peServer) completed(now rtime.Time, j *Job) {
	if !s.queue.remove(j) {
		panic("sim: PE completed job not queued")
	}
}

// observeRun exchanges capacity held above the running task's priority for
// that task's execution time: the capacity descends to the task's level.
func (s *peServer) observeRun(now rtime.Time, prio int, delta rtime.Duration) {
	for delta > 0 {
		m, _ := s.drainAbove(prio, delta)
		if m == 0 {
			return
		}
		s.credit(prio, m)
		delta -= m
	}
}

// observeIdle drains preserved capacity: nothing executes, so the server
// "runs" its budget against emptiness and loses it.
func (s *peServer) observeIdle(now rtime.Time, delta rtime.Duration) {
	for delta > 0 && len(s.accts) > 0 {
		m, _ := s.drainAbove(minInt, delta)
		if m == 0 {
			return
		}
		delta -= m
	}
}

const minInt = -int(^uint(0)>>1) - 1
