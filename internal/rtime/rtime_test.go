package rtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTUConversions(t *testing.T) {
	cases := []struct {
		tu   float64
		want Duration
	}{
		{0, 0},
		{1, Millisecond},
		{3, 3 * Millisecond},
		{0.1, 100 * Microsecond},
		{2.5, 2500 * Microsecond},
		{-1, -Millisecond},
	}
	for _, c := range cases {
		if got := TUs(c.tu); got != c.want {
			t.Errorf("TUs(%v) = %v, want %v", c.tu, int64(got), int64(c.want))
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := AtTU(2)
	t1 := t0.Add(TUs(3))
	if t1 != AtTU(5) {
		t.Fatalf("Add: got %v want %v", t1, AtTU(5))
	}
	if d := t1.Sub(t0); d != TUs(3) {
		t.Fatalf("Sub: got %v want %v", d, TUs(3))
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatalf("ordering broken: %v vs %v", t0, t1)
	}
}

func TestMinMax(t *testing.T) {
	a, b := AtTU(1), AtTU(2)
	if Min(a, b) != a || Min(b, a) != a {
		t.Errorf("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max wrong")
	}
	if MinDur(TUs(1), TUs(2)) != TUs(1) {
		t.Errorf("MinDur wrong")
	}
	if MaxDur(TUs(1), TUs(2)) != TUs(2) {
		t.Errorf("MaxDur wrong")
	}
}

func TestDivCeilFloor(t *testing.T) {
	cases := []struct {
		a, b        Duration
		ceil, floor int64
	}{
		{0, TU, 0, 0},
		{TU, TU, 1, 1},
		{TU + 1, TU, 2, 1},
		{5 * TU, 2 * TU, 3, 2},
		{6 * TU, 2 * TU, 3, 3},
		{-TU, TU, 0, -1},
	}
	for _, c := range cases {
		if got := DivCeil(c.a, c.b); got != c.ceil {
			t.Errorf("DivCeil(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := DivFloor(c.a, c.b); got != c.floor {
			t.Errorf("DivFloor(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

func TestDivCeilPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DivCeil(TU, 0)
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{3 * TU, "3tu"},
		{TUs(2.5), "2.5tu"},
		{TUs(0.1), "0.1tu"},
		{0, "0tu"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.d, got, c.want)
		}
	}
	if got := AtTU(12).String(); got != "t=12tu" {
		t.Errorf("Time.String = %q", got)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
		ok   bool
	}{
		{"3tu", 3 * TU, true},
		{"2.5tu", TUs(2.5), true},
		{"3ms", 3 * Millisecond, true},
		{"250us", 250 * Microsecond, true},
		{"1s", Second, true},
		{"7", 7 * TU, true},
		{" 4 tu", 4 * TU, true},
		{"abc", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", c.in)
		}
	}
}

func TestParseRoundTripsString(t *testing.T) {
	f := func(ms int32) bool {
		d := Duration(ms) * Millisecond
		got, err := ParseDuration(d.String())
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivCeilProperty(t *testing.T) {
	// DivCeil(a,b) is the least k with k*b >= a, for a >= 0.
	f := func(a uint16, b uint8) bool {
		bb := Duration(b) + 1
		aa := Duration(a)
		k := DivCeil(aa, bb)
		return Duration(k)*bb >= aa && (k == 0 || Duration(k-1)*bb < aa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTUsRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		tu := float64(n) / 10 // 0.1 tu granularity like the paper
		d := TUs(tu)
		return math.Abs(d.TUs()-tu) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
