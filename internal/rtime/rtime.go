// Package rtime defines the time model shared by the simulator, the
// virtual-time executive and the analysis code.
//
// All components operate on a virtual clock: Time is an instant (nanoseconds
// since system start) and Duration is a span of virtual time. Using a fixed
// integer representation keeps every engine deterministic and makes traces
// from the simulator and the executive directly comparable.
//
// The paper expresses workloads in abstract "time units" (tu). We map
// 1 tu = 1 millisecond, which comfortably represents the paper's 0.1 tu cost
// granularity without rounding.
package rtime

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Time is an instant of virtual time, in nanoseconds since system start.
type Time int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond

	// TU is one paper "time unit" (1 ms of virtual time).
	TU = Millisecond
)

// Forever is a sentinel instant later than any instant reached by an engine.
const Forever Time = math.MaxInt64

// Never is the zero-capable sentinel used for "no event scheduled".
const Never Time = math.MaxInt64

// TUs converts a quantity of paper time units to a Duration, rounding to the
// nearest nanosecond.
func TUs(tu float64) Duration {
	return Duration(math.Round(tu * float64(TU)))
}

// AtTU converts a quantity of paper time units to an instant.
func AtTU(tu float64) Time {
	return Time(TUs(tu))
}

// TUs reports the duration in paper time units.
func (d Duration) TUs() float64 { return float64(d) / float64(TU) }

// TUs reports the instant in paper time units since system start.
func (t Time) TUs() float64 { return float64(t) / float64(TU) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Min returns the earlier of two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the smaller of two durations.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the larger of two durations.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// DivCeil returns ceil(a/b) for positive b.
func DivCeil(a, b Duration) int64 {
	if b <= 0 {
		panic("rtime: DivCeil by non-positive duration")
	}
	if a <= 0 {
		return 0
	}
	return int64((a + b - 1) / b)
}

// DivFloor returns floor(a/b) for positive b and non-negative a.
func DivFloor(a, b Duration) int64 {
	if b <= 0 {
		panic("rtime: DivFloor by non-positive duration")
	}
	if a < 0 {
		return -DivCeil(-a, b)
	}
	return int64(a / b)
}

// String formats a duration in time units, e.g. "3tu" or "2.5tu".
func (d Duration) String() string { return formatTU(float64(d)/float64(TU)) + "tu" }

// String formats an instant in time units, e.g. "t=12tu".
func (t Time) String() string { return "t=" + formatTU(float64(t)/float64(TU)) + "tu" }

func formatTU(v float64) string {
	s := strconv.FormatFloat(v, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// ParseDuration parses durations written in time units ("3tu", "2.5tu"),
// milliseconds ("3ms"), microseconds ("250us"), or bare numbers interpreted
// as time units ("3").
func ParseDuration(s string) (Duration, error) {
	orig := s
	s = strings.TrimSpace(s)
	unit := TU
	switch {
	case strings.HasSuffix(s, "tu"):
		s = strings.TrimSuffix(s, "tu")
	case strings.HasSuffix(s, "ms"):
		s, unit = strings.TrimSuffix(s, "ms"), Millisecond
	case strings.HasSuffix(s, "us"):
		s, unit = strings.TrimSuffix(s, "us"), Microsecond
	case strings.HasSuffix(s, "ns"):
		s, unit = strings.TrimSuffix(s, "ns"), Nanosecond
	case strings.HasSuffix(s, "s"):
		s, unit = strings.TrimSuffix(s, "s"), Second
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("rtime: cannot parse duration %q: %v", orig, err)
	}
	return Duration(math.Round(v * float64(unit))), nil
}
