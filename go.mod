module rtsj

go 1.24
