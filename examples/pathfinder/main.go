// Pathfinder: the canonical priority-inversion story (Mars Pathfinder,
// 1997), replayed on the RTSJ emulation. A low-priority meteo task shares a
// bus monitor with the high-priority dispatcher; a medium-priority
// communication task preempts the meteo task while it holds the monitor,
// and the dispatcher — blocked behind both — misses its deadline and
// triggers the watchdog. The RTSJ mandates priority inheritance on
// monitors precisely to bound this inversion; this example runs the same
// workload with and without it.
//
// Run with: go run ./examples/pathfinder
package main

import (
	"fmt"

	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/trace"
)

func run(inherit bool) {
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
	var bus *rtsjvm.Monitor
	if inherit {
		bus = vm.NewMonitor("bus")
	} else {
		bus = vm.NewMonitorNoAvoidance("bus")
	}

	const deadline = 6.0 // dispatcher must finish its cycle by t=6
	var dispatcherDone rtime.Time

	// Low priority: meteorological data collection, holds the bus 2ms.
	vm.NewRealtimeThread("meteo", 1, nil, func(r *rtsjvm.RTC) {
		bus.Synchronized(r.TC, func() {
			r.Consume(rtime.TUs(2))
		})
		r.Consume(rtime.TUs(1))
	})
	// Medium priority: long communication burst, no bus involved.
	vm.NewRealtimeThread("comms", 5,
		&rtsjvm.PeriodicParameters{Start: rtime.AtTU(1.5), Period: rtime.TUs(100), Cost: rtime.TUs(5)},
		func(r *rtsjvm.RTC) {
			r.Consume(rtime.TUs(5))
		})
	// High priority: bus dispatcher, needs the bus briefly.
	vm.NewRealtimeThread("dispatch", 9,
		&rtsjvm.PeriodicParameters{Start: rtime.AtTU(1), Period: rtime.TUs(100), Cost: rtime.TUs(1)},
		func(r *rtsjvm.RTC) {
			bus.Synchronized(r.TC, func() {
				r.Consume(rtime.TUs(1))
			})
			dispatcherDone = r.Now()
		})

	if err := vm.Run(rtime.AtTU(12)); err != nil {
		panic(err)
	}
	vm.Shutdown()

	mode := "WITHOUT priority inheritance"
	if inherit {
		mode = "WITH priority inheritance (RTSJ default)"
	}
	fmt.Printf("=== %s ===\n", mode)
	fmt.Println(vm.Trace().Gantt(trace.GanttOptions{Until: rtime.AtTU(12)}))
	verdict := "met its deadline"
	if dispatcherDone.TUs() > deadline {
		verdict = "MISSED its deadline -> watchdog reset"
	}
	fmt.Printf("dispatcher finished at t=%v (deadline %v): %s\n\n",
		dispatcherDone.TUs(), deadline, verdict)
}

func main() {
	run(false)
	run(true)
}
