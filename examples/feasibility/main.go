// Feasibility: the off-line analysis toolbox. Response-time analysis with
// and without a task server, the Liu & Layland / hyperbolic / DS
// utilization bounds, EDF demand analysis, and the paper's Section 7
// on-line response-time computation for aperiodic events under a Polling
// Server.
//
// Run with: go run ./examples/feasibility
package main

import (
	"fmt"

	"rtsj/internal/analysis"
	"rtsj/internal/rtime"
)

func main() {
	tasks := []analysis.Task{
		{Name: "t1", C: rtime.TUs(1), T: rtime.TUs(4), Prio: 3},
		{Name: "t2", C: rtime.TUs(2), T: rtime.TUs(6), Prio: 2},
		{Name: "t3", C: rtime.TUs(3), T: rtime.TUs(12), Prio: 1},
	}

	fmt.Println("Periodic task set:")
	for _, r := range analysis.ResponseTimes(tasks) {
		fmt.Println("  " + r.String())
	}
	fmt.Printf("utilization        : %.3f\n", analysis.Utilization(tasks))
	fmt.Printf("Liu-Layland bound  : %.3f (pass: %v)\n",
		analysis.LiuLaylandBound(len(tasks)), analysis.FeasibleLiuLayland(tasks))
	fmt.Printf("hyperbolic bound   : pass: %v\n", analysis.FeasibleHyperbolic(tasks))
	fmt.Printf("EDF demand analysis: pass: %v\n\n", analysis.EDFFeasible(tasks))

	// Add a task server at the highest priority: a PS analyses like a
	// periodic task; a DS needs the modified (jitter) analysis.
	cs, ts := rtime.TUs(1), rtime.TUs(6)
	fmt.Printf("Adding a server (capacity %v, period %v) at the top priority:\n", cs, ts)
	withPS := analysis.WithPollingServer(tasks, cs, ts, 10)
	fmt.Println("  with Polling Server:")
	for _, r := range analysis.ResponseTimes(withPS) {
		fmt.Println("    " + r.String())
	}
	withDS := analysis.WithDeferrableServer(tasks, cs, ts, 10)
	fmt.Println("  with Deferrable Server (back-to-back interference):")
	for _, r := range analysis.ResponseTimes(withDS) {
		fmt.Println("    " + r.String())
	}
	us := float64(cs) / float64(ts)
	fmt.Printf("  DS utilization bound for %d tasks at Us=%.2f: %.3f\n\n",
		len(tasks), us, analysis.DSUtilizationBound(len(tasks), us))

	// The paper's Section 7: on-line response time of an aperiodic event
	// under a highest-priority PS, computable at its arrival.
	st := analysis.PSServerState{Cs: rtime.TUs(4), Ts: rtime.TUs(6), Rem: rtime.TUs(2), Now: rtime.AtTU(8)}
	fmt.Println("On-line aperiodic response times (PS Cs=4 Ts=6, cs(t)=2 at t=8):")
	for _, backlog := range []float64{1, 2, 5, 9} {
		r := analysis.OnlinePSResponse(st, rtime.TUs(backlog), rtime.AtTU(8))
		fmt.Printf("  backlog %4.1ftu -> response %v\n", backlog, r)
	}
	fmt.Println("\nAn admission controller can reject an event (or flag it) when the")
	fmt.Println("predicted response exceeds its deadline — in O(1) with the paper's")
	fmt.Println("list-of-lists pending structure (see PollingTaskServer.UseAdmissionQueue).")
}
