// Campaign: sweep a Deferrable Server's schedulability over increasing
// aperiodic load with the streaming campaign fabric.
//
// Each sweep point simulates 150 randomly generated systems (paper-style
// generation, index-addressable via gen.SystemAt) and folds their outcomes
// into one mergeable partial as they complete — no per-system record is
// retained, so the same code scales to millions of systems. The printed
// curve is bit-identical for any worker count, and to a sharded run of the
// same spec (see cmd/shard and `tables -campaign`).
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"os"

	"rtsj/internal/experiments"
)

func main() {
	// The stock sweep carries the offered aperiodic load from 25% to 200%
	// of the DS(4, 6) server's bandwidth; shrink it for a quick run.
	spec := experiments.DefaultCampaignSpec()
	spec.Points = []float64{0.5, 1.5, 2.5, 3.5}
	spec.Systems = 150

	curve, err := experiments.RunCampaign(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	fmt.Print(curve.Format())

	// The curve is data, not just text: find where the served ratio drops
	// below three quarters — the knee the paper's ASR columns circle.
	last := -1
	for i, pt := range curve.Points {
		if pt.Partial.ServedRatio() >= 0.75 {
			last = i
		}
	}
	fmt.Println()
	if last >= 0 {
		pt := curve.Points[last]
		fmt.Printf("Server keeps serving >= 75%% of events up to density %.2g (load %.0f%%).\n",
			pt.Density, 100*pt.Load)
	} else {
		fmt.Println("Every sweep point already overloads the server.")
	}
}
