// Overload: RTSS's value-based D-OVER policy against plain EDF when the
// system is overloaded. Under overload EDF collapses (the famous domino
// effect: it starts everything and finishes nothing), while D-OVER
// abandons low-value work to guarantee the high-value jobs.
//
// Run with: go run ./examples/overload
package main

import (
	"fmt"

	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

func job(name string, rel, cost, dl, value float64) sim.AperiodicJob {
	return sim.AperiodicJob{
		Name: name, Release: rtime.AtTU(rel),
		Cost: rtime.TUs(cost), Deadline: rtime.TUs(dl), Value: value,
	}
}

func main() {
	// 200% load over [0, 12): six jobs, only half can fit.
	sys := sim.System{Aperiodics: []sim.AperiodicJob{
		job("batch1", 0, 4, 6, 4),
		job("batch2", 1, 4, 6, 4),
		job("video", 2, 3, 5, 9),
		job("batch3", 6, 4, 6, 4),
		job("audio", 7, 2, 4, 8),
		job("batch4", 8, 4, 6, 4),
	}}

	run := func(name string, d sim.Dispatcher, tr *trace.Trace) {
		r, err := sim.Run(sys, d, rtime.AtTU(16), tr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s ==\n", name)
		fmt.Println(tr.Gantt(trace.GanttOptions{Until: rtime.AtTU(16), AxisEvery: 4}))
		var done, value float64
		for _, j := range r.Aperiodics() {
			status := "missed"
			if j.Finished && j.Finish <= j.AbsDL {
				status = "completed"
				done++
				value += j.Value
			} else if j.Aborted {
				status = "abandoned"
			}
			fmt.Printf("  %-7s value %2.0f: %s\n", j.Name(), j.Value, status)
		}
		fmt.Printf("  completed value: %.0f\n\n", value)
	}

	trEDF := trace.New()
	run("EDF (domino effect under overload)", sim.NewEDF(), trEDF)

	trD := trace.New()
	run("D-OVER (value-based overload handling)", sim.NewDOver(sys, trD), trD)
}
