// Comparison: the paper's core motivation, quantified. The same random
// aperiodic workload is serviced four ways — in the background (the trivial
// baseline of Section 2), by a Polling Server, by a Deferrable Server and
// by a Sporadic Server — under the RTSS simulator, and the aperiodic
// response-time metrics are compared.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"

	"rtsj/internal/gen"
	"rtsj/internal/metrics"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

func main() {
	p := gen.Params{
		TaskDensity:    1,
		AverageCost:    0.8,
		StdDeviation:   0.3,
		ServerCapacity: 1,
		ServerPeriod:   8,
		NbGeneration:   20,
		Seed:           42,
		HorizonPeriods: 20,
	}
	// Heavy periodic load below the server (~81% of the CPU): this is the
	// situation the paper motivates — "it does not offer satisfying
	// response times for non-periodic tasks, especially if the periodic
	// traffic is important".
	periodics := []sim.PeriodicTask{
		{Name: "ctl", Period: rtime.TUs(8), Cost: rtime.TUs(3.5), Priority: 2},
		{Name: "log", Period: rtime.TUs(16), Cost: rtime.TUs(6), Priority: 1},
	}

	policies := []sim.ServerPolicy{sim.NoServer, sim.PollingServer, sim.DeferrableServer, sim.SporadicServer}
	fmt.Println("Aperiodic servicing policies on the same workload")
	fmt.Printf("(%d systems, density %g, cost %g±%g, server %g/%g)\n\n",
		p.NbGeneration, p.TaskDensity, p.AverageCost, p.StdDeviation, p.ServerCapacity, p.ServerPeriod)
	fmt.Printf("%-8s %12s %12s %8s %8s\n", "policy", "avg resp (tu)", "max resp (tu)", "served", "misses")

	for _, pol := range policies {
		var sums []metrics.Summary
		misses := 0
		for _, base := range gen.Generate(p) {
			sys := gen.WithServer(base, p, pol, 100)
			sys.Periodics = periodics
			tr := trace.New()
			r, err := sim.Run(sys, sim.NewFP(sys, tr), p.Horizon(), tr)
			if err != nil {
				panic(err)
			}
			sums = append(sums, metrics.Summarize(metrics.FromSimResult(r)))
			misses += r.PeriodicMisses
		}
		set := metrics.Aggregate(sums)
		var maxR float64
		for _, s := range sums {
			if s.MaxResponse > maxR {
				maxR = s.MaxResponse
			}
		}
		fmt.Printf("%-8s %12.2f %12.2f %7.0f%% %8d\n",
			pol, set.AART, maxR, set.ASR*100, misses)
	}

	fmt.Println("\nReading: the bandwidth-preserving servers (DS, SS) serve events the")
	fmt.Println("moment they arrive and beat background servicing by ~2-3x on average")
	fmt.Println("response time. The PS only helps at its polling instants — consistent")
	fmt.Println("with the classical result that polling improves little over background")
	fmt.Println("at low server bandwidth. Periodic tasks keep all their deadlines under")
	fmt.Println("every policy; background servicing gives them the most slack but the")
	fmt.Println("aperiodics no guarantee at all.")
}
