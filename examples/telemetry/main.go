// Telemetry: a realistic event-based real-time application — the kind the
// paper's introduction motivates. A flight-telemetry node runs hard
// periodic control loops while sporadic alarms (link loss, threshold
// crossings, operator commands) arrive as asynchronous events. A
// Deferrable Server gives the alarms fast, bounded service without
// breaking the periodic tasks' guarantees — checked before the run with
// the scheduler's feasibility analysis, using the server's Interference
// hook (the paper's Section 3 proposal).
//
// Run with: go run ./examples/telemetry
package main

import (
	"fmt"

	"rtsj/internal/core"
	"rtsj/internal/exec"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/trace"
)

func main() {
	// A platform with explicit overheads: timer firings cost 20us at the
	// top priority, releases 10us.
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{
		TimerFire:    20 * rtime.Microsecond,
		EventRelease: 10 * rtime.Microsecond,
	})

	// Deferrable Server: 2ms of alarm service every 10ms.
	params := core.NewTaskServerParameters(0, rtime.TUs(2), rtime.TUs(10))
	server := core.NewDeferrableTaskServer(vm, "alarm-server", 50, params)

	// Periodic control loops.
	type loop struct {
		name         string
		prio         int
		period, cost float64
	}
	loops := []loop{
		{"attitude-ctl", 40, 10, 2},
		{"telemetry-tx", 30, 20, 4},
		{"housekeeping", 20, 50, 5},
	}
	sched := vm.Scheduler()
	sched.AddToFeasibility(server)
	for _, l := range loops {
		l := l
		pp := &rtsjvm.PeriodicParameters{Period: rtime.TUs(l.period), Cost: rtime.TUs(l.cost)}
		rt := vm.NewRealtimeThread(l.name, l.prio, pp, func(r *rtsjvm.RTC) {
			for {
				r.Consume(rtime.TUs(l.cost))
				r.WaitForNextPeriod()
			}
		})
		sched.AddToFeasibility(rt)
	}

	// Off-line guarantee before anything runs: the DS contributes its
	// back-to-back interference to every lower-priority loop.
	fmt.Println("Feasibility analysis (DS interference included):")
	for _, r := range sched.ResponseTimes() {
		status := "OK"
		if !r.Feasible {
			status = "MISS"
		}
		fmt.Printf("  %-14s prio=%-3d R=%-8v D=%-8v %s\n", r.Name, r.Priority, r.R, r.Deadline, status)
	}
	if !sched.IsFeasible() {
		fmt.Println("system infeasible; not running")
		return
	}

	// Sporadic alarms: each kind is a servable event bound to a handler
	// with a declared cost.
	alarm := func(name string, cost float64) *core.ServableAsyncEvent {
		h := core.NewServableAsyncEventHandler(server, name, rtime.TUs(cost))
		h.SetLogic(func(tc *exec.TC) {
			tc.Consume(rtime.TUs(cost)) // classify, log, raise downlink flag
		})
		e := core.NewServableAsyncEvent(vm, name)
		e.AddServableHandler(h)
		return e
	}
	linkLoss := alarm("link-loss", 1.5)
	thresh := alarm("threshold", 0.5)
	command := alarm("command", 1.0)

	// An arrival pattern over 100ms.
	fires := []struct {
		at rtime.Time
		ev *core.ServableAsyncEvent
	}{
		{rtime.AtTU(7), thresh},
		{rtime.AtTU(8), command},
		{rtime.AtTU(23.2), linkLoss},
		{rtime.AtTU(24), thresh},
		{rtime.AtTU(61.7), command},
		{rtime.AtTU(62), linkLoss},
		{rtime.AtTU(62.1), thresh},
	}
	for i, f := range fires {
		t := vm.NewOneShotTimer(f.at, f.ev, fmt.Sprintf("%s#%d", f.ev.Name(), i))
		t.Start()
	}

	if err := vm.Run(rtime.AtTU(100)); err != nil {
		panic(err)
	}
	vm.Shutdown()

	fmt.Println("\nFirst 40ms of the schedule:")
	fmt.Println(vm.Trace().Gantt(trace.GanttOptions{Until: rtime.AtTU(40), Scale: rtime.TUs(0.5), AxisEvery: 10}))

	fmt.Println("Alarm service:")
	for _, rec := range server.Records() {
		switch {
		case rec.Served:
			fmt.Printf("  %-10s released %6.1fms  response %v\n",
				rec.Handler, rec.Released.TUs(), rec.Response())
		case rec.Interrupted:
			fmt.Printf("  %-10s released %6.1fms  INTERRUPTED\n", rec.Handler, rec.Released.TUs())
		default:
			fmt.Printf("  %-10s released %6.1fms  pending\n", rec.Handler, rec.Released.TUs())
		}
	}
}
