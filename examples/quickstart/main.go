// Quickstart: build the paper's Table 1 system with the Task Server
// Framework, fire two events, and look at the resulting schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"rtsj/internal/core"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/trace"
)

func main() {
	// A virtual RTSJ machine. The zero Overheads value gives a cost-free
	// platform; see examples/telemetry for a realistic one.
	vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})

	// A Polling Server at the highest application priority: capacity 3
	// every 6 time units.
	params := core.NewTaskServerParameters(0, rtime.TUs(3), rtime.TUs(6))
	server := core.NewPollingTaskServer(vm, "PS", 10, params)

	// Two hard periodic tasks below the server.
	periodic := func(name string, prio int, period, cost float64) {
		pp := &rtsjvm.PeriodicParameters{Period: rtime.TUs(period), Cost: rtime.TUs(cost)}
		vm.NewRealtimeThread(name, prio, pp, func(r *rtsjvm.RTC) {
			for {
				r.Consume(rtime.TUs(cost))
				r.WaitForNextPeriod()
			}
		})
	}
	periodic("tau1", 2, 6, 2)
	periodic("tau2", 1, 6, 1)

	// Two servable events with their handlers, fired by one-shot timers.
	for _, h := range []struct {
		name string
		cost float64
		fire float64
	}{
		{"h1", 2, 0},
		{"h2", 2, 6},
	} {
		handler := core.NewServableAsyncEventHandler(server, h.name, rtime.TUs(h.cost))
		event := core.NewServableAsyncEvent(vm, h.name)
		event.AddServableHandler(handler)
		vm.NewOneShotTimer(rtime.AtTU(h.fire), event, h.name).Start()
	}

	// Run 12 time units of virtual time.
	if err := vm.Run(rtime.AtTU(12)); err != nil {
		panic(err)
	}
	vm.Shutdown()

	fmt.Println("Schedule (this is Figure 2 of the paper):")
	fmt.Println(vm.Trace().Gantt(trace.GanttOptions{Until: rtime.AtTU(12)}))
	for _, rec := range server.Records() {
		fmt.Printf("%s: released %v, response %v\n",
			rec.Handler, rec.Released.TUs(), rec.Response())
	}
}
