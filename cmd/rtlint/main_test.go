package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRepoRoot moves the test into the module root so relative package
// patterns resolve as they do for CI invocations.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(filepath.Join(wd, "..", ".."))
}

func TestCleanTreeExitsZero(t *testing.T) {
	chdirRepoRoot(t)
	var out, errb strings.Builder
	if code := run([]string{"./internal/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "rtlint: ok") {
		t.Errorf("stdout = %q, want rtlint: ok", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	chdirRepoRoot(t)
	// The fixture trees are deliberately dirty; point rtlint straight at
	// one (testdata is skipped by pattern expansion, so name it with -pkgs).
	var out, errb strings.Builder
	code := run([]string{"-pkgs", "internal/lint/testdata/maporder"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "maporder: append to names") {
		t.Errorf("stdout missing the fixture finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr missing the summary: %q", errb.String())
	}
}

// TestJSONShape pins the -json output contract: an array (empty for a
// clean run, never null) of objects with file/line/col/analyzer/message.
func TestJSONShape(t *testing.T) {
	chdirRepoRoot(t)

	var clean strings.Builder
	if code := run([]string{"-json", "./internal/metrics"}, &clean, &strings.Builder{}); code != 0 {
		t.Fatalf("clean -json run exited %d", code)
	}
	if got := strings.TrimSpace(clean.String()); got != "[]" {
		t.Errorf("clean run must emit [], got %q", got)
	}

	var dirty strings.Builder
	code := run([]string{"-json", "-pkgs", "internal/lint/testdata/guarded"}, &dirty, &strings.Builder{})
	if code != 1 {
		t.Fatalf("dirty -json run exited %d, want 1", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(dirty.String()), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, dirty.String())
	}
	if len(findings) == 0 {
		t.Fatal("dirty -json run produced an empty array")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding in JSON output: %+v", f)
		}
		if f.Analyzer != "guarded" {
			t.Errorf("finding from analyzer %q, want guarded: %+v", f.Analyzer, f)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	chdirRepoRoot(t)
	var out strings.Builder
	if code := run([]string{"-list"}, &out, &strings.Builder{}); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"nondeterm", "maporder", "intmerge", "guarded"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownDirExitsTwo(t *testing.T) {
	chdirRepoRoot(t)
	var errb strings.Builder
	if code := run([]string{"-pkgs", "internal/no-such-package"}, &strings.Builder{}, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (load error)", code)
	}
}

// TestPatternExpansion pins that /... expansion finds the internal tree
// and skips testdata.
func TestPatternExpansion(t *testing.T) {
	chdirRepoRoot(t)
	dirs, err := expandPattern("./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(dirs, " ")
	for _, want := range []string{"internal/sim", "internal/exec", "internal/lint"} {
		if !strings.Contains(joined, want) {
			t.Errorf("expansion missing %s: %v", want, dirs)
		}
	}
	if strings.Contains(joined, "testdata") {
		t.Errorf("expansion must skip testdata: %v", dirs)
	}
}
