// Command rtlint is the repository's determinism and concurrency lint
// gate, run by CI next to doccheck. It proves the reproduction contract's
// house rules at compile time through four analyzers (see internal/lint):
//
//   - nondeterm: no wall-clock, math/rand, environment reads or global
//     mutable state in the deterministic packages;
//   - maporder: no order-sensitive folds over map iteration;
//   - intmerge: metrics merge/Partial paths stay all-integer, so shard
//     merges are exact;
//   - guarded: fields documented "guarded by <mu>" are only accessed
//     under that mutex.
//
// Usage:
//
//	rtlint [-pkgs dir,dir,...] [-json] [-list] [pattern ...]
//
// Patterns are package directories; a trailing /... audits every package
// below the prefix (e.g. ./internal/...). With no patterns and no -pkgs,
// ./internal/... is audited. Findings print as
// "file:line:col: analyzer: message" (or a JSON array under -json);
// exit status is 1 when findings exist, 2 on usage or load errors.
//
// A finding is suppressed by a directive on, or directly above, its line:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory and the analyzer must exist: malformed
// directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rtsj/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pkgs := fs.String("pkgs", "", "comma-separated package directories to audit (alternative to patterns)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var dirs []string
	for _, d := range strings.Split(*pkgs, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dirs = append(dirs, d)
		}
	}
	patterns := fs.Args()
	if len(dirs) == 0 && len(patterns) == 0 {
		patterns = []string{"./internal/..."}
	}
	for _, pat := range patterns {
		expanded, err := expandPattern(pat)
		if err != nil {
			fmt.Fprintf(stderr, "rtlint: %v\n", err)
			return 2
		}
		dirs = append(dirs, expanded...)
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "rtlint: no packages matched\n")
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "rtlint: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "rtlint: %v\n", err)
			return 2
		}
		findings = append(findings, lint.Run(p, analyzers)...)
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{} // a run with no findings is [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "rtlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) == 0 {
			fmt.Fprintln(stdout, "rtlint: ok")
		} else {
			fmt.Fprintf(stderr, "rtlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// expandPattern resolves one command-line pattern to package directories:
// a plain directory stands for itself; a /... suffix walks every
// subdirectory containing Go files (testdata and hidden directories are
// skipped, as the go tool does).
func expandPattern(pat string) ([]string, error) {
	root, recursive := strings.CutSuffix(pat, "/...")
	if root == "" || root == "." {
		root = "."
	}
	if !recursive {
		return []string{pat}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("expand %s: %w", pat, err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
