// Command scenarios regenerates the paper's worked examples: the Table 1
// task set under the three firing scenarios of Figures 2-4, rendered as
// ASCII temporal diagrams. For each scenario it shows the framework
// execution (what the figures depict) and the ideal literature-policy
// simulation the paper contrasts in the text.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/harness"
)

func main() {
	n := flag.Int("scenario", 0, "scenario to run (1-3); 0 for all")
	ideal := flag.Bool("ideal", true, "also show the ideal (literature) polling server schedule")
	workers := flag.Int("workers", 0, "harness worker pool size (0: $RTSJ_WORKERS or GOMAXPROCS)")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "scenarios: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	harness.SetWorkers(*workers)

	nums := []int{1, 2, 3}
	if *n != 0 {
		nums = []int{*n}
	}
	fmt.Println("Task set (Table 1): PS(prio hi, C=3, T=6), tau1(med, C=2, T=6), tau2(lo, C=1, T=6)")
	fmt.Println("Handlers: h1 cost 2, h2 cost 2 (scenario 3: declared 1, actual 2)")
	fmt.Println()
	figs, err := experiments.RunFigures(nums...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
	for i, num := range nums {
		fig := figs[i]
		fmt.Printf("=== Scenario %d (Figure %d) ===\n", num, num+1)
		fmt.Printf("e1 fired at %v, e2 at %v — %s\n\n", fig.Scenario.Fire1, fig.Scenario.Fire2, fig.Scenario.Caption)
		fmt.Println("Framework execution:")
		fmt.Println(fig.ExecGantt)
		if *ideal {
			fmt.Println("Ideal polling server (RTSS simulation):")
			fmt.Println(fig.IdealGantt)
		}
		for _, e := range fig.Events {
			fmt.Println("  " + e)
		}
		fmt.Println()
	}
}
