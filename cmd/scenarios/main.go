// Command scenarios regenerates the paper's worked examples and the
// robustness overload family.
//
// The default family ("figures") renders the Table 1 task set under the
// three firing scenarios of Figures 2-4 as ASCII temporal diagrams: the
// framework execution (what the figures depict) and the ideal
// literature-policy simulation the paper contrasts in the text.
//
// The "overload" family runs the deterministic overload scenarios
// (internal/experiments.RunOverload): miss-storm, transient and
// saturation. It exits non-zero if any invariant is violated or if the
// miss-storm's hard periodic set misses a deadline — the graceful-
// degradation property CI smokes with a 10k-event burst.
//
// The "campaign" family runs the stock utilization-sweep campaign
// in-process through the streaming reducer (-n overrides systems per point,
// -seed the generation seed) and prints the schedulability curve; the
// sharded front-end lives in cmd/tables -campaign.
//
// The "smp" family runs the multiprocessor scenario sweeps
// (internal/experiments.RunSMP) on -cpus virtual CPUs: the
// global-vs-partitioned-vs-clustered EDF/FP deadline-miss curves and the
// migration-cost sweep. Results are deterministic fingerprinted schedules;
// the command exits non-zero on any executive invariant violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsj/internal/exec"
	"rtsj/internal/experiments"
	"rtsj/internal/faults"
	"rtsj/internal/harness"
)

func main() {
	family := flag.String("family", "figures", "scenario family: figures | overload | campaign | smp")
	scenario := flag.String("scenario", "", "scenario to run: figures 1-3, overload miss-storm|transient|saturation, smp miss-curve|migration-sweep; empty for all")
	ideal := flag.Bool("ideal", true, "figures: also show the ideal (literature) polling server schedule")
	workers := flag.Int("workers", 0, "harness worker pool size (0: $RTSJ_WORKERS or GOMAXPROCS)")
	events := flag.Int("n", 0, "overload: approximate event count; campaign: systems per point (0: default)")
	seed := flag.Int64("seed", 0, "overload/campaign: workload seed (0: default)")
	faultsFlag := flag.String("faults", "", "overload: extra fault plan (e.g. 'seed=1 overrun=0.3:0.5'); 'off' or empty for none")
	pooled := flag.Int("pooled", 0, "overload: run pooled with this many workers (0: goroutine per thread)")
	activation := flag.Bool("activation", false, "overload: activation-driven periodic dispatch")
	quiet := flag.Bool("quiet", false, "overload/smp: one summary line per scenario")
	progress := flag.Bool("progress", false, "campaign: report live progress (systems/s, ETA) on stderr")
	cpus := flag.Int("cpus", 4, "smp: virtual CPU count")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "scenarios: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	harness.SetWorkers(*workers)

	switch *family {
	case "figures":
		n := 0
		if *scenario != "" {
			if _, err := fmt.Sscanf(*scenario, "%d", &n); err != nil || n < 1 || n > 3 {
				fmt.Fprintf(os.Stderr, "scenarios: figures scenario must be 1-3 (got %q)\n", *scenario)
				os.Exit(2)
			}
		}
		runFigures(n, *ideal)
	case "overload":
		runOverload(*scenario, *events, *seed, *faultsFlag, *pooled, *activation, *quiet)
	case "campaign":
		runCampaign(*events, *seed, *progress)
	case "smp":
		runSMP(*scenario, *cpus, *pooled, *activation, *quiet)
	default:
		fmt.Fprintf(os.Stderr, "scenarios: unknown family %q (want figures, overload, campaign or smp)\n", *family)
		os.Exit(2)
	}
}

func runFigures(n int, ideal bool) {
	nums := []int{1, 2, 3}
	if n != 0 {
		nums = []int{n}
	}
	fmt.Println("Task set (Table 1): PS(prio hi, C=3, T=6), tau1(med, C=2, T=6), tau2(lo, C=1, T=6)")
	fmt.Println("Handlers: h1 cost 2, h2 cost 2 (scenario 3: declared 1, actual 2)")
	fmt.Println()
	figs, err := experiments.RunFigures(nums...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
	for i, num := range nums {
		fig := figs[i]
		fmt.Printf("=== Scenario %d (Figure %d) ===\n", num, num+1)
		fmt.Printf("e1 fired at %v, e2 at %v — %s\n\n", fig.Scenario.Fire1, fig.Scenario.Fire2, fig.Scenario.Caption)
		fmt.Println("Framework execution:")
		fmt.Println(fig.ExecGantt)
		if ideal {
			fmt.Println("Ideal polling server (RTSS simulation):")
			fmt.Println(fig.IdealGantt)
		}
		for _, e := range fig.Events {
			fmt.Println("  " + e)
		}
		fmt.Println()
	}
}

// runCampaign streams the stock utilization sweep in-process and prints
// the resulting schedulability curve.
func runCampaign(systems int, seed int64, progress bool) {
	spec := experiments.DefaultCampaignSpec()
	if systems > 0 {
		spec.Systems = systems
	}
	if seed != 0 {
		spec.Seed = seed
	}
	var opts experiments.CampaignOptions
	if progress {
		opts.Progress = os.Stderr
	}
	curve, err := experiments.RunCampaignOpts(spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(curve.Format())
}

func runOverload(scenario string, events int, seed int64, faultsFlag string, pooled int, activation bool, quiet bool) {
	plan, err := faults.Parse(faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: -faults: %v\n", err)
		os.Exit(2)
	}
	names := experiments.OverloadScenarios()
	if scenario != "" {
		names = []string{scenario}
	}
	failed := false
	for _, name := range names {
		p := experiments.DefaultOverloadParams(name)
		p.Events = events
		p.Seed = seed
		p.Faults = plan
		p.Kernel = exec.DirectKernel
		p.MaxGoroutines = pooled
		p.PeriodicActivation = activation
		r, err := experiments.RunOverload(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenarios: %s: %v\n", name, err)
			os.Exit(1)
		}
		if quiet {
			fmt.Printf("%-11s events=%d served=%d interrupted=%d shed=%d pending=%d periodic=%d/%d-missed floor=%v fp=%#x\n",
				name, r.Events, r.Served, r.Interrupted, r.Shed, r.Pending,
				r.PeriodicReleases, r.PeriodicMisses, r.CapacityFloor, r.Fingerprint)
		} else {
			fmt.Printf("=== Overload scenario %q ===\n", name)
			fmt.Printf("aperiodics: %d generated, %d released, %d served, %d interrupted, %d shed, %d pending at horizon\n",
				r.Events, r.Released, r.Served, r.Interrupted, r.Shed, r.Pending)
			fmt.Printf("hard periodics: %d releases, %d deadline misses\n", r.PeriodicReleases, r.PeriodicMisses)
			fmt.Printf("capacity floor: %v  final time: %v  fingerprint: %#x\n", r.CapacityFloor, r.FinalTime, r.Fingerprint)
			fmt.Println()
		}
		// Graceful degradation is the contract: invariants hold and the
		// hard periodic set never misses while the server sheds.
		for _, v := range r.Violations {
			fmt.Fprintf(os.Stderr, "scenarios: %s: INVARIANT: %s\n", name, v)
			failed = true
		}
		if r.PeriodicMisses > 0 {
			fmt.Fprintf(os.Stderr, "scenarios: %s: %d hard periodic deadline misses\n", name, r.PeriodicMisses)
			failed = true
		}
		if name == experiments.OverloadMissStorm && r.Shed == 0 {
			fmt.Fprintf(os.Stderr, "scenarios: %s: shed nothing (storm not overloading)\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSMP sweeps the multiprocessor scenarios over every migration policy
// and scheduler, printing the per-point miss/migration curves (or one
// fingerprinted summary line per configuration with -quiet).
func runSMP(scenario string, cpus, pooled int, activation, quiet bool) {
	names := experiments.SMPScenarios()
	if scenario != "" {
		names = []string{scenario}
	}
	policies := []exec.MigrationPolicy{exec.Global, exec.Partitioned, exec.Clustered}
	failed := false
	for _, name := range names {
		for _, pol := range policies {
			if name == experiments.SMPMigration && pol == exec.Partitioned {
				continue // a partitioned system cannot migrate
			}
			for _, sched := range []string{"fp", "edf"} {
				p := experiments.DefaultSMPParams(name)
				p.CPUs = cpus
				p.Policy = pol
				p.Sched = sched
				p.Kernel = exec.DirectKernel
				p.MaxGoroutines = pooled
				p.PeriodicActivation = activation
				r, err := experiments.RunSMP(p)
				if err != nil {
					fmt.Fprintf(os.Stderr, "scenarios: %s: %v\n", name, err)
					os.Exit(1)
				}
				if quiet {
					fmt.Printf("%-15s m=%d %-11s %-3s releases=%d misses=%d skips=%d migrations=%d fp=%#x\n",
						name, r.CPUs, pol, sched, r.Releases, r.Misses, r.Skips, r.Migrations, r.Fingerprint)
				} else {
					fmt.Printf("=== SMP %s: %d CPUs, %s, %s ===\n", name, r.CPUs, pol, sched)
					for _, pt := range r.Points {
						label := "U/cpu"
						if name == experiments.SMPMigration {
							label = "cost(tu)"
						}
						fmt.Printf("  %s=%-5.2f releases=%-5d misses=%-4d skips=%-4d migrations=%d\n",
							label, pt.Param, pt.Releases, pt.Misses, pt.Skips, pt.Migrations)
					}
					fmt.Printf("  total: %d releases, %d misses, %d migrations  fingerprint: %#x\n\n",
						r.Releases, r.Misses, r.Migrations, r.Fingerprint)
				}
				for _, v := range r.Violations {
					fmt.Fprintf(os.Stderr, "scenarios: %s/%s/%s: INVARIANT: %s\n", name, pol, sched, v)
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
