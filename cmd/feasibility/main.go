// Command feasibility runs the off-line analysis toolbox over a system
// description: fixed-priority response-time analysis (accounting for the
// configured task server's interference), utilization bounds, and EDF
// processor-demand analysis.
//
// Usage:
//
//	feasibility [-f system.rtss]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rtsj/internal/analysis"
	"rtsj/internal/sim"
	"rtsj/internal/spec"
)

func main() {
	file := flag.String("f", "", "system description file (default: stdin)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	parsed, err := spec.Parse(in)
	if err != nil {
		fatal(err)
	}

	var tasks []analysis.Task
	for _, t := range parsed.System.Periodics {
		tasks = append(tasks, analysis.Task{
			Name: t.Name, C: t.Cost, T: t.Period, D: t.Deadline, Prio: t.Priority,
		})
	}
	if s := parsed.System.Server; s != nil {
		switch s.Policy {
		case sim.DeferrableServer, sim.LimitedDeferrableServer:
			tasks = analysis.WithDeferrableServer(tasks, s.Capacity, s.Period, s.Priority)
			fmt.Printf("server: DS C=%v T=%v (modified analysis: release jitter %v)\n",
				s.Capacity, s.Period, s.Period-s.Capacity)
		case sim.PollingServer, sim.LimitedPollingServer, sim.SporadicServer, sim.PriorityExchange:
			tasks = analysis.WithPollingServer(tasks, s.Capacity, s.Period, s.Priority)
			fmt.Printf("server: %s C=%v T=%v (analyzed as a periodic task)\n",
				s.Policy, s.Capacity, s.Period)
		case sim.SlackStealer:
			fmt.Println("server: slack stealer (steals only provable slack; periodic analysis unchanged)")
		default:
			fmt.Println("server: background servicing (no interference)")
		}
	}
	if len(tasks) == 0 {
		fatal(fmt.Errorf("nothing to analyze: no periodic tasks"))
	}

	fmt.Println("\nFixed-priority response-time analysis:")
	feasible := true
	for _, r := range analysis.ResponseTimes(tasks) {
		fmt.Println("  " + r.String())
		if !r.Feasible {
			feasible = false
		}
	}
	fmt.Printf("\nutilization         : %.3f\n", analysis.Utilization(tasks))
	fmt.Printf("Liu-Layland bound   : %.3f  pass=%v\n",
		analysis.LiuLaylandBound(len(tasks)), analysis.FeasibleLiuLayland(tasks))
	fmt.Printf("hyperbolic bound    : pass=%v\n", analysis.FeasibleHyperbolic(tasks))
	fmt.Printf("EDF demand analysis : pass=%v\n", analysis.EDFFeasible(tasks))
	fmt.Printf("exact RTA verdict   : feasible=%v\n", feasible)
	if !feasible {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "feasibility: %v\n", err)
	os.Exit(1)
}
