package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from this run")

// TestGoldenTraceExport pins the rtss command's observable output — stdout
// (Gantt + metrics) and the CSV/JSON trace exports — byte for byte, so
// refactors of the trace sink plumbing cannot silently change serialized
// output. Refresh after an intentional format change:
//
//	go test ./cmd/rtss -run TestGoldenTraceExport -update
func TestGoldenTraceExport(t *testing.T) {
	tmp := t.TempDir()
	csvPath := filepath.Join(tmp, "out.csv")
	jsonPath := filepath.Join(tmp, "out.json")

	var stdout bytes.Buffer
	err := run([]string{
		"-f", "testdata/golden.rtss",
		"-csv", csvPath,
		"-json", jsonPath,
	}, strings.NewReader(""), &stdout)
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []struct {
		golden string
		got    []byte
	}{
		{"testdata/golden.stdout", stdout.Bytes()},
		{"testdata/golden.csv", mustRead(t, csvPath)},
		{"testdata/golden.json", mustRead(t, jsonPath)},
	} {
		if *update {
			if err := os.WriteFile(g.golden, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden files)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s differs from golden output:\n--- got ---\n%s\n--- want ---\n%s",
				g.golden, g.got, want)
		}
	}
}

// TestQuietMetricsMatchTraced pins the nil-trace fast path: -quiet (no
// exports) must print exactly the metrics lines of the traced run, for both
// the simulation and the framework execution.
func TestQuietMetricsMatchTraced(t *testing.T) {
	var traced, quiet bytes.Buffer
	if err := run([]string{"-f", "testdata/golden.rtss", "-exec"}, strings.NewReader(""), &traced); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", "testdata/golden.rtss", "-exec", "-quiet"}, strings.NewReader(""), &quiet); err != nil {
		t.Fatal(err)
	}
	// The quiet output must be a subsequence of the traced one: same
	// headers and metrics lines, minus the Gantt charts.
	tracedLines := map[string]bool{}
	for _, line := range strings.Split(traced.String(), "\n") {
		tracedLines[line] = true
	}
	for _, line := range strings.Split(quiet.String(), "\n") {
		if line != "" && !tracedLines[line] {
			t.Errorf("quiet line %q absent from traced output", line)
		}
	}
	if quiet.Len() >= traced.Len() {
		t.Error("quiet output should be strictly smaller (no Gantt charts)")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
