package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from this run")

// TestGoldenTraceExport pins the rtss command's observable output — stdout
// (Gantt + metrics) and the CSV/JSON trace exports — byte for byte, so
// refactors of the trace sink plumbing cannot silently change serialized
// output. Refresh after an intentional format change:
//
//	go test ./cmd/rtss -run TestGoldenTraceExport -update
func TestGoldenTraceExport(t *testing.T) {
	tmp := t.TempDir()
	csvPath := filepath.Join(tmp, "out.csv")
	jsonPath := filepath.Join(tmp, "out.json")

	var stdout bytes.Buffer
	err := run([]string{
		"-f", "testdata/golden.rtss",
		"-csv", csvPath,
		"-json", jsonPath,
	}, strings.NewReader(""), &stdout)
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []struct {
		golden string
		got    []byte
	}{
		{"testdata/golden.stdout", stdout.Bytes()},
		{"testdata/golden.csv", mustRead(t, csvPath)},
		{"testdata/golden.json", mustRead(t, jsonPath)},
	} {
		if *update {
			if err := os.WriteFile(g.golden, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden files)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s differs from golden output:\n--- got ---\n%s\n--- want ---\n%s",
				g.golden, g.got, want)
		}
	}
}

// TestGoldenPerfettoExport pins the -perfetto exporter byte for byte on a
// small SMP scenario (testdata/smp.rtss: the golden task set on 2 virtual
// CPUs), so the trace_event serialization cannot drift silently. Refresh
// after an intentional format change:
//
//	go test ./cmd/rtss -run TestGoldenPerfettoExport -update
func TestGoldenPerfettoExport(t *testing.T) {
	tmp := t.TempDir()
	out := filepath.Join(tmp, "out.perfetto.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-f", "testdata/smp.rtss",
		"-exec", "-quiet",
		"-perfetto", out,
	}, strings.NewReader(""), &stdout)
	if err != nil {
		t.Fatal(err)
	}
	got := mustRead(t, out)

	const golden = "testdata/smp.perfetto.json"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden file)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from golden output:\n--- got ---\n%s\n--- want ---\n%s",
				golden, got, want)
		}
	}

	// Schema sanity: the file must decode as a trace_event JSON object and
	// every event must fit the format (known phase, named, on a track).
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	sawCPU1 := false
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			t.Errorf("event %d (%s) lacks pid/tid", i, ev.Name)
			continue
		}
		switch ev.Ph {
		case "M": // metadata: names a process or thread track
		case "X": // complete slice: needs a start and a duration
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("X event %d (%s) lacks ts/dur", i, ev.Name)
			}
			if *ev.Tid == 1 {
				sawCPU1 = true
			}
		case "i": // instant
			if ev.Ts == nil {
				t.Errorf("instant %d (%s) lacks ts", i, ev.Name)
			}
		default:
			t.Errorf("event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	if !sawCPU1 {
		t.Error("no execution slice on CPU 1: the 2-CPU scenario did not spread")
	}
}

// TestQuietMetricsMatchTraced pins the nil-trace fast path: -quiet (no
// exports) must print exactly the metrics lines of the traced run, for both
// the simulation and the framework execution.
func TestQuietMetricsMatchTraced(t *testing.T) {
	var traced, quiet bytes.Buffer
	if err := run([]string{"-f", "testdata/golden.rtss", "-exec"}, strings.NewReader(""), &traced); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-f", "testdata/golden.rtss", "-exec", "-quiet"}, strings.NewReader(""), &quiet); err != nil {
		t.Fatal(err)
	}
	// The quiet output must be a subsequence of the traced one: same
	// headers and metrics lines, minus the Gantt charts.
	tracedLines := map[string]bool{}
	for _, line := range strings.Split(traced.String(), "\n") {
		tracedLines[line] = true
	}
	for _, line := range strings.Split(quiet.String(), "\n") {
		if line != "" && !tracedLines[line] {
			t.Errorf("quiet line %q absent from traced output", line)
		}
	}
	if quiet.Len() >= traced.Len() {
		t.Error("quiet output should be strictly smaller (no Gantt charts)")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
