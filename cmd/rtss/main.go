// Command rtss is the discrete-event real-time system simulator of the
// paper's Section 5: it simulates a system description under Preemptive
// Fixed Priority (with an optional aperiodic task server), EDF or D-OVER,
// and displays a temporal diagram of the simulated execution.
//
// Usage:
//
//	rtss [-f system.rtss] [-exec] [-scale 1tu] [-quiet]
//
// Reads the system from the file (or stdin) in the internal/spec format.
// With -exec, the workload is additionally executed on the Task Server
// Framework (RTSJ emulation) and both outcomes are shown.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/metrics"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/spec"
	"rtsj/internal/trace"
)

func main() {
	file := flag.String("f", "", "system description file (default: stdin)")
	execToo := flag.Bool("exec", false, "also execute on the Task Server Framework")
	scale := flag.String("scale", "1tu", "gantt column width")
	quiet := flag.Bool("quiet", false, "suppress the gantt chart, print metrics only")
	csvOut := flag.String("csv", "", "write the simulation trace as CSV to this file")
	jsonOut := flag.String("json", "", "write the simulation trace as JSON to this file")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	parsed, err := spec.Parse(in)
	if err != nil {
		fatal(err)
	}
	colw, err := rtime.ParseDuration(*scale)
	if err != nil {
		fatal(err)
	}
	opts := trace.GanttOptions{Scale: colw, Until: parsed.Horizon}

	// Metrics-only invocations skip trace recording entirely: the engine
	// then also skips its per-job label formatting (the fast path the
	// table experiments use).
	var tr *trace.Trace
	if !*quiet || *csvOut != "" || *jsonOut != "" {
		tr = trace.New()
	}
	var d sim.Dispatcher
	switch parsed.Policy {
	case spec.EDF:
		d = sim.NewEDF()
	case spec.DOver:
		d = sim.NewDOver(parsed.System, tr)
	default:
		d = sim.NewFP(parsed.System, tr)
	}
	result, err := sim.Run(parsed.System, d, parsed.Horizon, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("== RTSS simulation (%s) ==\n", d.Name())
	if !*quiet {
		fmt.Println(tr.Gantt(opts))
	}
	printMetrics(metrics.FromSimResult(result), result.PeriodicMisses)

	if *csvOut != "" {
		if err := writeTrace(*csvOut, tr.WriteCSV); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeTrace(*jsonOut, tr.WriteJSON); err != nil {
			fatal(err)
		}
	}

	if *execToo {
		if parsed.Policy != spec.FP || parsed.System.Server == nil {
			fatal(fmt.Errorf("-exec needs an FP system with a ps/ds server"))
		}
		o, err := experiments.RunExecution(parsed.System, experiments.DefaultExecModel(), parsed.Horizon)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Task Server Framework execution ==")
		if !*quiet {
			fmt.Println(o.Trace.Gantt(opts))
		}
		printMetrics(metrics.FromRecords(o.Records), 0)
	}
}

func printMetrics(evs []metrics.Event, misses int) {
	s := metrics.Summarize(evs)
	fmt.Printf("aperiodics: %d total, %d served, %d interrupted\n", s.Total, s.Served, s.Interrupted)
	if s.Served > 0 {
		fmt.Printf("avg response %.2ftu, max %.2ftu\n", s.AvgResponse, s.MaxResponse)
	}
	if misses > 0 {
		fmt.Printf("PERIODIC DEADLINE MISSES: %d\n", misses)
	}
	fmt.Println()
}

func writeTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rtss: %v\n", err)
	os.Exit(1)
}
