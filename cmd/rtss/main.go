// Command rtss is the discrete-event real-time system simulator of the
// paper's Section 5: it simulates a system description under Preemptive
// Fixed Priority (with an optional aperiodic task server), EDF or D-OVER,
// and displays a temporal diagram of the simulated execution.
//
// Usage:
//
//	rtss [-f system.rtss] [-exec] [-scale 1tu] [-quiet] [-perfetto out.json]
//
// Reads the system from the file (or stdin) in the internal/spec format.
// With -exec, the workload is additionally executed on the Task Server
// Framework (RTSJ emulation) and both outcomes are shown. With -quiet (and
// no -csv/-json) both engines run entirely trace-free: the simulator and
// the virtual-time executive skip every segment append and label format.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/faults"
	"rtsj/internal/metrics"
	"rtsj/internal/rtime"
	"rtsj/internal/sim"
	"rtsj/internal/spec"
	"rtsj/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rtss: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command, factored out of main so the golden-file test
// can drive it end to end (flags through serialized trace exports).
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rtss", flag.ContinueOnError)
	file := fs.String("f", "", "system description file (default: stdin)")
	execToo := fs.Bool("exec", false, "also execute on the Task Server Framework")
	scale := fs.String("scale", "1tu", "gantt column width")
	quiet := fs.Bool("quiet", false, "suppress the gantt chart, print metrics only")
	csvOut := fs.String("csv", "", "write the simulation trace as CSV to this file")
	jsonOut := fs.String("json", "", "write the simulation trace as JSON to this file")
	perfettoOut := fs.String("perfetto", "", "write the schedule as Chrome trace-event JSON (ui.perfetto.dev) to this file; with -exec, the execution schedule")
	faultsFlag := fs.String("faults", "", "fault plan (e.g. 'seed=1 overrun=0.2:0.5'); overrides the file's faults directive; 'off' disables")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return err
	}

	var in io.Reader = stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	parsed, err := spec.Parse(in)
	if err != nil {
		return err
	}
	if *faultsFlag != "" {
		plan, err := faults.Parse(*faultsFlag)
		if err != nil {
			return err
		}
		parsed.Faults = plan
	}
	// A fault plan rewrites the aperiodic workload (drops, jitter, cost
	// overruns) before either engine sees it; with no plan (or 'off') the
	// system is untouched and the output is byte-identical to a fault-free
	// build.
	parsed.System = parsed.Faults.ApplySystem(parsed.System, 0)
	colw, err := rtime.ParseDuration(*scale)
	if err != nil {
		return err
	}
	opts := trace.GanttOptions{Scale: colw, Until: parsed.Horizon}

	// Metrics-only invocations skip trace recording entirely: the engine
	// then also skips its per-job label formatting (the fast path the
	// table experiments use).
	var tr *trace.Trace
	if !*quiet || *csvOut != "" || *jsonOut != "" || (*perfettoOut != "" && !*execToo) {
		tr = trace.New()
	}
	var d sim.Dispatcher
	switch parsed.Policy {
	case spec.EDF:
		d = sim.NewEDF()
	case spec.DOver:
		d = sim.NewDOver(parsed.System, tr)
	default:
		d = sim.NewFP(parsed.System, tr)
	}
	result, err := sim.Run(parsed.System, d, parsed.Horizon, tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "== RTSS simulation (%s) ==\n", d.Name())
	if !*quiet {
		fmt.Fprintln(stdout, tr.Gantt(opts))
	}
	printMetrics(stdout, metrics.FromSimResult(result), result.PeriodicMisses)

	if *csvOut != "" {
		if err := writeTrace(*csvOut, tr.WriteCSV); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		if err := writeTrace(*jsonOut, tr.WriteJSON); err != nil {
			return err
		}
	}
	if *perfettoOut != "" && !*execToo {
		if err := writeTrace(*perfettoOut, tr.WritePerfetto); err != nil {
			return err
		}
	}

	if *execToo {
		if parsed.Policy != spec.FP || parsed.System.Server == nil {
			return fmt.Errorf("-exec needs an FP system with a ps/ds server")
		}
		// Quiet executions run on the executive's trace-free fast path —
		// unless a Perfetto export needs the execution schedule recorded.
		runExec := experiments.RunExecution
		if *quiet && *perfettoOut == "" {
			runExec = experiments.RunExecutionMetrics
		}
		model := experiments.DefaultExecModel()
		// A cpus directive maps onto the executive's virtual CPU count
		// (Global migration policy); the simulator side stays uniprocessor.
		model.CPUs = parsed.CPUs
		o, err := runExec(parsed.System, model, parsed.Horizon)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== Task Server Framework execution ==")
		if !*quiet {
			fmt.Fprintln(stdout, o.Trace.Gantt(opts))
		}
		printMetrics(stdout, metrics.FromRecords(o.Records), 0)
		if *perfettoOut != "" {
			if err := writeTrace(*perfettoOut, o.Trace.WritePerfetto); err != nil {
				return err
			}
		}
	}
	return nil
}

func printMetrics(w io.Writer, evs []metrics.Event, misses int) {
	s := metrics.Summarize(evs)
	fmt.Fprintf(w, "aperiodics: %d total, %d served, %d interrupted\n", s.Total, s.Served, s.Interrupted)
	if s.Served > 0 {
		fmt.Fprintf(w, "avg response %.2ftu, max %.2ftu\n", s.AvgResponse, s.MaxResponse)
	}
	if misses > 0 {
		fmt.Fprintf(w, "PERIODIC DEADLINE MISSES: %d\n", misses)
	}
	fmt.Fprintln(w)
}

func writeTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
