// Command stress runs the large-N stress scenario: thousands to tens of
// thousands of one-shot sporadic job threads plus periodic background load
// on the virtual-time executive, exercising the pooled thread-body mode
// (exec.Options.MaxGoroutines) that bounds the OS-level goroutine count by
// the preemption depth instead of the thread count.
//
// Usage:
//
//	stress [-n 10000] [-maxgoroutines 64] [-kernel direct|channel]
//	       [-background 4] [-bands 6] [-seed 2007] [-quiet]
//
// With -maxgoroutines 0 the executive falls back to one goroutine per
// thread (the default outside this command), which is useful to compare
// footprints; the schedule is identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtsj/internal/exec"
	"rtsj/internal/experiments"
)

func main() {
	def := experiments.DefaultStressParams()
	n := flag.Int("n", def.Jobs, "number of one-shot sporadic job threads")
	maxg := flag.Int("maxgoroutines", def.MaxGoroutines, "pool size; 0 = one goroutine per thread")
	kernel := flag.String("kernel", "direct", "executive kernel: direct or channel")
	background := flag.Int("background", def.Background, "periodic background threads")
	bands := flag.Int("bands", def.PriorityBands, "priority bands for the sporadic jobs")
	seed := flag.Uint64("seed", def.Seed, "scenario seed")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	flag.Parse()

	if *n <= 0 || *background < 0 || *bands <= 0 || *maxg < 0 {
		fatal(fmt.Errorf("-n and -bands must be positive; -background and -maxgoroutines must be >= 0"))
	}
	p := experiments.StressParams{
		Jobs:          *n,
		Background:    *background,
		PriorityBands: *bands,
		Seed:          *seed,
		MaxGoroutines: *maxg,
	}
	switch *kernel {
	case "direct":
		p.Kernel = exec.DirectKernel
	case "channel":
		p.Kernel = exec.ChannelKernel
	default:
		fatal(fmt.Errorf("unknown kernel %q (want direct or channel)", *kernel))
	}

	goroutinesBefore := runtime.NumGoroutine()
	start := time.Now()
	res, err := experiments.RunStress(p)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("scenario : %d jobs over %d bands, %d background threads, seed %d\n",
			res.Jobs, *bands, *background, *seed)
		fmt.Printf("executive: %s kernel, maxgoroutines=%d\n", p.Kernel, p.MaxGoroutines)
		fmt.Printf("completed: %d/%d jobs, %d background activations\n",
			res.Completed, res.Jobs, res.BackgroundRun)
		fmt.Printf("virtual  : consumed %v, finished at %v of %v horizon\n",
			res.TotalConsumed, res.FinalTime, res.Horizon)
		fmt.Printf("pool     : peak %d workers (goroutines before run: %d)\n",
			res.PeakWorkers, goroutinesBefore)
		fmt.Printf("wall     : %v (%.0f jobs/s)\n", elapsed.Round(time.Millisecond),
			float64(res.Completed)/elapsed.Seconds())
	}
	fmt.Printf("stress: %d jobs, kernel=%s maxgoroutines=%d peak-workers=%d fingerprint=%016x wall=%v\n",
		res.Completed, p.Kernel, p.MaxGoroutines, res.PeakWorkers, res.Fingerprint,
		elapsed.Round(time.Millisecond))
	if res.Completed != res.Jobs {
		// The CI stress smoke relies on this: stranded jobs are a
		// scheduling bug, not a soft statistic.
		fatal(fmt.Errorf("only %d of %d jobs completed", res.Completed, res.Jobs))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stress: %v\n", err)
	os.Exit(1)
}
