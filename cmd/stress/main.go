// Command stress runs the executive's two large-N workloads:
//
// The sporadic scenario (default) releases thousands to tens of thousands
// of one-shot sporadic job threads plus periodic background load,
// exercising the pooled thread-body mode (exec.Options.MaxGoroutines) that
// bounds the OS-level goroutine count by the preemption depth instead of
// the thread count.
//
// The steady scenario (-scenario steady) runs thousands to tens of
// thousands of long-running periodic entities, exercising the
// activation-driven dispatch path (exec.SpawnPeriodic) that removes the
// last per-entity goroutine: entities own no goroutine between releases,
// so the whole system runs on a pool-sized worker set.
//
// Usage:
//
//	stress [-scenario sporadic|steady] [-n 10000] [-maxgoroutines 64]
//	       [-kernel direct|channel] [-activation] [-background 4] [-cpus 4]
//	       [-bands 6] [-seed 2007] [-faults 'seed=1 drop=0.05'] [-quiet]
//	       [-stats] [-perfetto out.json] [-debug-addr 127.0.0.1:6060]
//
// -stats prints the executive's obs snapshot (context switches, heap
// high-water marks, pool churn) after the run; -perfetto records the
// schedule and exports it as Chrome trace-event JSON; -debug-addr serves
// /debug/pprof and /debug/vars (with the same snapshot under "obs") while
// the run executes. All three are observational: the summary lines and
// the fingerprint are identical with or without them.
//
// With -maxgoroutines 0 the executive falls back to one goroutine per
// thread (the default outside this command), which is useful to compare
// footprints; the schedule is identical either way. -activation runs the
// periodic entities (steady scenario) or background threads (sporadic
// scenario) on the activation path; -activation=false compares against
// parked periodic loops — again schedule-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rtsj/internal/exec"
	"rtsj/internal/experiments"
	"rtsj/internal/faults"
	"rtsj/internal/harness"
	"rtsj/internal/obs"
	"rtsj/internal/trace"
)

func main() {
	def := experiments.DefaultStressParams()
	steadyDef := experiments.DefaultSteadyStateParams()
	scenario := flag.String("scenario", "sporadic", "workload: sporadic (one-shot jobs) or steady (periodic entities)")
	n := flag.Int("n", 0, "job count (sporadic) or entity count (steady); 0 = scenario default")
	maxg := flag.Int("maxgoroutines", def.MaxGoroutines, "pool size; 0 = one goroutine per thread")
	kernel := flag.String("kernel", "direct", "executive kernel: direct or channel")
	activation := flag.Bool("activation", true, "periodic entities use activation dispatch (no goroutine between releases)")
	background := flag.Int("background", def.Background, "periodic background threads (sporadic scenario)")
	bands := flag.Int("bands", def.PriorityBands, "priority bands for the sporadic jobs")
	horizon := flag.Float64("horizon", steadyDef.HorizonTU, "steady-scenario horizon in time units")
	cpus := flag.Int("cpus", 0, "virtual CPUs for the sporadic scenario (0 = uniprocessor)")
	seed := flag.Uint64("seed", def.Seed, "scenario seed")
	faultsFlag := flag.String("faults", "", "fault plan for the sporadic jobs (e.g. 'seed=1 overrun=0.2:0.5 drop=0.05'); 'off' or empty for none")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	stats := flag.Bool("stats", false, "print the executive's obs stats snapshot after the run")
	perfetto := flag.String("perfetto", "", "record the schedule and write Chrome trace-event JSON (ui.perfetto.dev) to this file")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address during the run")
	flag.Parse()
	plan, err := faults.Parse(*faultsFlag)
	if err != nil {
		fatal(fmt.Errorf("-faults: %v", err))
	}

	var kind exec.Kernel
	switch *kernel {
	case "direct":
		kind = exec.DirectKernel
	case "channel":
		kind = exec.ChannelKernel
	default:
		fatal(fmt.Errorf("unknown kernel %q (want direct or channel)", *kernel))
	}
	if *n < 0 || *background < 0 || *bands <= 0 || *maxg < 0 || *cpus < 0 {
		fatal(fmt.Errorf("-n, -background, -maxgoroutines and -cpus must be >= 0; -bands must be positive"))
	}
	// Reject flags the selected scenario would silently ignore: a user
	// comparing configurations must not believe a setting took effect when
	// it did not.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch *scenario {
	case "steady":
		if set["background"] || set["bands"] || set["faults"] || set["cpus"] {
			fatal(fmt.Errorf("-background, -bands, -faults and -cpus apply only to -scenario sporadic"))
		}
	case "sporadic":
		if set["horizon"] {
			fatal(fmt.Errorf("-horizon applies only to -scenario steady"))
		}
	}

	// The observability layer: an obs registry backs -stats and the
	// /debug/vars snapshot; -perfetto swaps the trace-free fast path for a
	// recording trace. None of it perturbs the schedule (the fingerprint
	// in the summary line pins that).
	var reg *obs.Registry
	var execStats *exec.Stats
	if *stats || *debugAddr != "" {
		reg = obs.NewRegistry()
		execStats = exec.NewStats(reg)
		harness.SetStats(harness.NewStats(reg))
		reg.Publish("obs")
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(fmt.Errorf("-debug-addr: %v", err))
		}
		fmt.Fprintf(os.Stderr, "stress: debug endpoint on http://%s/debug/\n", addr)
	}
	var tr *trace.Trace
	if *perfetto != "" {
		tr = trace.New()
	}

	switch *scenario {
	case "sporadic":
		p := experiments.StressParams{
			Jobs:               def.Jobs,
			Background:         *background,
			PriorityBands:      *bands,
			Seed:               *seed,
			Kernel:             kind,
			MaxGoroutines:      *maxg,
			PeriodicActivation: *activation,
			Faults:             plan,
			CPUs:               *cpus,
			Stats:              execStats,
		}
		if tr != nil {
			p.Sink = tr
		}
		if *n > 0 {
			p.Jobs = *n
		}
		runSporadic(p, *quiet)
	case "steady":
		p := experiments.SteadyStateParams{
			Entities:      steadyDef.Entities,
			HorizonTU:     *horizon,
			Utilization:   steadyDef.Utilization,
			Seed:          *seed,
			Kernel:        kind,
			MaxGoroutines: *maxg,
			Activation:    *activation,
			Stats:         execStats,
		}
		if tr != nil {
			p.Sink = tr
		}
		if *n > 0 {
			p.Entities = *n
		}
		runSteady(p, *quiet)
	default:
		fatal(fmt.Errorf("unknown scenario %q (want sporadic or steady)", *scenario))
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		if err := tr.WritePerfetto(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Print(reg.Format())
	}
}

func runSporadic(p experiments.StressParams, quiet bool) {
	goroutinesBefore := runtime.NumGoroutine()
	start := time.Now()
	res, err := experiments.RunStress(p)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Printf("scenario : %d jobs over %d bands, %d background threads (activation=%v), seed %d\n",
			res.Jobs, p.PriorityBands, p.Background, p.PeriodicActivation, p.Seed)
		cpus := p.CPUs
		if cpus < 1 {
			cpus = 1
		}
		fmt.Printf("executive: %s kernel, maxgoroutines=%d, cpus=%d\n", p.Kernel, p.MaxGoroutines, cpus)
		fmt.Printf("completed: %d/%d jobs (%d dropped by faults), %d background activations\n",
			res.Completed, res.Jobs, res.Dropped, res.BackgroundRun)
		fmt.Printf("virtual  : consumed %v, finished at %v of %v horizon\n",
			res.TotalConsumed, res.FinalTime, res.Horizon)
		fmt.Printf("pool     : peak %d workers (goroutines before run: %d)\n",
			res.PeakWorkers, goroutinesBefore)
		fmt.Printf("wall     : %v (%.0f jobs/s)\n", elapsed.Round(time.Millisecond),
			float64(res.Completed)/elapsed.Seconds())
	}
	fmt.Printf("stress: %d jobs, kernel=%s maxgoroutines=%d peak-workers=%d fingerprint=%016x wall=%v\n",
		res.Completed, p.Kernel, p.MaxGoroutines, res.PeakWorkers, res.Fingerprint,
		elapsed.Round(time.Millisecond))
	if res.Completed != res.Jobs-res.Dropped {
		// The CI stress smoke relies on this: stranded jobs are a
		// scheduling bug, not a soft statistic.
		fatal(fmt.Errorf("only %d of %d spawned jobs completed", res.Completed, res.Jobs-res.Dropped))
	}
}

func runSteady(p experiments.SteadyStateParams, quiet bool) {
	goroutinesBefore := runtime.NumGoroutine()
	start := time.Now()
	res, err := experiments.RunPeriodicSteadyState(p)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Printf("scenario : %d periodic entities, horizon %gtu, utilization %g, seed %d\n",
			res.Entities, p.HorizonTU, p.Utilization, p.Seed)
		fmt.Printf("executive: %s kernel, maxgoroutines=%d, activation=%v\n",
			p.Kernel, p.MaxGoroutines, p.Activation)
		fmt.Printf("released : %d activations (%d missed)\n", res.Activations, res.Missed)
		fmt.Printf("virtual  : consumed %v, finished at %v of %v horizon\n",
			res.TotalConsumed, res.FinalTime, res.Horizon)
		fmt.Printf("pool     : peak %d workers (goroutines before run: %d)\n",
			res.PeakWorkers, goroutinesBefore)
		fmt.Printf("wall     : %v (%.0f activations/s)\n", elapsed.Round(time.Millisecond),
			float64(res.Activations)/elapsed.Seconds())
	}
	fmt.Printf("steady: %d entities %d activations, kernel=%s maxgoroutines=%d activation=%v peak-workers=%d fingerprint=%016x wall=%v\n",
		res.Entities, res.Activations, p.Kernel, p.MaxGoroutines, p.Activation,
		res.PeakWorkers, res.Fingerprint, elapsed.Round(time.Millisecond))
	if res.Activations < res.Entities {
		// Every entity must release at least once within the horizon.
		fatal(fmt.Errorf("only %d activations for %d entities", res.Activations, res.Entities))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stress: %v\n", err)
	os.Exit(1)
}
