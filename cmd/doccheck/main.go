// Command doccheck is the repository's documentation gate, run by CI next
// to go vet:
//
//   - every exported identifier (types, funcs, methods, consts, vars and
//     exported struct fields) in the audited packages must carry a doc
//     comment;
//   - the doc comment of an exported func, method, type, const or var must
//     begin with the identifier it documents (types may lead with "A", "An"
//     or "The"), per standard Go doc style; struct fields are exempt;
//   - every relative link in the audited markdown files must resolve to an
//     existing file or directory.
//
// Usage:
//
//	doccheck [-pkgs dir,dir,...] [-md file-or-dir,...]
//
// Exit status is non-zero if any check fails; each finding is printed as
// file:line: message.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	pkgs := flag.String("pkgs", "internal/core,internal/exec,internal/rtsjvm,internal/trace,internal/harness,internal/sim,internal/experiments,internal/gen,internal/metrics,internal/analysis,internal/spec,internal/faults,internal/lint,internal/obs",
		"comma-separated package directories to check for missing doc comments")
	md := flag.String("md", "README.md,docs",
		"comma-separated markdown files or directories to link-check")
	flag.Parse()

	var findings []string
	for _, dir := range strings.Split(*pkgs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fs, err := checkPackageDocs(dir)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, fs...)
	}
	for _, root := range strings.Split(*md, ",") {
		root = strings.TrimSpace(root)
		if root == "" {
			continue
		}
		fs, err := checkMarkdownLinks(root)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
	os.Exit(2)
}

// checkPackageDocs parses every non-test Go file in dir and reports
// exported identifiers without a doc comment.
func checkPackageDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgMap {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), funcName(d))
					} else if !docStartsWith(d.Doc, d.Name.Name, false) {
						report(d.Doc.Pos(), "doc comment for %s %s should start with %q",
							funcKind(d), funcName(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// exportedRecv reports whether a method's receiver type is exported (or
// the decl is a plain function). Methods on unexported types are internal.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		t := d.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + d.Name.Name
		}
	}
	return d.Name.Name
}

// checkGenDecl audits a type/const/var declaration: each exported name
// needs a doc comment on the spec or the enclosing decl, and exported
// struct fields need their own comments.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, format string, args ...any)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			// The effective doc: the spec's own, or for a single-spec decl
			// the decl's (the usual "// Foo is ..." above "type Foo ...").
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			if s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			} else if doc != nil && !docStartsWith(doc, s.Name.Name, true) {
				report(doc.Pos(), "doc comment for type %s should start with %q (optionally after A/An/The)",
					s.Name.Name, s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				checkStructFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// A doc on the spec, a trailing line comment, or a doc on
				// the whole const/var block all count.
				if s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
				}
			}
			// The identifier-first style applies only where the doc
			// unambiguously documents a single name: a spec-level doc on a
			// one-name spec, or a decl-level doc on a one-spec one-name
			// decl. Group docs ("// Sizing knobs." over a const block) and
			// trailing line comments are exempt.
			if len(s.Names) == 1 && s.Names[0].IsExported() {
				doc := s.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				if doc != nil && !docStartsWith(doc, s.Names[0].Name, false) {
					report(doc.Pos(), "doc comment for %s %s should start with %q",
						d.Tok, s.Names[0].Name, s.Names[0].Name)
				}
			}
		}
	}
}

// docStartsWith reports whether the doc comment's first word is the
// identifier name, per standard Go doc style. Types (allowArticle) may lead
// with "A", "An" or "The"; a "Deprecated:" opener is always accepted.
func docStartsWith(doc *ast.CommentGroup, name string, allowArticle bool) bool {
	text := strings.TrimSpace(doc.Text())
	if text == "" {
		return false
	}
	fields := strings.Fields(text)
	if fields[0] == "Deprecated:" {
		return true
	}
	if allowArticle && len(fields) > 1 {
		switch fields[0] {
		case "A", "An", "The":
			fields = fields[1:]
		}
	}
	return fields[0] == name || strings.HasPrefix(fields[0], name+"'") ||
		strings.TrimRight(fields[0], ".,:;") == name
}

func checkStructFields(typeName string, st *ast.StructType, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			continue // embedded field: documented by its own type
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			if f.Doc == nil && f.Comment == nil {
				report(name.Pos(), "exported field %s.%s has no doc comment", typeName, name.Name)
			}
		}
	}
}

// mdLink matches markdown links and images; group 1 is the target.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks walks root (a file or directory) and verifies every
// relative link target exists.
func checkMarkdownLinks(root string) ([]string, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	var files []string
	if info.IsDir() {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{root}
	}
	var findings []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings,
						fmt.Sprintf("%s:%d: broken relative link %q (%s does not exist)",
							file, i+1, m[1], resolved))
				}
			}
		}
	}
	return findings, nil
}
