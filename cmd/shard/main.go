// Command shard is the campaign fabric's worker process: it serves
// newline-delimited JSON range requests (experiments.ShardRequest) and
// answers each with the partial metrics of that system-index range
// (experiments.ShardResponse).
//
// By default it serves a single session on stdin/stdout — the subprocess
// mode `rtsj-tables -campaign -shards N -shard-bin` uses. With -listen it
// accepts TCP connections instead and serves one session per connection,
// so shards can run on other machines:
//
//	shard -listen :7700 &
//	tables -campaign -shard-addr host1:7700,host2:7700
//
// -workers bounds the worker pool of this process (default $RTSJ_WORKERS,
// else GOMAXPROCS); the coordinator's own -workers value does not travel
// over the wire.
//
// -debug-addr starts an HTTP debug endpoint alongside either mode:
// /debug/pprof for profiles and /debug/vars for the live obs snapshot
// ("obs": request/system/error counters, in-flight gauge, request-latency
// histogram, harness pool gauges) — the fleet-health scrape surface of a
// long-lived shard.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/harness"
	"rtsj/internal/obs"
)

func main() {
	listen := flag.String("listen", "", "serve TCP connections on this address instead of stdin/stdout")
	workers := flag.Int("workers", 0, "worker pool size for this shard (default $RTSJ_WORKERS, else GOMAXPROCS)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")
	flag.Parse()
	if *workers > 0 {
		harness.SetWorkers(*workers)
	}

	// The obs registry exists regardless of -debug-addr (the per-request
	// accounting is cheap); the flag only decides whether it is served.
	reg := obs.NewRegistry()
	stats := experiments.NewShardStats(reg)
	harness.SetStats(harness.NewStats(reg))
	reg.Publish("obs")
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard: -debug-addr:", err)
			os.Exit(1)
		}
		log.Printf("shard: debug endpoint on http://%s/debug/", addr)
	}

	if *listen == "" {
		if err := experiments.ServeShardStats(os.Stdin, os.Stdout, stats); err != nil {
			fmt.Fprintln(os.Stderr, "shard:", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shard:", err)
		os.Exit(1)
	}
	log.Printf("shard: listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard:", err)
			os.Exit(1)
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := experiments.ServeShardStats(c, c, stats); err != nil {
				log.Printf("shard: %s: %v", c.RemoteAddr(), err)
			}
		}(conn)
	}
}
