package main

import "testing"

func snap(spin float64, ns map[string]float64) *Snapshot {
	return &Snapshot{SpinNs: spin, NsPerOp: ns}
}

func TestMissingFromRunFailsGate(t *testing.T) {
	base := snap(100, map[string]float64{"BenchmarkA": 50, "BenchmarkB": 70})
	cur := snap(100, map[string]float64{"BenchmarkA": 50})
	if got := missingFromRun(base, cur); len(got) != 1 || got[0] != "BenchmarkB" {
		t.Fatalf("missingFromRun = %v, want [BenchmarkB]", got)
	}
	if !gate(base, cur, 0.15) {
		t.Fatal("a baseline benchmark missing from the run must fail the gate")
	}
	// With the benchmark present and within threshold, the gate passes.
	cur.NsPerOp["BenchmarkB"] = 75
	if gate(base, cur, 0.15) {
		t.Fatal("gate failed although every baseline benchmark is within threshold")
	}
}

func TestRegressionsSpeedNormalized(t *testing.T) {
	// The gating machine is 2x slower (spin takes twice as long): raw
	// ns/op doubling is NOT a regression once normalized.
	base := snap(100, map[string]float64{"BenchmarkA": 50})
	cur := snap(200, map[string]float64{"BenchmarkA": 100})
	if got := regressions(base, cur, 0.15); len(got) != 0 {
		t.Fatalf("regressions = %v, want none (speed-normalized)", got)
	}
	cur.NsPerOp["BenchmarkA"] = 130
	if got := regressions(base, cur, 0.15); len(got) != 1 {
		t.Fatalf("regressions = %v, want [BenchmarkA]", got)
	}
}

func TestOneSidedCalibrationComparesRaw(t *testing.T) {
	// Calibration on only one side: the scale stays 1 (raw comparison)
	// and the warning path runs; the regression verdict is then on raw
	// ns/op.
	calibrationWarned = false
	base := snap(0, map[string]float64{"BenchmarkA": 50})
	cur := snap(200, map[string]float64{"BenchmarkA": 100})
	if got := regressions(base, cur, 0.15); len(got) != 1 || got[0] != "BenchmarkA" {
		t.Fatalf("regressions = %v, want [BenchmarkA] (raw comparison)", got)
	}
	if !calibrationWarned {
		t.Fatal("one-sided calibration must warn")
	}
}
