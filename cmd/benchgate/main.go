// Command benchgate is the repository's performance-baseline gate.
//
// It runs the engine, executive and table benchmarks at a fixed -benchtime,
// takes per-benchmark minima over -count repetitions (the minimum is the
// robust estimator of a benchmark's true cost under scheduler, GC-drift and
// noisy-neighbour interference), writes a
// benchstat-compatible snapshot (BENCH_<date>.json, whose "raw" field is the
// verbatim `go test -bench` text: extract it with `jq -r .raw` and feed it
// straight to benchstat), and fails — exit code 1 — when any benchmark's
// minimum ns/op regressed more than -threshold versus the committed baseline
// in bench/baseline.json, or when a baseline benchmark is missing from the
// run entirely (renamed, deleted, or failed to list): losing a benchmark
// silently would quietly shrink the gate's coverage.
//
// Refresh the baseline after an intentional performance change:
//
//	go run ./cmd/benchgate -update
//
// A/B mode sidesteps the committed baseline entirely: `-ab <ref>` checks the
// given git ref out into a throwaway worktree, measures its benchmarks on
// this same runner in this same session, and gates HEAD against that
// measurement. Both sides then share the machine, load and toolchain, so no
// cross-machine calibration is involved — use it to judge a perf-sensitive
// change before updating the committed baseline:
//
//	go run ./cmd/benchgate -ab origin/main
//
// Every snapshot also records a calibration measurement (a fixed integer
// spin workload); when both sides carry one, the gate compares
// speed-normalized ratios, so the committed baseline transfers across
// machines of different raw CPU speed. Microarchitectural differences can
// still skew individual benchmarks — refresh the baseline from the gating
// hardware when they do.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the on-disk benchmark record. NsPerOp holds each benchmark's
// minimum ns/op keyed by name (GOMAXPROCS suffix stripped); Raw preserves
// the verbatim benchmark output for benchstat. SpinNs is the calibration
// measurement: the minimum time for a fixed single-core integer workload
// on the machine that produced the snapshot. The gate divides every ns/op
// by it, so a committed baseline transfers across machines of different
// scalar speed (first-order; microarchitectural shifts still show).
type Snapshot struct {
	Date      string             `json:"date"`
	GoOS      string             `json:"goos"`
	GoArch    string             `json:"goarch"`
	Bench     string             `json:"bench"`
	BenchTime string             `json:"benchtime"`
	Count     int                `json:"count"`
	SpinNs    float64            `json:"spin_ns,omitempty"`
	NsPerOp   map[string]float64 `json:"ns_per_op"`
	Raw       string             `json:"raw"`
}

// spinSink defeats dead-code elimination of the calibration loop.
var spinSink uint64

// calibrate times a fixed integer workload (minimum of reps runs): a
// machine-speed numeraire for cross-machine baseline comparison.
func calibrate() float64 {
	const iters = 50_000_000
	best := 0.0
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		x := uint64(88172645463325252)
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		spinSink += x
		ns := float64(time.Since(start).Nanoseconds())
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	var (
		bench     = flag.String("bench", `^(BenchmarkEngine|BenchmarkExec|BenchmarkTable|BenchmarkCampaign)`, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "500ms", "fixed -benchtime for every run")
		count     = flag.Int("count", 5, "repetitions per benchmark; the gate compares minima")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
		baseline  = flag.String("baseline", "bench/baseline.json", "committed baseline to gate against")
		threshold = flag.Float64("threshold", 0.15, "relative ns/op regression that fails the gate")
		out       = flag.String("out", "", "snapshot output path (default BENCH_<date>.json)")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
		input     = flag.String("input", "", "parse an existing go test -bench output file instead of running benchmarks")
		retries   = flag.Int("retries", 2, "times to re-measure benchmarks that look regressed before failing")
		ab        = flag.String("ab", "", "git ref to measure as the baseline on this same runner (A/B mode); overrides -baseline")
	)
	flag.Parse()
	if *ab != "" && (*update || *input != "") {
		fatal(fmt.Errorf("-ab measures both sides itself; it cannot be combined with -update or -input"))
	}

	snap, err := collect(*bench, *benchtime, *count, *pkg, *input, "")
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	if err := writeJSON(path, snap); err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", path, len(snap.NsPerOp))

	if *update {
		if err := writeJSON(*baseline, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline %s updated\n", *baseline)
		return
	}

	var base *Snapshot
	if *ab != "" {
		base, err = collectAtRef(*ab, *bench, *benchtime, *count, *pkg)
		if err != nil {
			fatal(fmt.Errorf("A/B baseline at %s: %w", *ab, err))
		}
	} else {
		base, err = readJSON(*baseline)
		if err != nil {
			fatal(fmt.Errorf("no usable baseline at %s (%v); run `go run ./cmd/benchgate -update` to create one", *baseline, err))
		}
	}

	// A minimum can still be inflated when an interference burst covers a
	// whole benchmark's samples, so contested benchmarks are re-measured
	// (their minima merged) before the verdict: a real regression survives
	// the retries, a noisy-neighbour spike does not. Benchmarks present in
	// the baseline but absent from the run are contested too — a transient
	// `go test -list` hiccup recovers on retry; a renamed or deleted
	// benchmark stays missing and fails the gate with an explicit verdict.
	for retry := 0; retry < *retries; retry++ {
		contested := regressions(base, snap, *threshold)
		contested = append(contested, missingFromRun(base, snap)...)
		if len(contested) == 0 || *input != "" {
			break
		}
		fmt.Printf("benchgate: re-measuring %d contested benchmark(s), retry %d\n", len(contested), retry+1)
		again, err := collect("^("+strings.Join(topLevel(contested), "|")+")$", *benchtime, *count, *pkg, "", "")
		if err != nil {
			// Every contested benchmark may be gone from the package (the
			// rename/delete case): nothing to re-measure, let the gate
			// report the missing verdict.
			fmt.Printf("benchgate: re-measure found nothing to run (%v)\n", err)
			break
		}
		for name, ns := range again.NsPerOp {
			if old, ok := snap.NsPerOp[name]; !ok || ns < old {
				snap.NsPerOp[name] = ns
			}
		}
		snap.Raw += again.Raw
		if err := writeJSON(path, snap); err != nil {
			fatal(err)
		}
	}
	if failed := gate(base, snap, *threshold); failed {
		os.Exit(1)
	}
}

// topLevel maps benchmark names to their unique top-level functions: a
// contested sub-benchmark ("BenchmarkX/variant") is re-measured by
// re-running BenchmarkX — a slash inside the -bench regex would otherwise
// be split by go test's per-segment matching and never list anything.
func topLevel(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, name := range names {
		top, _, _ := strings.Cut(name, "/")
		if !seen[top] {
			seen[top] = true
			out = append(out, top)
		}
	}
	sort.Strings(out)
	return out
}

// missingFromRun returns the baseline benchmarks the current run did not
// measure at all. Without this check a renamed, deleted, or list-failed
// benchmark would drop out of the comparison silently — the gate would
// pass while losing coverage.
func missingFromRun(base, cur *Snapshot) []string {
	var out []string
	for name := range base.NsPerOp {
		if _, ok := cur.NsPerOp[name]; !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

var calibrationWarned bool

// warnOneSidedCalibration prints an explicit warning (once) when only one
// snapshot carries a spin calibration: the gate then compares raw ns/op,
// which is meaningless across machines of different speed.
func warnOneSidedCalibration(base, cur *Snapshot) {
	if (base.SpinNs > 0) == (cur.SpinNs > 0) || calibrationWarned {
		return
	}
	calibrationWarned = true
	side, other := "baseline", "current run"
	if base.SpinNs <= 0 {
		side, other = "current run", "baseline"
	}
	fmt.Printf("benchgate: WARNING: spin calibration present only in the %s (missing from the %s); "+
		"comparing raw ns/op, which does not transfer across machines of different speed — "+
		"refresh the baseline with `go run ./cmd/benchgate -update` on the gating hardware\n",
		side, other)
}

// speedScale returns the machine-speed normalization factor: a machine
// that takes k times longer on the spin workload is expected to take k
// times longer on every benchmark, so the baseline ns/op is scaled by
// cur/base before comparing. Both regressions (the retry filter) and gate
// (the verdict) MUST use this one definition, or a benchmark could be
// retried as contested yet pass the gate (or vice versa).
func speedScale(base, cur *Snapshot) float64 {
	if base.SpinNs > 0 && cur.SpinNs > 0 {
		return cur.SpinNs / base.SpinNs
	}
	warnOneSidedCalibration(base, cur)
	return 1.0
}

// normalizedDelta returns the benchmark's relative regression versus the
// speed-scaled baseline (0 = on par, 0.2 = 20% slower than expected).
func normalizedDelta(old, now, scale float64) float64 {
	return now/(old*scale) - 1
}

// regressions returns the benchmarks whose current minimum exceeds the
// (speed-normalized) baseline by more than threshold.
func regressions(base, cur *Snapshot, threshold float64) []string {
	scale := speedScale(base, cur)
	var out []string
	for name, now := range cur.NsPerOp {
		if old, ok := base.NsPerOp[name]; ok && old > 0 && normalizedDelta(old, now, scale) > threshold {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// collect runs (or reads) the benchmarks and reduces each to its minimum.
// Each benchmark runs in its own `go test` process: a fresh heap per
// benchmark makes the minimum reproducible (in a shared process, a
// benchmark's cost drifts with the garbage earlier benchmarks left behind).
// A non-empty dir runs the benchmarks from that directory (the A/B
// worktree) instead of the current one.
func collect(bench, benchtime string, count int, pkg, input, dir string) (*Snapshot, error) {
	var raw []byte
	var err error
	if input != "" {
		raw, err = os.ReadFile(input)
		if err != nil {
			return nil, err
		}
	} else {
		names, err := listBenchmarks(bench, pkg, dir)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			args := []string{"test", "-run", "^$", "-bench", "^" + name + "$",
				"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
			fmt.Printf("benchgate: go %v\n", args)
			cmd := exec.Command("go", args...)
			cmd.Dir = dir
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				return nil, fmt.Errorf("go test -bench %s failed: %w\n%s", name, err, out)
			}
			raw = append(raw, out...)
		}
	}
	samples := map[string][]float64{}
	goos, goarch := "", ""
	for _, line := range strings.Split(string(raw), "\n") {
		if m := benchLine.FindStringSubmatch(line); m != nil {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			samples[m[1]] = append(samples[m[1]], ns)
			continue
		}
		if n, ok := strings.CutPrefix(line, "goos: "); ok {
			goos = n
		}
		if n, ok := strings.CutPrefix(line, "goarch: "); ok {
			goarch = n
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark results matched %q", bench)
	}
	snap := &Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoOS:      goos,
		GoArch:    goarch,
		Bench:     bench,
		BenchTime: benchtime,
		Count:     count,
		SpinNs:    calibrate(),
		NsPerOp:   map[string]float64{},
		Raw:       string(raw),
	}
	for name, s := range samples {
		sort.Float64s(s)
		snap.NsPerOp[name] = s[0] // minimum: robust to one-sided interference noise
	}
	return snap, nil
}

// gate compares minima and reports every regression beyond the threshold.
// When both snapshots carry a calibration measurement, ns/op are compared
// as multiples of each machine's spin time, cancelling raw CPU-speed
// differences between the baseline machine and the gating machine.
func gate(base, cur *Snapshot, threshold float64) (failed bool) {
	scale := speedScale(base, cur)
	if scale != 1.0 || (base.SpinNs > 0 && cur.SpinNs > 0) {
		fmt.Printf("benchgate: calibration %0.f -> %0.f spin-ns; comparing speed-normalized ratios (x%.3f)\n",
			base.SpinNs, cur.SpinNs, scale)
	}
	names := make([]string, 0, len(cur.NsPerOp))
	for name := range cur.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := cur.NsPerOp[name]
		old, ok := base.NsPerOp[name]
		if !ok || old <= 0 {
			fmt.Printf("  new   %-40s %12.0f ns/op (no baseline entry)\n", name, now)
			continue
		}
		delta := normalizedDelta(old, now, scale)
		mark := "ok   "
		if delta > threshold {
			mark = "FAIL "
			failed = true
		}
		fmt.Printf("  %s %-40s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", mark, name, old, now, 100*delta)
	}
	for _, name := range missingFromRun(base, cur) {
		fmt.Printf("  MISSING from run %-29s (in baseline %12.0f ns/op; renamed, deleted, or failed to list — refresh the baseline if intentional)\n",
			name, base.NsPerOp[name])
		failed = true
	}
	if failed {
		fmt.Printf("benchgate: FAIL — regression beyond %.0f%% vs baseline (%s, %s/%s)\n",
			100*threshold, base.Date, base.GoOS, base.GoArch)
	} else {
		fmt.Printf("benchgate: ok — within %.0f%% of baseline (%s)\n", 100*threshold, base.Date)
	}
	return failed
}

// collectAtRef measures the benchmarks of another git ref on this same
// runner: the ref is checked out into a throwaway detached worktree, the
// full collect pipeline runs there, and the worktree is removed again. The
// returned snapshot is the A/B baseline — same machine, same load, same
// toolchain as the HEAD measurement, so the gate's speed normalization is a
// near no-op and the comparison isolates the code change itself.
func collectAtRef(ref, bench, benchtime string, count int, pkg string) (*Snapshot, error) {
	tmp, err := os.MkdirTemp("", "benchgate-ab-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	wt := filepath.Join(tmp, "wt")
	add := exec.Command("git", "worktree", "add", "--detach", wt, ref)
	add.Stderr = os.Stderr
	if err := add.Run(); err != nil {
		return nil, fmt.Errorf("git worktree add %s: %w", ref, err)
	}
	defer func() {
		rm := exec.Command("git", "worktree", "remove", "--force", wt)
		rm.Stderr = os.Stderr
		if err := rm.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: cleanup of A/B worktree %s failed: %v\n", wt, err)
		}
	}()
	fmt.Printf("benchgate: measuring A/B baseline at %s (worktree %s)\n", ref, wt)
	snap, err := collect(bench, benchtime, count, pkg, "", wt)
	if err != nil {
		return nil, err
	}
	snap.Date = ref // the gate's verdict line names the baseline by its ref
	return snap, nil
}

// listBenchmarks enumerates the top-level benchmarks matching re in pkg,
// run from dir when non-empty.
func listBenchmarks(re, pkg, dir string) ([]string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-list", re, pkg)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -list failed: %w\n%s", err, out)
	}
	var names []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			names = append(names, strings.TrimSpace(line))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no benchmarks match %q in %s", re, pkg)
	}
	sort.Strings(names)
	return names, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readJSON(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if len(s.NsPerOp) == 0 {
		return nil, fmt.Errorf("baseline holds no benchmarks")
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
