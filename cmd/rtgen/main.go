// Command rtgen is the random real-time system generator of the paper's
// Section 6.1 (fr.umlv.randomGenerator): it emits generated systems in the
// rtss spec format.
//
// Usage:
//
//	rtgen [-density 2] [-cost 3] [-sd 0] [-capacity 4] [-period 6]
//	      [-n 10] [-seed 1983] [-periods 10] [-server ps] [-poisson]
//	      [-index 0]
//
// With -n > 1, -index selects which generated system to print (or use
// -all to print them all separated by blank lines).
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsj/internal/gen"
	"rtsj/internal/sim"
	"rtsj/internal/spec"
)

func main() {
	density := flag.Float64("density", 2, "average aperiodic events per server period")
	cost := flag.Float64("cost", 3, "average event cost (tu)")
	sd := flag.Float64("sd", 0, "cost standard deviation (tu)")
	capacity := flag.Float64("capacity", 4, "server capacity (tu)")
	period := flag.Float64("period", 6, "server period (tu)")
	n := flag.Int("n", 10, "number of systems to generate")
	seed := flag.Int64("seed", 1983, "random seed")
	periods := flag.Int("periods", 10, "observation horizon in server periods")
	server := flag.String("server", "ps-lim", "server policy: ps, ds, ps-lim, ds-lim, ss, bg")
	poisson := flag.Bool("poisson", false, "use Poisson arrivals instead of per-period")
	index := flag.Int("index", 0, "which generated system to print")
	all := flag.Bool("all", false, "print every generated system")
	flag.Parse()

	p := gen.Params{
		TaskDensity:    *density,
		AverageCost:    *cost,
		StdDeviation:   *sd,
		ServerCapacity: *capacity,
		ServerPeriod:   *period,
		NbGeneration:   *n,
		Seed:           *seed,
		HorizonPeriods: *periods,
	}
	if *poisson {
		p.Arrivals = gen.PoissonArrivals
	}
	policies := map[string]sim.ServerPolicy{
		"bg": sim.NoServer, "ps": sim.PollingServer, "ds": sim.DeferrableServer,
		"ps-lim": sim.LimitedPollingServer, "ds-lim": sim.LimitedDeferrableServer,
		"ss": sim.SporadicServer,
	}
	pol, ok := policies[*server]
	if !ok {
		fmt.Fprintf(os.Stderr, "rtgen: unknown server policy %q\n", *server)
		os.Exit(1)
	}

	systems := gen.Generate(p)
	if len(systems) == 0 {
		fmt.Fprintln(os.Stderr, "rtgen: nothing generated")
		os.Exit(1)
	}
	emit := func(i int) {
		sys := gen.WithServer(systems[i], p, pol, 100)
		f := &spec.File{System: sys, Horizon: p.Horizon()}
		fmt.Printf("# rtgen system %d/%d: density=%g cost=%g sd=%g seed=%d\n",
			i+1, len(systems), *density, *cost, *sd, *seed)
		fmt.Print(spec.Format(f))
	}
	if *all {
		for i := range systems {
			emit(i)
			fmt.Println()
		}
		return
	}
	if *index < 0 || *index >= len(systems) {
		fmt.Fprintf(os.Stderr, "rtgen: index %d out of range (0..%d)\n", *index, len(systems)-1)
		os.Exit(1)
	}
	emit(*index)
}
