// Command tables regenerates the paper's measurement tables (Tables 2-5):
// the six generated system sets, each simulated (ideal policies on RTSS)
// and executed (Task Server Framework on the RTSJ emulation), reporting
// AART, AIR and ASR side by side with the paper's values.
//
// With -campaign it instead runs a utilization-sweep schedulability
// campaign over an index-addressable system population — in-process, across
// -shards subprocess workers, or across -shard-addr TCP workers — and
// prints the curve. Every execution mode prints byte-identical output for
// the same spec.
//
// Usage:
//
//	tables [-table 2|3|4|5|all]
//	tables -campaign [-points 0.5,1,2] [-systems N] [-seed S] [-policy ds]
//	       [-shards N -shard-bin ./shard | -shard-addr host:port,...]
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/harness"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 2, 3, 4, 5 or all")
	matrix := flag.Bool("matrix", false, "also run the extension experiment: every policy on every set")
	workers := flag.Int("workers", 0, "harness worker pool size (0: $RTSJ_WORKERS or GOMAXPROCS)")
	cf := registerCampaignFlags()
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "tables: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	harness.SetWorkers(*workers)

	if *cf.run {
		runCampaign(cf, *workers)
		return
	}

	ids := experiments.TableIDs
	if *table != "all" {
		ids = []string{*table}
	}
	tabs, err := experiments.RunTables(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tabs {
		fmt.Println(t.Format())
	}
	if *matrix {
		m, err := experiments.RunPolicyMatrix()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(m.Format())
	}
}
