// Command tables regenerates the paper's measurement tables (Tables 2-5):
// the six generated system sets, each simulated (ideal policies on RTSS)
// and executed (Task Server Framework on the RTSJ emulation), reporting
// AART, AIR and ASR side by side with the paper's values.
//
// Usage:
//
//	tables [-table 2|3|4|5|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"rtsj/internal/experiments"
	"rtsj/internal/harness"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 2, 3, 4, 5 or all")
	matrix := flag.Bool("matrix", false, "also run the extension experiment: every policy on every set")
	workers := flag.Int("workers", 0, "harness worker pool size (0: $RTSJ_WORKERS or GOMAXPROCS)")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "tables: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	harness.SetWorkers(*workers)

	ids := experiments.TableIDs
	if *table != "all" {
		ids = []string{*table}
	}
	tabs, err := experiments.RunTables(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tabs {
		fmt.Println(t.Format())
	}
	if *matrix {
		m, err := experiments.RunPolicyMatrix()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(m.Format())
	}
}
