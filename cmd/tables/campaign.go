package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"rtsj/internal/experiments"
	"rtsj/internal/sim"
)

// campaignFlags groups the -campaign mode's flags, registered alongside the
// table flags in main.
type campaignFlags struct {
	run       *bool
	points    *string
	systems   *int
	seed      *int64
	policy    *string
	shards    *int
	shardBin  *string
	shardAddr *string
	batch     *int
	format    *string
	progress  *bool
}

func registerCampaignFlags() campaignFlags {
	return campaignFlags{
		run:       flag.Bool("campaign", false, "run a utilization-sweep campaign instead of the paper tables"),
		points:    flag.String("points", "", "campaign: comma-separated task densities (default: the stock sweep)"),
		systems:   flag.Int("systems", 0, "campaign: systems per sweep point (default 1000)"),
		seed:      flag.Int64("seed", 0, "campaign: generation seed (default 1983)"),
		policy:    flag.String("policy", "ds", "campaign: server policy (bg, ps, ds, ps-lim, ds-lim, ss, pe, slack)"),
		shards:    flag.Int("shards", 0, "campaign: run this many shard subprocesses (0: in-process)"),
		shardBin:  flag.String("shard-bin", "shard", "campaign: shard worker binary for -shards"),
		shardAddr: flag.String("shard-addr", "", "campaign: comma-separated TCP shard addresses (overrides -shards)"),
		batch:     flag.Int("batch", 0, "campaign: systems per shard request (0: auto)"),
		format:    flag.String("format", "text", "campaign: output format (text, csv, json)"),
		progress:  flag.Bool("progress", false, "campaign: report live progress (systems/s, ETA, shard health) on stderr"),
	}
}

// campaignPolicies names the simulated server policies on the command line,
// matching the spec-file vocabulary.
var campaignPolicies = map[string]sim.ServerPolicy{
	"bg": sim.NoServer,
	"ps": sim.PollingServer, "ds": sim.DeferrableServer,
	"ps-lim": sim.LimitedPollingServer, "ds-lim": sim.LimitedDeferrableServer,
	"ss": sim.SporadicServer, "pe": sim.PriorityExchange, "slack": sim.SlackStealer,
}

// runCampaign resolves the flags into a CampaignSpec, runs it in-process,
// over subprocess shards or over TCP shards, and prints the curve. All
// three paths print byte-identical output for the same spec.
func runCampaign(cf campaignFlags, workers int) {
	spec := experiments.DefaultCampaignSpec()
	if *cf.points != "" {
		var pts []float64
		for _, s := range strings.Split(*cf.points, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tables: -points: %q is not a number\n", s)
				os.Exit(2)
			}
			pts = append(pts, d)
		}
		spec.Points = pts
	}
	if *cf.systems > 0 {
		spec.Systems = *cf.systems
	}
	if *cf.seed != 0 {
		spec.Seed = *cf.seed
	}
	pol, ok := campaignPolicies[*cf.policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "tables: -policy: unknown policy %q\n", *cf.policy)
		os.Exit(2)
	}
	spec.Policy = pol
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}

	switch *cf.format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "tables: -format: unknown format %q (want text, csv or json)\n", *cf.format)
		os.Exit(2)
	}

	curve, err := dispatchCampaign(spec, cf, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
	switch *cf.format {
	case "csv":
		fmt.Print(curve.FormatCSV())
	case "json":
		out, err := curve.FormatJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Print(curve.Format())
	}
}

func dispatchCampaign(spec experiments.CampaignSpec, cf campaignFlags, workers int) (*experiments.Curve, error) {
	// Progress goes to stderr so the curve output stays clean for
	// redirection; the curve itself is byte-identical either way.
	var opts experiments.CampaignOptions
	if *cf.progress {
		opts.Progress = os.Stderr
	}
	switch {
	case *cf.shardAddr != "":
		return runCampaignTCP(spec, strings.Split(*cf.shardAddr, ","), *cf.batch, opts)
	case *cf.shards > 0:
		return runCampaignSubprocess(spec, *cf.shards, *cf.shardBin, *cf.batch, workers, opts)
	default:
		return experiments.RunCampaignOpts(spec, opts)
	}
}

// runCampaignSubprocess spawns n shard worker processes speaking the wire
// protocol over their stdin/stdout pipes. The coordinator's -workers value
// is forwarded to every shard: the flag bounds each process's pool, so n
// shards run up to n*workers simulation goroutines machine-wide.
func runCampaignSubprocess(spec experiments.CampaignSpec, n int, bin string, batch, workers int, opts experiments.CampaignOptions) (*experiments.Curve, error) {
	conns := make([]experiments.ShardConn, n)
	cmds := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		args := []string{}
		if workers > 0 {
			args = append(args, "-workers", strconv.Itoa(workers))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d: %w", i, err)
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d: %w", i, err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("campaign: shard %d: start %s: %w", i, bin, err)
		}
		conns[i] = experiments.ShardConn{Name: fmt.Sprintf("shard %d (pid %d)", i, cmd.Process.Pid), R: out, W: in}
		cmds[i] = cmd
	}
	curve, err := experiments.RunCampaignShardedOpts(spec, conns, batch, opts)
	for i, cmd := range cmds {
		// Closing stdin is the shutdown signal: ServeShard returns on EOF.
		if c, ok := conns[i].W.(interface{ Close() error }); ok {
			c.Close()
		}
		if werr := cmd.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("campaign: %s: %w", conns[i].Name, werr)
		}
	}
	return curve, err
}

// runCampaignTCP connects to already-running shard workers (cmd/shard
// -listen) over TCP.
func runCampaignTCP(spec experiments.CampaignSpec, addrs []string, batch int, opts experiments.CampaignOptions) (*experiments.Curve, error) {
	conns := make([]experiments.ShardConn, 0, len(addrs))
	defer func() {
		for _, c := range conns {
			c.W.(net.Conn).Close()
		}
	}()
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		conns = append(conns, experiments.ShardConn{Name: addr, R: c, W: c})
	}
	return experiments.RunCampaignShardedOpts(spec, conns, batch, opts)
}
