// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations called out in DESIGN.md. Each table benchmark reports
// the measured AART/AIR/ASR of a representative set as custom metrics, so
// `go test -bench .` both times the harness and re-derives the paper's
// numbers.
package rtsj_test

import (
	"fmt"
	"testing"

	"rtsj/internal/analysis"
	"rtsj/internal/core"
	"rtsj/internal/exec"
	"rtsj/internal/experiments"
	"rtsj/internal/gen"
	"rtsj/internal/harness"
	"rtsj/internal/metrics"
	"rtsj/internal/obs"
	"rtsj/internal/rtime"
	"rtsj/internal/rtsjvm"
	"rtsj/internal/sim"
	"rtsj/internal/trace"
)

// --- Figures 2-4: the three scenarios on the framework -------------------

func benchmarkFigure(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure(n)
		if err != nil {
			b.Fatal(err)
		}
		if fig.ExecGantt == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure2Scenario1(b *testing.B) { benchmarkFigure(b, 1) }
func BenchmarkFigure3Scenario2(b *testing.B) { benchmarkFigure(b, 2) }
func BenchmarkFigure4Scenario3(b *testing.B) { benchmarkFigure(b, 3) }

// --- Tables 2-5: one full set per iteration ------------------------------

func benchmarkSet(b *testing.B, key string, policy sim.ServerPolicy, mode experiments.Mode) {
	model := experiments.DefaultExecModel()
	var last metrics.SetSummary
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSet(key, policy, mode, model)
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.ReportMetric(last.AART, "AART-tu")
	b.ReportMetric(last.AIR, "AIR")
	b.ReportMetric(last.ASR, "ASR")
}

func BenchmarkTable2PSSimulation(b *testing.B) {
	benchmarkSet(b, "(2, 0)", sim.PollingServer, experiments.Simulation)
}

func BenchmarkTable3PSExecution(b *testing.B) {
	benchmarkSet(b, "(2, 2)", sim.LimitedPollingServer, experiments.Execution)
}

func BenchmarkTable4DSSimulation(b *testing.B) {
	benchmarkSet(b, "(2, 0)", sim.DeferrableServer, experiments.Simulation)
}

func BenchmarkTable5DSExecution(b *testing.B) {
	benchmarkSet(b, "(2, 2)", sim.LimitedDeferrableServer, experiments.Execution)
}

// BenchmarkTablesAllSets runs every cell of every table once per iteration
// (the full evaluation of the paper). Tables run back to back; each table
// internally fans its cells across the harness worker pool.
func BenchmarkTablesAllSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range experiments.TableIDs {
			if _, err := experiments.RunTable(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHarnessParallelTables runs the full evaluation with all four
// tables fanned across the harness worker pool too, at several pool sizes
// (workers=0 is the GOMAXPROCS default). The sub-benchmark ratios show the
// parallel scaling of the experiment harness.
func BenchmarkHarnessParallelTables(b *testing.B) {
	for _, workers := range []int{0, 1, 2, 4} {
		name := fmt.Sprintf("workers%d", workers)
		if workers == 0 {
			name = "workersDefault"
		}
		b.Run(name, func(b *testing.B) {
			harness.SetWorkers(workers)
			defer harness.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunTables(experiments.TableIDs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: FIFO pending list vs Section 7 admission queue ------------

func benchmarkPSServer(b *testing.B, admission bool) {
	p := experiments.GenParams("(3, 2)")
	systems := gen.Generate(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := systems[i%len(systems)]
		vm := rtsjvm.NewVM(nil, rtsjvm.Overheads{})
		srv := core.NewPollingTaskServer(vm, "PS", 100,
			core.NewTaskServerParameters(0, rtime.TUs(4), rtime.TUs(6)))
		if admission {
			srv.UseAdmissionQueue()
		}
		for k := range base.Aperiodics {
			a := base.Aperiodics[k]
			h := core.NewServableAsyncEventHandler(srv, a.Name, a.Cost)
			e := core.NewServableAsyncEvent(vm, a.Name)
			e.AddServableHandler(h)
			vm.NewOneShotTimer(a.Release, e, a.Name).Start()
		}
		if err := vm.Run(p.Horizon()); err != nil {
			b.Fatal(err)
		}
		vm.Shutdown()
	}
}

func BenchmarkAblationPSFIFOQueue(b *testing.B)      { benchmarkPSServer(b, false) }
func BenchmarkAblationPSAdmissionQueue(b *testing.B) { benchmarkPSServer(b, true) }

// The raw data-structure trade: registration cost of the list-of-lists
// versus the flat FIFO, for growing backlogs.
func BenchmarkAblationAdmissionRegister(b *testing.B) {
	for _, backlog := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("backlog%d", backlog), func(b *testing.B) {
			q := core.NewAdmissionQueue(rtime.TUs(4), rtime.TUs(6))
			srv := struct{}{} // queue is standalone; no server needed
			_ = srv
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if q.Len() >= backlog {
					q = core.NewAdmissionQueue(rtime.TUs(4), rtime.TUs(6))
				}
				q.RegisterCost(rtime.Time(i), rtime.TUs(1.5))
			}
		})
	}
}

// --- Ablation: overhead sensitivity (AIR/ASR vs timer-fire cost) ---------

func BenchmarkAblationOverheadSweep(b *testing.B) {
	for _, fireTU := range []float64{0, 0.05, 0.15, 0.4} {
		b.Run(fmt.Sprintf("timerfire%.2ftu", fireTU), func(b *testing.B) {
			model := experiments.DefaultExecModel()
			model.Overheads.TimerFire = rtime.TUs(fireTU)
			var last metrics.SetSummary
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSet("(2, 2)", sim.LimitedPollingServer,
					experiments.Execution, model)
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.ReportMetric(last.AIR, "AIR")
			b.ReportMetric(last.ASR, "ASR")
		})
	}
}

// --- Ablation: ideal (resumable) vs limited (non-resumable) policies -----

func BenchmarkAblationLimitedVsIdeal(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		policy sim.ServerPolicy
	}{
		{"idealPS", sim.PollingServer},
		{"limitedPS", sim.LimitedPollingServer},
		{"idealDS", sim.DeferrableServer},
		{"limitedDS", sim.LimitedDeferrableServer},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var last metrics.SetSummary
			for i := 0; i < b.N; i++ {
				s, err := experiments.RunSet("(2, 2)", cfg.policy,
					experiments.Simulation, experiments.DefaultExecModel())
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.ReportMetric(last.AART, "AART-tu")
			b.ReportMetric(last.ASR, "ASR")
		})
	}
}

// --- Engine throughput ----------------------------------------------------

// BenchmarkEngineSimThroughput measures the discrete-event simulator on a
// dense workload (jobs per second of wall time).
func BenchmarkEngineSimThroughput(b *testing.B) {
	p := gen.Params{
		TaskDensity: 3, AverageCost: 3, StdDeviation: 2,
		ServerCapacity: 4, ServerPeriod: 6,
		NbGeneration: 1, Seed: 7, HorizonPeriods: 1000,
	}
	base := gen.Generate(p)[0]
	sys := gen.WithServer(base, p, sim.DeferrableServer, 100)
	jobs := len(sys.Aperiodics)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(sys, sim.NewFP(sys, nil), p.Horizon(), nil)
		if err != nil {
			b.Fatal(err)
		}
		// Recycling per iteration keeps the job heap flat: allocs/op stays
		// constant instead of drifting with b.N as retained results pile up.
		r.Recycle()
	}
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkCampaignStreaming measures the campaign fabric end to end: one
// 2000-system sweep point generated index-addressably, simulated and folded
// through the streaming reducer (systems per second of wall time). Memory
// per op must stay O(worker pool) — the reducer retains nothing.
func BenchmarkCampaignStreaming(b *testing.B) {
	spec := experiments.DefaultCampaignSpec()
	spec.Points = []float64{2}
	spec.Systems = 2000
	b.ReportAllocs()
	b.ResetTimer()
	var part metrics.Partial
	for i := 0; i < b.N; i++ {
		p, err := experiments.RunCampaignRange(spec, 0, 0, spec.Systems)
		if err != nil {
			b.Fatal(err)
		}
		part = p
	}
	if part.Systems != spec.Systems {
		b.Fatalf("partial covers %d systems, want %d", part.Systems, spec.Systems)
	}
	b.ReportMetric(float64(spec.Systems*b.N)/b.Elapsed().Seconds(), "systems/s")
}

// BenchmarkEngineExecThroughput measures the virtual-time executive running
// the framework (events per second of wall time, including goroutine
// handoffs).
func BenchmarkEngineExecThroughput(b *testing.B) {
	p := gen.Params{
		TaskDensity: 3, AverageCost: 3, StdDeviation: 2,
		ServerCapacity: 4, ServerPeriod: 6,
		NbGeneration: 1, Seed: 7, HorizonPeriods: 100,
	}
	base := gen.Generate(p)[0]
	sys := gen.WithServer(base, p, sim.LimitedDeferrableServer, 100)
	events := len(sys.Aperiodics)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunExecution(sys, experiments.ZeroExecModel(), p.Horizon()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkExecThroughput measures the virtual-time executive alone —
// no sim engine, no RTSJ emulation — on a mixed workload: eight periodic
// consume/sleep threads at staggered priorities (mostly batched inline by
// the direct kernel) plus a notify ping-pong pair that forces a real
// parked-goroutine handoff per event. The events/s metric isolates the
// kernel-loop win from the engine numbers.
func BenchmarkExecThroughput(b *testing.B) {
	ex := exec.New(trace.New())
	events := 0
	for i := 0; i < 8; i++ {
		period := rtime.TUs(float64(4 + i))
		cost := rtime.TUs(0.25 + 0.05*float64(i))
		ex.Spawn(fmt.Sprintf("p%d", i), 2+i%4, 0, func(tc *exec.TC) {
			next := rtime.Time(0)
			for {
				tc.Consume(cost)
				events++
				next = next.Add(period)
				tc.SleepUntil(next)
			}
		})
	}
	// The pair runs at the lowest priority, soaking up idle time: pong is
	// spawned first so it parks on its queue before ping's first notify.
	ping, pong := exec.NewWaitQueue("ping"), exec.NewWaitQueue("pong")
	ex.Spawn("pong", 1, 0, func(tc *exec.TC) {
		for {
			tc.Wait(pong)
			tc.Consume(rtime.TUs(0.5))
			events++
			tc.NotifyAll(ping)
		}
	})
	ex.Spawn("ping", 1, 0, func(tc *exec.TC) {
		for {
			tc.Consume(rtime.TUs(0.5))
			events++
			tc.NotifyAll(pong)
			tc.Wait(ping)
		}
	})
	b.ResetTimer()
	if err := ex.Run(rtime.Time(rtime.TUs(1)) * rtime.Time(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	ex.Shutdown()
	if events == 0 {
		b.Fatal("no events scheduled")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkExecLargeN runs the large-N stress scenario — 10k one-shot
// sporadic job threads plus periodic background load — on the pooled
// executive (MaxGoroutines bounds the OS-level goroutine count by the
// preemption depth, not the thread count). This is the workload the pool
// opens up: per-thread goroutine mode pays a spawn+park per job, the pool
// recycles a handful of workers.
func BenchmarkExecLargeN(b *testing.B) {
	p := experiments.DefaultStressParams()
	b.ReportAllocs()
	var res *experiments.StressResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunStress(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != p.Jobs {
			b.Fatalf("completed %d of %d jobs", res.Completed, p.Jobs)
		}
	}
	b.ReportMetric(float64(p.Jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(res.PeakWorkers), "peak-workers")
}

// BenchmarkExecObsOverhead measures the observability layer's cost on the
// large-N stress scenario. The disabled sub-benchmark runs with no stats
// registry — the nil fast path every default configuration takes, which
// must stay within noise of BenchmarkExecLargeN — and the enabled one runs
// with a full exec.Stats registry attached, bounding the worst-case cost
// of turning the counters on.
func BenchmarkExecObsOverhead(b *testing.B) {
	run := func(b *testing.B, stats *exec.Stats) {
		p := experiments.DefaultStressParams()
		p.Stats = stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiments.RunStress(p)
			if err != nil {
				b.Fatal(err)
			}
			if res.Completed != p.Jobs {
				b.Fatalf("completed %d of %d jobs", res.Completed, p.Jobs)
			}
		}
		b.ReportMetric(float64(p.Jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, exec.NewStats(obs.NewRegistry())) })
}

// BenchmarkExecPeriodicSteadyState runs the 10k-periodic-entity
// steady-state scenario on the activation-driven executive
// (exec.SpawnPeriodic over the worker pool): every entity releases several
// times over the horizon, and no entity owns a goroutine between releases,
// so the whole system runs on a pool-sized worker set. This is the
// workload where looping periodic bodies would degrade the pooled
// executive back to one pinned worker per entity.
func BenchmarkExecPeriodicSteadyState(b *testing.B) {
	p := experiments.DefaultSteadyStateParams()
	b.ReportAllocs()
	var res *experiments.SteadyStateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunPeriodicSteadyState(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Activations < p.Entities {
			b.Fatalf("only %d activations for %d entities", res.Activations, p.Entities)
		}
	}
	b.ReportMetric(float64(res.Activations*b.N)/b.Elapsed().Seconds(), "activations/s")
	b.ReportMetric(float64(res.PeakWorkers), "peak-workers")
}

// BenchmarkExecSMPThroughput runs the large-N sporadic stress scenario on
// four virtual CPUs under the Global migration policy: the direct kernel
// keeps per-CPU ready heaps and places up to four occupants per decision,
// so this measures the whole multiprocessor decision loop (domain pick,
// placement, lockstep slice advance) at scale.
func BenchmarkExecSMPThroughput(b *testing.B) {
	p := experiments.DefaultStressParams()
	p.CPUs = 4
	b.ReportAllocs()
	var res *experiments.StressResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunStress(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != p.Jobs {
			b.Fatalf("completed %d of %d jobs", res.Completed, p.Jobs)
		}
	}
	b.ReportMetric(float64(p.Jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(res.Migrations), "migrations")
}

// BenchmarkExecSMPUniprocessor runs the same stress scenario with an
// explicit CPUs=1: the M=1 reduction must ride the pre-SMP decision fast
// path, so this number is the regression guard against BenchmarkExecLargeN
// (the legacy uniprocessor configuration) — the two should be within
// noise of each other.
func BenchmarkExecSMPUniprocessor(b *testing.B) {
	p := experiments.DefaultStressParams()
	p.CPUs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStress(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != p.Jobs {
			b.Fatalf("completed %d of %d jobs", res.Completed, p.Jobs)
		}
	}
	b.ReportMetric(float64(p.Jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkExecContextSwitch measures the raw cost of one executive
// preemption round trip (kernel -> thread -> kernel).
func BenchmarkExecContextSwitch(b *testing.B) {
	ex := exec.New(trace.New())
	steps := 0
	ex.Spawn("spinner", 1, 0, func(tc *exec.TC) {
		for {
			tc.Consume(rtime.TUs(1))
			steps++
		}
	})
	b.ResetTimer()
	if err := ex.Run(rtime.Time(rtime.TUs(1)) * rtime.Time(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	ex.Shutdown()
	if steps == 0 {
		b.Fatal("spinner never ran")
	}
}

// --- Analysis micro-benchmarks --------------------------------------------

func BenchmarkAnalysisRTA(b *testing.B) {
	tasks := analysis.WithDeferrableServer([]analysis.Task{
		{Name: "t1", C: rtime.TUs(1), T: rtime.TUs(8), Prio: 4},
		{Name: "t2", C: rtime.TUs(1), T: rtime.TUs(10), Prio: 3},
		{Name: "t3", C: rtime.TUs(1), T: rtime.TUs(12), Prio: 2},
		{Name: "t4", C: rtime.TUs(2), T: rtime.TUs(20), Prio: 1},
	}, rtime.TUs(1), rtime.TUs(5), 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !analysis.Feasible(tasks) {
			b.Fatal("set should be feasible")
		}
	}
}

func BenchmarkAnalysisOnlinePSResponse(b *testing.B) {
	st := analysis.PSServerState{
		Cs: rtime.TUs(4), Ts: rtime.TUs(6), Rem: rtime.TUs(2), Now: rtime.AtTU(20),
	}
	for i := 0; i < b.N; i++ {
		if analysis.OnlinePSResponse(st, rtime.TUs(9), rtime.AtTU(19)) <= 0 {
			b.Fatal("bad response")
		}
	}
}

func BenchmarkGenerator(b *testing.B) {
	p := experiments.GenParams("(3, 2)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(gen.Generate(p)) != 10 {
			b.Fatal("bad generation")
		}
	}
}
